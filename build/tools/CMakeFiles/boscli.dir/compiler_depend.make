# Empty compiler generated dependencies file for boscli.
# This may be replaced when dependencies are built.
