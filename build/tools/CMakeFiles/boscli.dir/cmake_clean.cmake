file(REMOVE_RECURSE
  "CMakeFiles/boscli.dir/boscli.cc.o"
  "CMakeFiles/boscli.dir/boscli.cc.o.d"
  "boscli"
  "boscli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boscli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
