# Empty compiler generated dependencies file for fig13_general_codecs.
# This may be replaced when dependencies are built.
