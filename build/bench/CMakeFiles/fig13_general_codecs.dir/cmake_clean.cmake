file(REMOVE_RECURSE
  "CMakeFiles/fig13_general_codecs.dir/fig13_general_codecs.cpp.o"
  "CMakeFiles/fig13_general_codecs.dir/fig13_general_codecs.cpp.o.d"
  "fig13_general_codecs"
  "fig13_general_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_general_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
