# Empty dependencies file for fig12_lower_outlier_ablation.
# This may be replaced when dependencies are built.
