file(REMOVE_RECURSE
  "CMakeFiles/fig12_lower_outlier_ablation.dir/fig12_lower_outlier_ablation.cpp.o"
  "CMakeFiles/fig12_lower_outlier_ablation.dir/fig12_lower_outlier_ablation.cpp.o.d"
  "fig12_lower_outlier_ablation"
  "fig12_lower_outlier_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lower_outlier_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
