# Empty compiler generated dependencies file for fig10c_time.
# This may be replaced when dependencies are built.
