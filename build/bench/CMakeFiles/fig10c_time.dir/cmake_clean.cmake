file(REMOVE_RECURSE
  "CMakeFiles/fig10c_time.dir/fig10c_time.cpp.o"
  "CMakeFiles/fig10c_time.dir/fig10c_time.cpp.o.d"
  "fig10c_time"
  "fig10c_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
