
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10c_time.cpp" "bench/CMakeFiles/fig10c_time.dir/fig10c_time.cpp.o" "gcc" "bench/CMakeFiles/fig10c_time.dir/fig10c_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/bos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/codecs/CMakeFiles/bos_codecs.dir/DependInfo.cmake"
  "/root/repo/build/src/floatcodec/CMakeFiles/bos_float.dir/DependInfo.cmake"
  "/root/repo/build/src/pfor/CMakeFiles/bos_pfor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitpack/CMakeFiles/bos_bitpack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
