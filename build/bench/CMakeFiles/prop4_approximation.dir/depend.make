# Empty dependencies file for prop4_approximation.
# This may be replaced when dependencies are built.
