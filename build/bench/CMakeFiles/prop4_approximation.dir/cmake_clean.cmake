file(REMOVE_RECURSE
  "CMakeFiles/prop4_approximation.dir/prop4_approximation.cpp.o"
  "CMakeFiles/prop4_approximation.dir/prop4_approximation.cpp.o.d"
  "prop4_approximation"
  "prop4_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop4_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
