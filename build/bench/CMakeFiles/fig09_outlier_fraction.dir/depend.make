# Empty dependencies file for fig09_outlier_fraction.
# This may be replaced when dependencies are built.
