file(REMOVE_RECURSE
  "CMakeFiles/fig09_outlier_fraction.dir/fig09_outlier_fraction.cpp.o"
  "CMakeFiles/fig09_outlier_fraction.dir/fig09_outlier_fraction.cpp.o.d"
  "fig09_outlier_fraction"
  "fig09_outlier_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_outlier_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
