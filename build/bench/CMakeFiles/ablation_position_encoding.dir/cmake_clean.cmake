file(REMOVE_RECURSE
  "CMakeFiles/ablation_position_encoding.dir/ablation_position_encoding.cpp.o"
  "CMakeFiles/ablation_position_encoding.dir/ablation_position_encoding.cpp.o.d"
  "ablation_position_encoding"
  "ablation_position_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_position_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
