# Empty compiler generated dependencies file for ablation_position_encoding.
# This may be replaced when dependencies are built.
