# Empty compiler generated dependencies file for fig15_block_size.
# This may be replaced when dependencies are built.
