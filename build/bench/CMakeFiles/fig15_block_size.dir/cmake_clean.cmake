file(REMOVE_RECURSE
  "CMakeFiles/fig15_block_size.dir/fig15_block_size.cpp.o"
  "CMakeFiles/fig15_block_size.dir/fig15_block_size.cpp.o.d"
  "fig15_block_size"
  "fig15_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
