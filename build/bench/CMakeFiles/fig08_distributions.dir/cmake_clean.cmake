file(REMOVE_RECURSE
  "CMakeFiles/fig08_distributions.dir/fig08_distributions.cpp.o"
  "CMakeFiles/fig08_distributions.dir/fig08_distributions.cpp.o.d"
  "fig08_distributions"
  "fig08_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
