# Empty compiler generated dependencies file for fig08_distributions.
# This may be replaced when dependencies are built.
