# Empty dependencies file for fig11_storage_query.
# This may be replaced when dependencies are built.
