file(REMOVE_RECURSE
  "CMakeFiles/fig11_storage_query.dir/fig11_storage_query.cpp.o"
  "CMakeFiles/fig11_storage_query.dir/fig11_storage_query.cpp.o.d"
  "fig11_storage_query"
  "fig11_storage_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_storage_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
