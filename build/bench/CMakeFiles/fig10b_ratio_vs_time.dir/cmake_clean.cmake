file(REMOVE_RECURSE
  "CMakeFiles/fig10b_ratio_vs_time.dir/fig10b_ratio_vs_time.cpp.o"
  "CMakeFiles/fig10b_ratio_vs_time.dir/fig10b_ratio_vs_time.cpp.o.d"
  "fig10b_ratio_vs_time"
  "fig10b_ratio_vs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_ratio_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
