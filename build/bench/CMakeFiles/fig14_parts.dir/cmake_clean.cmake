file(REMOVE_RECURSE
  "CMakeFiles/fig14_parts.dir/fig14_parts.cpp.o"
  "CMakeFiles/fig14_parts.dir/fig14_parts.cpp.o.d"
  "fig14_parts"
  "fig14_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
