# Empty compiler generated dependencies file for fig14_parts.
# This may be replaced when dependencies are built.
