# Empty dependencies file for fig10a_compression_ratio.
# This may be replaced when dependencies are built.
