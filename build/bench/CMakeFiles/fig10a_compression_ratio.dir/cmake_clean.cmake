file(REMOVE_RECURSE
  "CMakeFiles/fig10a_compression_ratio.dir/fig10a_compression_ratio.cpp.o"
  "CMakeFiles/fig10a_compression_ratio.dir/fig10a_compression_ratio.cpp.o.d"
  "fig10a_compression_ratio"
  "fig10a_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
