file(REMOVE_RECURSE
  "CMakeFiles/position_encoding_test.dir/position_encoding_test.cc.o"
  "CMakeFiles/position_encoding_test.dir/position_encoding_test.cc.o.d"
  "position_encoding_test"
  "position_encoding_test.pdb"
  "position_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/position_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
