# Empty dependencies file for position_encoding_test.
# This may be replaced when dependencies are built.
