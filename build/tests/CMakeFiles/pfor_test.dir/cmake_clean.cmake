file(REMOVE_RECURSE
  "CMakeFiles/pfor_test.dir/pfor_test.cc.o"
  "CMakeFiles/pfor_test.dir/pfor_test.cc.o.d"
  "pfor_test"
  "pfor_test.pdb"
  "pfor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
