# Empty dependencies file for pfor_test.
# This may be replaced when dependencies are built.
