file(REMOVE_RECURSE
  "CMakeFiles/extra_codecs_test.dir/extra_codecs_test.cc.o"
  "CMakeFiles/extra_codecs_test.dir/extra_codecs_test.cc.o.d"
  "extra_codecs_test"
  "extra_codecs_test.pdb"
  "extra_codecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_codecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
