# Empty dependencies file for extra_codecs_test.
# This may be replaced when dependencies are built.
