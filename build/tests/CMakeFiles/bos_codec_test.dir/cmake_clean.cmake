file(REMOVE_RECURSE
  "CMakeFiles/bos_codec_test.dir/bos_codec_test.cc.o"
  "CMakeFiles/bos_codec_test.dir/bos_codec_test.cc.o.d"
  "bos_codec_test"
  "bos_codec_test.pdb"
  "bos_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
