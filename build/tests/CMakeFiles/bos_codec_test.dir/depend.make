# Empty dependencies file for bos_codec_test.
# This may be replaced when dependencies are built.
