file(REMOVE_RECURSE
  "CMakeFiles/multi_part_test.dir/multi_part_test.cc.o"
  "CMakeFiles/multi_part_test.dir/multi_part_test.cc.o.d"
  "multi_part_test"
  "multi_part_test.pdb"
  "multi_part_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_part_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
