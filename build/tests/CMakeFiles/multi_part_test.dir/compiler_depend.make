# Empty compiler generated dependencies file for multi_part_test.
# This may be replaced when dependencies are built.
