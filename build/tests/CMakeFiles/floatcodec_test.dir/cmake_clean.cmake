file(REMOVE_RECURSE
  "CMakeFiles/floatcodec_test.dir/floatcodec_test.cc.o"
  "CMakeFiles/floatcodec_test.dir/floatcodec_test.cc.o.d"
  "floatcodec_test"
  "floatcodec_test.pdb"
  "floatcodec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floatcodec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
