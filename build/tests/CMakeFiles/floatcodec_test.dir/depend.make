# Empty dependencies file for floatcodec_test.
# This may be replaced when dependencies are built.
