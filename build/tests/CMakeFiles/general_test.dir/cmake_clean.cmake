file(REMOVE_RECURSE
  "CMakeFiles/general_test.dir/general_test.cc.o"
  "CMakeFiles/general_test.dir/general_test.cc.o.d"
  "general_test"
  "general_test.pdb"
  "general_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
