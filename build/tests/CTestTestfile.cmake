# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bitpack_test[1]_include.cmake")
include("/root/repo/build/tests/separation_test[1]_include.cmake")
include("/root/repo/build/tests/bos_codec_test[1]_include.cmake")
include("/root/repo/build/tests/multi_part_test[1]_include.cmake")
include("/root/repo/build/tests/pfor_test[1]_include.cmake")
include("/root/repo/build/tests/codecs_test[1]_include.cmake")
include("/root/repo/build/tests/floatcodec_test[1]_include.cmake")
include("/root/repo/build/tests/general_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/position_encoding_test[1]_include.cmake")
include("/root/repo/build/tests/timeseries_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/format_golden_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/extra_codecs_test[1]_include.cmake")
include("/root/repo/build/tests/store_model_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
