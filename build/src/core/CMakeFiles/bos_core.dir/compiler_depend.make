# Empty compiler generated dependencies file for bos_core.
# This may be replaced when dependencies are built.
