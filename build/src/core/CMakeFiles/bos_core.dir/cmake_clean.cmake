file(REMOVE_RECURSE
  "CMakeFiles/bos_core.dir/block_io.cc.o"
  "CMakeFiles/bos_core.dir/block_io.cc.o.d"
  "CMakeFiles/bos_core.dir/bos_codec.cc.o"
  "CMakeFiles/bos_core.dir/bos_codec.cc.o.d"
  "CMakeFiles/bos_core.dir/cost.cc.o"
  "CMakeFiles/bos_core.dir/cost.cc.o.d"
  "CMakeFiles/bos_core.dir/multi_part.cc.o"
  "CMakeFiles/bos_core.dir/multi_part.cc.o.d"
  "CMakeFiles/bos_core.dir/separation.cc.o"
  "CMakeFiles/bos_core.dir/separation.cc.o.d"
  "libbos_core.a"
  "libbos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
