file(REMOVE_RECURSE
  "libbos_core.a"
)
