
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_io.cc" "src/core/CMakeFiles/bos_core.dir/block_io.cc.o" "gcc" "src/core/CMakeFiles/bos_core.dir/block_io.cc.o.d"
  "/root/repo/src/core/bos_codec.cc" "src/core/CMakeFiles/bos_core.dir/bos_codec.cc.o" "gcc" "src/core/CMakeFiles/bos_core.dir/bos_codec.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/bos_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/bos_core.dir/cost.cc.o.d"
  "/root/repo/src/core/multi_part.cc" "src/core/CMakeFiles/bos_core.dir/multi_part.cc.o" "gcc" "src/core/CMakeFiles/bos_core.dir/multi_part.cc.o.d"
  "/root/repo/src/core/separation.cc" "src/core/CMakeFiles/bos_core.dir/separation.cc.o" "gcc" "src/core/CMakeFiles/bos_core.dir/separation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitpack/CMakeFiles/bos_bitpack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
