file(REMOVE_RECURSE
  "CMakeFiles/bos_pfor.dir/pfor.cc.o"
  "CMakeFiles/bos_pfor.dir/pfor.cc.o.d"
  "CMakeFiles/bos_pfor.dir/pfor_common.cc.o"
  "CMakeFiles/bos_pfor.dir/pfor_common.cc.o.d"
  "libbos_pfor.a"
  "libbos_pfor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_pfor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
