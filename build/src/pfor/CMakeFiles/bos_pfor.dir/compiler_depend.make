# Empty compiler generated dependencies file for bos_pfor.
# This may be replaced when dependencies are built.
