file(REMOVE_RECURSE
  "libbos_pfor.a"
)
