file(REMOVE_RECURSE
  "CMakeFiles/bos_storage.dir/store.cc.o"
  "CMakeFiles/bos_storage.dir/store.cc.o.d"
  "CMakeFiles/bos_storage.dir/tsfile.cc.o"
  "CMakeFiles/bos_storage.dir/tsfile.cc.o.d"
  "CMakeFiles/bos_storage.dir/wal.cc.o"
  "CMakeFiles/bos_storage.dir/wal.cc.o.d"
  "libbos_storage.a"
  "libbos_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
