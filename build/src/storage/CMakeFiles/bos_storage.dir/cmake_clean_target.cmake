file(REMOVE_RECURSE
  "libbos_storage.a"
)
