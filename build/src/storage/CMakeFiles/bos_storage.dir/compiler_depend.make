# Empty compiler generated dependencies file for bos_storage.
# This may be replaced when dependencies are built.
