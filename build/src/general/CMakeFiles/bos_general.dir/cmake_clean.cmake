file(REMOVE_RECURSE
  "CMakeFiles/bos_general.dir/fft.cc.o"
  "CMakeFiles/bos_general.dir/fft.cc.o.d"
  "CMakeFiles/bos_general.dir/lz4lite.cc.o"
  "CMakeFiles/bos_general.dir/lz4lite.cc.o.d"
  "CMakeFiles/bos_general.dir/lzma_lite.cc.o"
  "CMakeFiles/bos_general.dir/lzma_lite.cc.o.d"
  "CMakeFiles/bos_general.dir/transform_codec.cc.o"
  "CMakeFiles/bos_general.dir/transform_codec.cc.o.d"
  "libbos_general.a"
  "libbos_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
