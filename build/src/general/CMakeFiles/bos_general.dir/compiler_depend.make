# Empty compiler generated dependencies file for bos_general.
# This may be replaced when dependencies are built.
