file(REMOVE_RECURSE
  "libbos_general.a"
)
