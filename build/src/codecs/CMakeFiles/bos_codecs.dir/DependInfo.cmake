
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codecs/advisor.cc" "src/codecs/CMakeFiles/bos_codecs.dir/advisor.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/advisor.cc.o.d"
  "/root/repo/src/codecs/dictionary.cc" "src/codecs/CMakeFiles/bos_codecs.dir/dictionary.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/dictionary.cc.o.d"
  "/root/repo/src/codecs/dod.cc" "src/codecs/CMakeFiles/bos_codecs.dir/dod.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/dod.cc.o.d"
  "/root/repo/src/codecs/registry.cc" "src/codecs/CMakeFiles/bos_codecs.dir/registry.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/registry.cc.o.d"
  "/root/repo/src/codecs/rle.cc" "src/codecs/CMakeFiles/bos_codecs.dir/rle.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/rle.cc.o.d"
  "/root/repo/src/codecs/sprintz.cc" "src/codecs/CMakeFiles/bos_codecs.dir/sprintz.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/sprintz.cc.o.d"
  "/root/repo/src/codecs/streaming.cc" "src/codecs/CMakeFiles/bos_codecs.dir/streaming.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/streaming.cc.o.d"
  "/root/repo/src/codecs/timeseries.cc" "src/codecs/CMakeFiles/bos_codecs.dir/timeseries.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/timeseries.cc.o.d"
  "/root/repo/src/codecs/ts2diff.cc" "src/codecs/CMakeFiles/bos_codecs.dir/ts2diff.cc.o" "gcc" "src/codecs/CMakeFiles/bos_codecs.dir/ts2diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pfor/CMakeFiles/bos_pfor.dir/DependInfo.cmake"
  "/root/repo/build/src/bitpack/CMakeFiles/bos_bitpack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
