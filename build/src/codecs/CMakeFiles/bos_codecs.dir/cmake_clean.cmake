file(REMOVE_RECURSE
  "CMakeFiles/bos_codecs.dir/advisor.cc.o"
  "CMakeFiles/bos_codecs.dir/advisor.cc.o.d"
  "CMakeFiles/bos_codecs.dir/dictionary.cc.o"
  "CMakeFiles/bos_codecs.dir/dictionary.cc.o.d"
  "CMakeFiles/bos_codecs.dir/dod.cc.o"
  "CMakeFiles/bos_codecs.dir/dod.cc.o.d"
  "CMakeFiles/bos_codecs.dir/registry.cc.o"
  "CMakeFiles/bos_codecs.dir/registry.cc.o.d"
  "CMakeFiles/bos_codecs.dir/rle.cc.o"
  "CMakeFiles/bos_codecs.dir/rle.cc.o.d"
  "CMakeFiles/bos_codecs.dir/sprintz.cc.o"
  "CMakeFiles/bos_codecs.dir/sprintz.cc.o.d"
  "CMakeFiles/bos_codecs.dir/streaming.cc.o"
  "CMakeFiles/bos_codecs.dir/streaming.cc.o.d"
  "CMakeFiles/bos_codecs.dir/timeseries.cc.o"
  "CMakeFiles/bos_codecs.dir/timeseries.cc.o.d"
  "CMakeFiles/bos_codecs.dir/ts2diff.cc.o"
  "CMakeFiles/bos_codecs.dir/ts2diff.cc.o.d"
  "libbos_codecs.a"
  "libbos_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
