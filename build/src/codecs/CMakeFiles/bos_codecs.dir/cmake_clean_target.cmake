file(REMOVE_RECURSE
  "libbos_codecs.a"
)
