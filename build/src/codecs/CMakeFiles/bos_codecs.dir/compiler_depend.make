# Empty compiler generated dependencies file for bos_codecs.
# This may be replaced when dependencies are built.
