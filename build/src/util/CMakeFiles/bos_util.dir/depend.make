# Empty dependencies file for bos_util.
# This may be replaced when dependencies are built.
