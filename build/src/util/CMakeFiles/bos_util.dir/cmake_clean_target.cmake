file(REMOVE_RECURSE
  "libbos_util.a"
)
