file(REMOVE_RECURSE
  "CMakeFiles/bos_util.dir/crc32.cc.o"
  "CMakeFiles/bos_util.dir/crc32.cc.o.d"
  "CMakeFiles/bos_util.dir/random.cc.o"
  "CMakeFiles/bos_util.dir/random.cc.o.d"
  "CMakeFiles/bos_util.dir/status.cc.o"
  "CMakeFiles/bos_util.dir/status.cc.o.d"
  "libbos_util.a"
  "libbos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
