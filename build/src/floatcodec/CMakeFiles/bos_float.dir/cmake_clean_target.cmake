file(REMOVE_RECURSE
  "libbos_float.a"
)
