file(REMOVE_RECURSE
  "CMakeFiles/bos_float.dir/buff.cc.o"
  "CMakeFiles/bos_float.dir/buff.cc.o.d"
  "CMakeFiles/bos_float.dir/chimp.cc.o"
  "CMakeFiles/bos_float.dir/chimp.cc.o.d"
  "CMakeFiles/bos_float.dir/chimp128.cc.o"
  "CMakeFiles/bos_float.dir/chimp128.cc.o.d"
  "CMakeFiles/bos_float.dir/elf.cc.o"
  "CMakeFiles/bos_float.dir/elf.cc.o.d"
  "CMakeFiles/bos_float.dir/gorilla.cc.o"
  "CMakeFiles/bos_float.dir/gorilla.cc.o.d"
  "CMakeFiles/bos_float.dir/registry.cc.o"
  "CMakeFiles/bos_float.dir/registry.cc.o.d"
  "CMakeFiles/bos_float.dir/scaled.cc.o"
  "CMakeFiles/bos_float.dir/scaled.cc.o.d"
  "libbos_float.a"
  "libbos_float.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
