
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floatcodec/buff.cc" "src/floatcodec/CMakeFiles/bos_float.dir/buff.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/buff.cc.o.d"
  "/root/repo/src/floatcodec/chimp.cc" "src/floatcodec/CMakeFiles/bos_float.dir/chimp.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/chimp.cc.o.d"
  "/root/repo/src/floatcodec/chimp128.cc" "src/floatcodec/CMakeFiles/bos_float.dir/chimp128.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/chimp128.cc.o.d"
  "/root/repo/src/floatcodec/elf.cc" "src/floatcodec/CMakeFiles/bos_float.dir/elf.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/elf.cc.o.d"
  "/root/repo/src/floatcodec/gorilla.cc" "src/floatcodec/CMakeFiles/bos_float.dir/gorilla.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/gorilla.cc.o.d"
  "/root/repo/src/floatcodec/registry.cc" "src/floatcodec/CMakeFiles/bos_float.dir/registry.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/registry.cc.o.d"
  "/root/repo/src/floatcodec/scaled.cc" "src/floatcodec/CMakeFiles/bos_float.dir/scaled.cc.o" "gcc" "src/floatcodec/CMakeFiles/bos_float.dir/scaled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codecs/CMakeFiles/bos_codecs.dir/DependInfo.cmake"
  "/root/repo/build/src/bitpack/CMakeFiles/bos_bitpack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pfor/CMakeFiles/bos_pfor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bos_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
