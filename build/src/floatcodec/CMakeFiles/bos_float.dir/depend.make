# Empty dependencies file for bos_float.
# This may be replaced when dependencies are built.
