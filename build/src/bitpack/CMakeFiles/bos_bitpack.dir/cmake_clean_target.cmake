file(REMOVE_RECURSE
  "libbos_bitpack.a"
)
