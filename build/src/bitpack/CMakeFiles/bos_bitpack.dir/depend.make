# Empty dependencies file for bos_bitpack.
# This may be replaced when dependencies are built.
