file(REMOVE_RECURSE
  "CMakeFiles/bos_bitpack.dir/bitpacking.cc.o"
  "CMakeFiles/bos_bitpack.dir/bitpacking.cc.o.d"
  "CMakeFiles/bos_bitpack.dir/simple8b.cc.o"
  "CMakeFiles/bos_bitpack.dir/simple8b.cc.o.d"
  "CMakeFiles/bos_bitpack.dir/varint.cc.o"
  "CMakeFiles/bos_bitpack.dir/varint.cc.o.d"
  "libbos_bitpack.a"
  "libbos_bitpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_bitpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
