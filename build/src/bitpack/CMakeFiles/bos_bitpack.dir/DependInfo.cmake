
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitpack/bitpacking.cc" "src/bitpack/CMakeFiles/bos_bitpack.dir/bitpacking.cc.o" "gcc" "src/bitpack/CMakeFiles/bos_bitpack.dir/bitpacking.cc.o.d"
  "/root/repo/src/bitpack/simple8b.cc" "src/bitpack/CMakeFiles/bos_bitpack.dir/simple8b.cc.o" "gcc" "src/bitpack/CMakeFiles/bos_bitpack.dir/simple8b.cc.o.d"
  "/root/repo/src/bitpack/varint.cc" "src/bitpack/CMakeFiles/bos_bitpack.dir/varint.cc.o" "gcc" "src/bitpack/CMakeFiles/bos_bitpack.dir/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
