file(REMOVE_RECURSE
  "libbos_data.a"
)
