# Empty compiler generated dependencies file for bos_data.
# This may be replaced when dependencies are built.
