file(REMOVE_RECURSE
  "CMakeFiles/bos_data.dir/dataset.cc.o"
  "CMakeFiles/bos_data.dir/dataset.cc.o.d"
  "libbos_data.a"
  "libbos_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bos_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
