# Empty compiler generated dependencies file for codec_explorer.
# This may be replaced when dependencies are built.
