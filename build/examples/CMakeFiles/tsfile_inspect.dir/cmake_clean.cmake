file(REMOVE_RECURSE
  "CMakeFiles/tsfile_inspect.dir/tsfile_inspect.cpp.o"
  "CMakeFiles/tsfile_inspect.dir/tsfile_inspect.cpp.o.d"
  "tsfile_inspect"
  "tsfile_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsfile_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
