# Empty compiler generated dependencies file for tsfile_inspect.
# This may be replaced when dependencies are built.
