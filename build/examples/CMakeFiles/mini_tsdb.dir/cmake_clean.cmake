file(REMOVE_RECURSE
  "CMakeFiles/mini_tsdb.dir/mini_tsdb.cpp.o"
  "CMakeFiles/mini_tsdb.dir/mini_tsdb.cpp.o.d"
  "mini_tsdb"
  "mini_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
