# Empty dependencies file for mini_tsdb.
# This may be replaced when dependencies are built.
