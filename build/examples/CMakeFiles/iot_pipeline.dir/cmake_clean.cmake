file(REMOVE_RECURSE
  "CMakeFiles/iot_pipeline.dir/iot_pipeline.cpp.o"
  "CMakeFiles/iot_pipeline.dir/iot_pipeline.cpp.o.d"
  "iot_pipeline"
  "iot_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
