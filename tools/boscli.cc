// boscli — command-line front end for the BOS library.
//
//   boscli ops                               list codecs and operators
//   boscli gen <abbr> <n> <file>             write a dataset as raw int64 LE
//   boscli compress <spec> <in> <out>        compress raw int64 LE file
//   boscli decompress <in> <out>             invert `compress`
//   boscli inspect <file.tsfile>             dump a TsFile-lite footer
//   boscli bench <abbr> [spec ...]           quick ratio table for a profile
//
// Global flags (any command): --stats prints the telemetry snapshot after
// the command runs; --stats-json prints it as JSON instead; --threads N
// runs compress/decompress chunk-parallel on an N-worker pool (N = 0
// sizes the pool to the hardware).
//
// Compressed files are framed as: "BOSC" magic | varint spec length | spec
// string | codec stream — so `decompress` needs no extra arguments. With
// --threads the magic is "BOSP" and the codec stream is the chunk-
// directory frame of exec::ParallelEncodeSeries, whose bytes are
// identical for every thread count; either kind decompresses regardless
// of the current --threads flag.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bitpack/varint.h"
#include "codecs/advisor.h"
#include "codecs/registry.h"
#include "data/dataset.h"
#include "exec/parallel_codec.h"
#include "exec/thread_pool.h"
#include "storage/tsfile.h"
#include "telemetry/telemetry.h"
#include "util/buffer.h"

namespace {

using namespace bos;

constexpr char kMagic[4] = {'B', 'O', 'S', 'C'};
// Chunk-parallel variant of the frame (exec::ParallelEncodeSeries).
constexpr char kMagicParallel[4] = {'B', 'O', 'S', 'P'};

// --threads: <0 = flag absent (serial legacy frame), 0 = hardware
// concurrency, >=1 = that many workers.
int g_threads = -1;

exec::ThreadPool& CliPool() {
  static std::unique_ptr<exec::ThreadPool> pool;
  if (pool == nullptr) {
    pool = std::make_unique<exec::ThreadPool>(
        g_threads <= 0 ? 0 : static_cast<size_t>(g_threads));
  }
  return *pool;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "boscli: %s\n", message.c_str());
  return 1;
}

// Failure path for library errors: prints what was being attempted plus the
// complete Status ("Code: message"), never just a summary of it.
int Fail(const std::string& context, const Status& status) {
  return Fail(context + ": " + status.ToString());
}

bool ReadFile(const std::string& path, Bytes* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const bool ok = std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

bool WriteFile(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<int64_t> BytesToValues(const Bytes& raw) {
  std::vector<int64_t> values(raw.size() / 8);
  std::memcpy(values.data(), raw.data(), values.size() * 8);
  return values;
}

int CmdOps() {
  std::printf("transforms:");
  for (const auto& t : codecs::TransformNames()) std::printf(" %s", t.c_str());
  std::printf("\noperators: ");
  for (const auto& o : codecs::OperatorNames()) std::printf(" %s", o.c_str());
  std::printf("\ndatasets:  ");
  for (const auto& d : data::AllDatasets()) std::printf(" %s", d.abbr.c_str());
  std::printf("\nspec form:  TRANSFORM+OPERATOR, e.g. TS2DIFF+BOS-B\n");
  return 0;
}

int CmdGen(const std::string& abbr, const std::string& count,
           const std::string& path) {
  auto info = data::FindDataset(abbr);
  if (!info.ok()) return Fail("gen " + abbr, info.status());
  const size_t n = std::strtoull(count.c_str(), nullptr, 10);
  const auto values = data::GenerateInteger(*info, n);
  Bytes raw(values.size() * 8);
  std::memcpy(raw.data(), values.data(), raw.size());
  if (!WriteFile(path, raw)) return Fail("cannot write " + path);
  std::printf("wrote %zu values (%zu bytes) of %s to %s\n", values.size(),
              raw.size(), info->name.c_str(), path.c_str());
  return 0;
}

int CmdCompress(const std::string& spec, const std::string& in,
                const std::string& out_path) {
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("compress with " + spec, codec.status());
  Bytes raw;
  if (!ReadFile(in, &raw)) return Fail("cannot read " + in);
  if (raw.size() % 8 != 0) return Fail("input is not a whole number of int64s");
  const auto values = BytesToValues(raw);

  const bool parallel = g_threads >= 0;
  Bytes out;
  for (char c : parallel ? kMagicParallel : kMagic) {
    out.push_back(static_cast<uint8_t>(c));
  }
  bitpack::PutVarint(&out, spec.size());
  for (char c : spec) out.push_back(static_cast<uint8_t>(c));
  const auto start = std::chrono::steady_clock::now();
  Status st;
  if (parallel) {
    exec::ParallelCodecOptions popts;
    popts.pool = &CliPool();
    st = exec::ParallelEncodeSeries(**codec, values, &out, popts);
  } else {
    st = (*codec)->Compress(values, &out);
  }
  if (!st.ok()) return Fail("compress " + in + " with " + spec, st);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!WriteFile(out_path, out)) return Fail("cannot write " + out_path);
  std::printf("%s: %zu -> %zu bytes (ratio %.2f) in %.1f ms [%s]\n",
              in.c_str(), raw.size(), out.size(),
              static_cast<double>(raw.size()) / static_cast<double>(out.size()),
              seconds * 1e3, spec.c_str());
  return 0;
}

int CmdDecompress(const std::string& in, const std::string& out_path) {
  Bytes data;
  if (!ReadFile(in, &data)) return Fail("cannot read " + in);
  const bool parallel =
      data.size() >= 4 && std::memcmp(data.data(), kMagicParallel, 4) == 0;
  if (data.size() < 5 ||
      (!parallel && std::memcmp(data.data(), kMagic, 4) != 0)) {
    return Fail("not a boscli-compressed file");
  }
  size_t offset = 4;
  uint64_t spec_len;
  if (!bitpack::GetVarint(data, &offset, &spec_len).ok() ||
      offset + spec_len > data.size()) {
    return Fail("corrupt spec header");
  }
  const std::string spec(reinterpret_cast<const char*>(data.data() + offset),
                         spec_len);
  offset += spec_len;
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("decompress " + in + " with " + spec,
                               codec.status());

  std::vector<int64_t> values;
  Status st;
  if (parallel) {
    exec::ParallelCodecOptions popts;
    popts.pool = &CliPool();
    st = exec::ParallelDecodeSeries(**codec, BytesView(data).subspan(offset),
                                    &values, popts);
  } else {
    st = (*codec)->Decompress(BytesView(data).subspan(offset), &values);
  }
  if (!st.ok()) return Fail("decompress " + in + " with " + spec, st);
  Bytes raw(values.size() * 8);
  std::memcpy(raw.data(), values.data(), raw.size());
  if (!WriteFile(out_path, raw)) return Fail("cannot write " + out_path);
  std::printf("%s: %zu values restored [%s]\n", out_path.c_str(), values.size(),
              spec.c_str());
  return 0;
}

int CmdAdvise(const std::string& in) {
  Bytes raw;
  if (!ReadFile(in, &raw)) return Fail("cannot read " + in);
  if (raw.size() % 8 != 0) return Fail("input is not a whole number of int64s");
  const auto values = BytesToValues(raw);
  auto rec = codecs::AdviseCodec(values);
  if (!rec.ok()) return Fail("advise " + in, rec.status());
  std::printf("recommended: %s (estimated ratio %.2f)\n", rec->spec.c_str(),
              rec->estimated_ratio);
  for (const auto& score : rec->ranking) {
    std::printf("  %-22s %6.2f\n", score.spec.c_str(), score.ratio);
  }
  return 0;
}

int CmdInspect(const std::string& path) {
  storage::TsFileReader reader;
  const Status st = reader.Open(path);
  if (!st.ok()) return Fail("inspect " + path, st);
  std::printf("%s: %llu bytes, %zu series\n", path.c_str(),
              static_cast<unsigned long long>(reader.file_size()),
              reader.series().size());
  for (const auto& s : reader.series()) {
    std::printf("  %-20s %-28s %s %8llu values, %zu pages\n", s.name.c_str(),
                s.codec_spec.c_str(), s.timed ? "timed" : "plain",
                static_cast<unsigned long long>(s.num_values), s.pages.size());
    for (size_t p = 0; p < s.pages.size() && p < 4; ++p) {
      const auto& page = s.pages[p];
      std::printf("    page %zu: offset %llu, %llu bytes, %llu values\n", p,
                  static_cast<unsigned long long>(page.offset),
                  static_cast<unsigned long long>(page.size),
                  static_cast<unsigned long long>(page.count));
    }
    if (s.pages.size() > 4) std::printf("    ... %zu more\n", s.pages.size() - 4);
  }
  return 0;
}

int CmdBench(const std::string& abbr, const std::vector<std::string>& specs) {
  auto info = data::FindDataset(abbr);
  if (!info.ok()) return Fail("bench " + abbr, info.status());
  const auto values = data::GenerateInteger(*info, info->default_size);
  std::vector<std::string> todo = specs;
  if (todo.empty()) {
    todo = {"TS2DIFF+BP", "TS2DIFF+FASTPFOR", "TS2DIFF+BOS-B", "TS2DIFF+BOS-M",
            "RLE+BOS-B", "SPRINTZ+BOS-B"};
  }
  std::printf("%s (%zu values)\n%-22s %8s %14s\n", info->name.c_str(),
              values.size(), "spec", "ratio", "compress(ms)");
  for (const auto& spec : todo) {
    auto codec = codecs::MakeSeriesCodec(spec);
    if (!codec.ok()) return Fail("bench spec " + spec, codec.status());
    Bytes out;
    const auto start = std::chrono::steady_clock::now();
    const Status st = (*codec)->Compress(values, &out);
    if (!st.ok()) return Fail("bench " + abbr + " with " + spec, st);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-22s %8.2f %14.1f\n", spec.c_str(),
                static_cast<double>(values.size() * 8) /
                    static_cast<double>(out.size()),
                seconds * 1e3);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: boscli [--stats|--stats-json] <command> [args]\n"
               "  ops\n"
               "  gen <abbr> <n> <file>\n"
               "  compress <spec> <in> <out>\n"
               "  decompress <in> <out>\n"
               "  advise <in>\n"
               "  inspect <file.tsfile>\n"
               "  bench <abbr> [spec ...]\n"
               "flags:\n"
               "  --stats       print the telemetry snapshot after the command\n"
               "  --stats-json  same, as a JSON object\n"
               "  --threads N   chunk-parallel compress/decompress on N\n"
               "                workers (0 = all cores); output bytes do not\n"
               "                depend on N\n");
  return 2;
}

int RunCommand(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  if (cmd == "ops") return CmdOps();
  if (cmd == "gen" && args.size() == 4) return CmdGen(args[1], args[2], args[3]);
  if (cmd == "compress" && args.size() == 4) {
    return CmdCompress(args[1], args[2], args[3]);
  }
  if (cmd == "decompress" && args.size() == 3) {
    return CmdDecompress(args[1], args[2]);
  }
  if (cmd == "advise" && args.size() == 2) return CmdAdvise(args[1]);
  if (cmd == "inspect" && args.size() == 2) return CmdInspect(args[1]);
  if (cmd == "bench" && args.size() >= 2) {
    return CmdBench(args[1], {args.begin() + 2, args.end()});
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool stats_text = false;
  bool stats_json = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--stats") {
      stats_text = true;
      it = args.erase(it);
    } else if (*it == "--stats-json") {
      stats_json = true;
      it = args.erase(it);
    } else if (*it == "--threads") {
      if (it + 1 == args.end()) return Usage();
      g_threads = std::atoi((it + 1)->c_str());
      if (g_threads < 0) return Usage();
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  const int rc = RunCommand(args);
  // The snapshot is printed even when the command failed: the counters up to
  // the failure point are exactly what you want when debugging it.
  if (stats_json) {
    std::printf("%s\n", telemetry::Registry::Global().SnapshotJson().c_str());
  } else if (stats_text) {
    std::fputs(telemetry::Registry::Global().SnapshotText().c_str(), stdout);
  }
  return rc;
}
