// boscli — command-line front end for the BOS library.
//
//   boscli ops                               list codecs and operators
//   boscli gen <abbr> <n> <file>             write a dataset as raw int64 LE
//   boscli compress <spec> <in> <out>        compress raw int64 LE file
//   boscli decompress <in> <out>             invert `compress`
//   boscli inspect <file> [--json]           EXPLAIN a compressed file
//   boscli select <in> <positions>           decode only the given rows
//   boscli filter <in> <v_min> <v_max>       rows with value in [v_min,v_max]
//   boscli store <dir> [n]                   TsStore write/flush/query demo
//   boscli bench <abbr> [spec ...]           quick ratio table for a profile
//   boscli remote <host:port> <cmd> [...]    talk to a running bosd:
//     remote H:P append <series> <t0> <n>    append n points from t0
//     remote H:P query <series> <t0> <t1>    time-range query
//     remote H:P selected <series> <list>    point lookup ("0,5,100-200")
//     remote H:P stats                       stats snapshot JSON
//     remote H:P series                      list series
//     remote H:P flush                       flush every shard
//
// `select` takes a comma-separated position list with inclusive ranges
// ("0,5,100-200") and uses the selective decode path — with a "RAW"
// transform only the blocks holding selected rows are unpacked. `filter`
// pushes the value predicate into the stream; blocks compressed with a
// ".Z" operator (e.g. "RAW+BOS-B.Z") carry zone maps and are pruned
// without decoding.
//
// Global flags (any command): --stats prints the telemetry snapshot after
// the command runs; --stats-json prints it as JSON instead; --threads N
// runs compress/decompress chunk-parallel on an N-worker pool (N = 0
// sizes the pool to the hardware); --trace <out.json> records trace
// spans across the command (including pool workers) and writes a Chrome
// trace-event file loadable in Perfetto / chrome://tracing; --cache-mb N
// sets the `store` command's block-cache budget in MiB (0 disables it);
// --mmap opens store files through mmap for zero-copy page reads.
//
// `inspect` understands all three on-disk formats — "BOSC"/"BOSP"
// compressed files and "BOS1" TsFile-lite containers — and reports every
// page/block's operator, mode, and Figure-7 sub-stream breakdown without
// decoding any values.
//
// Compressed files are framed as: "BOSC" magic | varint spec length | spec
// string | codec stream — so `decompress` needs no extra arguments. With
// --threads the magic is "BOSP" and the codec stream is the chunk-
// directory frame of exec::ParallelEncodeSeries, whose bytes are
// identical for every thread count; either kind decompresses regardless
// of the current --threads flag.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bitpack/varint.h"
#include "codecs/advisor.h"
#include "net/client.h"
#include "codecs/inspect.h"
#include "codecs/registry.h"
#include "data/dataset.h"
#include "exec/parallel_codec.h"
#include "exec/thread_pool.h"
#include "select/selection.h"
#include "storage/store.h"
#include "storage/tsfile.h"
#include "storage/tsfile_inspect.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/buffer.h"

namespace {

using namespace bos;

constexpr char kMagic[4] = {'B', 'O', 'S', 'C'};
// Chunk-parallel variant of the frame (exec::ParallelEncodeSeries).
constexpr char kMagicParallel[4] = {'B', 'O', 'S', 'P'};

// --threads: <0 = flag absent (serial legacy frame), 0 = hardware
// concurrency, >=1 = that many workers.
int g_threads = -1;
// --cache-mb: <0 = flag absent (store default), otherwise the block
// cache budget in MiB (0 disables it).
int g_cache_mb = -1;
// --mmap: open store files through mmap (zero-copy page views).
bool g_mmap = false;

exec::ThreadPool& CliPool() {
  static std::unique_ptr<exec::ThreadPool> pool;
  if (pool == nullptr) {
    pool = std::make_unique<exec::ThreadPool>(
        g_threads <= 0 ? 0 : static_cast<size_t>(g_threads));
  }
  return *pool;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "boscli: %s\n", message.c_str());
  return 1;
}

// Failure path for library errors: prints what was being attempted plus the
// complete Status ("Code: message"), never just a summary of it.
int Fail(const std::string& context, const Status& status) {
  return Fail(context + ": " + status.ToString());
}

bool ReadFile(const std::string& path, Bytes* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const bool ok = std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

bool WriteFile(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<int64_t> BytesToValues(const Bytes& raw) {
  std::vector<int64_t> values(raw.size() / 8);
  std::memcpy(values.data(), raw.data(), values.size() * 8);
  return values;
}

int CmdOps() {
  std::printf("transforms:");
  for (const auto& t : codecs::TransformNames()) std::printf(" %s", t.c_str());
  std::printf("\noperators: ");
  for (const auto& o : codecs::OperatorNames()) std::printf(" %s", o.c_str());
  std::printf("\ndatasets:  ");
  for (const auto& d : data::AllDatasets()) std::printf(" %s", d.abbr.c_str());
  std::printf("\nspec form:  TRANSFORM+OPERATOR, e.g. TS2DIFF+BOS-B\n");
  return 0;
}

int CmdGen(const std::string& abbr, const std::string& count,
           const std::string& path) {
  auto info = data::FindDataset(abbr);
  if (!info.ok()) return Fail("gen " + abbr, info.status());
  const size_t n = std::strtoull(count.c_str(), nullptr, 10);
  const auto values = data::GenerateInteger(*info, n);
  Bytes raw(values.size() * 8);
  std::memcpy(raw.data(), values.data(), raw.size());
  if (!WriteFile(path, raw)) return Fail("cannot write " + path);
  std::printf("wrote %zu values (%zu bytes) of %s to %s\n", values.size(),
              raw.size(), info->name.c_str(), path.c_str());
  return 0;
}

int CmdCompress(const std::string& spec, const std::string& in,
                const std::string& out_path) {
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("compress with " + spec, codec.status());
  Bytes raw;
  if (!ReadFile(in, &raw)) return Fail("cannot read " + in);
  if (raw.size() % 8 != 0) return Fail("input is not a whole number of int64s");
  const auto values = BytesToValues(raw);

  const bool parallel = g_threads >= 0;
  Bytes out;
  for (char c : parallel ? kMagicParallel : kMagic) {
    out.push_back(static_cast<uint8_t>(c));
  }
  bitpack::PutVarint(&out, spec.size());
  for (char c : spec) out.push_back(static_cast<uint8_t>(c));
  const auto start = std::chrono::steady_clock::now();
  Status st;
  if (parallel) {
    exec::ParallelCodecOptions popts;
    popts.pool = &CliPool();
    st = exec::ParallelEncodeSeries(**codec, values, &out, popts);
  } else {
    st = (*codec)->Compress(values, &out);
  }
  if (!st.ok()) return Fail("compress " + in + " with " + spec, st);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!WriteFile(out_path, out)) return Fail("cannot write " + out_path);
  std::printf("%s: %zu -> %zu bytes (ratio %.2f) in %.1f ms [%s]\n",
              in.c_str(), raw.size(), out.size(),
              static_cast<double>(raw.size()) / static_cast<double>(out.size()),
              seconds * 1e3, spec.c_str());
  return 0;
}

int CmdDecompress(const std::string& in, const std::string& out_path) {
  Bytes data;
  if (!ReadFile(in, &data)) return Fail("cannot read " + in);
  const bool parallel =
      data.size() >= 4 && std::memcmp(data.data(), kMagicParallel, 4) == 0;
  if (data.size() < 5 ||
      (!parallel && std::memcmp(data.data(), kMagic, 4) != 0)) {
    return Fail("not a boscli-compressed file");
  }
  size_t offset = 4;
  uint64_t spec_len;
  if (!bitpack::GetVarint(data, &offset, &spec_len).ok() ||
      offset + spec_len > data.size()) {
    return Fail("corrupt spec header");
  }
  const std::string spec(reinterpret_cast<const char*>(data.data() + offset),
                         spec_len);
  offset += spec_len;
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("decompress " + in + " with " + spec,
                               codec.status());

  std::vector<int64_t> values;
  Status st;
  if (parallel) {
    exec::ParallelCodecOptions popts;
    popts.pool = &CliPool();
    st = exec::ParallelDecodeSeries(**codec, BytesView(data).subspan(offset),
                                    &values, popts);
  } else {
    st = (*codec)->Decompress(BytesView(data).subspan(offset), &values);
  }
  if (!st.ok()) return Fail("decompress " + in + " with " + spec, st);
  Bytes raw(values.size() * 8);
  std::memcpy(raw.data(), values.data(), raw.size());
  if (!WriteFile(out_path, raw)) return Fail("cannot write " + out_path);
  std::printf("%s: %zu values restored [%s]\n", out_path.c_str(), values.size(),
              spec.c_str());
  return 0;
}

int CmdAdvise(const std::string& in) {
  Bytes raw;
  if (!ReadFile(in, &raw)) return Fail("cannot read " + in);
  if (raw.size() % 8 != 0) return Fail("input is not a whole number of int64s");
  const auto values = BytesToValues(raw);
  auto rec = codecs::AdviseCodec(values);
  if (!rec.ok()) return Fail("advise " + in, rec.status());
  std::printf("recommended: %s (estimated ratio %.2f)\n", rec->spec.c_str(),
              rec->estimated_ratio);
  for (const auto& score : rec->ranking) {
    std::printf("  %-22s %6.2f\n", score.spec.c_str(), score.ratio);
  }
  return 0;
}

int CmdInspect(const std::string& path, bool json) {
  Bytes head;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Fail("cannot read " + path);
    head.resize(4);
    const size_t got = std::fread(head.data(), 1, head.size(), f);
    std::fclose(f);
    head.resize(got);
  }
  if (head.size() == 4 && std::memcmp(head.data(), "BOS1", 4) == 0) {
    auto report = storage::InspectTsFile(path);
    if (!report.ok()) return Fail("inspect " + path, report.status());
    const std::string rendered = json ? storage::RenderTsFileJson(*report)
                                      : storage::RenderTsFileText(*report);
    std::printf("%s%s", rendered.c_str(), json ? "\n" : "");
    return 0;
  }
  Bytes data;
  if (!ReadFile(path, &data)) return Fail("cannot read " + path);
  auto report = codecs::InspectContainer(data);
  if (!report.ok()) return Fail("inspect " + path, report.status());
  const std::string rendered = json ? codecs::RenderInspectJson(*report)
                                    : codecs::RenderInspectText(*report);
  std::printf("%s%s", rendered.c_str(), json ? "\n" : "");
  return 0;
}

// Parses the serial "BOSC" frame shared by decompress/select/filter.
// Returns 0 and fills the outputs on success; otherwise the error has
// already been reported and the exit code should be returned as-is.
int ParseCompressedFrame(const std::string& in, Bytes* data, std::string* spec,
                         size_t* offset) {
  if (!ReadFile(in, data)) return Fail("cannot read " + in);
  if (data->size() >= 4 &&
      std::memcmp(data->data(), kMagicParallel, 4) == 0) {
    return Fail("select/filter need a serial file (compress without --threads)");
  }
  if (data->size() < 5 || std::memcmp(data->data(), kMagic, 4) != 0) {
    return Fail("not a boscli-compressed file");
  }
  *offset = 4;
  uint64_t spec_len;
  if (!bitpack::GetVarint(*data, offset, &spec_len).ok() ||
      *offset + spec_len > data->size()) {
    return Fail("corrupt spec header");
  }
  spec->assign(reinterpret_cast<const char*>(data->data() + *offset), spec_len);
  *offset += spec_len;
  return 0;
}

// "0,5,100-200" -> selection (ranges are inclusive). Rejects empty or
// malformed lists and descending ranges.
bool ParseSelection(const std::string& text, select::SelectionVector* sel) {
  if (text.empty()) return false;
  size_t i = 0;
  while (i < text.size()) {
    char* end = nullptr;
    const uint64_t first = std::strtoull(text.c_str() + i, &end, 10);
    if (end == text.c_str() + i) return false;
    size_t j = static_cast<size_t>(end - text.c_str());
    uint64_t last = first;
    if (j < text.size() && text[j] == '-') {
      ++j;
      char* end2 = nullptr;
      last = std::strtoull(text.c_str() + j, &end2, 10);
      if (end2 == text.c_str() + j) return false;
      j = static_cast<size_t>(end2 - text.c_str());
    }
    if (last < first || last == UINT64_MAX) return false;
    sel->AddRange(first, last + 1);
    if (j < text.size() && text[j++] != ',') return false;
    i = j;
  }
  return true;
}

int CmdSelect(const std::string& in, const std::string& positions) {
  Bytes data;
  std::string spec;
  size_t offset = 0;
  if (const int rc = ParseCompressedFrame(in, &data, &spec, &offset)) return rc;
  select::SelectionVector sel;
  if (!ParseSelection(positions, &sel)) {
    return Fail("bad position list (use e.g. 0,5,100-200): " + positions);
  }
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("select " + in + " with " + spec, codec.status());
  const select::SelectionView view(sel, 0, UINT64_MAX);
  std::vector<int64_t> values;
  const Status st = (*codec)->DecompressSelected(BytesView(data).subspan(offset),
                                                 view, &values);
  if (!st.ok()) return Fail("select " + in + " with " + spec, st);
  const std::vector<uint64_t> index = view.ToVector();
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("%llu %lld\n", static_cast<unsigned long long>(index[i]),
                static_cast<long long>(values[i]));
  }
  std::printf("selected %zu values [%s]\n", values.size(), spec.c_str());
  return 0;
}

int CmdFilter(const std::string& in, const std::string& lo_text,
              const std::string& hi_text) {
  char* end = nullptr;
  const int64_t v_min = std::strtoll(lo_text.c_str(), &end, 10);
  if (end == lo_text.c_str() || *end != '\0') {
    return Fail("bad v_min: " + lo_text);
  }
  const int64_t v_max = std::strtoll(hi_text.c_str(), &end, 10);
  if (end == hi_text.c_str() || *end != '\0') {
    return Fail("bad v_max: " + hi_text);
  }
  if (v_min > v_max) return Fail("empty predicate: v_min > v_max");
  Bytes data;
  std::string spec;
  size_t offset = 0;
  if (const int rc = ParseCompressedFrame(in, &data, &spec, &offset)) return rc;
  auto codec = codecs::MakeSeriesCodec(spec);
  if (!codec.ok()) return Fail("filter " + in + " with " + spec, codec.status());
  std::vector<std::pair<uint64_t, int64_t>> matches;
  uint64_t decoded = 0;
  const Status st = (*codec)->DecompressFilter(
      BytesView(data).subspan(offset), v_min, v_max, 0, &matches, &decoded);
  if (!st.ok()) return Fail("filter " + in + " with " + spec, st);
  for (const auto& [index, value] : matches) {
    std::printf("%llu %lld\n", static_cast<unsigned long long>(index),
                static_cast<long long>(value));
  }
  std::printf("%zu matches, %llu values decoded [%s]\n", matches.size(),
              static_cast<unsigned long long>(decoded), spec.c_str());
  return 0;
}

// Drives a TsStore write -> flush -> query -> aggregate round so the
// storage stack shows up under --stats / --trace with real work in it.
int CmdStore(const std::string& dir, const std::string& count) {
  const size_t n =
      count.empty() ? 20000 : std::strtoull(count.c_str(), nullptr, 10);
  storage::StoreOptions options;
  options.dir = dir;
  options.memtable_points = n * 2 + 16;  // flush manually below
  options.threads = g_threads <= 0 ? 0 : static_cast<size_t>(g_threads);
  if (g_cache_mb >= 0) options.cache_mb = static_cast<size_t>(g_cache_mb);
  options.use_mmap = g_mmap;
  auto store = storage::TsStore::Open(options);
  if (!store.ok()) return Fail("store open " + dir, store.status());

  const char* const kSeries[2] = {"demo.temperature", "demo.requests"};
  for (int s = 0; s < 2; ++s) {
    auto info = data::FindDataset(s == 0 ? "VC" : "CS");
    if (!info.ok()) return Fail("store dataset", info.status());
    const auto values = data::GenerateInteger(*info, n);
    std::vector<codecs::DataPoint> points(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      points[i] = {static_cast<int64_t>(i), values[i]};
    }
    const Status st = (*store)->WriteBatch(kSeries[s], points);
    if (!st.ok()) return Fail(std::string("store write ") + kSeries[s], st);
  }
  Status st = (*store)->Flush();
  if (!st.ok()) return Fail("store flush", st);
  // Two query passes: the first fills the block cache, the second hits it,
  // so --stats shows the cache doing real work.
  for (int pass = 0; pass < 2; ++pass) {
    for (const char* series : kSeries) {
      std::vector<codecs::DataPoint> points;
      st = (*store)->Query(series, 0, static_cast<int64_t>(n), &points);
      if (!st.ok()) return Fail(std::string("store query ") + series, st);
      auto agg = (*store)->Aggregate(series);
      if (!agg.ok()) return Fail(std::string("store aggregate ") + series,
                                 agg.status());
      if (pass == 0) {
        std::printf("%s: %zu points, min %lld max %lld\n", series,
                    points.size(), static_cast<long long>(agg->min),
                    static_cast<long long>(agg->max));
      }
    }
  }
  std::printf("store %s: %zu series, %zu files\n", dir.c_str(),
              (*store)->ListSeries().size(), (*store)->num_files());
  if (const storage::PageCache* cache = (*store)->page_cache()) {
    const storage::PageCache::Stats cs = cache->GetStats();
    std::printf("cache: %llu hits, %llu misses, %llu evictions, "
                "%llu bytes in %llu entries\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions),
                static_cast<unsigned long long>(cs.bytes),
                static_cast<unsigned long long>(cs.entries));
  }
  return 0;
}

int CmdBench(const std::string& abbr, const std::vector<std::string>& specs) {
  auto info = data::FindDataset(abbr);
  if (!info.ok()) return Fail("bench " + abbr, info.status());
  const auto values = data::GenerateInteger(*info, info->default_size);
  std::vector<std::string> todo = specs;
  if (todo.empty()) {
    todo = {"TS2DIFF+BP", "TS2DIFF+FASTPFOR", "TS2DIFF+BOS-B", "TS2DIFF+BOS-M",
            "RLE+BOS-B", "SPRINTZ+BOS-B"};
  }
  std::printf("%s (%zu values)\n%-22s %8s %14s\n", info->name.c_str(),
              values.size(), "spec", "ratio", "compress(ms)");
  for (const auto& spec : todo) {
    auto codec = codecs::MakeSeriesCodec(spec);
    if (!codec.ok()) return Fail("bench spec " + spec, codec.status());
    Bytes out;
    const auto start = std::chrono::steady_clock::now();
    const Status st = (*codec)->Compress(values, &out);
    if (!st.ok()) return Fail("bench " + abbr + " with " + spec, st);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-22s %8.2f %14.1f\n", spec.c_str(),
                static_cast<double>(values.size() * 8) /
                    static_cast<double>(out.size()),
                seconds * 1e3);
  }
  return 0;
}

// "host:port" -> (host, port). Port must parse and fit in 16 bits.
bool SplitHostPort(const std::string& text, std::string* host,
                   uint16_t* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  char* end = nullptr;
  const unsigned long p = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (end == text.c_str() + colon + 1 || *end != '\0' || p == 0 || p > 65535) {
    return false;
  }
  *host = text.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

int CmdRemote(const std::vector<std::string>& args) {
  std::string host;
  uint16_t port = 0;
  if (args.size() < 2 || !SplitHostPort(args[0], &host, &port)) {
    return Fail("remote needs <host:port> <cmd>, e.g. 127.0.0.1:4280 stats");
  }
  auto client = net::BosClient::Connect(host, port);
  if (!client.ok()) return Fail("remote connect " + args[0], client.status());
  const std::string& cmd = args[1];

  if (cmd == "append" && args.size() == 5) {
    const int64_t t0 = std::strtoll(args[3].c_str(), nullptr, 10);
    const size_t n = std::strtoull(args[4].c_str(), nullptr, 10);
    std::vector<codecs::DataPoint> points(n);
    for (size_t i = 0; i < n; ++i) {
      points[i] = {t0 + static_cast<int64_t>(i),
                   static_cast<int64_t>(i % 1000)};
    }
    const Status st = client->Append(args[2], points);
    if (!st.ok()) return Fail("remote append " + args[2], st);
    std::printf("appended %zu points to %s\n", n, args[2].c_str());
    return 0;
  }
  if (cmd == "query" && args.size() == 5) {
    const int64_t t0 = std::strtoll(args[3].c_str(), nullptr, 10);
    const int64_t t1 = std::strtoll(args[4].c_str(), nullptr, 10);
    std::vector<codecs::DataPoint> points;
    const Status st = client->QueryRange(args[2], t0, t1, &points);
    if (!st.ok()) return Fail("remote query " + args[2], st);
    for (const auto& p : points) {
      std::printf("%lld %lld\n", static_cast<long long>(p.timestamp),
                  static_cast<long long>(p.value));
    }
    std::printf("%zu points\n", points.size());
    return 0;
  }
  if (cmd == "selected" && args.size() == 4) {
    select::SelectionVector sel;
    if (!ParseSelection(args[3], &sel)) {
      return Fail("bad position list (use e.g. 0,5,100-200): " + args[3]);
    }
    std::vector<codecs::DataPoint> points;
    const Status st = client->QuerySelected(args[2], sel, &points);
    if (!st.ok()) return Fail("remote selected " + args[2], st);
    for (const auto& p : points) {
      std::printf("%lld %lld\n", static_cast<long long>(p.timestamp),
                  static_cast<long long>(p.value));
    }
    std::printf("%zu points\n", points.size());
    return 0;
  }
  if (cmd == "stats" && args.size() == 2) {
    auto json = client->StatsJson();
    if (!json.ok()) return Fail("remote stats", json.status());
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "series" && args.size() == 2) {
    auto names = client->ListSeries();
    if (!names.ok()) return Fail("remote series", names.status());
    for (const auto& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (cmd == "flush" && args.size() == 2) {
    const Status st = client->Flush();
    if (!st.ok()) return Fail("remote flush", st);
    std::printf("flushed\n");
    return 0;
  }
  return Fail("unknown remote command: " + cmd);
}

int Usage() {
  std::fprintf(stderr,
               "usage: boscli [flags] <command> [args]\n"
               "  ops\n"
               "  gen <abbr> <n> <file>\n"
               "  compress <spec> <in> <out>\n"
               "  decompress <in> <out>\n"
               "  advise <in>\n"
               "  inspect <file> [--json]\n"
               "  select <in> <positions>   e.g. 0,5,100-200 (inclusive)\n"
               "  filter <in> <v_min> <v_max>\n"
               "  store <dir> [n]\n"
               "  bench <abbr> [spec ...]\n"
               "  remote <host:port> append|query|selected|stats|series|flush\n"
               "flags:\n"
               "  --stats       print the telemetry snapshot after the command\n"
               "  --stats-json  same, as a JSON object\n"
               "  --threads N   chunk-parallel compress/decompress on N\n"
               "                workers (0 = all cores); output bytes do not\n"
               "                depend on N\n"
               "  --trace FILE  write a Chrome trace-event JSON of the\n"
               "                command's spans (Perfetto-loadable)\n"
               "  --cache-mb N  block cache budget for `store` in MiB\n"
               "                (0 disables the cache; default 64)\n"
               "  --mmap        open store files via mmap (zero-copy reads)\n");
  return 2;
}

int RunCommand(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  BOS_TRACE_SPAN("bos.cli.command");
  BOS_TRACE_ANNOTATE("cmd", cmd);
  if (cmd == "ops") return CmdOps();
  if (cmd == "gen" && args.size() == 4) return CmdGen(args[1], args[2], args[3]);
  if (cmd == "compress" && args.size() == 4) {
    return CmdCompress(args[1], args[2], args[3]);
  }
  if (cmd == "decompress" && args.size() == 3) {
    return CmdDecompress(args[1], args[2]);
  }
  if (cmd == "advise" && args.size() == 2) return CmdAdvise(args[1]);
  if (cmd == "inspect" && (args.size() == 2 || args.size() == 3)) {
    const bool json = args.size() == 3 && args[2] == "--json";
    if (args.size() == 3 && !json) return Usage();
    return CmdInspect(args[1], json);
  }
  if (cmd == "select" && args.size() == 3) return CmdSelect(args[1], args[2]);
  if (cmd == "filter" && args.size() == 4) {
    return CmdFilter(args[1], args[2], args[3]);
  }
  if (cmd == "store" && (args.size() == 2 || args.size() == 3)) {
    return CmdStore(args[1], args.size() == 3 ? args[2] : "");
  }
  if (cmd == "bench" && args.size() >= 2) {
    return CmdBench(args[1], {args.begin() + 2, args.end()});
  }
  if (cmd == "remote" && args.size() >= 2) {
    return CmdRemote({args.begin() + 1, args.end()});
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool stats_text = false;
  bool stats_json = false;
  std::string trace_path;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--stats") {
      stats_text = true;
      it = args.erase(it);
    } else if (*it == "--stats-json") {
      stats_json = true;
      it = args.erase(it);
    } else if (*it == "--threads") {
      if (it + 1 == args.end()) return Usage();
      g_threads = std::atoi((it + 1)->c_str());
      if (g_threads < 0) return Usage();
      it = args.erase(it, it + 2);
    } else if (*it == "--trace") {
      if (it + 1 == args.end()) return Usage();
      trace_path = *(it + 1);
      it = args.erase(it, it + 2);
    } else if (*it == "--cache-mb") {
      if (it + 1 == args.end()) return Usage();
      g_cache_mb = std::atoi((it + 1)->c_str());
      if (g_cache_mb < 0) return Usage();
      it = args.erase(it, it + 2);
    } else if (*it == "--mmap") {
      g_mmap = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!trace_path.empty() && !telemetry::trace::StartTracing()) {
    return Fail("--trace " + trace_path,
                Status::InvalidArgument(
                    "tracing requires a build with BOS_ENABLE_TELEMETRY=ON"));
  }
  int rc = RunCommand(args);
  if (!trace_path.empty()) {
    telemetry::trace::StopTracing();
    const std::string json = telemetry::trace::ExportChromeTraceJson();
    Bytes bytes(json.begin(), json.end());
    if (!WriteFile(trace_path, bytes)) {
      // The trace is part of what the user asked for: a path we cannot
      // write is a command failure with the full context, not a warning.
      rc = Fail("write trace to " + trace_path,
                Status::IoError("cannot write file"));
    } else if (const uint64_t dropped = telemetry::trace::DroppedCount();
               dropped > 0) {
      std::fprintf(stderr,
                   "boscli: trace ring buffers overflowed; %llu spans dropped "
                   "(also recorded in the trace footer)\n",
                   static_cast<unsigned long long>(dropped));
    }
  }
  // The snapshot is printed even when the command failed: the counters up to
  // the failure point are exactly what you want when debugging it.
  if (stats_json) {
    std::printf("%s\n", telemetry::Registry::Global().SnapshotJson().c_str());
  } else if (stats_text) {
    std::fputs(telemetry::Registry::Global().SnapshotText().c_str(), stdout);
  }
  return rc;
}
