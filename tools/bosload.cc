// bosload: load generator for bosd (DESIGN.md §14).
//
// Drives a running bosd over C concurrent client connections through an
// ingest phase (batched appends) and a query phase (time-range queries),
// then emits one JSONL record per phase to BENCH_service.json in the
// bench_common schema — ingest MB/s and query QPS as trend-guarded
// metrics, request latency p50/p99 as unguarded *_ms measurements.
//
// The identity fields (series, connections, points_per_batch, batches,
// queries, shards, threads) must match the committed baseline exactly;
// `shards` and `threads` describe the *server* under test and are taken
// on trust from the flags, since the wire protocol does not expose them
// per-request.
//
// Usage:
//   bosload --port P [--host 127.0.0.1] [--connections 4] [--series 16]
//           [--points-per-batch 512] [--batches 64] [--queries 256]
//           [--shards 4] [--threads 4] [--out BENCH_service.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/client.h"

namespace {

using bos::codecs::DataPoint;
using Clock = std::chrono::steady_clock;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "bosload: %s\n", msg.c_str());
  return 1;
}

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

double QuantileMs(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t rank = std::min(
      samples->size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples->size())));
  return (*samples)[rank];
}

/// Deterministic synthetic values: a drifting base with occasional
/// spikes, so BOS actually sees outliers and the WAL/flush path carries
/// realistic entropy. xorshift keeps it reproducible across runs.
int64_t SyntheticValue(uint64_t* state) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  const int64_t base = static_cast<int64_t>(*state % 1024);
  return (*state % 97 == 0) ? base + 1'000'000 : base;
}

struct Config {
  std::string host = "127.0.0.1";
  size_t port = 0;
  size_t connections = 4;
  size_t series = 16;
  size_t points_per_batch = 512;
  size_t batches = 64;  // per connection
  size_t queries = 256;  // total, split across connections
  size_t shards = 4;   // identity stamp: server-side shard count
  size_t threads = 4;  // identity stamp: server-side pool size
  std::string out = "BENCH_service.json";
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseStringFlag(arg, "--host", &cfg.host) ||
        ParseStringFlag(arg, "--out", &cfg.out) ||
        ParseSizeFlag(arg, "--port", &cfg.port) ||
        ParseSizeFlag(arg, "--connections", &cfg.connections) ||
        ParseSizeFlag(arg, "--series", &cfg.series) ||
        ParseSizeFlag(arg, "--points-per-batch", &cfg.points_per_batch) ||
        ParseSizeFlag(arg, "--batches", &cfg.batches) ||
        ParseSizeFlag(arg, "--queries", &cfg.queries) ||
        ParseSizeFlag(arg, "--shards", &cfg.shards) ||
        ParseSizeFlag(arg, "--threads", &cfg.threads)) {
      continue;
    }
    return Fail(std::string("unknown flag: ") + arg);
  }
  if (cfg.port == 0 || cfg.port > 65535) return Fail("--port=P is required");
  if (cfg.connections == 0) cfg.connections = 1;
  if (cfg.series == 0 || cfg.points_per_batch == 0 || cfg.batches == 0) {
    return Fail("--series/--points-per-batch/--batches must be nonzero");
  }

  // ---- ingest phase -------------------------------------------------
  std::mutex agg_mu;
  std::vector<double> append_ms;
  std::atomic<uint64_t> points_sent{0};
  std::atomic<bool> failed{false};
  std::string first_error;

  auto record_error = [&](const bos::Status& st) {
    std::lock_guard<std::mutex> lock(agg_mu);
    if (!failed.exchange(true)) first_error = st.ToString();
  };

  const auto ingest_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (size_t c = 0; c < cfg.connections; ++c) {
      workers.emplace_back([&, c] {
        auto client = bos::net::BosClient::Connect(
            cfg.host, static_cast<uint16_t>(cfg.port));
        if (!client.ok()) return record_error(client.status());
        uint64_t rng = 0x9e3779b97f4a7c15ULL ^ (c + 1);
        std::vector<double> local_ms;
        std::vector<DataPoint> batch(cfg.points_per_batch);
        for (size_t b = 0; b < cfg.batches && !failed.load(); ++b) {
          const std::string series =
              "sensor." + std::to_string((c * cfg.batches + b) % cfg.series);
          const int64_t t0 = static_cast<int64_t>(
              (c * cfg.batches + b) * cfg.points_per_batch);
          for (size_t p = 0; p < cfg.points_per_batch; ++p) {
            batch[p].timestamp = t0 + static_cast<int64_t>(p);
            batch[p].value = SyntheticValue(&rng);
          }
          const auto start = Clock::now();
          const bos::Status st = client.value().Append(series, batch);
          if (!st.ok()) return record_error(st);
          local_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
          points_sent.fetch_add(batch.size());
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        append_ms.insert(append_ms.end(), local_ms.begin(), local_ms.end());
      });
    }
    for (auto& t : workers) t.join();
  }
  const double ingest_s = bos::bench::Seconds(ingest_start);
  if (failed.load()) return Fail("ingest failed: " + first_error);

  // 16 raw bytes per point (two int64 columns), the same accounting the
  // storage benches use.
  const double ingest_mb =
      static_cast<double>(points_sent.load()) * 16.0 / (1024.0 * 1024.0);
  const double ingest_mbps = ingest_s > 0 ? ingest_mb / ingest_s : 0;

  // Make ingested data visible on disk before the query phase.
  {
    auto client = bos::net::BosClient::Connect(cfg.host,
                                               static_cast<uint16_t>(cfg.port));
    if (!client.ok()) return Fail("flush connect: " + client.status().ToString());
    const bos::Status st = client.value().Flush();
    if (!st.ok()) return Fail("flush: " + st.ToString());
  }

  // ---- query phase --------------------------------------------------
  std::vector<double> query_ms;
  std::atomic<uint64_t> points_read{0};
  std::atomic<uint64_t> queries_run{0};
  const size_t queries_per_conn =
      (cfg.queries + cfg.connections - 1) / cfg.connections;
  const int64_t t_span = static_cast<int64_t>(cfg.connections * cfg.batches *
                                              cfg.points_per_batch);

  const auto query_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (size_t c = 0; c < cfg.connections; ++c) {
      workers.emplace_back([&, c] {
        auto client = bos::net::BosClient::Connect(
            cfg.host, static_cast<uint16_t>(cfg.port));
        if (!client.ok()) return record_error(client.status());
        uint64_t rng = 0xdeadbeefcafef00dULL ^ (c + 1);
        std::vector<double> local_ms;
        std::vector<DataPoint> out;
        for (size_t q = 0; q < queries_per_conn && !failed.load(); ++q) {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          const std::string series =
              "sensor." + std::to_string(rng % cfg.series);
          const int64_t t_min = static_cast<int64_t>(rng % t_span);
          const int64_t t_max =
              std::min<int64_t>(t_span, t_min + t_span / 8 + 1);
          out.clear();
          const auto start = Clock::now();
          const bos::Status st =
              client.value().QueryRange(series, t_min, t_max, &out);
          if (!st.ok()) return record_error(st);
          local_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
          points_read.fetch_add(out.size());
          queries_run.fetch_add(1);
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        query_ms.insert(query_ms.end(), local_ms.begin(), local_ms.end());
      });
    }
    for (auto& t : workers) t.join();
  }
  const double query_s = bos::bench::Seconds(query_start);
  if (failed.load()) return Fail("query failed: " + first_error);
  const double qps =
      query_s > 0 ? static_cast<double>(queries_run.load()) / query_s : 0;

  // ---- report -------------------------------------------------------
  bos::bench::JsonlWriter writer(cfg.out);
  if (!writer.ok()) return Fail("cannot write " + cfg.out);
  writer.WriteRecord(
      "service_ingest",
      {{"connections", cfg.connections},
       {"series", cfg.series},
       {"points_per_batch", cfg.points_per_batch},
       {"batches", cfg.batches},
       {"shards", cfg.shards},
       {"threads", cfg.threads},
       {"total_points", static_cast<size_t>(points_sent.load())},
       {"ingest_mbps", ingest_mbps},
       {"append_p50_ms", QuantileMs(&append_ms, 0.50)},
       {"append_p99_ms", QuantileMs(&append_ms, 0.99)}});
  writer.WriteRecord(
      "service_query",
      {{"connections", cfg.connections},
       {"series", cfg.series},
       {"queries", cfg.queries},
       {"shards", cfg.shards},
       {"threads", cfg.threads},
       {"query_qps", qps},
       {"query_p50_ms", QuantileMs(&query_ms, 0.50)},
       {"query_p99_ms", QuantileMs(&query_ms, 0.99)}});

  std::printf(
      "bosload: ingest %.1f MB/s (%llu points, p99 %.2f ms) | "
      "query %.0f QPS (p99 %.2f ms)\n",
      ingest_mbps, static_cast<unsigned long long>(points_sent.load()),
      QuantileMs(&append_ms, 0.99), qps, QuantileMs(&query_ms, 0.99));
  return 0;
}
