#!/usr/bin/env python3
"""Bench-trend regression guard.

Compares a fresh BENCH_*.json run (JSON-lines, one record per line, as
written by bench/bench_common.h's JsonlWriter) against the committed
baselines in bench/baselines/ and fails when a headline throughput
metric regresses by more than the threshold.

Conventions this relies on (see bench_common.h):
  * every record carries a "bench" discriminator;
  * throughput metrics are named *_gbps / *_mbps / *_qps — higher is
    better;
  * latency measurements are named *_ms / *_us / *_ns — reported, never
    trend-guarded (lower is better, the drop check doesn't apply);
  * "hardware_threads"/"avx2"/"bmi2" describe the machine, not the run.

Records are matched by their identity fields (everything that is not a
float metric or a hardware field: width, dataset, spec, threads, ...).
A record present only in the current run is reported but never fails —
adding bench cases must not break CI. A record present only in the
baseline DOES fail: the committed case silently stopped being measured,
which is exactly the coverage loss this guard exists to catch. Removing
a case on purpose requires refreshing the baseline with --update.

Usage:
  tools/bench_trend.py                                # compare defaults
  tools/bench_trend.py --threshold 0.5                # noisy-box margin
  tools/bench_trend.py --update                       # refresh baselines
  tools/bench_trend.py --baseline DIR --current DIR --files BENCH_encode.json

Exit codes: 0 ok, 1 regression found, 2 bad invocation / unreadable input.
"""

import argparse
import json
import os
import shutil
import sys

DEFAULT_FILES = ["BENCH_kernels.json", "BENCH_parallel.json",
                 "BENCH_encode.json", "BENCH_select.json",
                 "BENCH_read.json", "BENCH_service.json"]
HARDWARE_FIELDS = {"hardware_threads", "avx2", "bmi2"}
METRIC_SUFFIXES = ("_gbps", "_mbps", "_qps")
# Measurements that are reported but not trend-guarded (latencies are
# lower-is-better, so the higher-is-better drop check does not apply).
# Like metrics, they are excluded from record identity — a latency that
# happens to land on an integer must not change the record's key.
MEASUREMENT_SUFFIXES = ("_ms", "_us", "_ns")


def is_metric(key, value):
    return key.endswith(METRIC_SUFFIXES) and isinstance(value, (int, float))


def is_measurement(key, value):
    return key.endswith(MEASUREMENT_SUFFIXES) and isinstance(value,
                                                             (int, float))


def identity(record):
    """Stable key of a record: the bench kind plus every non-metric,
    non-measurement, non-hardware, non-float field (floats are
    measurements, not labels)."""
    parts = [("bench", record.get("bench", "?"))]
    for key in sorted(record):
        if key == "bench" or key in HARDWARE_FIELDS:
            continue
        value = record[key]
        if (isinstance(value, float) or is_metric(key, value)
                or is_measurement(key, value)):
            continue
        parts.append((key, value))
    return tuple(parts)


def load_records(path):
    records = []
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: {e}") from e
    return records


def index_records(records):
    by_id = {}
    for record in records:
        by_id.setdefault(identity(record), record)
    return by_id


def format_id(key):
    return " ".join(f"{k}={v}" for k, v in key)


def compare_file(name, baseline_path, current_path, threshold):
    """Returns (regressions, missing, compared) for one BENCH_*.json pair."""
    baseline = index_records(load_records(baseline_path))
    current = index_records(load_records(current_path))

    regressions = []
    missing = []
    compared = 0
    for key, base_record in sorted(baseline.items()):
        cur_record = current.get(key)
        if cur_record is None:
            missing.append(f"{name}: no current record for [{format_id(key)}]")
            continue
        for metric, base_value in base_record.items():
            if not is_metric(metric, base_value) or base_value <= 0:
                continue
            cur_value = cur_record.get(metric)
            if not isinstance(cur_value, (int, float)):
                continue
            compared += 1
            drop = (base_value - cur_value) / base_value
            if drop > threshold:
                regressions.append(
                    f"{name} [{format_id(key)}] {metric}: "
                    f"{base_value:.2f} -> {cur_value:.2f} "
                    f"({100.0 * drop:.1f}% drop, limit {100.0 * threshold:.0f}%)"
                )
    for key in sorted(set(current) - set(baseline)):
        print(f"  note: {name}: no baseline for [{format_id(key)}]")
    return regressions, missing, compared


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current", default="build/bench",
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--files", nargs="+", default=DEFAULT_FILES,
                        help="which BENCH_*.json files to compare")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop (0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy the current files over the baselines "
                             "instead of comparing")
    args = parser.parse_args()

    if args.threshold <= 0:
        print("bench_trend: --threshold must be positive", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for name in args.files:
            src = os.path.join(args.current, name)
            if not os.path.exists(src):
                print(f"bench_trend: cannot update, missing {src}",
                      file=sys.stderr)
                return 2
            shutil.copy(src, os.path.join(args.baseline, name))
            print(f"updated {os.path.join(args.baseline, name)}")
        return 0

    all_regressions = []
    all_missing = []
    total_compared = 0
    for name in args.files:
        baseline_path = os.path.join(args.baseline, name)
        current_path = os.path.join(args.current, name)
        if not os.path.exists(baseline_path):
            print(f"  note: no baseline {baseline_path}; skipping "
                  f"(run with --update to create it)")
            continue
        if not os.path.exists(current_path):
            print(f"bench_trend: missing current run {current_path}",
                  file=sys.stderr)
            return 2
        try:
            regressions, missing, compared = compare_file(
                name, baseline_path, current_path, args.threshold)
        except (ValueError, OSError) as e:
            print(f"bench_trend: {e}", file=sys.stderr)
            return 2
        total_compared += compared
        all_regressions.extend(regressions)
        all_missing.extend(missing)

    if all_regressions or all_missing:
        print(f"bench_trend: {len(all_regressions)} regression(s), "
              f"{len(all_missing)} missing record(s) over "
              f"{total_compared} compared metrics:")
        for line in all_regressions:
            print(f"  REGRESSION: {line}")
        for line in all_missing:
            print(f"  MISSING: {line}")
        return 1
    print(f"bench_trend: OK ({total_compared} metrics within "
          f"{100.0 * args.threshold:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
