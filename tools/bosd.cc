// bosd: the sharded BOS ingestion/query daemon (DESIGN.md §14).
//
// Serves the bosd wire protocol on loopback TCP over N TsStore shards.
// SIGTERM/SIGINT shut it down cleanly: connections are drained, every
// shard's memtable is flushed, and the process exits 0 after printing
// "bosd: shutdown complete" (the CI service-smoke job asserts both).
//
// Usage:
//   bosd --dir DIR [--port 4280] [--shards 4] [--threads 0]
//        [--memtable-points 65536] [--cache-mb 16]
//        [--max-pending-points 1048576] [--max-connections 64]
//        [--spec "TS2DIFF+BOS-B|TS2DIFF+BOS-B"]

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const std::string& msg) {
  std::fprintf(stderr, "bosd: %s\n", msg.c_str());
  return 1;
}

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bos::net::ServerOptions options;
  size_t port = 4280;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseStringFlag(arg, "--dir", &options.dir) ||
        ParseStringFlag(arg, "--spec", &options.spec) ||
        ParseSizeFlag(arg, "--port", &port) ||
        ParseSizeFlag(arg, "--shards", &options.shards) ||
        ParseSizeFlag(arg, "--threads", &options.threads) ||
        ParseSizeFlag(arg, "--memtable-points", &options.memtable_points) ||
        ParseSizeFlag(arg, "--cache-mb", &options.cache_mb) ||
        ParseSizeFlag(arg, "--max-pending-points",
                      &options.max_pending_points) ||
        ParseSizeFlag(arg, "--max-connections", &options.max_connections)) {
      continue;
    }
    return Fail(std::string("unknown flag: ") + arg);
  }
  if (options.dir.empty()) return Fail("--dir=DIR is required");
  if (port > 65535) return Fail("--port out of range");
  options.port = static_cast<uint16_t>(port);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  bos::net::BosServer server(options);
  const bos::Status st = server.Start();
  if (!st.ok()) return Fail("start failed: " + st.ToString());
  std::printf("bosd: listening on 127.0.0.1:%u (%zu shards)\n",
              static_cast<unsigned>(server.port()), server.num_shards());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("bosd: shutting down\n");
  std::fflush(stdout);
  server.Stop();
  std::printf("bosd: shutdown complete\n");
  return 0;
}
