#ifndef BOS_SELECT_SELECTION_H_
#define BOS_SELECT_SELECTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::select {

/// \brief A sorted set of row positions, stored Roaring-style: the
/// position space is partitioned into 65536-wide chunks keyed by
/// `pos >> 16`, and each chunk holds its low 16 bits in whichever
/// container is smallest — a sorted array (sparse), a 1024-word bitmap
/// (dense), or a list of inclusive runs (clustered). This is the
/// selection-vector representation the selective decode path
/// (`PackingOperator::DecodeSelected`) and the storage point-lookup
/// queries consume.
///
/// The container switch mirrors the Roaring papers: arrays convert to
/// bitmaps past 4096 entries, and `RunOptimize()` converts either form
/// to runs when that is strictly smaller. All mutators keep the chunk
/// list sorted and cardinality counts exact, so `Rank`/`Select` are a
/// chunk scan plus one in-container step.
///
/// Thread safety: const methods are safe to call concurrently; mutation
/// requires external synchronization (same contract as std::vector).
class SelectionVector {
 public:
  /// Positions per chunk (the low-16-bit space of one container).
  static constexpr uint64_t kChunkSpan = 1ULL << 16;
  /// Array containers convert to bitmaps past this cardinality, the
  /// point where 2-byte entries outgrow the fixed 8 KiB bitmap.
  static constexpr uint32_t kArrayToBitmapThreshold = 4096;

  /// Inserts one position (idempotent; any order).
  void Add(uint64_t pos);

  /// Inserts every position in the half-open range [begin, end).
  void AddRange(uint64_t begin, uint64_t end);

  bool Contains(uint64_t pos) const;

  uint64_t cardinality() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }

  /// Number of selected positions strictly below `pos`.
  uint64_t Rank(uint64_t pos) const;

  /// The k-th (0-based) smallest selected position. Returns false when
  /// `k >= cardinality()`.
  bool Select(uint64_t k, uint64_t* pos) const;

  /// Keeps only positions present in both vectors.
  void IntersectWith(const SelectionVector& other);

  /// Converts containers to run form wherever that is strictly smaller.
  void RunOptimize();

  /// All positions, ascending.
  std::vector<uint64_t> ToVector() const;

  /// Set equality (independent of container representation).
  bool SetEquals(const SelectionVector& other) const;

  /// Appends the portable serialized form to `out`:
  ///   varint chunk count, then per chunk (ascending keys):
  ///   varint key | type byte | container payload
  ///   (array: varint count + count little-endian uint16;
  ///    bitmap: 1024 little-endian uint64 words;
  ///    runs:   varint count + count (start,last) little-endian uint16
  ///    pairs, start <= last, ascending and non-overlapping).
  void Serialize(Bytes* out) const;

  /// Parses a buffer produced by Serialize. Every length and bound is
  /// checked (DESIGN.md section 8 idioms): hostile bytes get a
  /// Corruption status, never a crash or an over-allocation.
  static Result<SelectionVector> Deserialize(BytesView data);

  /// Calls `fn(uint64_t pos)` for each selected position, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachRun([&fn](uint64_t start, uint64_t len) {
      for (uint64_t i = 0; i < len; ++i) fn(start + i);
    });
  }

  /// Calls `fn(uint64_t start, uint64_t len)` for each maximal run of
  /// consecutive selected positions, ascending.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    uint64_t run_start = 0, run_len = 0;
    for (const Chunk& chunk : chunks_) {
      const uint64_t base = chunk.key << 16;
      WalkContainerRuns(chunk, 0, kChunkSpan, [&](uint64_t s, uint64_t l) {
        const uint64_t abs = base + s;
        if (run_len > 0 && run_start + run_len == abs) {
          run_len += l;
        } else {
          if (run_len > 0) fn(run_start, run_len);
          run_start = abs;
          run_len = l;
        }
      });
    }
    if (run_len > 0) fn(run_start, run_len);
  }

  /// ForEachRun clipped to [begin, end); runs are truncated at the
  /// window edges. `SelectionView` is the ergonomic wrapper over this.
  template <typename Fn>
  void ForEachRunInRange(uint64_t begin, uint64_t end, Fn&& fn) const {
    if (begin >= end) return;
    uint64_t run_start = 0, run_len = 0;
    for (const Chunk& chunk : chunks_) {
      const uint64_t base = chunk.key << 16;
      if (base >= end) break;
      if (base + kChunkSpan <= begin) continue;
      const uint64_t lo = begin > base ? begin - base : 0;
      const uint64_t hi = end - base < kChunkSpan ? end - base : kChunkSpan;
      WalkContainerRuns(chunk, lo, hi, [&](uint64_t s, uint64_t l) {
        const uint64_t abs = base + s;
        if (run_len > 0 && run_start + run_len == abs) {
          run_len += l;
        } else {
          if (run_len > 0) fn(run_start, run_len);
          run_start = abs;
          run_len = l;
        }
      });
    }
    if (run_len > 0) fn(run_start, run_len);
  }

 private:
  enum class ContainerType : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

  struct Chunk {
    uint64_t key = 0;  ///< pos >> 16
    ContainerType type = ContainerType::kArray;
    uint32_t cardinality = 0;
    std::vector<uint16_t> array;   ///< kArray: sorted unique low-16 values
    std::vector<uint64_t> bitmap;  ///< kBitmap: 1024 words
    /// kRun: sorted, non-overlapping, non-adjacent inclusive [start,last].
    std::vector<std::pair<uint16_t, uint16_t>> runs;
  };

  Chunk* FindChunk(uint64_t key);
  const Chunk* FindChunk(uint64_t key) const;
  Chunk* FindOrCreateChunk(uint64_t key);
  void DropEmptyChunk(uint64_t key);

  static void AddToChunk(Chunk* chunk, uint16_t low);
  static void AddRangeToChunk(Chunk* chunk, uint32_t lo, uint32_t hi);
  static bool ChunkContains(const Chunk& chunk, uint16_t low);
  static uint32_t ChunkRank(const Chunk& chunk, uint32_t low);
  static uint16_t ChunkSelect(const Chunk& chunk, uint32_t k);
  static void ToBitmap(Chunk* chunk);
  static Status ValidateChunk(const Chunk& chunk);

  /// Calls `fn(start, len)` for each maximal run of the chunk clipped to
  /// low-16 window [lo, hi). Implemented in the .cc via an out-of-line
  /// run materializer to keep this header light.
  template <typename Fn>
  static void WalkContainerRuns(const Chunk& chunk, uint64_t lo, uint64_t hi,
                                Fn&& fn) {
    // Runs per chunk are bounded (<= 32768), so materializing them is
    // cheap relative to the per-position work every caller does.
    for (const auto& [start, len] : MaterializeRuns(chunk, lo, hi)) {
      fn(start, len);
    }
  }

  static std::vector<std::pair<uint32_t, uint32_t>> MaterializeRuns(
      const Chunk& chunk, uint64_t lo, uint64_t hi);

  std::vector<Chunk> chunks_;  ///< sorted by key
  uint64_t cardinality_ = 0;
};

/// \brief A borrowed window [base, base+size) of a SelectionVector, with
/// positions reported relative to `base`. This is what block decoders
/// consume: the storage layer windows one global selection per page, and
/// the series codecs re-window per block via `SubView` — no per-block
/// copies of the selection are ever made.
class SelectionView {
 public:
  /// An empty view (matches nothing).
  SelectionView() = default;

  /// Window of `vec` covering absolute positions [base, base+size).
  /// `vec` must outlive the view.
  SelectionView(const SelectionVector& vec, uint64_t base, uint64_t size)
      : vec_(&vec), base_(base), size_(ClampSize(base, size)) {
    count_ = vec.Rank(base_ + size_) - vec.Rank(base_);
  }

  uint64_t base() const { return base_; }
  /// Window length (positions it spans, not positions selected).
  uint64_t size() const { return size_; }
  /// Selected positions inside the window.
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// A sub-window at [offset, offset+len) relative to this view.
  SelectionView SubView(uint64_t offset, uint64_t len) const {
    if (vec_ == nullptr || offset >= size_) return SelectionView();
    const uint64_t avail = size_ - offset;
    return SelectionView(*vec_, base_ + offset, len < avail ? len : avail);
  }

  /// Calls `fn(uint64_t rel)` for each selected position, ascending,
  /// relative to base().
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachRun([&fn](uint64_t start, uint64_t len) {
      for (uint64_t i = 0; i < len; ++i) fn(start + i);
    });
  }

  /// Calls `fn(uint64_t rel_start, uint64_t len)` per maximal run,
  /// ascending, relative to base().
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    if (vec_ == nullptr || count_ == 0) return;
    const uint64_t base = base_;
    vec_->ForEachRunInRange(base_, base_ + size_,
                            [&fn, base](uint64_t start, uint64_t len) {
                              fn(start - base, len);
                            });
  }

  /// Relative positions inside the window, ascending.
  std::vector<uint64_t> ToVector() const {
    std::vector<uint64_t> out;
    out.reserve(static_cast<size_t>(count_));
    ForEach([&out](uint64_t rel) { out.push_back(rel); });
    return out;
  }

 private:
  static uint64_t ClampSize(uint64_t base, uint64_t size) {
    const uint64_t avail = ~base;  // UINT64_MAX - base
    return size < avail ? size : avail;
  }

  const SelectionVector* vec_ = nullptr;
  uint64_t base_ = 0;
  uint64_t size_ = 0;
  uint64_t count_ = 0;
};

}  // namespace bos::select

#endif  // BOS_SELECT_SELECTION_H_
