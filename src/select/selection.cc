#include "select/selection.h"

#include <algorithm>
#include <bit>

#include "bitpack/varint.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::select {

namespace {

constexpr size_t kBitmapWords = 1024;  // 65536 bits
/// Keys are `pos >> 16`, so anything above 48 bits would overflow the
/// position space when shifted back.
constexpr uint64_t kMaxChunkKey = (1ULL << 48) - 1;

uint32_t BitmapCardinality(const std::vector<uint64_t>& words) {
  uint32_t count = 0;
  for (uint64_t w : words) count += static_cast<uint32_t>(std::popcount(w));
  return count;
}

}  // namespace

// ---------------------------------------------------------------------
// Chunk lookup / maintenance
// ---------------------------------------------------------------------

SelectionVector::Chunk* SelectionVector::FindChunk(uint64_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint64_t k) { return c.key < k; });
  return it != chunks_.end() && it->key == key ? &*it : nullptr;
}

const SelectionVector::Chunk* SelectionVector::FindChunk(uint64_t key) const {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint64_t k) { return c.key < k; });
  return it != chunks_.end() && it->key == key ? &*it : nullptr;
}

SelectionVector::Chunk* SelectionVector::FindOrCreateChunk(uint64_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint64_t k) { return c.key < k; });
  if (it == chunks_.end() || it->key != key) {
    Chunk chunk;
    chunk.key = key;
    it = chunks_.insert(it, std::move(chunk));
  }
  return &*it;
}

void SelectionVector::DropEmptyChunk(uint64_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint64_t k) { return c.key < k; });
  if (it != chunks_.end() && it->key == key && it->cardinality == 0) {
    chunks_.erase(it);
  }
}

void SelectionVector::ToBitmap(Chunk* chunk) {
  if (chunk->type == ContainerType::kBitmap) return;
  std::vector<uint64_t> words(kBitmapWords, 0);
  if (chunk->type == ContainerType::kArray) {
    for (uint16_t v : chunk->array) words[v >> 6] |= 1ULL << (v & 63);
    chunk->array.clear();
    chunk->array.shrink_to_fit();
  } else {
    for (const auto& [start, last] : chunk->runs) {
      for (uint32_t v = start; v <= last; ++v) words[v >> 6] |= 1ULL << (v & 63);
    }
    chunk->runs.clear();
    chunk->runs.shrink_to_fit();
  }
  chunk->bitmap = std::move(words);
  chunk->type = ContainerType::kBitmap;
}

void SelectionVector::AddToChunk(Chunk* chunk, uint16_t low) {
  switch (chunk->type) {
    case ContainerType::kArray: {
      auto it = std::lower_bound(chunk->array.begin(), chunk->array.end(), low);
      if (it != chunk->array.end() && *it == low) return;
      chunk->array.insert(it, low);
      ++chunk->cardinality;
      if (chunk->cardinality > kArrayToBitmapThreshold) ToBitmap(chunk);
      return;
    }
    case ContainerType::kBitmap: {
      uint64_t& word = chunk->bitmap[low >> 6];
      const uint64_t bit = 1ULL << (low & 63);
      if ((word & bit) == 0) {
        word |= bit;
        ++chunk->cardinality;
      }
      return;
    }
    case ContainerType::kRun:
      // Point inserts into run form fall back to the bitmap (runs are a
      // read-optimized final form; RunOptimize() restores them).
      ToBitmap(chunk);
      AddToChunk(chunk, low);
      return;
  }
}

void SelectionVector::AddRangeToChunk(Chunk* chunk, uint32_t lo, uint32_t hi) {
  if (lo >= hi) return;
  if (chunk->cardinality == 0) {
    chunk->type = ContainerType::kRun;
    chunk->array.clear();
    chunk->bitmap.clear();
    chunk->runs.assign(1, {static_cast<uint16_t>(lo),
                           static_cast<uint16_t>(hi - 1)});
    chunk->cardinality = hi - lo;
    return;
  }
  ToBitmap(chunk);
  for (uint32_t v = lo; v < hi;) {
    const uint32_t word = v >> 6;
    const uint32_t bit = v & 63;
    const uint32_t span = std::min<uint32_t>(64 - bit, hi - v);
    const uint64_t mask =
        (span == 64 ? ~0ULL : ((1ULL << span) - 1)) << bit;
    chunk->bitmap[word] |= mask;
    v += span;
  }
  chunk->cardinality = BitmapCardinality(chunk->bitmap);
}

bool SelectionVector::ChunkContains(const Chunk& chunk, uint16_t low) {
  switch (chunk.type) {
    case ContainerType::kArray:
      return std::binary_search(chunk.array.begin(), chunk.array.end(), low);
    case ContainerType::kBitmap:
      return (chunk.bitmap[low >> 6] >> (low & 63)) & 1;
    case ContainerType::kRun: {
      auto it = std::upper_bound(
          chunk.runs.begin(), chunk.runs.end(), low,
          [](uint16_t v, const std::pair<uint16_t, uint16_t>& run) {
            return v < run.first;
          });
      return it != chunk.runs.begin() && low <= std::prev(it)->second;
    }
  }
  return false;
}

uint32_t SelectionVector::ChunkRank(const Chunk& chunk, uint32_t low) {
  // Entries strictly below `low` (low in [0, 65536]).
  switch (chunk.type) {
    case ContainerType::kArray:
      return static_cast<uint32_t>(
          std::lower_bound(chunk.array.begin(), chunk.array.end(), low) -
          chunk.array.begin());
    case ContainerType::kBitmap: {
      uint32_t count = 0;
      const uint32_t full_words = low >> 6;
      for (uint32_t w = 0; w < full_words; ++w) {
        count += static_cast<uint32_t>(std::popcount(chunk.bitmap[w]));
      }
      const uint32_t tail_bits = low & 63;
      if (tail_bits != 0 && full_words < kBitmapWords) {
        count += static_cast<uint32_t>(std::popcount(
            chunk.bitmap[full_words] & ((1ULL << tail_bits) - 1)));
      }
      return count;
    }
    case ContainerType::kRun: {
      uint32_t count = 0;
      for (const auto& [start, last] : chunk.runs) {
        if (start >= low) break;
        count += std::min<uint32_t>(last, low - 1) - start + 1;
      }
      return count;
    }
  }
  return 0;
}

uint16_t SelectionVector::ChunkSelect(const Chunk& chunk, uint32_t k) {
  // Preconditions: k < chunk.cardinality.
  switch (chunk.type) {
    case ContainerType::kArray:
      return chunk.array[k];
    case ContainerType::kBitmap: {
      for (uint32_t w = 0; w < kBitmapWords; ++w) {
        const uint32_t pop =
            static_cast<uint32_t>(std::popcount(chunk.bitmap[w]));
        if (k < pop) {
          uint64_t word = chunk.bitmap[w];
          for (uint32_t i = 0; i < k; ++i) word &= word - 1;
          return static_cast<uint16_t>(
              (w << 6) + static_cast<uint32_t>(std::countr_zero(word)));
        }
        k -= pop;
      }
      return 0;  // unreachable when preconditions hold
    }
    case ContainerType::kRun: {
      for (const auto& [start, last] : chunk.runs) {
        const uint32_t len = static_cast<uint32_t>(last) - start + 1;
        if (k < len) return static_cast<uint16_t>(start + k);
        k -= len;
      }
      return 0;  // unreachable when preconditions hold
    }
  }
  return 0;
}

std::vector<std::pair<uint32_t, uint32_t>> SelectionVector::MaterializeRuns(
    const Chunk& chunk, uint64_t lo, uint64_t hi) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (lo >= hi) return out;
  const auto emit = [&out](uint32_t start, uint32_t len) {
    if (len == 0) return;
    if (!out.empty() && out.back().first + out.back().second == start) {
      out.back().second += len;
    } else {
      out.emplace_back(start, len);
    }
  };
  switch (chunk.type) {
    case ContainerType::kArray: {
      auto it = std::lower_bound(chunk.array.begin(), chunk.array.end(),
                                 static_cast<uint16_t>(lo));
      for (; it != chunk.array.end() && *it < hi; ++it) emit(*it, 1);
      break;
    }
    case ContainerType::kBitmap: {
      const uint32_t first_word = static_cast<uint32_t>(lo >> 6);
      const uint32_t last_word = static_cast<uint32_t>((hi - 1) >> 6);
      for (uint32_t w = first_word; w <= last_word && w < kBitmapWords; ++w) {
        uint64_t word = chunk.bitmap[w];
        if (w == first_word && (lo & 63) != 0) {
          word &= ~0ULL << (lo & 63);
        }
        if (w == last_word && (hi & 63) != 0) {
          word &= (1ULL << (hi & 63)) - 1;
        }
        while (word != 0) {
          const uint32_t bit = static_cast<uint32_t>(std::countr_zero(word));
          // Length of the run of consecutive ones starting at `bit`.
          const uint64_t shifted = word >> bit;
          const uint32_t len =
              static_cast<uint32_t>(std::countr_one(shifted));
          emit((w << 6) + bit, len);
          if (bit + len >= 64) break;
          word &= ~0ULL << (bit + len);
        }
      }
      break;
    }
    case ContainerType::kRun: {
      for (const auto& [start, last] : chunk.runs) {
        if (last < lo) continue;
        if (start >= hi) break;
        const uint32_t s = std::max<uint32_t>(start, static_cast<uint32_t>(lo));
        const uint32_t e =
            std::min<uint32_t>(last, static_cast<uint32_t>(hi - 1));
        emit(s, e - s + 1);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Public mutators / queries
// ---------------------------------------------------------------------

void SelectionVector::Add(uint64_t pos) {
  Chunk* chunk = FindOrCreateChunk(pos >> 16);
  const uint32_t before = chunk->cardinality;
  AddToChunk(chunk, static_cast<uint16_t>(pos & 0xFFFF));
  cardinality_ += chunk->cardinality - before;
}

void SelectionVector::AddRange(uint64_t begin, uint64_t end) {
  while (begin < end) {
    const uint64_t key = begin >> 16;
    const uint64_t chunk_end = (key + 1) << 16;
    const uint64_t hi = end < chunk_end ? end : chunk_end;
    Chunk* chunk = FindOrCreateChunk(key);
    const uint32_t before = chunk->cardinality;
    AddRangeToChunk(chunk, static_cast<uint32_t>(begin & 0xFFFF),
                    static_cast<uint32_t>(((hi - 1) & 0xFFFF) + 1));
    cardinality_ += chunk->cardinality - before;
    begin = hi;
  }
}

bool SelectionVector::Contains(uint64_t pos) const {
  const Chunk* chunk = FindChunk(pos >> 16);
  return chunk != nullptr &&
         ChunkContains(*chunk, static_cast<uint16_t>(pos & 0xFFFF));
}

uint64_t SelectionVector::Rank(uint64_t pos) const {
  const uint64_t key = pos >> 16;
  uint64_t rank = 0;
  for (const Chunk& chunk : chunks_) {
    if (chunk.key < key) {
      rank += chunk.cardinality;
    } else if (chunk.key == key) {
      rank += ChunkRank(chunk, static_cast<uint32_t>(pos & 0xFFFF));
      break;
    } else {
      break;
    }
  }
  return rank;
}

bool SelectionVector::Select(uint64_t k, uint64_t* pos) const {
  if (k >= cardinality_) return false;
  for (const Chunk& chunk : chunks_) {
    if (k < chunk.cardinality) {
      *pos = (chunk.key << 16) |
             ChunkSelect(chunk, static_cast<uint32_t>(k));
      return true;
    }
    k -= chunk.cardinality;
  }
  return false;  // unreachable: cardinality_ matches the chunk sum
}

void SelectionVector::IntersectWith(const SelectionVector& other) {
  std::vector<Chunk> kept;
  uint64_t cardinality = 0;
  for (Chunk& chunk : chunks_) {
    const Chunk* theirs = other.FindChunk(chunk.key);
    if (theirs == nullptr) continue;
    Chunk merged;
    merged.key = chunk.key;
    for (const auto& [start, len] : MaterializeRuns(chunk, 0, kChunkSpan)) {
      for (uint32_t i = 0; i < len; ++i) {
        const uint16_t low = static_cast<uint16_t>(start + i);
        if (ChunkContains(*theirs, low)) merged.array.push_back(low);
      }
    }
    merged.cardinality = static_cast<uint32_t>(merged.array.size());
    if (merged.cardinality == 0) continue;
    if (merged.cardinality > kArrayToBitmapThreshold) ToBitmap(&merged);
    cardinality += merged.cardinality;
    kept.push_back(std::move(merged));
  }
  chunks_ = std::move(kept);
  cardinality_ = cardinality;
}

void SelectionVector::RunOptimize() {
  for (Chunk& chunk : chunks_) {
    const auto runs = MaterializeRuns(chunk, 0, kChunkSpan);
    const size_t run_bytes = runs.size() * 4;
    const size_t current_bytes = chunk.type == ContainerType::kArray
                                     ? chunk.array.size() * 2
                                 : chunk.type == ContainerType::kBitmap
                                     ? kBitmapWords * 8
                                     : chunk.runs.size() * 4;
    if (run_bytes >= current_bytes) continue;
    chunk.runs.clear();
    chunk.runs.reserve(runs.size());
    for (const auto& [start, len] : runs) {
      chunk.runs.emplace_back(static_cast<uint16_t>(start),
                              static_cast<uint16_t>(start + len - 1));
    }
    chunk.array.clear();
    chunk.array.shrink_to_fit();
    chunk.bitmap.clear();
    chunk.bitmap.shrink_to_fit();
    chunk.type = ContainerType::kRun;
  }
}

std::vector<uint64_t> SelectionVector::ToVector() const {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(cardinality_));
  ForEach([&out](uint64_t pos) { out.push_back(pos); });
  return out;
}

bool SelectionVector::SetEquals(const SelectionVector& other) const {
  if (cardinality_ != other.cardinality_) return false;
  return ToVector() == other.ToVector();
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace {

void PutU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(BytesView data, size_t offset) {
  return static_cast<uint16_t>(data[offset] |
                               static_cast<uint16_t>(data[offset + 1]) << 8);
}

uint64_t GetU64(BytesView data, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[offset + i]) << (8 * i);
  return v;
}

}  // namespace

void SelectionVector::Serialize(Bytes* out) const {
  bitpack::PutVarint(out, chunks_.size());
  for (const Chunk& chunk : chunks_) {
    bitpack::PutVarint(out, chunk.key);
    out->push_back(static_cast<uint8_t>(chunk.type));
    switch (chunk.type) {
      case ContainerType::kArray:
        bitpack::PutVarint(out, chunk.array.size());
        for (uint16_t v : chunk.array) PutU16(out, v);
        break;
      case ContainerType::kBitmap:
        for (uint64_t w : chunk.bitmap) PutU64(out, w);
        break;
      case ContainerType::kRun:
        bitpack::PutVarint(out, chunk.runs.size());
        for (const auto& [start, last] : chunk.runs) {
          PutU16(out, start);
          PutU16(out, last);
        }
        break;
    }
  }
}

Status SelectionVector::ValidateChunk(const Chunk& chunk) {
  switch (chunk.type) {
    case ContainerType::kArray:
      for (size_t i = 1; i < chunk.array.size(); ++i) {
        if (chunk.array[i] <= chunk.array[i - 1]) {
          return Status::Corruption("selection: array not strictly ascending");
        }
      }
      return Status::OK();
    case ContainerType::kBitmap:
      return Status::OK();
    case ContainerType::kRun:
      for (size_t i = 0; i < chunk.runs.size(); ++i) {
        if (chunk.runs[i].first > chunk.runs[i].second) {
          return Status::Corruption("selection: inverted run");
        }
        // Adjacent runs must have been coalesced, so require a gap.
        if (i > 0 && chunk.runs[i].first <=
                         static_cast<uint32_t>(chunk.runs[i - 1].second) + 1) {
          return Status::Corruption("selection: overlapping runs");
        }
      }
      return Status::OK();
  }
  return Status::Corruption("selection: unknown container type");
}

Result<SelectionVector> SelectionVector::Deserialize(BytesView data) {
  SelectionVector vec;
  size_t offset = 0;
  uint64_t num_chunks;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &num_chunks));
  // Each chunk costs at least 3 bytes (key, type, count), so a huge
  // declared count on a short buffer is rejected before any allocation.
  if (num_chunks > data.size() / 3 + 1) {
    return Status::Corruption("selection: chunk count too large");
  }
  vec.chunks_.reserve(static_cast<size_t>(num_chunks));
  uint64_t prev_key = 0;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    Chunk chunk;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &chunk.key));
    if (chunk.key > kMaxChunkKey) {
      return Status::Corruption("selection: chunk key out of range");
    }
    if (c > 0 && chunk.key <= prev_key) {
      return Status::Corruption("selection: chunk keys not ascending");
    }
    prev_key = chunk.key;
    if (offset >= data.size()) {
      return Status::Corruption("selection: truncated container type");
    }
    const uint8_t type = data[offset++];
    if (type > static_cast<uint8_t>(ContainerType::kRun)) {
      return Status::Corruption("selection: unknown container type");
    }
    chunk.type = static_cast<ContainerType>(type);
    switch (chunk.type) {
      case ContainerType::kArray: {
        uint64_t count;
        BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &count));
        if (count > kChunkSpan) {
          return Status::Corruption("selection: array count too large");
        }
        uint64_t bytes;
        if (!CheckedMul(count, uint64_t{2}, &bytes) ||
            !SliceFits(data.size(), offset, bytes)) {
          return Status::Corruption("selection: array truncated");
        }
        chunk.array.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          chunk.array.push_back(GetU16(data, offset));
          offset += 2;
        }
        chunk.cardinality = static_cast<uint32_t>(count);
        break;
      }
      case ContainerType::kBitmap: {
        if (!SliceFits(data.size(), offset, kBitmapWords * 8)) {
          return Status::Corruption("selection: bitmap truncated");
        }
        chunk.bitmap.reserve(kBitmapWords);
        for (size_t w = 0; w < kBitmapWords; ++w) {
          chunk.bitmap.push_back(GetU64(data, offset));
          offset += 8;
        }
        chunk.cardinality = BitmapCardinality(chunk.bitmap);
        break;
      }
      case ContainerType::kRun: {
        uint64_t count;
        BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &count));
        if (count > kChunkSpan / 2) {
          return Status::Corruption("selection: run count too large");
        }
        uint64_t bytes;
        if (!CheckedMul(count, uint64_t{4}, &bytes) ||
            !SliceFits(data.size(), offset, bytes)) {
          return Status::Corruption("selection: runs truncated");
        }
        chunk.runs.reserve(static_cast<size_t>(count));
        uint32_t cardinality = 0;
        for (uint64_t i = 0; i < count; ++i) {
          const uint16_t start = GetU16(data, offset);
          const uint16_t last = GetU16(data, offset + 2);
          offset += 4;
          chunk.runs.emplace_back(start, last);
          cardinality += last >= start ? last - start + 1 : 0;
        }
        chunk.cardinality = cardinality;
        break;
      }
    }
    BOS_RETURN_NOT_OK(ValidateChunk(chunk));
    if (chunk.cardinality == 0) {
      return Status::Corruption("selection: empty container");
    }
    vec.cardinality_ += chunk.cardinality;
    vec.chunks_.push_back(std::move(chunk));
  }
  if (offset != data.size()) {
    return Status::Corruption("selection: trailing bytes");
  }
  return vec;
}

}  // namespace bos::select
