#include "pfor/pfor_common.h"

#include "bitpack/bitpacking.h"
#include "util/bits.h"

namespace bos::pfor {

ChunkStats AnalyzeChunk(std::span<const int64_t> chunk) {
  const auto mm = bitpack::ComputeMinMax(chunk);
  ChunkStats stats;
  stats.min = mm.min;
  stats.max_delta = UnsignedRange(mm.min, mm.max);
  stats.maxbits = BitWidth(stats.max_delta);
  return stats;
}

std::vector<uint64_t> ChunkDeltas(std::span<const int64_t> chunk, int64_t min) {
  std::vector<uint64_t> deltas(chunk.size());
  for (size_t i = 0; i < chunk.size(); ++i) {
    deltas[i] = UnsignedRange(min, chunk[i]);
  }
  return deltas;
}

}  // namespace bos::pfor
