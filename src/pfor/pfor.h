#ifndef BOS_PFOR_PFOR_H_
#define BOS_PFOR_PFOR_H_

#include "core/packing.h"

namespace bos::pfor {

/// \brief PFOR (Zukowski et al., ICDE'06): patched frame-of-reference.
///
/// Each 128-value chunk picks a slot width b; values whose delta from the
/// chunk minimum does not fit become exceptions. Exception *positions* are
/// kept as an in-slot linked list (each exception's slot holds the gap to
/// the next exception), which forces a *compulsory* exception whenever a
/// gap would exceed 2^b — the weakness the paper calls out in §II-C.
/// Exception values are stored uncompressed (8 bytes each), as in the
/// original design.
class PforOperator final : public core::PackingOperator {
 public:
  std::string_view name() const override { return "PFOR"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief NewPFOR (Yan et al., WWW'09): exceptions keep their low b bits
/// in the slot; high bits and positions are compressed with Simple-8b, so
/// compulsory exceptions disappear. b follows the paper's heuristic of
/// letting ~10% of the values be outliers (the 90th-percentile bit-width).
class NewPforOperator final : public core::PackingOperator {
 public:
  std::string_view name() const override { return "NEWPFOR"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief OptPFOR (Yan et al., WWW'09): NewPFOR's layout with b chosen per
/// chunk by exhaustively minimizing the actual encoded size.
class OptPforOperator final : public core::PackingOperator {
 public:
  std::string_view name() const override { return "OPTPFOR"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief FastPFOR (Lemire & Boytsov, SP&E'15): per-chunk slot width with
/// exception high bits grouped by bit-width into shared arrays packed at
/// the end of the block — the "pages" of the original, at block scope.
class FastPforOperator final : public core::PackingOperator {
 public:
  std::string_view name() const override { return "FASTPFOR"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;

 private:
  Status DecodeImpl(BytesView data, size_t* offset,
                    std::vector<int64_t>* out) const;
};

}  // namespace bos::pfor

#endif  // BOS_PFOR_PFOR_H_
