#include "pfor/pfor.h"

#include <algorithm>
#include <array>
#include <limits>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/bitpacking.h"
#include "bitpack/simple8b.h"
#include "bitpack/varint.h"
#include "core/block_io.h"
#include "pfor/pfor_common.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::pfor {
namespace {

using bos::core::kMaxBlockValues;

// The PFOR-family counterpart of the BOS per-block decision stats: every
// *emitted* chunk records its chosen slot width and exception count (for
// OptPFOR only the winning candidate counts, not the search attempts).
enum class ChunkFamily { kPfor = 0, kNewPfor = 1, kFastPfor = 2 };

void RecordChunkStats(ChunkFamily family, int b, size_t exceptions) {
#if BOS_TELEMETRY_ENABLED
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::Registry::Global();
  static telemetry::Counter* chunk_counters[3] = {
      &registry.GetCounter("bos.pfor.encode.chunks.pfor"),
      &registry.GetCounter("bos.pfor.encode.chunks.newpfor"),
      &registry.GetCounter("bos.pfor.encode.chunks.fastpfor"),
  };
  chunk_counters[static_cast<int>(family)]->Add(1);
  static telemetry::Counter& total_exceptions =
      registry.GetCounter("bos.pfor.encode.exceptions");
  total_exceptions.Add(exceptions);
  static telemetry::Histogram& slot_width = registry.GetHistogram(
      "bos.pfor.encode.slot_width", telemetry::WidthBounds());
  slot_width.Record(static_cast<uint64_t>(b));
  static telemetry::Histogram& per_chunk = registry.GetHistogram(
      "bos.pfor.encode.exceptions_per_chunk",
      telemetry::ExponentialBounds(1, 2, 8));
  per_chunk.Record(exceptions);
#else
  (void)family;
  (void)b;
  (void)exceptions;
#endif
}

// Rejection funnel for the decode entry points: corrupt input is counted
// once per Decode call so fuzzing and CI can observe how often adversarial
// bytes are turned away (mirrors bos.codecs.decode.corrupt_rejected).
Status CountPforRejection(Status st) {
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.pfor.decode.corrupt_rejected", 1);
  }
  return st;
}

// ---------------------------------------------------------------------
// PFOR (Zukowski et al.): in-slot linked-list positions, compulsory
// exceptions, uncompressed exception values.
// ---------------------------------------------------------------------

// Exception positions for slot width b, including the compulsory ones
// forced by the linked list's maximum stride of 2^b.
std::vector<int> PforExceptionPositions(const std::vector<uint64_t>& deltas,
                                        int b) {
  std::vector<int> mandatory;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (BitWidth(deltas[i]) > b) mandatory.push_back(static_cast<int>(i));
  }
  if (mandatory.empty()) return {};
  // The chain stores (next - cur - 1) in b bits, so next - cur <= 2^b.
  const int64_t max_stride = b >= 31 ? (1LL << 31) : (1LL << b);
  std::vector<int> all;
  all.push_back(mandatory[0]);
  int prev = mandatory[0];
  for (size_t k = 1; k < mandatory.size(); ++k) {
    const int next = mandatory[k];
    while (next - prev > max_stride) {
      prev += static_cast<int>(max_stride);
      all.push_back(prev);
    }
    all.push_back(next);
    prev = next;
  }
  return all;
}

int ChoosePforWidth(const std::vector<uint64_t>& deltas, int maxbits) {
  uint64_t best_cost = std::numeric_limits<uint64_t>::max();
  int best_b = maxbits;
  for (int b = 0; b <= maxbits; ++b) {
    const auto exceptions = PforExceptionPositions(deltas, b);
    const uint64_t cost =
        deltas.size() * static_cast<uint64_t>(b) + exceptions.size() * 64;
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

void EncodePforChunk(std::span<const int64_t> chunk, Bytes* out) {
  const ChunkStats stats = AnalyzeChunk(chunk);
  const std::vector<uint64_t> deltas = ChunkDeltas(chunk, stats.min);
  const int b = ChoosePforWidth(deltas, stats.maxbits);
  const std::vector<int> exceptions = PforExceptionPositions(deltas, b);
  RecordChunkStats(ChunkFamily::kPfor, b, exceptions.size());

  bitpack::PutSignedVarint(out, stats.min);
  out->push_back(static_cast<uint8_t>(b));
  bitpack::PutVarint(out, exceptions.size());
  if (!exceptions.empty()) bitpack::PutVarint(out, exceptions.front());

  // Slots: chain strides for exceptions, deltas otherwise.
  std::vector<uint64_t> slots(deltas.size());
  size_t e = 0;
  const uint64_t slot_mask = b == 0 ? 0 : (b == 64 ? ~0ULL : (1ULL << b) - 1);
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (e < exceptions.size() && static_cast<int>(i) == exceptions[e]) {
      slots[i] = (e + 1 < exceptions.size())
                     ? static_cast<uint64_t>(exceptions[e + 1] - exceptions[e] - 1)
                     : 0;
      ++e;
    } else {
      slots[i] = deltas[i] & slot_mask;
    }
  }
  bitpack::PackFixedAligned(slots, b, out);
  for (int pos : exceptions) PutFixed<uint64_t>(out, deltas[pos]);
}

Status DecodePforChunk(BytesView data, size_t* offset, size_t chunk_n,
                       std::vector<int64_t>* out) {
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  if (*offset >= data.size()) return Status::Corruption("PFOR chunk truncated");
  const int b = data[(*offset)++];
  if (b > 64) return Status::Corruption("PFOR width > 64");
  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &num_exc));
  if (num_exc > chunk_n) return Status::Corruption("PFOR exception count");
  uint64_t first_idx = 0;
  if (num_exc > 0) {
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &first_idx));
    if (first_idx >= chunk_n) return Status::Corruption("PFOR chain head");
  }

  const uint64_t slot_bytes = BitsToBytes(chunk_n * static_cast<uint64_t>(b));
  if (!SliceFits(data.size(), *offset, slot_bytes + num_exc * 8)) {
    return Status::Corruption("PFOR payload truncated");
  }
  std::vector<uint64_t> slots(chunk_n);
  BOS_RETURN_NOT_OK(
      bitpack::UnpackFixedAligned(data, offset, b, chunk_n, slots.data()));

  std::vector<uint64_t> exc(num_exc);
  for (auto& v : exc) {
    GetFixed<uint64_t>(data, *offset, &v);
    *offset += 8;
  }

  // Patch along the chain in place: each stride is read before its slot
  // is overwritten, and the chain only ever moves forward.
  uint64_t pos = first_idx;
  for (uint64_t i = 0; i < num_exc; ++i) {
    if (pos >= chunk_n) return Status::Corruption("PFOR chain out of range");
    const uint64_t stride = slots[pos];
    slots[pos] = exc[i];
    pos = pos + 1 + stride;
  }
  const size_t old_size = out->size();
  out->resize(old_size + chunk_n);
  int64_t* dst = out->data() + old_size;
  for (uint64_t i = 0; i < chunk_n; ++i) {
    dst[i] = static_cast<int64_t>(static_cast<uint64_t>(min) + slots[i]);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// NewPFOR / OptPFOR (Yan et al.): low bits in slots, high bits and
// positions compressed with Simple-8b.
// ---------------------------------------------------------------------

// Simple-8b holds at most 60-bit values, so the slot width must leave at
// most 60 high bits.
int MinWidthForSimple8b(int maxbits) { return std::max(0, maxbits - 60); }

// `record_stats` is false for OptPFOR's search attempts, so only chunks
// that actually land in the output stream reach the telemetry counters.
Status EncodeNewPforChunk(std::span<const int64_t> chunk, int b, Bytes* out,
                          bool record_stats = true) {
  const ChunkStats stats = AnalyzeChunk(chunk);
  const std::vector<uint64_t> deltas = ChunkDeltas(chunk, stats.min);

  std::vector<uint64_t> positions, highs;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (BitWidth(deltas[i]) > b) {
      positions.push_back(i);
      highs.push_back(deltas[i] >> b);
    }
  }
  if (record_stats) {
    RecordChunkStats(ChunkFamily::kNewPfor, b, positions.size());
  }

  bitpack::PutSignedVarint(out, stats.min);
  out->push_back(static_cast<uint8_t>(b));
  bitpack::PutVarint(out, positions.size());

  const uint64_t low_mask = b == 0 ? 0 : (b == 64 ? ~0ULL : (1ULL << b) - 1);
  std::vector<uint64_t> slots(deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) slots[i] = deltas[i] & low_mask;
  bitpack::PackFixedAligned(slots, b, out);

  if (!positions.empty()) {
    // Positions as first + (gap - 1) deltas: small values for Simple-8b.
    std::vector<uint64_t> pos_deltas;
    pos_deltas.push_back(positions[0]);
    for (size_t i = 1; i < positions.size(); ++i) {
      pos_deltas.push_back(positions[i] - positions[i - 1] - 1);
    }
    BOS_RETURN_NOT_OK(bitpack::Simple8bEncode(pos_deltas, out));
    BOS_RETURN_NOT_OK(bitpack::Simple8bEncode(highs, out));
  }
  return Status::OK();
}

Status DecodeNewPforChunk(BytesView data, size_t* offset, size_t chunk_n,
                          std::vector<int64_t>* out) {
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  if (*offset >= data.size()) return Status::Corruption("NewPFOR chunk truncated");
  const int b = data[(*offset)++];
  if (b > 64) return Status::Corruption("NewPFOR width > 64");
  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &num_exc));
  if (num_exc > chunk_n) return Status::Corruption("NewPFOR exception count");

  std::vector<uint64_t> deltas(chunk_n);
  BOS_RETURN_NOT_OK(
      bitpack::UnpackFixedAligned(data, offset, b, chunk_n, deltas.data()));

  if (num_exc > 0) {
    std::vector<uint64_t> pos_deltas, highs;
    BOS_RETURN_NOT_OK(bitpack::Simple8bDecode(data, offset, num_exc, &pos_deltas));
    BOS_RETURN_NOT_OK(bitpack::Simple8bDecode(data, offset, num_exc, &highs));
    uint64_t pos = 0;
    for (uint64_t i = 0; i < num_exc; ++i) {
      pos = (i == 0) ? pos_deltas[0] : pos + 1 + pos_deltas[i];
      if (pos >= chunk_n) return Status::Corruption("NewPFOR position range");
      deltas[pos] |= highs[i] << b;
    }
  }
  const size_t old_size = out->size();
  out->resize(old_size + chunk_n);
  int64_t* dst = out->data() + old_size;
  for (uint64_t i = 0; i < chunk_n; ++i) {
    dst[i] = static_cast<int64_t>(static_cast<uint64_t>(min) + deltas[i]);
  }
  return Status::OK();
}

// NewPFOR heuristic: let ~10% of the chunk be exceptions (the paper's
// "top 10% of values as outliers", §I-A2).
int ChooseNewPforWidth(std::span<const int64_t> chunk) {
  const ChunkStats stats = AnalyzeChunk(chunk);
  std::vector<int> widths;
  widths.reserve(chunk.size());
  for (int64_t v : chunk) {
    widths.push_back(BitWidth(UnsignedRange(stats.min, v)));
  }
  std::sort(widths.begin(), widths.end());
  const size_t idx = (chunk.size() * 9 + 9) / 10;  // ceil(0.9 n)
  const int b = widths[std::min(idx, chunk.size()) - 1];
  return std::max(b, MinWidthForSimple8b(stats.maxbits));
}

// OptPFOR: exhaustive minimization of the real encoded size.
Status EncodeOptPforChunk(std::span<const int64_t> chunk, Bytes* out) {
  const ChunkStats stats = AnalyzeChunk(chunk);
  Bytes best;
  int best_b = 0;
  for (int b = MinWidthForSimple8b(stats.maxbits); b <= stats.maxbits; ++b) {
    BOS_TELEMETRY_COUNTER_ADD("bos.pfor.encode.optpfor_candidates", 1);
    Bytes attempt;
    BOS_RETURN_NOT_OK(
        EncodeNewPforChunk(chunk, b, &attempt, /*record_stats=*/false));
    if (best.empty() || attempt.size() < best.size()) {
      best = std::move(attempt);
      best_b = b;
    }
  }
#if BOS_TELEMETRY_ENABLED
  if (telemetry::Enabled()) {
    const std::vector<uint64_t> deltas = ChunkDeltas(chunk, stats.min);
    size_t exceptions = 0;
    for (uint64_t d : deltas) exceptions += BitWidth(d) > best_b ? 1 : 0;
    RecordChunkStats(ChunkFamily::kNewPfor, best_b, exceptions);
  }
#else
  (void)best_b;
#endif
  out->insert(out->end(), best.begin(), best.end());
  return Status::OK();
}

// ---------------------------------------------------------------------
// FastPFOR (Lemire & Boytsov): per-chunk low bits, exception high bits
// grouped by bit-width into shared arrays at block scope.
// ---------------------------------------------------------------------

int ChooseFastPforWidth(const std::vector<uint64_t>& deltas, int maxbits) {
  // Histogram of value bit-widths, as in the original's getBestBFromData.
  std::array<uint32_t, 65> freq{};
  for (uint64_t d : deltas) ++freq[BitWidth(d)];
  uint64_t best_cost = std::numeric_limits<uint64_t>::max();
  int best_b = maxbits;
  uint32_t exceptions = 0;
  for (int b = maxbits; b >= 0; --b) {
    // exceptions = count of widths > b.
    if (b < maxbits) exceptions += freq[b + 1];
    const uint64_t cost = deltas.size() * static_cast<uint64_t>(b) +
                          exceptions * static_cast<uint64_t>(maxbits - b + 8);
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

struct FastChunkMeta {
  int b = 0;
  int maxbits = 0;
  std::vector<uint8_t> positions;
};

}  // namespace

// ---------------------------------------------------------------------
// Operator entry points
// ---------------------------------------------------------------------

Status PforOperator::Encode(std::span<const int64_t> values, Bytes* out) const {
  BOS_TRACE_SPAN("bos.pfor.encode.block");
  BOS_TRACE_ANNOTATE("op", "PFOR");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += kChunkSize) {
    const size_t len = std::min(kChunkSize, values.size() - start);
    EncodePforChunk(values.subspan(start, len), out);
  }
  return Status::OK();
}

Status PforOperator::Decode(BytesView data, size_t* offset,
                            std::vector<int64_t>* out) const {
  return CountPforRejection([&]() -> Status {
    uint64_t n;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
    if (n > kMaxBlockValues) return Status::Corruption("PFOR: n too large");
    out->reserve(out->size() + n);
    for (uint64_t done = 0; done < n; done += kChunkSize) {
      const size_t len = std::min<uint64_t>(kChunkSize, n - done);
      BOS_RETURN_NOT_OK(DecodePforChunk(data, offset, len, out));
    }
    return Status::OK();
  }());
}

Status NewPforOperator::Encode(std::span<const int64_t> values,
                               Bytes* out) const {
  BOS_TRACE_SPAN("bos.pfor.encode.block");
  BOS_TRACE_ANNOTATE("op", "NEWPFOR");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += kChunkSize) {
    const size_t len = std::min(kChunkSize, values.size() - start);
    const auto chunk = values.subspan(start, len);
    BOS_RETURN_NOT_OK(EncodeNewPforChunk(chunk, ChooseNewPforWidth(chunk), out));
  }
  return Status::OK();
}

Status NewPforOperator::Decode(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) const {
  return CountPforRejection([&]() -> Status {
    uint64_t n;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
    if (n > kMaxBlockValues) return Status::Corruption("NewPFOR: n too large");
    out->reserve(out->size() + n);
    for (uint64_t done = 0; done < n; done += kChunkSize) {
      const size_t len = std::min<uint64_t>(kChunkSize, n - done);
      BOS_RETURN_NOT_OK(DecodeNewPforChunk(data, offset, len, out));
    }
    return Status::OK();
  }());
}

Status OptPforOperator::Encode(std::span<const int64_t> values,
                               Bytes* out) const {
  BOS_TRACE_SPAN("bos.pfor.encode.block");
  BOS_TRACE_ANNOTATE("op", "OPTPFOR");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += kChunkSize) {
    const size_t len = std::min(kChunkSize, values.size() - start);
    BOS_RETURN_NOT_OK(EncodeOptPforChunk(values.subspan(start, len), out));
  }
  return Status::OK();
}

Status OptPforOperator::Decode(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) const {
  // Same chunk layout as NewPFOR; only the width selection differs.
  NewPforOperator same_layout;
  return same_layout.Decode(data, offset, out);
}

Status FastPforOperator::Encode(std::span<const int64_t> values,
                                Bytes* out) const {
  BOS_TRACE_SPAN("bos.pfor.encode.block");
  BOS_TRACE_ANNOTATE("op", "FASTPFOR");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return Status::OK();

  // Bucketed high bits shared across chunks, keyed by width.
  std::array<std::vector<uint64_t>, 65> buckets;

  for (size_t start = 0; start < values.size(); start += kChunkSize) {
    const size_t len = std::min(kChunkSize, values.size() - start);
    const auto chunk = values.subspan(start, len);
    const ChunkStats stats = AnalyzeChunk(chunk);
    const std::vector<uint64_t> deltas = ChunkDeltas(chunk, stats.min);
    const int b = ChooseFastPforWidth(deltas, stats.maxbits);
    const int w = stats.maxbits - b;

    std::vector<uint8_t> positions;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (BitWidth(deltas[i]) > b) {
        positions.push_back(static_cast<uint8_t>(i));
        buckets[w].push_back(deltas[i] >> b);
      }
    }
    RecordChunkStats(ChunkFamily::kFastPfor, b, positions.size());

    bitpack::PutSignedVarint(out, stats.min);
    out->push_back(static_cast<uint8_t>(b));
    out->push_back(static_cast<uint8_t>(stats.maxbits));
    out->push_back(static_cast<uint8_t>(positions.size()));
    out->insert(out->end(), positions.begin(), positions.end());

    const uint64_t low_mask = b == 0 ? 0 : (b == 64 ? ~0ULL : (1ULL << b) - 1);
    std::vector<uint64_t> slots(deltas.size());
    for (size_t i = 0; i < deltas.size(); ++i) slots[i] = deltas[i] & low_mask;
    bitpack::PackFixedAligned(slots, b, out);
  }

  // Trailer: one packed array per non-empty width bucket.
  for (int w = 1; w <= 64; ++w) {
    if (buckets[w].empty()) continue;
    out->push_back(static_cast<uint8_t>(w));
    bitpack::PutVarint(out, buckets[w].size());
    bitpack::PackFixedAligned(buckets[w], w, out);
  }
  out->push_back(0);  // terminator
  return Status::OK();
}

Status FastPforOperator::Decode(BytesView data, size_t* offset,
                                std::vector<int64_t>* out) const {
  return CountPforRejection(DecodeImpl(data, offset, out));
}

Status FastPforOperator::DecodeImpl(BytesView data, size_t* offset,
                                    std::vector<int64_t>* out) const {
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > kMaxBlockValues) return Status::Corruption("FastPFOR: n too large");
  if (n == 0) return Status::OK();

  struct PendingChunk {
    int64_t min = 0;
    int b = 0;
    int w = 0;
    std::vector<uint8_t> positions;
    std::vector<uint64_t> deltas;
  };
  std::vector<PendingChunk> chunks;
  for (uint64_t done = 0; done < n; done += kChunkSize) {
    const size_t len = std::min<uint64_t>(kChunkSize, n - done);
    PendingChunk pc;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &pc.min));
    if (!SliceFits(data.size(), *offset, 3)) {
      return Status::Corruption("FastPFOR truncated");
    }
    pc.b = data[(*offset)++];
    const int maxbits = data[(*offset)++];
    const int num_exc = data[(*offset)++];
    if (pc.b > 64 || maxbits > 64 || pc.b > maxbits ||
        num_exc > static_cast<int>(len)) {
      return Status::Corruption("FastPFOR chunk header");
    }
    pc.w = maxbits - pc.b;
    if (!SliceFits(data.size(), *offset, num_exc)) {
      return Status::Corruption("FastPFOR positions truncated");
    }
    pc.positions.assign(data.begin() + *offset, data.begin() + *offset + num_exc);
    *offset += num_exc;
    for (uint8_t p : pc.positions) {
      if (p >= len) return Status::Corruption("FastPFOR position range");
    }

    pc.deltas.resize(len);
    BOS_RETURN_NOT_OK(bitpack::UnpackFixedAligned(data, offset, pc.b, len,
                                                  pc.deltas.data()));
    chunks.push_back(std::move(pc));
  }

  // Trailer buckets.
  std::array<std::vector<uint64_t>, 65> buckets;
  for (;;) {
    if (*offset >= data.size()) return Status::Corruption("FastPFOR trailer");
    const int w = data[(*offset)++];
    if (w == 0) break;
    if (w > 64) return Status::Corruption("FastPFOR trailer width");
    uint64_t count;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &count));
    if (count > n) return Status::Corruption("FastPFOR trailer count");
    buckets[w].resize(count);
    BOS_RETURN_NOT_OK(bitpack::UnpackFixedAligned(data, offset, w, count,
                                                  buckets[w].data()));
  }

  std::array<size_t, 65> cursors{};
  size_t write_pos = out->size();
  out->resize(write_pos + n);
  for (PendingChunk& pc : chunks) {
    // Each chunk is consumed exactly once, so patch its deltas in place.
    for (uint8_t p : pc.positions) {
      if (cursors[pc.w] >= buckets[pc.w].size()) {
        return Status::Corruption("FastPFOR bucket underflow");
      }
      pc.deltas[p] |= buckets[pc.w][cursors[pc.w]++] << pc.b;
    }
    int64_t* dst = out->data() + write_pos;
    for (size_t i = 0; i < pc.deltas.size(); ++i) {
      dst[i] = static_cast<int64_t>(static_cast<uint64_t>(pc.min) + pc.deltas[i]);
    }
    write_pos += pc.deltas.size();
  }
  return Status::OK();
}

}  // namespace bos::pfor
