#ifndef BOS_PFOR_PFOR_COMMON_H_
#define BOS_PFOR_PFOR_COMMON_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bos::pfor {

/// All PFOR-family operators work on sub-blocks of 128 values, the
/// granularity of NewPFOR/OptPFOR (Yan et al.) and FastPFOR (Lemire &
/// Boytsov).
inline constexpr size_t kChunkSize = 128;

/// Frame-of-reference statistics of one chunk.
struct ChunkStats {
  int64_t min = 0;
  uint64_t max_delta = 0;  ///< max - min as unsigned
  int maxbits = 0;         ///< BitWidth(max_delta)
};

ChunkStats AnalyzeChunk(std::span<const int64_t> chunk);

/// Deltas of a chunk relative to its minimum.
std::vector<uint64_t> ChunkDeltas(std::span<const int64_t> chunk,
                                  int64_t min);

}  // namespace bos::pfor

#endif  // BOS_PFOR_PFOR_COMMON_H_
