#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace bos::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

// Appends printf-formatted text to `out` (metric dumps are all short
// fixed-shape lines, so a stack buffer suffices).
template <typename... Args>
void Appendf(std::string* out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  out->append(buf, static_cast<size_t>(std::min<int>(n, sizeof(buf) - 1)));
}

// JSON string escaping for metric names (conservative: names should be
// plain `bos.x.y` but dynamic suffixes may carry user spec strings).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    // Tolerate unsorted input rather than corrupting Record's scan.
    if (bounds_[i + 1] <= bounds_[i]) {
      std::sort(bounds_.begin(), bounds_.end());
      bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                    bounds_.end());
      break;
    }
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Record(uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cumulative + in_bucket < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    // Overflow samples have no upper edge: clamp to the largest finite
    // bound (mirrors Prometheus' histogram_quantile).
    if (i >= bounds_.size()) {
      return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
    }
    const double hi = static_cast<double>(bounds_[i]);
    const double lo = i == 0 ? 0 : static_cast<double>(bounds_[i - 1]);
    return lo + (hi - lo) * ((target - cumulative) / in_bucket);
  }
  return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> LinearBounds(uint64_t lo, uint64_t hi, uint64_t step) {
  std::vector<uint64_t> bounds;
  if (step == 0) step = 1;
  for (uint64_t b = lo; b <= hi; b += step) bounds.push_back(b);
  return bounds;
}

std::vector<uint64_t> ExponentialBounds(uint64_t start, uint64_t factor,
                                        int count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(static_cast<size_t>(count));
  uint64_t b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    if (b > ~0ULL / factor) break;  // saturated; stop before overflow
    b *= factor;
  }
  return bounds;
}

const std::vector<uint64_t>& WidthBounds() {
  static const std::vector<uint64_t> bounds = {0,  1,  2,  3,  4,  6,  8, 10,
                                               12, 16, 20, 24, 32, 40, 48, 56,
                                               64};
  return bounds;
}

const std::vector<uint64_t>& LatencyBoundsNs() {
  // 64 ns .. ~1.1 s in powers of four: spans cover everything from one
  // block search to a WAL replay.
  static const std::vector<uint64_t> bounds = ExponentialBounds(64, 4, 13);
  return bounds;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::span<const uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<uint64_t>(
                          bounds.begin(), bounds.end())))
             .first;
  }
  return *it->second;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string Registry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (!CompiledIn()) {
    out.append("telemetry: compiled out (rebuild with "
               "-DBOS_ENABLE_TELEMETRY=ON)\n");
    return out;
  }
  out.append("== telemetry snapshot ==\n");
  if (!counters_.empty()) out.append("counters:\n");
  for (const auto& [name, c] : counters_) {
    Appendf(&out, "  %-44s %12" PRIu64 "\n", name.c_str(), c->value());
  }
  if (!gauges_.empty()) out.append("gauges:\n");
  for (const auto& [name, g] : gauges_) {
    Appendf(&out, "  %-44s %12" PRId64 "\n", name.c_str(), g->value());
  }
  if (!histograms_.empty()) out.append("histograms:\n");
  for (const auto& [name, h] : histograms_) {
    const uint64_t count = h->count();
    const uint64_t sum = h->sum();
    Appendf(&out,
            "  %-44s count=%-10" PRIu64 " sum=%-14" PRIu64
            " avg=%.1f p50=%.0f p95=%.0f p99=%.0f\n",
            name.c_str(), count, sum,
            count == 0 ? 0.0
                       : static_cast<double>(sum) / static_cast<double>(count),
            h->Quantile(0.50), h->Quantile(0.95), h->Quantile(0.99));
    const auto& bounds = h->bounds();
    const auto buckets = h->BucketCounts();
    out.append("   ");
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      if (i < bounds.size()) {
        Appendf(&out, " le%" PRIu64 ":%" PRIu64, bounds[i], buckets[i]);
      } else {
        Appendf(&out, " inf:%" PRIu64, buckets[i]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  Appendf(&out, "{\"schema_version\":%d,\"enabled\":", kSchemaVersion);
  out.append(CompiledIn() && Enabled() ? "true" : "false");
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    Appendf(&out, ":%" PRIu64, c->value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    Appendf(&out, ":%" PRId64, g->value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    Appendf(&out,
            ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
            ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"buckets\":[",
            h->count(), h->sum(),
            static_cast<uint64_t>(h->Quantile(0.50) + 0.5),
            static_cast<uint64_t>(h->Quantile(0.95) + 0.5),
            static_cast<uint64_t>(h->Quantile(0.99) + 0.5));
    const auto& bounds = h->bounds();
    const auto buckets = h->BucketCounts();
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (i < bounds.size()) {
        Appendf(&out, "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}", bounds[i],
                buckets[i]);
      } else {
        Appendf(&out, "{\"le\":\"+Inf\",\"count\":%" PRIu64 "}", buckets[i]);
      }
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

// ---------------------------------------------------------------------
// Span clock
// ---------------------------------------------------------------------

uint64_t SpanClockTicks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now()
                                       .time_since_epoch())
                                   .count());
#endif
}

namespace {

// Nanoseconds per span-clock tick. On x86-64 the TSC rate is calibrated
// once against steady_clock over ~2 ms (first span pays it); elsewhere
// the clock already counts nanoseconds.
double NanosPerTick() {
#if defined(__x86_64__)
  static const double npt = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = __rdtsc();
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count();
      if (ns >= 2'000'000) {
        const uint64_t c1 = __rdtsc();
        return c1 > c0 ? static_cast<double>(ns) / static_cast<double>(c1 - c0)
                       : 1.0;
      }
    }
  }();
  return npt;
#else
  return 1.0;
#endif
}

}  // namespace

uint64_t SpanTicksToNanos(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NanosPerTick());
}

}  // namespace bos::telemetry
