#ifndef BOS_TELEMETRY_TELEMETRY_H_
#define BOS_TELEMETRY_TELEMETRY_H_

/// \file
/// In-process telemetry: named counters, gauges and fixed-bucket
/// histograms in a global registry, plus RAII spans that time a scope on
/// the TSC clock and record the duration (nanoseconds) into a histogram.
///
/// Two gates control cost:
///
///  * **Compile time** — `BOS_TELEMETRY_ENABLED` (set by the CMake option
///    `BOS_ENABLE_TELEMETRY`, default ON). When 0, every `BOS_TELEMETRY_*`
///    instrumentation macro expands to nothing, so the instrumented hot
///    paths are bit-for-bit the uninstrumented code. The registry types
///    below still exist (stubs report themselves as compiled out) so
///    tools and tests build in both configurations.
///  * **Run time** — `SetEnabled(false)` (a relaxed atomic flag) makes
///    every macro site skip recording. Telemetry only ever *observes*:
///    toggling it must never change any encoded byte stream
///    (tests/telemetry_diff_test.cc enforces this).
///
/// Thread safety: metric registration takes a mutex; the returned
/// references stay valid for the process lifetime. Counter/gauge updates
/// are relaxed atomics; histogram bins are per-bucket relaxed atomics, so
/// concurrent Record() calls never lose increments (a snapshot taken
/// mid-update may be transiently skewed between `count` and a bin by one
/// in-flight sample, which is acceptable for statistics).
///
/// Naming convention: `bos.<subsystem>.<metric>` with dots, all lower
/// case, e.g. `bos.core.encode.mode_bitmap` (DESIGN.md section 6).

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#if !defined(BOS_TELEMETRY_ENABLED)
#define BOS_TELEMETRY_ENABLED 1
#endif

namespace bos::telemetry {

/// True when the library was compiled with telemetry support.
constexpr bool CompiledIn() { return BOS_TELEMETRY_ENABLED != 0; }

/// Version of the machine-readable output schemas. Emitted as
/// `schema_version` by every JSON producer in the toolchain — stats
/// snapshots, trace exports and `boscli inspect` — so downstream
/// consumers can match parsers to formats.
constexpr int kSchemaVersion = 1;

/// Runtime master switch for the instrumentation macros. Defaults to
/// enabled; a no-op in builds with telemetry compiled out.
void SetEnabled(bool enabled);
bool Enabled();

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written signed level (queue depths, sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned samples. Bucket `i` counts
/// samples `<= bounds[i]` (bounds ascending); one extra overflow bucket
/// catches everything larger. Bounds are fixed at registration, so
/// recording is a branchless-ish linear scan over a handful of bounds
/// plus three relaxed atomic adds — no allocation, no lock.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  /// Estimates the `q`-quantile (0 < q <= 1) by linear interpolation
  /// inside the bucket the target rank falls in; samples in the overflow
  /// bucket clamp to the largest finite bound. Returns 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Common bucket layouts.
std::vector<uint64_t> LinearBounds(uint64_t lo, uint64_t hi, uint64_t step);
std::vector<uint64_t> ExponentialBounds(uint64_t start, uint64_t factor,
                                        int count);
/// Bit-width buckets for the 0..64 packing widths.
const std::vector<uint64_t>& WidthBounds();
/// Nanosecond latency buckets, 64 ns .. ~1 s in powers of four.
const std::vector<uint64_t>& LatencyBoundsNs();

/// \brief Named-metric registry. `Global()` is the process-wide instance
/// every instrumentation macro records into; independent instances can be
/// constructed for tests. Get* registers on first use and returns the
/// same object for the same name afterwards (for histograms, the bounds
/// of the first registration win).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          std::span<const uint64_t> bounds);

  /// Zeroes every metric; registrations (and histogram bounds) persist.
  void ResetAll();

  /// Human-readable dump, one metric per line, sorted by name.
  std::string SnapshotText() const;

  /// Stable JSON object:
  /// {"schema_version":N,"enabled":bool,
  ///  "counters":{name:n,...},"gauges":{name:n,...},
  ///  "histograms":{name:{"count":n,"sum":n,"p50":n,"p95":n,"p99":n,
  ///                      "buckets":[{"le":bound,"count":n},...,
  ///                                 {"le":"+Inf","count":n}]},...}}
  /// Metrics are sorted by name and all numbers are integers (quantile
  /// estimates are rounded), so two snapshots of identical metric values
  /// are byte-identical strings.
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mu_;
  // Node-based maps: references handed out stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Ticks of the span clock: TSC on x86-64 (a few ns per read),
/// steady_clock nanoseconds elsewhere.
uint64_t SpanClockTicks();
/// Converts span-clock ticks to nanoseconds (TSC rate is calibrated
/// against steady_clock once, lazily, in ~2 ms).
uint64_t SpanTicksToNanos(uint64_t ticks);

/// \brief RAII span: on destruction records the elapsed scope time in
/// nanoseconds into `hist`. A null histogram makes the span inert (the
/// runtime-disabled case) — it then never reads the clock.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* hist)
      : hist_(hist), start_(hist != nullptr ? SpanClockTicks() : 0) {}
  ~ScopedSpan() {
    if (hist_ != nullptr) {
      hist_->Record(SpanTicksToNanos(SpanClockTicks() - start_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace bos::telemetry

// ---------------------------------------------------------------------
// Instrumentation macros — the only way library code should record.
// Each site caches its metric reference in a function-local static, so
// the registry lookup happens once per site, and every update is gated
// on the runtime switch. With telemetry compiled out they vanish.
// ---------------------------------------------------------------------

#define BOS_TELEMETRY_CONCAT_(a, b) a##b
#define BOS_TELEMETRY_CONCAT(a, b) BOS_TELEMETRY_CONCAT_(a, b)
#define BOS_TELEMETRY_UNIQ(base) BOS_TELEMETRY_CONCAT(base, __LINE__)

#if BOS_TELEMETRY_ENABLED

/// Adds `delta` to counter `name` (a string literal).
#define BOS_TELEMETRY_COUNTER_ADD(name, delta)                        \
  do {                                                                \
    if (::bos::telemetry::Enabled()) {                                \
      static ::bos::telemetry::Counter& bos_telemetry_counter_ =      \
          ::bos::telemetry::Registry::Global().GetCounter(name);      \
      bos_telemetry_counter_.Add(delta);                              \
    }                                                                 \
  } while (0)

/// Sets gauge `name` to `value`.
#define BOS_TELEMETRY_GAUGE_SET(name, value)                          \
  do {                                                                \
    if (::bos::telemetry::Enabled()) {                                \
      static ::bos::telemetry::Gauge& bos_telemetry_gauge_ =          \
          ::bos::telemetry::Registry::Global().GetGauge(name);        \
      bos_telemetry_gauge_.Set(value);                                \
    }                                                                 \
  } while (0)

/// Records `sample` into histogram `name` with the given bucket bounds
/// (a `std::span<const uint64_t>`-convertible; first registration wins).
#define BOS_TELEMETRY_HISTOGRAM_RECORD(name, bounds, sample)          \
  do {                                                                \
    if (::bos::telemetry::Enabled()) {                                \
      static ::bos::telemetry::Histogram& bos_telemetry_hist_ =       \
          ::bos::telemetry::Registry::Global().GetHistogram(name,     \
                                                            bounds);  \
      bos_telemetry_hist_.Record(sample);                             \
    }                                                                 \
  } while (0)

/// Times the rest of the enclosing scope into latency histogram `name`
/// (nanoseconds, LatencyBoundsNs buckets).
#define BOS_TELEMETRY_SPAN(name)                                      \
  static ::bos::telemetry::Histogram& BOS_TELEMETRY_UNIQ(             \
      bos_telemetry_span_hist_) =                                     \
      ::bos::telemetry::Registry::Global().GetHistogram(              \
          name, ::bos::telemetry::LatencyBoundsNs());                 \
  ::bos::telemetry::ScopedSpan BOS_TELEMETRY_UNIQ(bos_telemetry_span_)( \
      ::bos::telemetry::Enabled()                                     \
          ? &BOS_TELEMETRY_UNIQ(bos_telemetry_span_hist_)             \
          : nullptr)

/// Runs `stmt` only in telemetry builds (for instrumentation that needs
/// more than one macro can express, e.g. dynamically named metrics).
#define BOS_TELEMETRY_ONLY(stmt)                                      \
  do {                                                                \
    if (::bos::telemetry::Enabled()) {                                \
      stmt;                                                           \
    }                                                                 \
  } while (0)

#else  // !BOS_TELEMETRY_ENABLED

#define BOS_TELEMETRY_COUNTER_ADD(name, delta) \
  do {                                         \
  } while (0)
#define BOS_TELEMETRY_GAUGE_SET(name, value) \
  do {                                       \
  } while (0)
#define BOS_TELEMETRY_HISTOGRAM_RECORD(name, bounds, sample) \
  do {                                                       \
  } while (0)
#define BOS_TELEMETRY_SPAN(name) \
  do {                           \
  } while (0)
#define BOS_TELEMETRY_ONLY(stmt) \
  do {                           \
  } while (0)

#endif  // BOS_TELEMETRY_ENABLED

#endif  // BOS_TELEMETRY_TELEMETRY_H_
