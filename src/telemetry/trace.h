#ifndef BOS_TELEMETRY_TRACE_H_
#define BOS_TELEMETRY_TRACE_H_

/// \file
/// Structured tracing on top of the telemetry layer: hierarchical spans
/// (TSC-clocked begin/end with parent ids and typed key/value
/// annotations) recorded into per-thread fixed-capacity buffers, plus an
/// exporter that emits Chrome trace-event JSON loadable in Perfetto or
/// chrome://tracing.
///
/// Model (DESIGN.md section 11):
///
///  * A span is a `TraceSpan` RAII object. Construction assigns a
///    process-unique id, captures the thread's current span as parent
///    and reads the span clock; destruction reads the clock again and
///    appends one completed event to the calling thread's buffer. While
///    a span is the innermost one on its thread, `AnnotateCurrent` (the
///    `BOS_TRACE_ANNOTATE` macro) attaches bounded key/value pairs to it.
///  * Parenting is tracked per thread. `CurrentSpanId()` reads the
///    thread-local current span; `ScopedContext` installs a captured id
///    as the current span on another thread, which is how the exec pool
///    makes `ParallelFor` chunk spans children of the submitting span.
///  * Buffers are per-thread and single-writer: the owning thread
///    appends with plain stores and publishes with one release store of
///    the size; the exporter reads sizes with acquire loads. No locks or
///    CAS loops anywhere on the record path. When a buffer is full new
///    events are dropped (drop-newest keeps span ancestry intact),
///    counted per buffer, in `DroppedCount()`, in the exported footer,
///    and in the `bos.telemetry.trace.dropped` telemetry counter.
///  * Tracing is off by default. `StartTracing()` clears all buffers,
///    restarts span ids from 1 (so equal runs export equal ids) and
///    captures the base timestamp; `StopTracing()` flips recording off
///    but keeps the buffers for export. When tracing is inactive — or
///    telemetry is compiled out — `TraceSpan` construction is one
///    relaxed atomic load and records nothing, and the macros below
///    compile to nothing under `-DBOS_ENABLE_TELEMETRY=OFF`.
///
/// Span names and annotation keys must be string literals (or otherwise
/// outlive the trace): events store the pointers, not copies.
/// Tracing only observes — like the rest of telemetry, enabling it must
/// never change any encoded byte (tests/telemetry_diff_test.cc).

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/telemetry.h"

namespace bos::telemetry::trace {

/// One typed key/value annotation attached to a span. Values are either
/// signed integers or short strings (longer strings are truncated).
struct Annotation {
  static constexpr size_t kMaxStringValue = 31;
  const char* key = nullptr;
  bool is_string = false;
  int64_t int_value = 0;
  char string_value[kMaxStringValue + 1] = {0};
};

/// A completed span event, POD so buffers never allocate.
struct TraceEvent {
  static constexpr size_t kMaxAnnotations = 8;
  const char* name = nullptr;  ///< string literal
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root
  uint64_t start_ticks = 0;
  uint64_t end_ticks = 0;
  uint32_t num_annotations = 0;
  Annotation annotations[kMaxAnnotations];
};

/// True while StartTracing..StopTracing is in effect. One relaxed load.
bool Active();

/// Clears every per-thread buffer, resets span ids and drop counts,
/// captures the base timestamp and enables recording. Returns false when
/// telemetry is compiled out (tracing then cannot be enabled).
bool StartTracing();

/// Disables recording. Buffers are kept for ExportChromeTraceJson.
void StopTracing();

/// Events dropped to full buffers since StartTracing, summed over all
/// thread buffers.
uint64_t DroppedCount();

/// Total events currently buffered, summed over all thread buffers.
uint64_t EventCount();

/// The innermost open span id on this thread (0 = none).
uint64_t CurrentSpanId();

/// \brief RAII span. See the file comment for the lifecycle; `name` must
/// be a string literal. Construction while tracing is inactive makes the
/// span inert: it never reads the clock and records nothing.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id (0 when inert). Capture it to parent work submitted
  /// to another thread via ScopedContext.
  uint64_t id() const { return event_.span_id; }
  bool active() const { return event_.span_id != 0; }

  /// Attaches a key/value pair (keys must be string literals). Beyond
  /// TraceEvent::kMaxAnnotations pairs, annotations are silently capped.
  void Annotate(const char* key, int64_t value);
  void Annotate(const char* key, std::string_view value);

 private:
  TraceEvent event_;
  TraceSpan* prev_active_ = nullptr;
  uint64_t prev_current_ = 0;
};

/// \brief Installs `parent_id` as this thread's current span for the
/// scope, so spans opened inside parent to it. Used by the exec pool to
/// adopt the submitting thread's context; the previous context (and the
/// annotation target) is restored on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(uint64_t parent_id);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  uint64_t prev_current_ = 0;
  TraceSpan* prev_active_ = nullptr;
};

/// Annotates this thread's innermost open span; a no-op when there is
/// none (or the innermost one is inert).
void AnnotateCurrent(const char* key, int64_t value);
void AnnotateCurrent(const char* key, std::string_view value);

/// \brief Serializes every buffered event as Chrome trace-event JSON:
/// `{"schema_version":N,"displayTimeUnit":"ns","traceEvents":[...],
///   "dropped_events":N}`.
/// Each event is a `ph:"X"` complete event with `ts`/`dur` in
/// microseconds relative to StartTracing, `pid` 1, `tid` the buffer's
/// registration index, and `args` carrying `span_id`, `parent_id` and
/// the annotations. Thread-name metadata events precede the spans.
/// Deterministic: equal buffer contents yield byte-identical strings.
std::string ExportChromeTraceJson();

}  // namespace bos::telemetry::trace

// ---------------------------------------------------------------------
// Instrumentation macros. Like the BOS_TELEMETRY_* family these vanish
// when telemetry is compiled out, so traced hot paths revert to the
// uninstrumented code bit for bit.
// ---------------------------------------------------------------------

#if BOS_TELEMETRY_ENABLED

/// Opens a trace span for the rest of the enclosing scope.
#define BOS_TRACE_SPAN(name)                                   \
  ::bos::telemetry::trace::TraceSpan BOS_TELEMETRY_UNIQ(       \
      bos_trace_span_) { name }

/// Annotates the innermost open span (no-op when tracing is inactive).
#define BOS_TRACE_ANNOTATE(key, value)                         \
  do {                                                         \
    if (::bos::telemetry::trace::Active()) {                   \
      ::bos::telemetry::trace::AnnotateCurrent(key, value);    \
    }                                                          \
  } while (0)

#else  // !BOS_TELEMETRY_ENABLED

#define BOS_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define BOS_TRACE_ANNOTATE(key, value) \
  do {                                 \
  } while (0)

#endif  // BOS_TELEMETRY_ENABLED

#endif  // BOS_TELEMETRY_TRACE_H_
