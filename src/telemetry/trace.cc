#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace bos::telemetry::trace {

namespace {

// Events buffered per thread. 16k events x ~120 bytes ~= 2 MiB per
// traced thread, allocated lazily on the thread's first span.
constexpr size_t kBufferCapacity = 16384;

// One thread's event buffer. Single-writer (the owning thread): appends
// are plain stores into `events` published by a release store of `size`;
// the exporter pairs it with acquire loads. `dropped` is written by the
// owner and read by anyone, so it is atomic too.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {
    events.resize(kBufferCapacity);
  }
  const uint32_t tid;
  std::vector<TraceEvent> events;
  std::atomic<size_t> size{0};
  std::atomic<uint64_t> dropped{0};
};

std::atomic<bool> g_active{false};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_base_ticks{0};

// Registry of every thread buffer ever created. Buffers are leaked (a
// handful of threads, process lifetime) so exporting never races a
// thread destructor.
std::mutex g_buffers_mu;
std::vector<ThreadBuffer*>& Buffers() {
  static std::vector<ThreadBuffer*>* buffers = new std::vector<ThreadBuffer*>();
  return *buffers;
}

thread_local ThreadBuffer* tls_buffer = nullptr;
thread_local uint64_t tls_current_span = 0;
thread_local TraceSpan* tls_active_span = nullptr;

ThreadBuffer& LocalBuffer() {
  if (tls_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    auto& buffers = Buffers();
    tls_buffer = new ThreadBuffer(static_cast<uint32_t>(buffers.size()));
    buffers.push_back(tls_buffer);
  }
  return *tls_buffer;
}

void AppendEvent(const TraceEvent& event) {
  ThreadBuffer& buf = LocalBuffer();
  const size_t size = buf.size.load(std::memory_order_relaxed);
  if (size >= kBufferCapacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    BOS_TELEMETRY_COUNTER_ADD("bos.telemetry.trace.dropped", 1);
    return;
  }
  buf.events[size] = event;
  buf.size.store(size + 1, std::memory_order_release);
}

void SetAnnotation(Annotation* a, const char* key, int64_t value) {
  a->key = key;
  a->is_string = false;
  a->int_value = value;
}

void SetAnnotation(Annotation* a, const char* key, std::string_view value) {
  a->key = key;
  a->is_string = true;
  const size_t n = std::min(value.size(), Annotation::kMaxStringValue);
  std::memcpy(a->string_value, value.data(), n);
  a->string_value[n] = '\0';
}

template <typename... Args>
void Appendf(std::string* out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  out->append(buf, static_cast<size_t>(std::min<int>(n, sizeof(buf) - 1)));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool Active() { return g_active.load(std::memory_order_relaxed); }

bool StartTracing() {
  if (!CompiledIn()) return false;
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  for (ThreadBuffer* buf : Buffers()) {
    buf->size.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  g_next_span_id.store(1, std::memory_order_relaxed);
  g_base_ticks.store(SpanClockTicks(), std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
  return true;
}

void StopTracing() { g_active.store(false, std::memory_order_release); }

uint64_t DroppedCount() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  uint64_t total = 0;
  for (const ThreadBuffer* buf : Buffers()) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t EventCount() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  uint64_t total = 0;
  for (const ThreadBuffer* buf : Buffers()) {
    total += buf->size.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t CurrentSpanId() { return tls_current_span; }

TraceSpan::TraceSpan(const char* name) {
  if (!Active()) return;
  event_.name = name;
  event_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = tls_current_span;
  prev_current_ = tls_current_span;
  prev_active_ = tls_active_span;
  tls_current_span = event_.span_id;
  tls_active_span = this;
  event_.start_ticks = SpanClockTicks();
}

TraceSpan::~TraceSpan() {
  if (event_.span_id == 0) return;
  event_.end_ticks = SpanClockTicks();
  tls_current_span = prev_current_;
  tls_active_span = prev_active_;
  // Recorded even if StopTracing ran mid-span: the buffers outlive the
  // active window and the exporter wants the enclosing roots.
  AppendEvent(event_);
}

void TraceSpan::Annotate(const char* key, int64_t value) {
  if (event_.span_id == 0) return;
  if (event_.num_annotations >= TraceEvent::kMaxAnnotations) return;
  SetAnnotation(&event_.annotations[event_.num_annotations++], key, value);
}

void TraceSpan::Annotate(const char* key, std::string_view value) {
  if (event_.span_id == 0) return;
  if (event_.num_annotations >= TraceEvent::kMaxAnnotations) return;
  SetAnnotation(&event_.annotations[event_.num_annotations++], key, value);
}

ScopedContext::ScopedContext(uint64_t parent_id)
    : prev_current_(tls_current_span), prev_active_(tls_active_span) {
  tls_current_span = parent_id;
  // The adopted id is not a span owned by this thread, so annotations
  // must not land on whatever span happened to be active here.
  tls_active_span = nullptr;
}

ScopedContext::~ScopedContext() {
  tls_current_span = prev_current_;
  tls_active_span = prev_active_;
}

void AnnotateCurrent(const char* key, int64_t value) {
  if (tls_active_span != nullptr) tls_active_span->Annotate(key, value);
}

void AnnotateCurrent(const char* key, std::string_view value) {
  if (tls_active_span != nullptr) tls_active_span->Annotate(key, value);
}

std::string ExportChromeTraceJson() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  const uint64_t base = g_base_ticks.load(std::memory_order_relaxed);
  std::string out;
  Appendf(&out, "{\"schema_version\":%d,\"displayTimeUnit\":\"ns\"",
          kSchemaVersion);
  out.append(",\"traceEvents\":[");
  bool first = true;
  uint64_t dropped = 0;
  for (const ThreadBuffer* buf : Buffers()) {
    dropped += buf->dropped.load(std::memory_order_relaxed);
    const size_t size = buf->size.load(std::memory_order_acquire);
    if (size == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
            "\"args\":{\"name\":\"thread-%u\"}}",
            buf->tid, buf->tid);
    for (size_t i = 0; i < size; ++i) {
      const TraceEvent& ev = buf->events[i];
      const uint64_t start_ns =
          SpanTicksToNanos(ev.start_ticks >= base ? ev.start_ticks - base : 0);
      const uint64_t dur_ns = SpanTicksToNanos(
          ev.end_ticks >= ev.start_ticks ? ev.end_ticks - ev.start_ticks : 0);
      out.push_back(',');
      out.append("{\"name\":");
      AppendJsonString(&out, ev.name != nullptr ? ev.name : "?");
      Appendf(&out,
              ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
              "\"args\":{\"span_id\":%" PRIu64 ",\"parent_id\":%" PRIu64,
              static_cast<double>(start_ns) / 1000.0,
              static_cast<double>(dur_ns) / 1000.0, buf->tid, ev.span_id,
              ev.parent_id);
      for (uint32_t a = 0; a < ev.num_annotations; ++a) {
        const Annotation& ann = ev.annotations[a];
        out.push_back(',');
        AppendJsonString(&out, ann.key != nullptr ? ann.key : "?");
        out.push_back(':');
        if (ann.is_string) {
          AppendJsonString(&out, ann.string_value);
        } else {
          Appendf(&out, "%" PRId64, ann.int_value);
        }
      }
      out.append("}}");
    }
  }
  Appendf(&out, "],\"dropped_events\":%" PRIu64 "}", dropped);
  return out;
}

}  // namespace bos::telemetry::trace
