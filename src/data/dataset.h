#ifndef BOS_DATA_DATASET_H_
#define BOS_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace bos::data {

/// Whether a profile models an integer or a floating-point dataset
/// (Table III's "Data Type" column).
enum class ValueKind { kInteger, kFloat };

/// \brief One synthetic dataset profile, standing in for a row of
/// Table III. The generators are deterministic in (profile, n, seed),
/// and are shaped to match the paper's descriptions: the post-TS2DIFF
/// value distributions of Figure 8 and the outlier fractions of Figure 9.
struct DatasetInfo {
  std::string name;  ///< full name, e.g. "EPM-Education"
  std::string abbr;  ///< Figure-10 column key, e.g. "EE"
  ValueKind kind;
  int precision;        ///< decimal digits for float profiles (0 for int)
  size_t default_size;  ///< row count used by the benchmarks
};

/// The 12 profiles in Table III order.
const std::vector<DatasetInfo>& AllDatasets();

/// Looks a profile up by abbreviation ("EE", "MT", ...).
Result<DatasetInfo> FindDataset(const std::string& abbr);

/// \brief Generates the integer form of a profile: for float profiles this
/// is the 10^p-scaled fixed-point series the integer codecs consume
/// (§VIII-A2); for integer profiles it is the series itself.
std::vector<int64_t> GenerateInteger(const DatasetInfo& info, size_t n,
                                     uint64_t seed = 0);

/// \brief Generates the double form: float profiles at their precision;
/// integer profiles as exact integral doubles.
std::vector<double> GenerateFloat(const DatasetInfo& info, size_t n,
                                  uint64_t seed = 0);

/// \brief Generates a realistic IoT timestamp column: a regular interval
/// with per-sample jitter and occasional connectivity gaps. Sorted,
/// starting at `start`.
std::vector<int64_t> GenerateTimestamps(size_t n, int64_t start = 1700000000000,
                                        int64_t interval_ms = 1000,
                                        uint64_t seed = 0);

/// \brief Fixed-width histogram used to print Figure 8.
struct Histogram {
  int64_t min = 0;
  int64_t max = 0;
  std::vector<uint64_t> bins;
};
Histogram ComputeHistogram(std::span<const int64_t> values, size_t num_bins);

}  // namespace bos::data

#endif  // BOS_DATA_DATASET_H_
