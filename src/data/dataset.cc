#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace bos::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Per-profile seed salt so two profiles never share a stream.
uint64_t ProfileSeed(const DatasetInfo& info, uint64_t seed) {
  uint64_t h = 0xB05B05B05ULL ^ seed;
  for (char c : info.abbr) h = h * 1099511628211ULL + static_cast<uint8_t>(c);
  return h;
}

int64_t Clamp(double v, int64_t lo, int64_t hi) {
  if (v < static_cast<double>(lo)) return lo;
  if (v > static_cast<double>(hi)) return hi;
  return static_cast<int64_t>(v);
}

// ---- profile generators (integer domain, pre-scaled for float sets) ----
// Each matches the paper's qualitative description: value magnitudes from
// Figure 8's axes, delta distributions from Figure 8's shapes, outlier
// fractions from Figure 9.

// EPM-Education: large magnitudes (up to ~150k), gaussian deltas with
// sparse two-sided spikes.
std::vector<int64_t> GenEe(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 60000;
  for (auto& v : x) {
    cur += rng.Normal(0, 300);
    if (rng.Bernoulli(0.015)) cur += rng.Normal(0, 20000);
    cur = std::clamp(cur, 0.0, 160000.0);
    v = static_cast<int64_t>(cur);
  }
  return x;
}

// Metro-Traffic: daily periodic counts up to ~7000 plus noise and jumps.
std::vector<int64_t> GenMt(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double daily = 3000 + 2500 * std::sin(2 * kPi * t / 288.0);
    double v = daily + rng.Normal(0, 150);
    if (rng.Bernoulli(0.01)) v += rng.UniformInt(-2500, 2500);
    x[i] = Clamp(v, 0, 10000);
  }
  return x;
}

// Vehicle-Charge: session ramps and plateaus, small magnitudes.
std::vector<int64_t> GenVc(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 200;
  int phase = 0;  // 0 = plateau, 1 = ramp up, 2 = ramp down
  size_t phase_left = 50;
  for (auto& v : x) {
    if (phase_left-- == 0) {
      phase = static_cast<int>(rng.Uniform(3));
      phase_left = 20 + rng.Uniform(120);
    }
    if (phase == 1) cur += rng.UniformInt(3, 12);
    if (phase == 2) cur -= rng.UniformInt(3, 12);
    cur = std::clamp(cur, 0.0, 3000.0);
    double v_out = cur + rng.Normal(0, 1.5);
    if (rng.Bernoulli(0.008)) v_out += rng.UniformInt(-800, 800);
    v = Clamp(v_out, 0, 3000);
  }
  return x;
}

// CS-Sensors: stable level with small discrete jitter, occasional level
// shifts and strong two-sided spikes — the profile where separation pays
// off most (Figure 10a column CS).
std::vector<int64_t> GenCs(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  int64_t level = 2000;
  size_t hold = 0;
  for (auto& v : x) {
    if (hold == 0) {
      hold = 20 + rng.Uniform(400);
      if (rng.Bernoulli(0.3)) level += rng.UniformInt(-40, 40);
    }
    --hold;
    int64_t out = level + rng.UniformInt(-3, 3);
    if (rng.Bernoulli(0.01)) out += rng.UniformInt(1000, 4000);
    if (rng.Bernoulli(0.005)) out -= rng.UniformInt(500, 2000);
    v = std::clamp<int64_t>(out, 0, 6000);
  }
  return x;
}

// TH-Climate: skewed — mostly tiny deltas plus a dense cluster of lower
// outliers in a very small range (the case where BOS-M struggles,
// §VIII-B1).
std::vector<int64_t> GenTc(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 700;
  for (auto& v : x) {
    cur += rng.Normal(0, 0.8);
    cur = std::clamp(cur, 60.0, 1000.0);
    double out = cur;
    if (rng.Bernoulli(0.06)) out = 40 + rng.Normal(0, 4);  // low cluster
    v = Clamp(out, 0, 1000);
  }
  return x;
}

// TY-Transport: small counts with high (but not extreme) repeatability
// and sparse upper spikes.
std::vector<int64_t> GenTt(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  int64_t level = 20;
  size_t hold = 0;
  for (auto& v : x) {
    if (hold == 0) {
      hold = 5 + rng.Uniform(60);
      level = rng.UniformInt(0, 40);
    }
    --hold;
    int64_t out = level + (rng.Bernoulli(0.5) ? rng.UniformInt(-2, 2) : 0);
    if (rng.Bernoulli(0.01)) out += rng.UniformInt(40, 90);
    v = std::clamp<int64_t>(out, 0, 130);
  }
  return x;
}

// YZ-Electricity: float p=2, magnitudes up to ~20000, bursty.
std::vector<int64_t> GenYe(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 800000;  // scaled by 100
  for (auto& v : x) {
    cur += rng.Normal(0, 2000);
    if (rng.Bernoulli(0.02)) cur += rng.Normal(0, 120000);
    cur = std::clamp(cur, 0.0, 2000000.0);
    v = static_cast<int64_t>(cur);
  }
  return x;
}

// GW-Magnetic: float p=3, very wide range with heavy tails.
std::vector<int64_t> GenGm(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 3.0e8;  // scaled by 1000 -> values up to ~6e5 in float terms
  for (auto& v : x) {
    cur += rng.Laplace() * 20000;
    if (rng.Bernoulli(0.004)) cur += rng.Normal(0, 5.0e7);
    cur = std::clamp(cur, 0.0, 6.0e8);
    v = static_cast<int64_t>(cur);
  }
  return x;
}

// USGS-Earthquakes: bursty, heavy-tailed jumps (quake clusters).
std::vector<int64_t> GenUe(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 500000;  // p=2 scaled
  size_t burst = 0;
  for (auto& v : x) {
    if (burst > 0) {
      --burst;
      cur += rng.Normal(0, 40000);
    } else {
      cur += rng.Normal(0, 900);
      if (rng.Bernoulli(0.003)) burst = 10 + rng.Uniform(40);
    }
    cur = std::clamp(cur, 0.0, 2.2e6);
    v = static_cast<int64_t>(cur);
  }
  return x;
}

// Cyber-Vehicle: mixed telemetry, moderate deltas, sparse huge spikes.
std::vector<int64_t> GenCv(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 900000;  // p=1 scaled, float magnitude ~2e5
  for (auto& v : x) {
    cur += rng.Normal(0, 120);
    double out = cur;
    if (rng.Bernoulli(0.012)) out += rng.UniformInt(-600000, 600000);
    out = std::clamp(out, 0.0, 2.0e6);
    v = static_cast<int64_t>(out);
  }
  return x;
}

// TY-Fuel: small magnitudes (0..150 in float terms, p=1), step-like.
std::vector<int64_t> GenTf(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 900;  // scaled by 10
  for (auto& v : x) {
    if (rng.Bernoulli(0.02)) cur -= rng.Uniform(30);
    if (rng.Bernoulli(0.002)) cur = 1400;  // refuel
    cur = std::clamp(cur, 0.0, 1500.0);
    double out = cur + rng.Normal(0, 2);
    v = Clamp(out, 0, 1500);
  }
  return x;
}

// Nifty-Stocks: price random walk, wide range, p=2.
std::vector<int64_t> GenNs(Rng& rng, size_t n) {
  std::vector<int64_t> x(n);
  double cur = 2500000;  // 25000.00
  for (auto& v : x) {
    cur += cur * rng.Normal(0, 0.0008);
    if (rng.Bernoulli(0.002)) cur += cur * rng.Normal(0, 0.02);
    cur = std::clamp(cur, 100000.0, 7500000.0);
    v = static_cast<int64_t>(cur);
  }
  return x;
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>* kDatasets = new std::vector<DatasetInfo>{
      {"EPM-Education", "EE", ValueKind::kInteger, 0, 65536},
      {"Metro-Traffic", "MT", ValueKind::kInteger, 0, 48204},
      {"Vehicle-Charge", "VC", ValueKind::kInteger, 0, 3396},
      {"CS-Sensors", "CS", ValueKind::kInteger, 0, 65536},
      {"TH-Climate", "TC", ValueKind::kInteger, 0, 65536},
      {"TY-Transport", "TT", ValueKind::kInteger, 0, 65536},
      {"YZ-Electricity", "YE", ValueKind::kFloat, 2, 10108},
      {"GW-Magnetic", "GM", ValueKind::kFloat, 3, 65536},
      {"USGS-Earthquakes", "UE", ValueKind::kFloat, 2, 65536},
      {"Cyber-Vehicle", "CV", ValueKind::kFloat, 1, 65536},
      {"TY-Fuel", "TF", ValueKind::kFloat, 1, 65536},
      {"Nifty-Stocks", "NS", ValueKind::kFloat, 2, 65536},
  };
  return *kDatasets;
}

Result<DatasetInfo> FindDataset(const std::string& abbr) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.abbr == abbr) return info;
  }
  return Status::InvalidArgument("unknown dataset: " + abbr);
}

std::vector<int64_t> GenerateInteger(const DatasetInfo& info, size_t n,
                                     uint64_t seed) {
  Rng rng(ProfileSeed(info, seed));
  if (info.abbr == "EE") return GenEe(rng, n);
  if (info.abbr == "MT") return GenMt(rng, n);
  if (info.abbr == "VC") return GenVc(rng, n);
  if (info.abbr == "CS") return GenCs(rng, n);
  if (info.abbr == "TC") return GenTc(rng, n);
  if (info.abbr == "TT") return GenTt(rng, n);
  if (info.abbr == "YE") return GenYe(rng, n);
  if (info.abbr == "GM") return GenGm(rng, n);
  if (info.abbr == "UE") return GenUe(rng, n);
  if (info.abbr == "CV") return GenCv(rng, n);
  if (info.abbr == "TF") return GenTf(rng, n);
  if (info.abbr == "NS") return GenNs(rng, n);
  return {};
}

std::vector<double> GenerateFloat(const DatasetInfo& info, size_t n,
                                  uint64_t seed) {
  const std::vector<int64_t> ints = GenerateInteger(info, n, seed);
  const double scale = std::pow(10.0, info.precision);
  std::vector<double> out(ints.size());
  for (size_t i = 0; i < ints.size(); ++i) {
    out[i] = static_cast<double>(ints[i]) / scale;
  }
  return out;
}

std::vector<int64_t> GenerateTimestamps(size_t n, int64_t start,
                                        int64_t interval_ms, uint64_t seed) {
  Rng rng(0x7157A3B ^ seed);
  std::vector<int64_t> out(n);
  int64_t t = start;
  for (auto& v : out) {
    v = t;
    t += interval_ms + rng.UniformInt(-interval_ms / 20, interval_ms / 20);
    if (rng.Bernoulli(0.002)) t += interval_ms * rng.UniformInt(10, 600);  // gap
  }
  return out;
}

Histogram ComputeHistogram(std::span<const int64_t> values, size_t num_bins) {
  Histogram h;
  h.bins.assign(num_bins, 0);
  if (values.empty() || num_bins == 0) return h;
  h.min = *std::min_element(values.begin(), values.end());
  h.max = *std::max_element(values.begin(), values.end());
  const double range = static_cast<double>(h.max - h.min) + 1.0;
  for (int64_t v : values) {
    auto bin = static_cast<size_t>(static_cast<double>(v - h.min) /
                                   range * static_cast<double>(num_bins));
    h.bins[std::min(bin, num_bins - 1)]++;
  }
  return h;
}

}  // namespace bos::data
