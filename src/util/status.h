#ifndef BOS_UTIL_STATUS_H_
#define BOS_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace bos {

/// \brief Error categories used across the library.
///
/// The library never throws; every fallible operation returns a `Status`
/// (or a `Result<T>`, see result.h). `StatusCode::kOk` is represented by a
/// null internal state so that the success path carries no allocation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kCorruption = 2,
  kNotImplemented = 3,
  kIoError = 4,
  kOutOfRange = 5,
  kUnknown = 6,
  kResourceExhausted = 7,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Arrow-style status object: cheap success, descriptive failure.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Renders e.g. "Corruption: bitmap truncated" (or "OK").
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

}  // namespace bos

#endif  // BOS_UTIL_STATUS_H_
