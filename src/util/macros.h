#ifndef BOS_UTIL_MACROS_H_
#define BOS_UTIL_MACROS_H_

/// Propagates a non-OK Status from the current function.
#define BOS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::bos::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define BOS_CONCAT_IMPL(x, y) x##y
#define BOS_CONCAT(x, y) BOS_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its status on failure and
/// otherwise assigning the value to `lhs`.
#define BOS_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto BOS_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!BOS_CONCAT(_res_, __LINE__).ok())                          \
    return BOS_CONCAT(_res_, __LINE__).status();                  \
  lhs = std::move(BOS_CONCAT(_res_, __LINE__)).value()

#endif  // BOS_UTIL_MACROS_H_
