#ifndef BOS_UTIL_SAFE_MATH_H_
#define BOS_UTIL_SAFE_MATH_H_

/// \file
/// Checked arithmetic for untrusted decode paths.
///
/// Every length or offset read from an encoded stream is
/// attacker-controlled: a guard written as `offset + len > size` wraps
/// around when `len` is near `UINT64_MAX`, passes, and the subsequent
/// read runs out of bounds. The helpers here make the overflow-free
/// forms the path of least resistance:
///
///  * `CheckedAdd` / `CheckedMul` — overflow-detecting arithmetic for
///    computing payload sizes from untrusted counts and widths.
///  * `SliceFits` — the canonical `[offset, offset+len) ⊆ [0, size)`
///    test, written so no intermediate sum can wrap.
///  * `CheckedSlice` — `SliceFits` plus the subspan, as a
///    `Result<BytesView>`, for decoders that hand a validated window to
///    an unchecked reader (DESIGN.md, decode-safety invariants).
///
/// Decoders must validate with these helpers *before* handing bytes to
/// deliberately unchecked readers such as `MsbBitCursor` or the batched
/// unpack kernels.

#include <cstdint>
#include <string>

#include "util/buffer.h"
#include "util/result.h"

namespace bos {

/// Computes `a + b` into `*out`; returns false when the sum does not fit
/// in 64 bits (`*out` is unspecified then).
inline bool CheckedAdd(uint64_t a, uint64_t b, uint64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}

/// Computes `a * b` into `*out`; returns false on 64-bit overflow.
inline bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

/// True iff the half-open window `[offset, offset + len)` lies inside a
/// buffer of `size` bytes. Both operands may be attacker-controlled; the
/// subtraction form cannot wrap.
inline bool SliceFits(uint64_t size, uint64_t offset, uint64_t len) {
  return offset <= size && len <= size - offset;
}

/// Validated subspan over untrusted bytes: returns `data[offset, offset+len)`
/// or `Status::Corruption` mentioning `what` when the window runs past the
/// end. `offset`/`len` are deliberately uint64_t so callers can pass
/// varint-decoded values without a narrowing cast.
inline Result<BytesView> CheckedSlice(BytesView data, uint64_t offset,
                                      uint64_t len,
                                      const char* what = "payload") {
  if (!SliceFits(data.size(), offset, len)) {
    return Status::Corruption(std::string(what) + " truncated");
  }
  return data.subspan(static_cast<size_t>(offset), static_cast<size_t>(len));
}

}  // namespace bos

#endif  // BOS_UTIL_SAFE_MATH_H_
