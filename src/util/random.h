#ifndef BOS_UTIL_RANDOM_H_
#define BOS_UTIL_RANDOM_H_

#include <cstdint>

namespace bos {

/// \brief Deterministic xoshiro256** PRNG.
///
/// Used by the synthetic dataset generators and by property tests. All
/// streams are fully determined by the seed, so every experiment in
/// `bench/` is reproducible bit-for-bit across runs and machines.
class Rng {
 public:
  /// Seeds the four 64-bit state words via splitmix64, as recommended by
  /// the xoshiro authors.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal deviate (Box-Muller, one value per call).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Exponential deviate with the given rate (mean = 1/rate).
  double Exponential(double rate);

  /// Standard Laplace deviate (heavy-tailed, symmetric).
  double Laplace();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bos

#endif  // BOS_UTIL_RANDOM_H_
