#ifndef BOS_UTIL_BITS_H_
#define BOS_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace bos {

/// \brief Number of bits needed to represent `v`: ceil(log2(v + 1)).
///
/// This matches the paper's bit-width of a value after removing leading
/// zeros: BitWidth(8) == 4, BitWidth(7) == 3, BitWidth(0) == 0.
constexpr int BitWidth(uint64_t v) {
  return 64 - std::countl_zero(v);
  // std::countl_zero(0) == 64, so BitWidth(0) == 0.
}

/// \brief Bit-width of a value *range*, clamped to at least 1 bit.
///
/// Definition 5's edge cases ("if maxXl = xmin, the first term is 2*nl";
/// "if maxXc = minXc, the third term is (n - nl - nu)") imply that a
/// degenerate part still pays 1 bit per value, so the width of a part
/// whose range is 0 is 1.
constexpr int RangeBitWidth(uint64_t range) {
  int w = BitWidth(range);
  return w == 0 ? 1 : w;
}

/// \brief Difference b - a computed without signed overflow, valid for any
/// int64 pair with a <= b.
constexpr uint64_t UnsignedRange(int64_t a, int64_t b) {
  return static_cast<uint64_t>(b) - static_cast<uint64_t>(a);
}

/// \brief Rounds `bits` up to whole bytes.
constexpr uint64_t BitsToBytes(uint64_t bits) { return (bits + 7) / 8; }

}  // namespace bos

#endif  // BOS_UTIL_BITS_H_
