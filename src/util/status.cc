#include "util/status.h"

namespace bos {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace bos
