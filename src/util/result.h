#ifndef BOS_UTIL_RESULT_H_
#define BOS_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace bos {

/// \brief A value-or-status holder, in the style of arrow::Result.
///
/// A `Result<T>` either holds a `T` (success) or a non-OK `Status`
/// (failure). Accessing the value of a failed result aborts in debug
/// builds; use `ok()` / `status()` first, or the `BOS_ASSIGN_OR_RETURN`
/// macro from util/macros.h.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from a failed status.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when the result failed.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace bos

#endif  // BOS_UTIL_RESULT_H_
