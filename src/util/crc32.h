#ifndef BOS_UTIL_CRC32_H_
#define BOS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace bos {

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) of a byte buffer.
///
/// Used by the TsFile-lite page format to detect on-disk corruption.
/// `seed` allows incremental computation: pass the previous CRC to
/// continue over a subsequent buffer.
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace bos

#endif  // BOS_UTIL_CRC32_H_
