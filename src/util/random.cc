#include "util/random.h"

#include <bit>
#include <cmath>

namespace bos {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + (span == 0 ? Next() : Uniform(span)));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(2.0 * kPi * u2);
  have_cached_normal_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::Exponential(double rate) {
  double u = UniformDouble();
  while (u <= 1e-300) u = UniformDouble();
  return -std::log(u) / rate;
}

double Rng::Laplace() {
  double u = UniformDouble();
  while (u <= 1e-300 || u >= 1.0 - 1e-16) u = UniformDouble();
  return u < 0.5 ? std::log(2.0 * u) : -std::log(2.0 * (1.0 - u));
}

}  // namespace bos
