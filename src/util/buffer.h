#ifndef BOS_UTIL_BUFFER_H_
#define BOS_UTIL_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace bos {

/// Growable byte buffer used by all encoders. A plain alias keeps the
/// encoded form trivially inspectable and hashable.
using Bytes = std::vector<uint8_t>;

/// View over immutable encoded bytes.
using BytesView = std::span<const uint8_t>;

/// Appends a little-endian fixed-width integer to `out`.
template <typename T>
inline void PutFixed(Bytes* out, T v) {
  uint8_t tmp[sizeof(T)];
  std::memcpy(tmp, &v, sizeof(T));
  out->insert(out->end(), tmp, tmp + sizeof(T));
}

/// Reads a little-endian fixed-width integer at `offset`; returns false on
/// short buffer. The subtraction form keeps an attacker-controlled offset
/// from wrapping the bounds check.
template <typename T>
inline bool GetFixed(BytesView data, size_t offset, T* v) {
  if (data.size() < sizeof(T) || offset > data.size() - sizeof(T)) return false;
  std::memcpy(v, data.data() + offset, sizeof(T));
  return true;
}

}  // namespace bos

#endif  // BOS_UTIL_BUFFER_H_
