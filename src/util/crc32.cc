#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace bos {
namespace {

// Slicing-by-8 tables: t[0] is the classic bytewise table, and t[k][b]
// is the CRC of byte b followed by k zero bytes. Folding eight input
// bytes per iteration lifts throughput from ~0.4 GB/s (bytewise) to
// >1.5 GB/s, which matters because every page read re-verifies its CRC
// on the cold path.
struct Tables {
  uint32_t t[8][256];
};

Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables.t[0][c & 0xff] ^ (c >> 8);
      tables.t[k][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t length, uint32_t seed) {
  static const Tables kTables = MakeTables();
  const auto& t = kTables.t;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffU;
  if constexpr (std::endian::native == std::endian::little) {
    while (length >= 8) {
      uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      c ^= lo;
      c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^ t[5][(c >> 16) & 0xff] ^
          t[4][c >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      length -= 8;
    }
  }
  for (size_t i = 0; i < length; ++i) {
    c = t[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

}  // namespace bos
