#ifndef BOS_CODECS_RAW_H_
#define BOS_CODECS_RAW_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::codecs {

/// \brief RAW: the identity transform — values go straight into the
/// packing operator with no delta/run/dictionary preprocessing, in
/// fixed-stride blocks of `block_size` values:
///
///   varint n | ceil(n / block_size) operator blocks, block b holding
///   values [b*block_size, min((b+1)*block_size, n)) in order
///
/// Because nothing entangles neighboring values, this is the transform
/// that makes the selective read path real: `DecompressSelected` windows
/// the selection per block and skips unselected blocks outright, and
/// `DecompressFilter` prunes whole blocks via the zone-map wrapper when
/// the operator was built with one (a ".Z" spec, e.g. "RAW+BOS-B.Z").
///
/// Opt-in: accepted by MakeSeriesCodec but not listed in TransformNames()
/// — the Figure-10 grid and the format-golden coverage are unchanged.
class RawCodec final : public SeriesCodec {
 public:
  RawCodec(std::shared_ptr<const core::PackingOperator> op,
           size_t block_size = kDefaultBlockSize);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;
  Status DecompressSelected(BytesView data, const select::SelectionView& sel,
                            std::vector<int64_t>* out) const override;
  Status DecompressFilter(BytesView data, int64_t v_min, int64_t v_max,
                          uint64_t base_index,
                          std::vector<std::pair<uint64_t, int64_t>>* out,
                          uint64_t* values_decoded) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;
  Status DecompressSelectedImpl(BytesView data,
                                const select::SelectionView& sel,
                                std::vector<int64_t>* out) const;
  Status DecompressFilterImpl(BytesView data, int64_t v_min, int64_t v_max,
                              uint64_t base_index,
                              std::vector<std::pair<uint64_t, int64_t>>* out,
                              uint64_t* values_decoded) const;

  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_RAW_H_
