#include "codecs/rle.h"

#include <algorithm>

#include "bitpack/varint.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::codecs {

RleCodec::RleCodec(std::shared_ptr<const core::PackingOperator> op,
                   size_t block_size)
    : op_(std::move(op)), block_size_(block_size) {}

std::string RleCodec::name() const {
  return std::string("RLE+") + std::string(op_->name());
}

Status RleCodec::Compress(std::span<const int64_t> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  std::vector<int64_t> run_values;
  std::vector<uint64_t> run_lengths;
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    run_values.clear();
    run_lengths.clear();
    for (size_t i = 0; i < len; ++i) {
      const int64_t v = values[start + i];
      if (!run_values.empty() && run_values.back() == v) {
        ++run_lengths.back();
      } else {
        run_values.push_back(v);
        run_lengths.push_back(1);
      }
    }
    bitpack::PutVarint(out, run_values.size());
    for (uint64_t rl : run_lengths) bitpack::PutVarint(out, rl);
    BOS_RETURN_NOT_OK(op_->Encode(run_values, out));
  }
  return Status::OK();
}

Status RleCodec::Decompress(BytesView data, std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status RleCodec::DecompressImpl(BytesView data,
                                std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RLE: n too large");
  ReserveBounded(out, n);
  std::vector<int64_t> run_values;
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    uint64_t num_runs;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &num_runs));
    if (num_runs > len) return Status::Corruption("RLE: too many runs");
    std::vector<uint64_t> run_lengths(num_runs);
    uint64_t total = 0;
    for (auto& rl : run_lengths) {
      BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &rl));
      // CheckedAdd: a near-2^64 run length would wrap `total` back under
      // `len` and survive to the replication loop below.
      if (rl == 0 || !CheckedAdd(total, rl, &total) || total > len) {
        return Status::Corruption("RLE: bad run length");
      }
    }
    if (total != len) return Status::Corruption("RLE: run lengths mismatch");
    run_values.clear();
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &run_values));
    if (run_values.size() != num_runs) {
      return Status::Corruption("RLE: run values mismatch");
    }
    for (uint64_t r = 0; r < num_runs; ++r) {
      out->insert(out->end(), run_lengths[r], run_values[r]);
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("RLE: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
