#include "codecs/ts2diff.h"

#include <algorithm>

#include "bitpack/unpack_kernels.h"
#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::codecs {
namespace {

// Wrapping arithmetic keeps deltas well-defined across the whole int64
// domain; decode adds modulo 2^64 and recovers the value exactly.
int64_t WrappingSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
int64_t WrappingAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}

}  // namespace

std::vector<int64_t> DeltaTransform(std::span<const int64_t> values) {
  std::vector<int64_t> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(i == 0 ? values[0] : WrappingSub(values[i], values[i - 1]));
  }
  return out;
}

Ts2DiffCodec::Ts2DiffCodec(std::shared_ptr<const core::PackingOperator> op,
                           size_t block_size)
    : op_(std::move(op)), block_size_(block_size) {}

std::string Ts2DiffCodec::name() const {
  return std::string("TS2DIFF+") + std::string(op_->name());
}

Status Ts2DiffCodec::Compress(std::span<const int64_t> values,
                              Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  // One scratch buffer for the whole stream, sized to the largest block.
  std::vector<int64_t> deltas(
      std::min(block_size_, values.size()) - (values.empty() ? 0 : 1));
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    bitpack::PutSignedVarint(out, values[start]);
    deltas.resize(len - 1);
    bitpack::DeltaEncode(values.data() + start + 1, len - 1, values[start],
                         deltas.data());
    BOS_RETURN_NOT_OK(op_->Encode(deltas, out));
  }
  return Status::OK();
}

Status Ts2DiffCodec::Decompress(BytesView data,
                                std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status Ts2DiffCodec::DecompressImpl(BytesView data,
                                    std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("TS2DIFF: n too large");
  ReserveBounded(out, n);
  std::vector<int64_t> deltas;
  deltas.reserve(std::min<uint64_t>(block_size_, n));
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    int64_t first;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &first));
    deltas.clear();
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &deltas));
    if (deltas.size() != len - 1) {
      return Status::Corruption("TS2DIFF: block length mismatch");
    }
    int64_t cur = first;
    out->push_back(cur);
    for (int64_t d : deltas) {
      cur = WrappingAdd(cur, d);
      out->push_back(cur);
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("TS2DIFF: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
