#ifndef BOS_CODECS_DOD_H_
#define BOS_CODECS_DOD_H_

#include "codecs/series_codec.h"

namespace bos::codecs {

/// \brief Delta-of-delta encoding in the GORILLA timestamp style
/// (Pelkonen et al. §4.1.1): the second difference of near-regular
/// timestamps is almost always zero, costing a single bit.
///
/// Prefix buckets per value: '0' when dod == 0; '10' + 7 bits for
/// [-63, 64]; '110' + 9 bits for [-255, 256]; '1110' + 12 bits for
/// [-2047, 2048]; '1111' + 64 bits otherwise (widened from GORILLA's 32
/// so arbitrary int64 series stay lossless).
class DodCodec final : public SeriesCodec {
 public:
  explicit DodCodec(size_t block_size = kDefaultBlockSize);

  std::string name() const override { return "DOD"; }
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;

  size_t block_size_;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_DOD_H_
