#include "codecs/streaming.h"

#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::codecs {

SeriesStreamEncoder::SeriesStreamEncoder(
    std::shared_ptr<const SeriesCodec> codec, size_t block_size)
    : codec_(std::move(codec)), block_size_(block_size) {
  pending_.reserve(block_size_);
}

void SeriesStreamEncoder::Append(int64_t value) {
  pending_.push_back(value);
  ++appended_;
  if (pending_.size() >= block_size_ && deferred_error_.ok()) {
    deferred_error_ = EmitBlock();
  }
}

void SeriesStreamEncoder::AppendSpan(std::span<const int64_t> values) {
  for (int64_t v : values) Append(v);
}

Status SeriesStreamEncoder::EmitBlock() {
  Bytes frame;
  BOS_RETURN_NOT_OK(codec_->Compress(pending_, &frame));
  bitpack::PutVarint(&sink_, frame.size());
  sink_.insert(sink_.end(), frame.begin(), frame.end());
  pending_.clear();
  return Status::OK();
}

Status SeriesStreamEncoder::Finish() {
  BOS_RETURN_NOT_OK(deferred_error_);
  if (!pending_.empty()) BOS_RETURN_NOT_OK(EmitBlock());
  bitpack::PutVarint(&sink_, 0);  // end-of-stream marker
  appended_ = 0;
  return Status::OK();
}

SeriesStreamDecoder::SeriesStreamDecoder(
    std::shared_ptr<const SeriesCodec> codec, BytesView data)
    : codec_(std::move(codec)), data_(data) {}

Status SeriesStreamDecoder::NextBlock(std::vector<int64_t>* out, bool* done) {
  *done = false;
  uint64_t frame_len;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data_, &offset_, &frame_len));
  if (frame_len == 0) {
    *done = true;
    return Status::OK();
  }
  if (offset_ + frame_len > data_.size()) {
    return Status::Corruption("stream frame truncated");
  }
  BOS_RETURN_NOT_OK(
      codec_->Decompress(data_.subspan(offset_, frame_len), out));
  offset_ += frame_len;
  return Status::OK();
}

Status SeriesStreamDecoder::ReadAll(std::vector<int64_t>* out) {
  bool done = false;
  while (!done) {
    BOS_RETURN_NOT_OK(NextBlock(out, &done));
  }
  return Status::OK();
}

}  // namespace bos::codecs
