#include "codecs/streaming.h"

#include "bitpack/varint.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::codecs {

SeriesStreamEncoder::SeriesStreamEncoder(
    std::shared_ptr<const SeriesCodec> codec, size_t block_size)
    : codec_(std::move(codec)), block_size_(block_size) {
  pending_.reserve(block_size_);
}

void SeriesStreamEncoder::Append(int64_t value) {
  if (finished_) {
    // Appending past the end-of-stream marker would corrupt the sink;
    // latch the error and surface it at the next Finish.
    if (deferred_error_.ok()) {
      deferred_error_ =
          Status::InvalidArgument("Append after Finish; call Reset first");
    }
    return;
  }
  pending_.push_back(value);
  ++appended_;
  if (pending_.size() >= block_size_ && deferred_error_.ok()) {
    deferred_error_ = EmitBlock();
  }
}

void SeriesStreamEncoder::AppendSpan(std::span<const int64_t> values) {
  for (int64_t v : values) Append(v);
}

Status SeriesStreamEncoder::EmitBlock() {
  Bytes frame;
  BOS_RETURN_NOT_OK(codec_->Compress(pending_, &frame));
  bitpack::PutVarint(&sink_, frame.size());
  sink_.insert(sink_.end(), frame.begin(), frame.end());
  pending_.clear();
  return Status::OK();
}

Status SeriesStreamEncoder::Finish() {
  BOS_RETURN_NOT_OK(deferred_error_);
  if (finished_) {
    return Status::InvalidArgument("Finish called twice; call Reset first");
  }
  if (!pending_.empty()) BOS_RETURN_NOT_OK(EmitBlock());
  bitpack::PutVarint(&sink_, 0);  // end-of-stream marker
  finished_ = true;
  return Status::OK();
}

void SeriesStreamEncoder::Reset() {
  pending_.clear();
  sink_.clear();
  appended_ = 0;
  deferred_error_ = Status::OK();
  finished_ = false;
}

SeriesStreamDecoder::SeriesStreamDecoder(
    std::shared_ptr<const SeriesCodec> codec, BytesView data)
    : codec_(std::move(codec)), data_(data) {}

Status SeriesStreamDecoder::NextBlock(std::vector<int64_t>* out, bool* done) {
  Status st = [&]() -> Status {
    *done = false;
    uint64_t frame_len;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data_, &offset_, &frame_len));
    if (frame_len == 0) {
      *done = true;
      return Status::OK();
    }
    // The varint-decoded frame length is untrusted 64-bit input: a naive
    // `offset_ + frame_len > size` guard wraps and reads out of bounds.
    BOS_ASSIGN_OR_RETURN(const BytesView frame,
                         CheckedSlice(data_, offset_, frame_len,
                                      "stream frame"));
    BOS_RETURN_NOT_OK(codec_->Decompress(frame, out));
    offset_ += frame_len;
    return Status::OK();
  }();
  return CountDecodeRejection(st);
}

Status SeriesStreamDecoder::ReadAll(std::vector<int64_t>* out) {
  bool done = false;
  while (!done) {
    BOS_RETURN_NOT_OK(NextBlock(out, &done));
  }
  return Status::OK();
}

}  // namespace bos::codecs
