#include "codecs/timeseries.h"

#include "bitpack/varint.h"
#include "codecs/registry.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::codecs {

TimeSeriesCodec::TimeSeriesCodec(std::shared_ptr<const SeriesCodec> time_codec,
                                 std::shared_ptr<const SeriesCodec> value_codec)
    : time_codec_(std::move(time_codec)), value_codec_(std::move(value_codec)) {}

std::string TimeSeriesCodec::name() const {
  return time_codec_->name() + "|" + value_codec_->name();
}

Status TimeSeriesCodec::Compress(std::span<const DataPoint> points,
                                 Bytes* out) const {
  std::vector<int64_t> column(points.size());
  for (size_t i = 0; i < points.size(); ++i) column[i] = points[i].timestamp;
  Bytes time_stream;
  BOS_RETURN_NOT_OK(time_codec_->Compress(column, &time_stream));

  for (size_t i = 0; i < points.size(); ++i) column[i] = points[i].value;
  Bytes value_stream;
  BOS_RETURN_NOT_OK(value_codec_->Compress(column, &value_stream));

  bitpack::PutVarint(out, time_stream.size());
  out->insert(out->end(), time_stream.begin(), time_stream.end());
  out->insert(out->end(), value_stream.begin(), value_stream.end());
  return Status::OK();
}

Status TimeSeriesCodec::Decompress(BytesView data,
                                   std::vector<DataPoint>* out) const {
  size_t offset = 0;
  uint64_t time_len;
  BOS_RETURN_NOT_OK(
      CountDecodeRejection(bitpack::GetVarint(data, &offset, &time_len)));
  // `time_len` is attacker-controlled: `offset + time_len` may wrap, so the
  // slice must be taken through the checked helper.
  BOS_ASSIGN_OR_RETURN(
      const BytesView time_stream,
      CountDecodeRejection(
          CheckedSlice(data, offset, time_len, "timeseries time column")));
  std::vector<int64_t> timestamps;
  BOS_RETURN_NOT_OK(time_codec_->Decompress(time_stream, &timestamps));
  std::vector<int64_t> values;
  BOS_RETURN_NOT_OK(
      value_codec_->Decompress(data.subspan(offset + time_len), &values));
  if (timestamps.size() != values.size()) {
    return Status::Corruption("timeseries: column length mismatch");
  }
  out->reserve(out->size() + values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out->push_back({timestamps[i], values[i]});
  }
  return Status::OK();
}

Status TimeSeriesCodec::DecompressSelected(BytesView data,
                                           const select::SelectionView& sel,
                                           std::vector<DataPoint>* out) const {
  size_t offset = 0;
  uint64_t time_len;
  BOS_RETURN_NOT_OK(
      CountDecodeRejection(bitpack::GetVarint(data, &offset, &time_len)));
  BOS_ASSIGN_OR_RETURN(
      const BytesView time_stream,
      CountDecodeRejection(
          CheckedSlice(data, offset, time_len, "timeseries time column")));
  std::vector<int64_t> timestamps;
  BOS_RETURN_NOT_OK(
      time_codec_->DecompressSelected(time_stream, sel, &timestamps));
  std::vector<int64_t> values;
  BOS_RETURN_NOT_OK(value_codec_->DecompressSelected(
      data.subspan(offset + time_len), sel, &values));
  if (timestamps.size() != values.size()) {
    return Status::Corruption("timeseries: column length mismatch");
  }
  out->reserve(out->size() + values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out->push_back({timestamps[i], values[i]});
  }
  return Status::OK();
}

Result<std::shared_ptr<const TimeSeriesCodec>> MakeTimeSeriesCodec(
    std::string_view spec, size_t block_size) {
  const size_t bar = spec.find('|');
  if (bar == std::string_view::npos) {
    return Status::InvalidArgument(
        "time-series spec must be time_spec|value_spec: " + std::string(spec));
  }
  BOS_ASSIGN_OR_RETURN(auto time_codec,
                       MakeSeriesCodec(spec.substr(0, bar), block_size));
  BOS_ASSIGN_OR_RETURN(auto value_codec,
                       MakeSeriesCodec(spec.substr(bar + 1), block_size));
  return {std::make_shared<TimeSeriesCodec>(std::move(time_codec),
                                            std::move(value_codec))};
}

}  // namespace bos::codecs
