#ifndef BOS_CODECS_STREAMING_H_
#define BOS_CODECS_STREAMING_H_

#include <memory>

#include "codecs/series_codec.h"

namespace bos::codecs {

/// \brief Incremental series encoder for ingestion pipelines: values are
/// appended one at a time (or in spans); every full block is compressed
/// and emitted immediately, so memory stays bounded by one block
/// regardless of stream length.
///
/// The emitted stream is *chunked*: a sequence of `varint length | bytes`
/// frames, each frame a complete SeriesCodec stream of one block. Use
/// `SeriesStreamDecoder` to read it back; the total value count lives in
/// the final frame marker, so the stream is valid after every `Flush`.
class SeriesStreamEncoder {
 public:
  /// The codec compresses each block independently; `block_size` values
  /// per frame.
  SeriesStreamEncoder(std::shared_ptr<const SeriesCodec> codec,
                      size_t block_size = kDefaultBlockSize);

  /// Appends one value; may emit a frame into the sink buffer. Appending
  /// after `Finish` is an error (it would land frames after the
  /// end-of-stream marker): the call is ignored and the next `Finish`
  /// reports InvalidArgument. Call `Reset` to start a new stream.
  void Append(int64_t value);

  /// Appends many values.
  void AppendSpan(std::span<const int64_t> values);

  /// Compresses any buffered tail and writes the end-of-stream marker
  /// (an empty frame). The stream in the sink is complete afterwards;
  /// further Append/Finish calls fail until `Reset`.
  Status Finish();

  /// Clears the sink and all encoder state, ready for a fresh stream.
  /// Drain or copy the sink first — its bytes are discarded.
  void Reset();

  /// The sink holding emitted frames; the caller may drain it between
  /// appends (e.g. write to a socket) as long as bytes are consumed
  /// front-to-back.
  Bytes* sink() { return &sink_; }

  /// Values appended since construction / the last Reset.
  uint64_t values_appended() const { return appended_; }

  /// True once Finish has written the end-of-stream marker.
  bool finished() const { return finished_; }

 private:
  Status EmitBlock();

  std::shared_ptr<const SeriesCodec> codec_;
  size_t block_size_;
  std::vector<int64_t> pending_;
  Bytes sink_;
  uint64_t appended_ = 0;
  Status deferred_error_;
  bool finished_ = false;
};

/// \brief Decoder for SeriesStreamEncoder output. Pull-based: call
/// `NextBlock` until it reports end-of-stream.
class SeriesStreamDecoder {
 public:
  SeriesStreamDecoder(std::shared_ptr<const SeriesCodec> codec, BytesView data);

  /// Decodes the next frame into `out` (appending). Sets `*done` when the
  /// end-of-stream marker was consumed.
  Status NextBlock(std::vector<int64_t>* out, bool* done);

  /// Convenience: decodes the whole stream.
  Status ReadAll(std::vector<int64_t>* out);

 private:
  std::shared_ptr<const SeriesCodec> codec_;
  BytesView data_;
  size_t offset_ = 0;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_STREAMING_H_
