#include "codecs/raw.h"

#include <algorithm>

#include "bitpack/varint.h"
#include "core/bos_codec.h"
#include "util/macros.h"

namespace bos::codecs {

RawCodec::RawCodec(std::shared_ptr<const core::PackingOperator> op,
                   size_t block_size)
    : op_(std::move(op)), block_size_(block_size) {}

std::string RawCodec::name() const {
  return std::string("RAW+") + std::string(op_->name());
}

Status RawCodec::Compress(std::span<const int64_t> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    BOS_RETURN_NOT_OK(op_->Encode(values.subspan(start, len), out));
  }
  return Status::OK();
}

Status RawCodec::Decompress(BytesView data, std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status RawCodec::DecompressImpl(BytesView data,
                                std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RAW: n too large");
  ReserveBounded(out, n);
  const size_t old_size = out->size();
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, out));
    // The stride is part of the grammar: every block except the last
    // holds exactly block_size values (DecompressSelected's per-block
    // windows depend on it).
    if (out->size() - old_size != done + len) {
      return Status::Corruption("RAW: block length mismatch");
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("RAW: trailing bytes after stream");
  }
  return Status::OK();
}

Status RawCodec::DecompressSelected(BytesView data,
                                    const select::SelectionView& sel,
                                    std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressSelectedImpl(data, sel, out));
}

Status RawCodec::DecompressSelectedImpl(BytesView data,
                                        const select::SelectionView& sel,
                                        std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RAW: n too large");
  uint64_t covered = 0;  // selected positions that fell inside some block
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    const select::SelectionView window = sel.SubView(done, len);
    covered += window.count();
    // An empty window still advances the offset — DecodeSelected is the
    // skip primitive, so unselected blocks cost a header parse only.
    BOS_RETURN_NOT_OK(op_->DecodeSelected(data, &offset, window, out));
  }
  if (covered != sel.count()) {
    return Status::InvalidArgument(
        "DecompressSelected: position past end of stream");
  }
  if (offset != data.size()) {
    return Status::Corruption("RAW: trailing bytes after stream");
  }
  return Status::OK();
}

Status RawCodec::DecompressFilter(
    BytesView data, int64_t v_min, int64_t v_max, uint64_t base_index,
    std::vector<std::pair<uint64_t, int64_t>>* out,
    uint64_t* values_decoded) const {
  return CountDecodeRejection(DecompressFilterImpl(data, v_min, v_max,
                                                   base_index, out,
                                                   values_decoded));
}

Status RawCodec::DecompressFilterImpl(
    BytesView data, int64_t v_min, int64_t v_max, uint64_t base_index,
    std::vector<std::pair<uint64_t, int64_t>>* out,
    uint64_t* values_decoded) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RAW: n too large");
  std::vector<int64_t> scratch;
  const select::SelectionView empty;
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    int64_t zone_min, zone_max;
    if (core::PeekBlockZoneMap(data, offset, &zone_min, &zone_max) &&
        (zone_max < v_min || zone_min > v_max)) {
      // The block's value range is disjoint from the predicate: skip it
      // without touching the payload.
      BOS_TELEMETRY_COUNTER_ADD("bos.select.blocks_pruned", 1);
      BOS_RETURN_NOT_OK(op_->DecodeSelected(data, &offset, empty, &scratch));
      continue;
    }
    scratch.clear();
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &scratch));
    if (scratch.size() != len) {
      return Status::Corruption("RAW: block length mismatch");
    }
    if (values_decoded != nullptr) *values_decoded += len;
    for (uint64_t i = 0; i < len; ++i) {
      const int64_t v = scratch[static_cast<size_t>(i)];
      if (v >= v_min && v <= v_max) {
        out->emplace_back(base_index + done + i, v);
      }
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("RAW: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
