#ifndef BOS_CODECS_REGISTRY_H_
#define BOS_CODECS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codecs/series_codec.h"
#include "core/packing.h"
#include "util/result.h"

namespace bos::codecs {

/// Thread-safety contract (relied on by `src/exec/` and TsStore's
/// parallel flush/compact):
///
///  * The registry is **frozen at compile time** — the operator and
///    transform tables below are code, not mutable state, so there is no
///    registration phase to guard. Every factory here is a pure function
///    and may be called concurrently from any number of threads. (The
///    only shared state the factories touch is the telemetry registry,
///    whose registration path takes a mutex and whose updates are
///    atomic.)
///  * The returned `PackingOperator` / `SeriesCodec` instances are
///    immutable after construction: `Encode`/`Decode` and
///    `Compress`/`Decompress` are const and keep all working state on
///    the stack. One shared instance may therefore encode/decode many
///    blocks concurrently — implementations added to the registry must
///    preserve this property.
///
/// Names of all registered packing operators, in the order Figure 10
/// lists them: "BP", "PFOR", "NEWPFOR", "OPTPFOR", "FASTPFOR", "BOS-V",
/// "BOS-B", "BOS-M" (plus "BOS-UPPER", the Figure-12 ablation).
std::vector<std::string> OperatorNames();

/// Names of the transform codecs: "RLE", "SPRINTZ", "TS2DIFF".
std::vector<std::string> TransformNames();

/// \brief Creates a packing operator by name.
Result<std::shared_ptr<const core::PackingOperator>> MakeOperator(
    std::string_view name);

/// \brief Creates a composed series codec from a "TRANSFORM+OPERATOR"
/// spec, e.g. "TS2DIFF+BOS-B" or "RLE+FASTPFOR".
Result<std::shared_ptr<const SeriesCodec>> MakeSeriesCodec(
    std::string_view spec, size_t block_size = kDefaultBlockSize);

}  // namespace bos::codecs

#endif  // BOS_CODECS_REGISTRY_H_
