#ifndef BOS_CODECS_TIMESERIES_H_
#define BOS_CODECS_TIMESERIES_H_

#include <memory>

#include "codecs/series_codec.h"
#include "util/result.h"

namespace bos::codecs {

/// \brief One timestamped sample, as ingested by Apache IoTDB — the
/// deployment target of the paper (§VII).
struct DataPoint {
  int64_t timestamp = 0;
  int64_t value = 0;

  friend bool operator==(const DataPoint&, const DataPoint&) = default;
};

/// \brief Two-column codec for timestamped series: timestamps and values
/// are compressed independently, each with its own SeriesCodec.
///
/// IoT timestamps are near-regular, so their deltas are tiny with a few
/// outliers at gaps — exactly BOS's sweet spot; `TS2DIFF+BOS-B` is the
/// recommended (and default registry) choice for the time column.
class TimeSeriesCodec {
 public:
  TimeSeriesCodec(std::shared_ptr<const SeriesCodec> time_codec,
                  std::shared_ptr<const SeriesCodec> value_codec);

  /// "time_spec|value_spec", e.g. "TS2DIFF+BOS-B|RLE+BOS-B".
  std::string name() const;

  Status Compress(std::span<const DataPoint> points, Bytes* out) const;
  Status Decompress(BytesView data, std::vector<DataPoint>* out) const;

  /// Decodes only the row positions selected by `sel` (relative to the
  /// series, ascending) from both columns and zips them back into points.
  /// Skips whatever each column codec can skip (see
  /// SeriesCodec::DecompressSelected).
  Status DecompressSelected(BytesView data, const select::SelectionView& sel,
                            std::vector<DataPoint>* out) const;

 private:
  std::shared_ptr<const SeriesCodec> time_codec_;
  std::shared_ptr<const SeriesCodec> value_codec_;
};

/// \brief Builds a TimeSeriesCodec from a "time_spec|value_spec" pair
/// (each half a codecs::MakeSeriesCodec spec).
Result<std::shared_ptr<const TimeSeriesCodec>> MakeTimeSeriesCodec(
    std::string_view spec, size_t block_size = kDefaultBlockSize);

}  // namespace bos::codecs

#endif  // BOS_CODECS_TIMESERIES_H_
