#ifndef BOS_CODECS_INSPECT_H_
#define BOS_CODECS_INSPECT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codecs/series_codec.h"
#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::codecs {

/// \brief EXPLAIN-style stream inspector: walks encoded streams block by
/// block using only the headers and the format's own size arithmetic —
/// no values are ever materialized. Every length it trusts goes through
/// the same bounds checks as the real decoders, so inspecting hostile
/// bytes is as safe as decoding them (fuzz/fuzz_inspect.cc holds it to
/// that).
///
/// One `BlockReport` per encoded unit: a BOS/BP block, one PFOR-family
/// operator stream (its 128-value chunks are aggregated), or one
/// dictionary block. The Figure-7 sub-streams are reported as exact byte
/// (or bit, for the packed segments) counts.

/// Per-block breakdown. Fields beyond the common group are meaningful
/// only for the modes that have them; JSON output omits the rest.
struct BlockReport {
  uint64_t offset = 0;  ///< byte offset of the unit within the stream
  uint64_t bytes = 0;   ///< total encoded bytes of the unit
  uint64_t values = 0;  ///< values the unit decodes to

  /// "plain" | "bitmap" | "list" | "chunked" (PFOR family) |
  /// "dict" | "raw" (dictionary blocks)
  std::string mode;

  // Sub-stream byte accounting (header + positions + payload == bytes).
  uint64_t header_bytes = 0;    ///< mode byte, counts, bases, width bytes
  uint64_t position_bytes = 0;  ///< gap lists / exception positions+values
  uint64_t payload_bytes = 0;   ///< the bit-packed payload

  // BOS separated detail (modes "bitmap"/"list"): outlier counts and the
  // Figure-7 widths. `alpha`/`gamma` are 0 when the class is empty.
  uint64_t nl = 0, nu = 0;
  uint32_t alpha = 0, beta = 0, gamma = 0;
  uint64_t bitmap_bits = 0;  ///< n + nl + nu ('0'/'10'/'11' codes)
  uint64_t value_bits = 0;   ///< nl*alpha + nu*gamma + nc*beta

  // Plain-mode detail.
  uint32_t width = 0;

  // Zone-map wrapper (block mode 3, ".Z" operator names): the block-level
  // min/max read from the versioned header. `zone_min`/`zone_max` are
  // meaningful only when `has_zone_map` is true; wrapper bytes are
  // counted in `header_bytes`.
  bool has_zone_map = false;
  int64_t zone_min = 0;
  int64_t zone_max = 0;

  // PFOR-family detail (mode "chunked").
  uint64_t chunks = 0;
  uint64_t exceptions = 0;
};

/// One SeriesCodec stream (the output of one Compress call).
struct StreamReport {
  std::string spec;       ///< as passed in, e.g. "TS2DIFF+BOS-B"
  std::string transform;  ///< "" for operator-only / self-contained specs
  std::string op;         ///< "" for DOD
  uint64_t values = 0;    ///< total values in the stream
  uint64_t bytes = 0;     ///< total stream bytes
  bool opaque = false;    ///< payload not block-walked (DOD)
  std::vector<BlockReport> blocks;
};

/// A boscli-compressed file: "BOSC" (serial) or "BOSP" (chunk-parallel
/// frame) magic, spec header, then one or many codec streams.
struct ContainerReport {
  std::string format;  ///< "BOSC" | "BOSP"
  std::string spec;
  uint64_t file_bytes = 0;
  uint64_t total_values = 0;
  uint64_t chunk_values = 0;  ///< BOSP only: values per chunk
  std::vector<StreamReport> streams;  ///< BOSC: one; BOSP: one per chunk
};

/// Walks one operator-encoded unit (the output of one
/// PackingOperator::Encode call) starting at `*offset`, appending one
/// BlockReport and advancing the offset past the unit. `op` must be a
/// registry operator name ("BP", "PFOR", ..., "BOS-H"); every BOS
/// variant shares the block grammar, so any of them accepts any mode.
Status InspectOperatorUnit(std::string_view op, BytesView data, size_t* offset,
                           std::vector<BlockReport>* blocks);

/// Walks a full series stream encoded with `spec` (anything
/// MakeSeriesCodec accepts). Fails with Corruption on malformed bytes —
/// same acceptance as the real decoder, without materializing values.
Result<StreamReport> InspectSeriesStream(std::string_view spec, BytesView data,
                                         size_t block_size = kDefaultBlockSize);

/// Dispatches on the BOSC/BOSP magic of a boscli-compressed file.
Result<ContainerReport> InspectContainer(BytesView data);

/// Human-readable rendering (one line per block, indented).
std::string RenderInspectText(const ContainerReport& report);

/// JSON rendering; starts with "schema_version" (telemetry::kSchemaVersion).
std::string RenderInspectJson(const ContainerReport& report);

/// Shared by the renderers above and storage/tsfile_inspect.
void AppendStreamText(const StreamReport& stream, const std::string& indent,
                      std::string* out);
void AppendStreamJson(const StreamReport& stream, std::string* out);

}  // namespace bos::codecs

#endif  // BOS_CODECS_INSPECT_H_
