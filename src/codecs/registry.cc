#include "codecs/registry.h"

#include "codecs/dictionary.h"
#include "codecs/dod.h"
#include "codecs/raw.h"
#include "codecs/rle.h"
#include "codecs/sprintz.h"
#include "codecs/ts2diff.h"
#include "core/bos_codec.h"
#include "pfor/pfor.h"
#include "telemetry/telemetry.h"
#include "util/macros.h"

namespace bos::codecs {

std::vector<std::string> OperatorNames() {
  return {"BP",    "PFOR",  "NEWPFOR",   "OPTPFOR",  "FASTPFOR",     "BOS-V",
          "BOS-B", "BOS-M", "BOS-UPPER", "BOS-LIST", "BOS-ADAPTIVE"};
}

std::vector<std::string> TransformNames() { return {"RLE", "SPRINTZ", "TS2DIFF"}; }

Result<std::shared_ptr<const core::PackingOperator>> MakeOperator(
    std::string_view name) {
  using core::SeparationStrategy;
  // Which operators the deployment actually instantiates (cold path, so
  // the dynamically named per-operator counter is fine here).
  BOS_TELEMETRY_ONLY(telemetry::Registry::Global()
                         .GetCounter("bos.codecs.registry.operator." +
                                     std::string(name))
                         .Add(1));
  // A ".Z" suffix turns on the per-block zone-map wrapper (opt-in, like
  // "BOS-H": the wrapped bytes differ from the golden format, so ".Z"
  // names stay out of OperatorNames()). Decoders accept wrapped blocks
  // regardless of the flag, so "BOS-B" reads "BOS-B.Z" streams.
  bool zone_maps = false;
  std::string_view base = name;
  if (base.size() > 2 && base.substr(base.size() - 2) == ".Z") {
    zone_maps = true;
    base = base.substr(0, base.size() - 2);
  }
  if (base == "BP") {
    return {std::make_shared<core::BitPackingOperator>(zone_maps)};
  }
  if (base == "BOS-V") {
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kValue,
                                                zone_maps)};
  }
  if (base == "BOS-B") {
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kBitWidth,
                                                zone_maps)};
  }
  if (base == "BOS-M") {
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kMedian,
                                                zone_maps)};
  }
  // Opt-in (not in OperatorNames): encoded bytes depend on the
  // escalation threshold, so the hybrid stays out of the default grid
  // and the format-golden coverage.
  if (base == "BOS-H") {
    return {std::make_shared<core::BosHybridOperator>(0.95, zone_maps)};
  }
  if (base == "BOS-UPPER") {
    return {std::make_shared<core::BosUpperOnlyOperator>(zone_maps)};
  }
  if (base == "BOS-LIST") {
    return {std::make_shared<core::BosListOperator>(zone_maps)};
  }
  if (base == "BOS-ADAPTIVE") {
    return {std::make_shared<core::BosAdaptiveOperator>(zone_maps)};
  }
  if (zone_maps) {
    return Status::InvalidArgument("zone maps are not supported by operator: " +
                                   std::string(name));
  }
  if (name == "PFOR") return {std::make_shared<pfor::PforOperator>()};
  if (name == "NEWPFOR") return {std::make_shared<pfor::NewPforOperator>()};
  if (name == "OPTPFOR") return {std::make_shared<pfor::OptPforOperator>()};
  if (name == "FASTPFOR") return {std::make_shared<pfor::FastPforOperator>()};
  return Status::InvalidArgument("unknown packing operator: " +
                                 std::string(name));
}

Result<std::shared_ptr<const SeriesCodec>> MakeSeriesCodec(
    std::string_view spec, size_t block_size) {
  BOS_TELEMETRY_COUNTER_ADD("bos.codecs.registry.series_codec_requests", 1);
  // Self-contained codecs without an operator slot.
  if (spec == "DOD") return {std::make_shared<DodCodec>(block_size)};
  const size_t plus = spec.find('+');
  if (plus == std::string_view::npos) {
    return Status::InvalidArgument("codec spec must be TRANSFORM+OPERATOR: " +
                                   std::string(spec));
  }
  const std::string_view transform = spec.substr(0, plus);
  const std::string_view op_name = spec.substr(plus + 1);
  BOS_ASSIGN_OR_RETURN(auto op, MakeOperator(op_name));
  if (transform == "RLE") {
    return {std::make_shared<RleCodec>(std::move(op), block_size)};
  }
  if (transform == "SPRINTZ") {
    return {std::make_shared<SprintzCodec>(std::move(op), block_size)};
  }
  if (transform == "TS2DIFF") {
    return {std::make_shared<Ts2DiffCodec>(std::move(op), block_size)};
  }
  if (transform == "DICT") {
    return {std::make_shared<DictionaryCodec>(std::move(op), block_size)};
  }
  // Opt-in (not in TransformNames): the identity transform that enables
  // true selective decode — see raw.h.
  if (transform == "RAW") {
    return {std::make_shared<RawCodec>(std::move(op), block_size)};
  }
  return Status::InvalidArgument("unknown transform: " + std::string(transform));
}

}  // namespace bos::codecs
