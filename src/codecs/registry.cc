#include "codecs/registry.h"

#include "codecs/dictionary.h"
#include "codecs/dod.h"
#include "codecs/rle.h"
#include "codecs/sprintz.h"
#include "codecs/ts2diff.h"
#include "core/bos_codec.h"
#include "pfor/pfor.h"
#include "telemetry/telemetry.h"
#include "util/macros.h"

namespace bos::codecs {

std::vector<std::string> OperatorNames() {
  return {"BP",    "PFOR",  "NEWPFOR",   "OPTPFOR",  "FASTPFOR",     "BOS-V",
          "BOS-B", "BOS-M", "BOS-UPPER", "BOS-LIST", "BOS-ADAPTIVE"};
}

std::vector<std::string> TransformNames() { return {"RLE", "SPRINTZ", "TS2DIFF"}; }

Result<std::shared_ptr<const core::PackingOperator>> MakeOperator(
    std::string_view name) {
  using core::SeparationStrategy;
  // Which operators the deployment actually instantiates (cold path, so
  // the dynamically named per-operator counter is fine here).
  BOS_TELEMETRY_ONLY(telemetry::Registry::Global()
                         .GetCounter("bos.codecs.registry.operator." +
                                     std::string(name))
                         .Add(1));
  if (name == "BP") return {std::make_shared<core::BitPackingOperator>()};
  if (name == "PFOR") return {std::make_shared<pfor::PforOperator>()};
  if (name == "NEWPFOR") return {std::make_shared<pfor::NewPforOperator>()};
  if (name == "OPTPFOR") return {std::make_shared<pfor::OptPforOperator>()};
  if (name == "FASTPFOR") return {std::make_shared<pfor::FastPforOperator>()};
  if (name == "BOS-V")
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kValue)};
  if (name == "BOS-B")
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kBitWidth)};
  if (name == "BOS-M")
    return {std::make_shared<core::BosOperator>(SeparationStrategy::kMedian)};
  // Opt-in (not in OperatorNames): encoded bytes depend on the
  // escalation threshold, so the hybrid stays out of the default grid
  // and the format-golden coverage.
  if (name == "BOS-H") return {std::make_shared<core::BosHybridOperator>()};
  if (name == "BOS-UPPER")
    return {std::make_shared<core::BosUpperOnlyOperator>()};
  if (name == "BOS-LIST") return {std::make_shared<core::BosListOperator>()};
  if (name == "BOS-ADAPTIVE")
    return {std::make_shared<core::BosAdaptiveOperator>()};
  return Status::InvalidArgument("unknown packing operator: " +
                                 std::string(name));
}

Result<std::shared_ptr<const SeriesCodec>> MakeSeriesCodec(
    std::string_view spec, size_t block_size) {
  BOS_TELEMETRY_COUNTER_ADD("bos.codecs.registry.series_codec_requests", 1);
  // Self-contained codecs without an operator slot.
  if (spec == "DOD") return {std::make_shared<DodCodec>(block_size)};
  const size_t plus = spec.find('+');
  if (plus == std::string_view::npos) {
    return Status::InvalidArgument("codec spec must be TRANSFORM+OPERATOR: " +
                                   std::string(spec));
  }
  const std::string_view transform = spec.substr(0, plus);
  const std::string_view op_name = spec.substr(plus + 1);
  BOS_ASSIGN_OR_RETURN(auto op, MakeOperator(op_name));
  if (transform == "RLE") {
    return {std::make_shared<RleCodec>(std::move(op), block_size)};
  }
  if (transform == "SPRINTZ") {
    return {std::make_shared<SprintzCodec>(std::move(op), block_size)};
  }
  if (transform == "TS2DIFF") {
    return {std::make_shared<Ts2DiffCodec>(std::move(op), block_size)};
  }
  if (transform == "DICT") {
    return {std::make_shared<DictionaryCodec>(std::move(op), block_size)};
  }
  return Status::InvalidArgument("unknown transform: " + std::string(transform));
}

}  // namespace bos::codecs
