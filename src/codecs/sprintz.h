#ifndef BOS_CODECS_SPRINTZ_H_
#define BOS_CODECS_SPRINTZ_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::codecs {

/// \brief SPRINTZ (Blalock et al.): delta prediction, zigzag mapping of
/// the residuals, then block packing with the configured operator.
///
/// Zigzag folds the signed residuals toward zero so the packed domain is
/// non-negative with small magnitudes — SPRINTZ's headline trick. The
/// packing operator replaces SPRINTZ's plain bit-packer, giving
/// SPRINTZ+BP / SPRINTZ+PFOR / SPRINTZ+BOS from one code path.
class SprintzCodec final : public SeriesCodec {
 public:
  SprintzCodec(std::shared_ptr<const core::PackingOperator> op,
               size_t block_size = kDefaultBlockSize);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;

  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_SPRINTZ_H_
