#ifndef BOS_CODECS_SERIES_CODEC_H_
#define BOS_CODECS_SERIES_CODEC_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "select/selection.h"
#include "telemetry/telemetry.h"
#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::codecs {

/// \brief A whole-series lossless integer compressor.
///
/// This is the level at which the paper's Figure 10 grid operates: a
/// transform codec (RLE / SPRINTZ / TS2DIFF) composed with a block
/// packing operator (BP / PFOR family / BOS family).
class SeriesCodec {
 public:
  virtual ~SeriesCodec() = default;

  /// Display name, e.g. "TS2DIFF+BOS-B".
  virtual std::string name() const = 0;

  /// Compresses the series into `out` (appending).
  virtual Status Compress(std::span<const int64_t> values, Bytes* out) const = 0;

  /// Decompresses a buffer produced by Compress. Appends to `out`.
  virtual Status Decompress(BytesView data, std::vector<int64_t>* out) const = 0;

  /// Decompresses only the stream positions selected by `sel` (positions
  /// are relative to the stream, i.e. rel in [0, num_values)), appending
  /// the selected values in ascending position order. A selected position
  /// past the end of the stream is InvalidArgument.
  ///
  /// The base implementation decodes everything and gathers; codecs whose
  /// streams support random access (the RAW transform) override it to
  /// skip unselected blocks entirely.
  virtual Status DecompressSelected(BytesView data,
                                    const select::SelectionView& sel,
                                    std::vector<int64_t>* out) const;

  /// Value-predicate scan: appends `(base_index + position, value)` pairs
  /// for every stream value in `[v_min, v_max]`, in position order.
  /// `*values_decoded` (optional) is incremented by the number of values
  /// actually materialized, so callers can audit pushdown effectiveness.
  /// The base implementation decodes everything; the RAW transform
  /// consults per-block zone maps to skip disjoint blocks.
  virtual Status DecompressFilter(BytesView data, int64_t v_min, int64_t v_max,
                                  uint64_t base_index,
                                  std::vector<std::pair<uint64_t, int64_t>>* out,
                                  uint64_t* values_decoded) const;
};

/// Default block size used across the evaluation, matching the paper's
/// scalability sweep midpoint (Figure 15 covers 2^6..2^13).
inline constexpr size_t kDefaultBlockSize = 1024;

/// Decompression-bomb guard: decoders reject streams that claim more
/// values than this before allocating anything. Larger series must be
/// chunked by the caller (the TsFile-lite pages do this naturally).
inline constexpr uint64_t kMaxStreamValues = 1ULL << 26;

/// Bounded reservation helper: hostile streams can claim huge counts, so
/// reserve at most a sane amount up front and let the vector grow if the
/// data really is that large.
template <typename T>
inline void ReserveBounded(std::vector<T>* out, uint64_t extra) {
  out->reserve(out->size() + static_cast<size_t>(
                                 std::min<uint64_t>(extra, 1ULL << 20)));
}

/// Decode entry points pass their final status through here so the rate
/// of rejected corrupt/truncated streams is observable in production
/// (`bos.codecs.decode.corrupt_rejected` in the telemetry snapshot).
/// Returns `st` unchanged.
inline Status CountDecodeRejection(Status st) {
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.codecs.decode.corrupt_rejected", 1);
  }
  return st;
}

template <typename T>
inline Result<T> CountDecodeRejection(Result<T> result) {
  if (!result.ok() && result.status().IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.codecs.decode.corrupt_rejected", 1);
  }
  return result;
}

}  // namespace bos::codecs

#endif  // BOS_CODECS_SERIES_CODEC_H_
