#ifndef BOS_CODECS_ADVISOR_H_
#define BOS_CODECS_ADVISOR_H_

#include <string>
#include <utility>
#include <vector>

#include "codecs/series_codec.h"
#include "util/result.h"

namespace bos::codecs {

/// Options for AdviseCodec.
struct AdvisorOptions {
  /// Values sampled from the series (evenly spaced blocks). The sample is
  /// capped at the series length.
  size_t sample_values = 8192;

  /// Candidate codec specs; empty selects a curated default covering the
  /// transform/operator grid's useful corners.
  std::vector<std::string> candidates;

  /// Swap the exact BOS-B operator for the hybrid "BOS-H"
  /// (BOS-M-first, escalate-on-weak-gain) in the default candidate list
  /// and in the recommendation: the advisor's sampling passes — and the
  /// ingestion path it recommends — then pay the exact search only on
  /// blocks where the approximate one looks weak. Ignored when
  /// `candidates` is set explicitly.
  bool hybrid = false;
};

/// One candidate's measured performance on the sample.
struct CandidateScore {
  std::string spec;
  double ratio = 0;  ///< 8*n / compressed bytes on the sample
};

/// The advisor's verdict.
struct Recommendation {
  std::string spec;        ///< best candidate
  double estimated_ratio;  ///< its ratio on the sample
  std::vector<CandidateScore> ranking;  ///< all candidates, best first
};

/// \brief Encoding advisor in the spirit of Apache IoTDB's: compresses a
/// sample of the series with each candidate codec and recommends the one
/// with the best ratio. The sample interleaves blocks from the head,
/// middle and tail so trend changes are represented.
Result<Recommendation> AdviseCodec(std::span<const int64_t> values,
                                   const AdvisorOptions& options = {});

}  // namespace bos::codecs

#endif  // BOS_CODECS_ADVISOR_H_
