#include "codecs/dictionary.h"

#include <algorithm>

#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::codecs {
namespace {

constexpr uint8_t kDictBlock = 1;
constexpr uint8_t kRawBlock = 0;

}  // namespace

DictionaryCodec::DictionaryCodec(
    std::shared_ptr<const core::PackingOperator> op, size_t block_size)
    : op_(std::move(op)), block_size_(block_size) {}

std::string DictionaryCodec::name() const {
  return std::string("DICT+") + std::string(op_->name());
}

Status DictionaryCodec::Compress(std::span<const int64_t> values,
                                 Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  std::vector<int64_t> dict;
  std::vector<int64_t> indexes;
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    const auto block = values.subspan(start, len);

    dict.assign(block.begin(), block.end());
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

    if (dict.size() * 2 > len) {
      out->push_back(kRawBlock);
      BOS_RETURN_NOT_OK(op_->Encode(block, out));
      continue;
    }
    out->push_back(kDictBlock);
    indexes.resize(len);
    for (size_t i = 0; i < len; ++i) {
      indexes[i] = std::lower_bound(dict.begin(), dict.end(), block[i]) -
                   dict.begin();
    }
    BOS_RETURN_NOT_OK(op_->Encode(dict, out));
    BOS_RETURN_NOT_OK(op_->Encode(indexes, out));
  }
  return Status::OK();
}

Status DictionaryCodec::Decompress(BytesView data,
                                   std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status DictionaryCodec::DecompressImpl(BytesView data,
                                       std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("DICT: n too large");
  ReserveBounded(out, n);
  std::vector<int64_t> dict, indexes;
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    if (offset >= data.size()) return Status::Corruption("DICT: truncated");
    const uint8_t mode = data[offset++];
    if (mode == kRawBlock) {
      const size_t before = out->size();
      BOS_RETURN_NOT_OK(op_->Decode(data, &offset, out));
      if (out->size() - before != len) {
        return Status::Corruption("DICT: raw block length mismatch");
      }
      continue;
    }
    if (mode != kDictBlock) return Status::Corruption("DICT: bad block mode");
    dict.clear();
    indexes.clear();
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &dict));
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &indexes));
    if (indexes.size() != len) {
      return Status::Corruption("DICT: index length mismatch");
    }
    for (int64_t idx : indexes) {
      if (idx < 0 || static_cast<size_t>(idx) >= dict.size()) {
        return Status::Corruption("DICT: index out of range");
      }
      out->push_back(dict[static_cast<size_t>(idx)]);
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("DICT: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
