#include "codecs/inspect.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "bitpack/simple8b.h"
#include "codecs/registry.h"
#include "bitpack/varint.h"
#include "core/block_io.h"
#include "pfor/pfor_common.h"
#include "telemetry/telemetry.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::codecs {
namespace {

// Block mode bytes, mirrored from core/block_io.h usage.
constexpr uint8_t kPlain = core::kPlainBlockMode;
constexpr uint8_t kBitmap = core::kSeparatedBlockMode;
constexpr uint8_t kList = core::kSeparatedListBlockMode;

void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

Status ReadWidthByte(BytesView data, size_t* offset, uint32_t* width,
                     const char* what) {
  if (*offset >= data.size()) {
    return Status::Corruption(std::string(what) + ": truncated width byte");
  }
  *width = data[(*offset)++];
  if (*width > 64) {
    return Status::Corruption(std::string(what) + ": width > 64");
  }
  return Status::OK();
}

Status SkipPacked(BytesView data, size_t* offset, uint64_t bits,
                  const char* what) {
  const uint64_t bytes = BitsToBytes(bits);
  if (!SliceFits(data.size(), *offset, bytes)) {
    return Status::Corruption(std::string(what) + ": payload truncated");
  }
  *offset += bytes;
  return Status::OK();
}

// ---------------------------------------------------------------------
// BOS / BP block (one PackingOperator::Encode unit for the BOS family).
// Field-for-field mirror of DecodeBosBlockImpl and the three body
// decoders in core/bos_codec.cc — only offsets move, no values.
// ---------------------------------------------------------------------

Status WalkBosBlock(BytesView data, size_t* offset, BlockReport* block) {
  if (*offset >= data.size()) {
    return Status::Corruption("BOS block: no mode byte");
  }
  const size_t start = *offset;
  uint8_t mode = data[(*offset)++];

  if (mode == core::kZoneMapBlockMode) {
    BOS_RETURN_NOT_OK(core::DecodeZoneMapHeader(data, offset, &block->zone_min,
                                                &block->zone_max));
    block->has_zone_map = true;
    if (*offset >= data.size()) {
      return Status::Corruption("zone-mapped block: no inner mode byte");
    }
    mode = data[(*offset)++];
    if (mode == core::kZoneMapBlockMode) {
      return Status::Corruption("zone-mapped block: nested wrapper");
    }
  }

  if (mode == kPlain) {
    block->mode = "plain";
    uint64_t n;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
    if (n > core::kMaxBlockValues) {
      return Status::Corruption("plain block: n too large");
    }
    block->values = n;
    if (n > 0) {
      int64_t min;
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
      BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &block->width, "plain block"));
      block->header_bytes = *offset - start;
      block->value_bits = n * static_cast<uint64_t>(block->width);
      BOS_RETURN_NOT_OK(SkipPacked(data, offset, block->value_bits, "plain block"));
      block->payload_bytes = BitsToBytes(block->value_bits);
    } else {
      block->header_bytes = *offset - start;
    }
    block->bytes = *offset - start;
    return Status::OK();
  }

  if (mode != kBitmap && mode != kList) {
    return Status::Corruption("BOS block: unknown mode byte");
  }
  block->mode = mode == kBitmap ? "bitmap" : "list";

  uint64_t n, nl, nu;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nu));
  if (n > core::kMaxBlockValues) {
    return Status::Corruption("BOS block: n too large");
  }
  if (nl > n || nu > n || nl + nu > n) {
    return Status::Corruption("BOS block: outlier counts exceed n");
  }
  block->values = n;
  block->nl = nl;
  block->nu = nu;

  int64_t base;
  if (nl > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &base));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &base));
  if (nu > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &base));

  if (nl > 0) BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &block->alpha, "BOS block"));
  BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &block->beta, "BOS block"));
  if (nu > 0) BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &block->gamma, "BOS block"));
  block->header_bytes = *offset - start;

  block->value_bits = nl * static_cast<uint64_t>(block->alpha) +
                      nu * static_cast<uint64_t>(block->gamma) +
                      (n - nl - nu) * static_cast<uint64_t>(block->beta);

  if (mode == kList) {
    // Two ascending gap lists (first = absolute position, then gap-1),
    // validated exactly like DecodeSeparatedListBody.
    const size_t positions_start = *offset;
    auto skip_positions = [&](uint64_t count) -> Status {
      uint64_t pos = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t gap;
        BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &gap));
        pos = (i == 0) ? gap : pos + 1 + gap;
        if (pos >= n) return Status::Corruption("BOS-LIST: bad position");
      }
      return Status::OK();
    };
    BOS_RETURN_NOT_OK(skip_positions(nl));
    BOS_RETURN_NOT_OK(skip_positions(nu));
    block->position_bytes = *offset - positions_start;
    BOS_RETURN_NOT_OK(SkipPacked(data, offset, block->value_bits, "BOS-LIST"));
  } else {
    block->bitmap_bits = n + nl + nu;
    BOS_RETURN_NOT_OK(
        SkipPacked(data, offset, block->bitmap_bits + block->value_bits,
                   "BOS block"));
  }
  block->payload_bytes = BitsToBytes(block->bitmap_bits + block->value_bits);
  block->bytes = *offset - start;
  return Status::OK();
}

// ---------------------------------------------------------------------
// PFOR family (one operator stream: varint n + 128-value chunks).
// Mirrors of DecodePforChunk / DecodeNewPforChunk /
// FastPforOperator::DecodeImpl in src/pfor/pfor.cc.
// ---------------------------------------------------------------------

enum class PforFlavor { kPfor, kNewPfor, kFastPfor };

Status WalkPforChunk(BytesView data, size_t* offset, size_t len,
                     BlockReport* block) {
  const size_t start = *offset;
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  uint32_t b;
  BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &b, "PFOR chunk"));
  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &num_exc));
  if (num_exc > len) return Status::Corruption("PFOR exception count");
  if (num_exc > 0) {
    uint64_t first_idx;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &first_idx));
    if (first_idx >= len) return Status::Corruption("PFOR chain head");
  }
  block->header_bytes += *offset - start;
  const uint64_t slot_bits = len * static_cast<uint64_t>(b);
  BOS_RETURN_NOT_OK(SkipPacked(data, offset, slot_bits, "PFOR chunk"));
  block->payload_bytes += BitsToBytes(slot_bits);
  if (!SliceFits(data.size(), *offset, num_exc * 8)) {
    return Status::Corruption("PFOR payload truncated");
  }
  *offset += num_exc * 8;
  block->position_bytes += num_exc * 8;
  block->exceptions += num_exc;
  return Status::OK();
}

Status WalkNewPforChunk(BytesView data, size_t* offset, size_t len,
                        BlockReport* block) {
  const size_t start = *offset;
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  uint32_t b;
  BOS_RETURN_NOT_OK(ReadWidthByte(data, offset, &b, "NewPFOR chunk"));
  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &num_exc));
  if (num_exc > len) return Status::Corruption("NewPFOR exception count");
  block->header_bytes += *offset - start;
  const uint64_t slot_bits = len * static_cast<uint64_t>(b);
  BOS_RETURN_NOT_OK(SkipPacked(data, offset, slot_bits, "NewPFOR chunk"));
  block->payload_bytes += BitsToBytes(slot_bits);
  if (num_exc > 0) {
    // The two Simple-8b runs are self-delimiting only through their
    // decoder; the scratch values are discarded (they are positions and
    // high bits, not series values).
    const size_t exc_start = *offset;
    std::vector<uint64_t> scratch;
    BOS_RETURN_NOT_OK(bitpack::Simple8bDecode(data, offset, num_exc, &scratch));
    scratch.clear();
    BOS_RETURN_NOT_OK(bitpack::Simple8bDecode(data, offset, num_exc, &scratch));
    block->position_bytes += *offset - exc_start;
  }
  block->exceptions += num_exc;
  return Status::OK();
}

Status WalkFastPforStream(BytesView data, size_t* offset, BlockReport* block) {
  const size_t start = *offset;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > core::kMaxBlockValues) {
    return Status::Corruption("FastPFOR: n too large");
  }
  block->mode = "chunked";
  block->values = n;
  block->header_bytes = *offset - start;
  if (n == 0) {
    block->bytes = *offset - start;
    return Status::OK();
  }
  for (uint64_t done = 0; done < n; done += pfor::kChunkSize) {
    const size_t len = std::min<uint64_t>(pfor::kChunkSize, n - done);
    const size_t chunk_start = *offset;
    int64_t min;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
    if (!SliceFits(data.size(), *offset, 3)) {
      return Status::Corruption("FastPFOR truncated");
    }
    const int b = data[(*offset)++];
    const int maxbits = data[(*offset)++];
    const int num_exc = data[(*offset)++];
    if (b > 64 || maxbits > 64 || b > maxbits ||
        num_exc > static_cast<int>(len)) {
      return Status::Corruption("FastPFOR chunk header");
    }
    block->header_bytes += *offset - chunk_start;
    if (!SliceFits(data.size(), *offset, num_exc)) {
      return Status::Corruption("FastPFOR positions truncated");
    }
    for (int i = 0; i < num_exc; ++i) {
      if (data[*offset + i] >= len) {
        return Status::Corruption("FastPFOR position range");
      }
    }
    *offset += num_exc;
    block->position_bytes += num_exc;
    const uint64_t slot_bits = len * static_cast<uint64_t>(b);
    BOS_RETURN_NOT_OK(SkipPacked(data, offset, slot_bits, "FastPFOR chunk"));
    block->payload_bytes += BitsToBytes(slot_bits);
    block->exceptions += num_exc;
    ++block->chunks;
  }
  // Trailer: per-width exception pages, zero-width terminated.
  const size_t trailer_start = *offset;
  for (;;) {
    if (*offset >= data.size()) return Status::Corruption("FastPFOR trailer");
    const int w = data[(*offset)++];
    if (w == 0) break;
    if (w > 64) return Status::Corruption("FastPFOR trailer width");
    uint64_t count;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &count));
    if (count > n) return Status::Corruption("FastPFOR trailer count");
    BOS_RETURN_NOT_OK(
        SkipPacked(data, offset, count * static_cast<uint64_t>(w),
                   "FastPFOR trailer"));
  }
  block->position_bytes += *offset - trailer_start;
  block->bytes = *offset - start;
  return Status::OK();
}

Status WalkPforStream(PforFlavor flavor, BytesView data, size_t* offset,
                      BlockReport* block) {
  if (flavor == PforFlavor::kFastPfor) {
    return WalkFastPforStream(data, offset, block);
  }
  const size_t start = *offset;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > core::kMaxBlockValues) {
    return Status::Corruption("PFOR: n too large");
  }
  block->mode = "chunked";
  block->values = n;
  block->header_bytes = *offset - start;
  for (uint64_t done = 0; done < n; done += pfor::kChunkSize) {
    const size_t len = std::min<uint64_t>(pfor::kChunkSize, n - done);
    BOS_RETURN_NOT_OK(flavor == PforFlavor::kPfor
                          ? WalkPforChunk(data, offset, len, block)
                          : WalkNewPforChunk(data, offset, len, block));
    ++block->chunks;
  }
  block->bytes = *offset - start;
  return Status::OK();
}

enum class OpKind { kBos, kPfor, kNewPfor, kFastPfor, kUnknown };

// ".Z" names are the zone-map-emitting variants; only the BOS family
// (which owns the block grammar the wrapper extends) accepts them.
std::string_view StripZoneSuffix(std::string_view op) {
  if (op.size() > 2 && op.substr(op.size() - 2) == ".Z") {
    return op.substr(0, op.size() - 2);
  }
  return op;
}

OpKind KindOf(std::string_view op) {
  const bool zoned = op != StripZoneSuffix(op);
  op = StripZoneSuffix(op);
  if (op == "BP" || op.substr(0, 4) == "BOS-") return OpKind::kBos;
  if (zoned) return OpKind::kUnknown;
  if (op == "PFOR") return OpKind::kPfor;
  if (op == "NEWPFOR" || op == "OPTPFOR") return OpKind::kNewPfor;
  if (op == "FASTPFOR") return OpKind::kFastPfor;
  return OpKind::kUnknown;
}

bool KnownOperator(std::string_view op) {
  if (KindOf(op) == OpKind::kBos) op = StripZoneSuffix(op);
  for (const auto& name : OperatorNames()) {
    if (op == name) return true;
  }
  return op == "BOS-H";  // opt-in, not in OperatorNames()
}

// One operator Encode unit; dispatches on the operator family.
Status WalkOperatorUnit(OpKind kind, BytesView data, size_t* offset,
                        std::vector<BlockReport>* blocks) {
  BlockReport block;
  block.offset = *offset;
  switch (kind) {
    case OpKind::kBos:
      BOS_RETURN_NOT_OK(WalkBosBlock(data, offset, &block));
      break;
    case OpKind::kPfor:
      BOS_RETURN_NOT_OK(WalkPforStream(PforFlavor::kPfor, data, offset, &block));
      break;
    case OpKind::kNewPfor:
      BOS_RETURN_NOT_OK(
          WalkPforStream(PforFlavor::kNewPfor, data, offset, &block));
      break;
    case OpKind::kFastPfor:
      BOS_RETURN_NOT_OK(
          WalkPforStream(PforFlavor::kFastPfor, data, offset, &block));
      break;
    case OpKind::kUnknown:
      return Status::InvalidArgument("unknown packing operator");
  }
  blocks->push_back(std::move(block));
  return Status::OK();
}

// Expects the next unit to decode to exactly `expect` values.
Status WalkExpectedUnit(OpKind kind, BytesView data, size_t* offset,
                        uint64_t expect, std::vector<BlockReport>* blocks,
                        const char* what) {
  BOS_RETURN_NOT_OK(WalkOperatorUnit(kind, data, offset, blocks));
  if (blocks->back().values != expect) {
    return Status::Corruption(std::string(what) + ": block length mismatch");
  }
  return Status::OK();
}

// TS2DIFF and SPRINTZ share the stream grammar: varint n, then per block
// of `block_size` values: svarint first + one operator unit of len-1.
Status WalkDeltaStream(OpKind kind, BytesView data, size_t block_size,
                       StreamReport* report, const char* what) {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) {
    return Status::Corruption(std::string(what) + ": n too large");
  }
  report->values = n;
  for (uint64_t done = 0; done < n; done += block_size) {
    const uint64_t len = std::min<uint64_t>(block_size, n - done);
    int64_t first;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &first));
    BOS_RETURN_NOT_OK(
        WalkExpectedUnit(kind, data, &offset, len - 1, &report->blocks, what));
  }
  if (offset != data.size()) {
    return Status::Corruption(std::string(what) + ": trailing bytes");
  }
  return Status::OK();
}

Status WalkRleStream(OpKind kind, BytesView data, size_t block_size,
                     StreamReport* report) {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RLE: n too large");
  report->values = n;
  for (uint64_t done = 0; done < n; done += block_size) {
    const uint64_t len = std::min<uint64_t>(block_size, n - done);
    uint64_t num_runs;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &num_runs));
    if (num_runs > len) return Status::Corruption("RLE: too many runs");
    uint64_t total = 0;
    for (uint64_t r = 0; r < num_runs; ++r) {
      uint64_t rl;
      BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &rl));
      if (rl == 0 || !CheckedAdd(total, rl, &total) || total > len) {
        return Status::Corruption("RLE: bad run length");
      }
    }
    if (total != len) return Status::Corruption("RLE: run lengths mismatch");
    BOS_RETURN_NOT_OK(
        WalkExpectedUnit(kind, data, &offset, num_runs, &report->blocks, "RLE"));
  }
  if (offset != data.size()) {
    return Status::Corruption("RLE: trailing bytes");
  }
  return Status::OK();
}

// RAW is the identity transform: varint n, then fixed-stride operator
// units of exactly block_size values (last one partial). The stride is
// part of the grammar (DecompressSelected's windows depend on it).
Status WalkRawStream(OpKind kind, BytesView data, size_t block_size,
                     StreamReport* report) {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("RAW: n too large");
  report->values = n;
  for (uint64_t done = 0; done < n; done += block_size) {
    const uint64_t len = std::min<uint64_t>(block_size, n - done);
    BOS_RETURN_NOT_OK(
        WalkExpectedUnit(kind, data, &offset, len, &report->blocks, "RAW"));
  }
  if (offset != data.size()) {
    return Status::Corruption("RAW: trailing bytes");
  }
  return Status::OK();
}

Status WalkDictStream(OpKind kind, BytesView data, size_t block_size,
                      StreamReport* report) {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("DICT: n too large");
  report->values = n;
  for (uint64_t done = 0; done < n; done += block_size) {
    const uint64_t len = std::min<uint64_t>(block_size, n - done);
    if (offset >= data.size()) return Status::Corruption("DICT: truncated");
    const uint8_t mode = data[offset++];
    if (mode == 0) {  // raw block: one unit of len values
      BOS_RETURN_NOT_OK(
          WalkExpectedUnit(kind, data, &offset, len, &report->blocks, "DICT"));
      continue;
    }
    if (mode != 1) return Status::Corruption("DICT: bad block mode");
    // Dictionary block: the dictionary unit (its own length) then the
    // index unit of exactly len values.
    BOS_RETURN_NOT_OK(WalkOperatorUnit(kind, data, &offset, &report->blocks));
    if (report->blocks.back().values > len) {
      return Status::Corruption("DICT: dictionary larger than block");
    }
    BOS_RETURN_NOT_OK(
        WalkExpectedUnit(kind, data, &offset, len, &report->blocks, "DICT"));
  }
  if (offset != data.size()) {
    return Status::Corruption("DICT: trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Status InspectOperatorUnit(std::string_view op, BytesView data, size_t* offset,
                           std::vector<BlockReport>* blocks) {
  const OpKind kind = KindOf(op);
  if (kind == OpKind::kUnknown || !KnownOperator(op)) {
    return Status::InvalidArgument("unknown packing operator: " +
                                   std::string(op));
  }
  return WalkOperatorUnit(kind, data, offset, blocks);
}

Result<StreamReport> InspectSeriesStream(std::string_view spec, BytesView data,
                                         size_t block_size) {
  StreamReport report;
  report.spec = std::string(spec);
  report.bytes = data.size();
  if (spec == "DOD") {
    // Self-contained bit-level codec: only the stream length is framed.
    size_t offset = 0;
    uint64_t n;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
    if (n > kMaxStreamValues) return Status::Corruption("DOD: n too large");
    report.values = n;
    report.opaque = true;
    return report;
  }
  const size_t plus = spec.find('+');
  if (plus == std::string_view::npos) {
    return Status::InvalidArgument("codec spec must be TRANSFORM+OPERATOR: " +
                                   std::string(spec));
  }
  report.transform = std::string(spec.substr(0, plus));
  report.op = std::string(spec.substr(plus + 1));
  const OpKind kind = KindOf(report.op);
  if (kind == OpKind::kUnknown || !KnownOperator(report.op)) {
    return Status::InvalidArgument("unknown packing operator: " + report.op);
  }
  if (report.transform == "TS2DIFF") {
    BOS_RETURN_NOT_OK(
        WalkDeltaStream(kind, data, block_size, &report, "TS2DIFF"));
  } else if (report.transform == "SPRINTZ") {
    BOS_RETURN_NOT_OK(
        WalkDeltaStream(kind, data, block_size, &report, "SPRINTZ"));
  } else if (report.transform == "RLE") {
    BOS_RETURN_NOT_OK(WalkRleStream(kind, data, block_size, &report));
  } else if (report.transform == "DICT") {
    BOS_RETURN_NOT_OK(WalkDictStream(kind, data, block_size, &report));
  } else if (report.transform == "RAW") {
    BOS_RETURN_NOT_OK(WalkRawStream(kind, data, block_size, &report));
  } else {
    return Status::InvalidArgument("unknown transform: " + report.transform);
  }
  return report;
}

Result<ContainerReport> InspectContainer(BytesView data) {
  if (data.size() < 5) {
    return Status::Corruption("not a boscli-compressed file");
  }
  ContainerReport report;
  report.file_bytes = data.size();
  if (std::memcmp(data.data(), "BOSC", 4) == 0) {
    report.format = "BOSC";
  } else if (std::memcmp(data.data(), "BOSP", 4) == 0) {
    report.format = "BOSP";
  } else {
    return Status::Corruption("not a boscli-compressed file");
  }
  size_t offset = 4;
  uint64_t spec_len;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &spec_len));
  if (!SliceFits(data.size(), offset, spec_len)) {
    return Status::Corruption("corrupt spec header");
  }
  report.spec.assign(reinterpret_cast<const char*>(data.data() + offset),
                     static_cast<size_t>(spec_len));
  offset += spec_len;
  const BytesView body = data.subspan(offset);

  if (report.format == "BOSC") {
    BOS_ASSIGN_OR_RETURN(auto stream, InspectSeriesStream(report.spec, body));
    report.total_values = stream.values;
    report.streams.push_back(std::move(stream));
    return report;
  }

  // BOSP: the chunk-directory frame of exec::ParallelEncodeSeries.
  // Same validation as ParseFrame in src/exec/parallel_codec.cc.
  size_t pos = 0;
  uint64_t total, chunk_values, num_chunks;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(body, &pos, &total));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(body, &pos, &chunk_values));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(body, &pos, &num_chunks));
  if (total > kMaxStreamValues) {
    return Status::Corruption("chunked frame: total too large");
  }
  if (chunk_values == 0) {
    return Status::Corruption("chunked frame: zero chunk size");
  }
  const uint64_t expect_chunks =
      total == 0 ? 0 : (total + chunk_values - 1) / chunk_values;
  if (num_chunks != expect_chunks) {
    return Status::Corruption("chunked frame: chunk count mismatch");
  }
  if (num_chunks > body.size() - pos) {
    return Status::Corruption("chunked frame: directory truncated");
  }
  report.total_values = total;
  report.chunk_values = chunk_values;
  std::vector<uint64_t> sizes(num_chunks);
  for (uint64_t i = 0; i < num_chunks; ++i) {
    BOS_RETURN_NOT_OK(bitpack::GetVarint(body, &pos, &sizes[i]));
  }
  uint64_t payload_pos = pos;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    if (!SliceFits(body.size(), payload_pos, sizes[i])) {
      return Status::Corruption("chunked frame: payload truncated");
    }
    BOS_ASSIGN_OR_RETURN(
        auto stream,
        InspectSeriesStream(report.spec,
                            body.subspan(static_cast<size_t>(payload_pos),
                                         static_cast<size_t>(sizes[i]))));
    const uint64_t expect =
        std::min<uint64_t>(chunk_values, total - i * chunk_values);
    if (stream.values != expect) {
      return Status::Corruption("chunked frame: chunk value count mismatch");
    }
    report.streams.push_back(std::move(stream));
    payload_pos += sizes[i];
  }
  if (payload_pos != body.size()) {
    return Status::Corruption("chunked frame: trailing bytes");
  }
  return report;
}

void AppendStreamText(const StreamReport& stream, const std::string& indent,
                      std::string* out) {
  Appendf(out, "%sstream %s: %" PRIu64 " values, %" PRIu64 " bytes",
          indent.c_str(), stream.spec.c_str(), stream.values, stream.bytes);
  if (stream.opaque) {
    out->append(" (opaque payload)\n");
    return;
  }
  Appendf(out, ", %zu blocks\n", stream.blocks.size());
  for (size_t i = 0; i < stream.blocks.size(); ++i) {
    const BlockReport& b = stream.blocks[i];
    Appendf(out, "%s  block %zu @%" PRIu64 ": %-7s n=%-5" PRIu64
            " %" PRIu64 "B (hdr %" PRIu64 "B",
            indent.c_str(), i, b.offset, b.mode.c_str(), b.values, b.bytes,
            b.header_bytes);
    if (b.position_bytes > 0) Appendf(out, ", pos %" PRIu64 "B", b.position_bytes);
    Appendf(out, ", payload %" PRIu64 "B)", b.payload_bytes);
    if (b.mode == "plain") {
      Appendf(out, " width=%u", b.width);
    } else if (b.mode == "bitmap" || b.mode == "list") {
      Appendf(out, " nl=%" PRIu64 " nu=%" PRIu64 " alpha=%u beta=%u gamma=%u",
              b.nl, b.nu, b.alpha, b.beta, b.gamma);
      if (b.mode == "bitmap") {
        Appendf(out, " bitmap=%" PRIu64 "b", b.bitmap_bits);
      }
      Appendf(out, " values=%" PRIu64 "b", b.value_bits);
    } else if (b.mode == "chunked") {
      Appendf(out, " chunks=%" PRIu64 " exceptions=%" PRIu64, b.chunks,
              b.exceptions);
    }
    if (b.has_zone_map) {
      Appendf(out, " zone=[%" PRId64 ",%" PRId64 "]", b.zone_min, b.zone_max);
    }
    out->push_back('\n');
  }
}

void AppendStreamJson(const StreamReport& stream, std::string* out) {
  out->append("{\"spec\":");
  AppendJsonString(out, stream.spec);
  out->append(",\"transform\":");
  AppendJsonString(out, stream.transform);
  out->append(",\"op\":");
  AppendJsonString(out, stream.op);
  Appendf(out, ",\"values\":%" PRIu64 ",\"bytes\":%" PRIu64 ",\"opaque\":%s",
          stream.values, stream.bytes, stream.opaque ? "true" : "false");
  out->append(",\"blocks\":[");
  for (size_t i = 0; i < stream.blocks.size(); ++i) {
    const BlockReport& b = stream.blocks[i];
    if (i > 0) out->push_back(',');
    out->append("{\"mode\":");
    AppendJsonString(out, b.mode);
    Appendf(out,
            ",\"offset\":%" PRIu64 ",\"bytes\":%" PRIu64
            ",\"values\":%" PRIu64 ",\"header_bytes\":%" PRIu64
            ",\"position_bytes\":%" PRIu64 ",\"payload_bytes\":%" PRIu64,
            b.offset, b.bytes, b.values, b.header_bytes, b.position_bytes,
            b.payload_bytes);
    if (b.mode == "plain") {
      Appendf(out, ",\"width\":%u", b.width);
    } else if (b.mode == "bitmap" || b.mode == "list") {
      Appendf(out,
              ",\"nl\":%" PRIu64 ",\"nu\":%" PRIu64
              ",\"alpha\":%u,\"beta\":%u,\"gamma\":%u,\"bitmap_bits\":%" PRIu64
              ",\"value_bits\":%" PRIu64,
              b.nl, b.nu, b.alpha, b.beta, b.gamma, b.bitmap_bits,
              b.value_bits);
    } else if (b.mode == "chunked") {
      Appendf(out, ",\"chunks\":%" PRIu64 ",\"exceptions\":%" PRIu64, b.chunks,
              b.exceptions);
    }
    if (b.has_zone_map) {
      Appendf(out,
              ",\"has_zone_map\":true,\"zone_min\":%" PRId64
              ",\"zone_max\":%" PRId64,
              b.zone_min, b.zone_max);
    }
    out->push_back('}');
  }
  out->append("]}");
}

std::string RenderInspectText(const ContainerReport& report) {
  std::string out;
  Appendf(&out, "%s spec=%s: %" PRIu64 " bytes, %" PRIu64 " values",
          report.format.c_str(), report.spec.c_str(), report.file_bytes,
          report.total_values);
  if (report.format == "BOSP") {
    Appendf(&out, ", %zu chunks of %" PRIu64, report.streams.size(),
            report.chunk_values);
  }
  out.push_back('\n');
  for (const StreamReport& s : report.streams) {
    AppendStreamText(s, "  ", &out);
  }
  return out;
}

std::string RenderInspectJson(const ContainerReport& report) {
  std::string out;
  Appendf(&out, "{\"schema_version\":%d,\"format\":", telemetry::kSchemaVersion);
  AppendJsonString(&out, report.format);
  out.append(",\"spec\":");
  AppendJsonString(&out, report.spec);
  Appendf(&out,
          ",\"file_bytes\":%" PRIu64 ",\"total_values\":%" PRIu64
          ",\"chunk_values\":%" PRIu64,
          report.file_bytes, report.total_values, report.chunk_values);
  out.append(",\"streams\":[");
  for (size_t i = 0; i < report.streams.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendStreamJson(report.streams[i], &out);
  }
  out.append("]}");
  return out;
}

}  // namespace bos::codecs
