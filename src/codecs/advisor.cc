#include "codecs/advisor.h"

#include <algorithm>

#include "codecs/registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/macros.h"

namespace bos::codecs {
namespace {

std::vector<std::string> DefaultCandidates(bool hybrid) {
  if (hybrid) {
    // The hybrid operator prices the same layouts as BOS-B (it escalates
    // to the exact search when the approximate one looks weak), at a
    // fraction of the search cost for both the sampling below and the
    // recommended ingestion path.
    return {"TS2DIFF+BP",    "TS2DIFF+FASTPFOR", "TS2DIFF+BOS-H",
            "TS2DIFF+BOS-M", "SPRINTZ+BOS-H",    "SPRINTZ+FASTPFOR",
            "RLE+BP",        "RLE+BOS-H"};
  }
  return {"TS2DIFF+BP",    "TS2DIFF+FASTPFOR", "TS2DIFF+BOS-B",
          "TS2DIFF+BOS-M", "SPRINTZ+BOS-B",    "SPRINTZ+FASTPFOR",
          "RLE+BP",        "RLE+BOS-B"};
}

// Evenly spaced blocks across the series, preserving local structure
// (deltas and runs) inside each block.
std::vector<int64_t> Sample(std::span<const int64_t> values, size_t target) {
  if (values.size() <= target) {
    return {values.begin(), values.end()};
  }
  constexpr size_t kBlock = 1024;
  const size_t blocks = std::max<size_t>(1, target / kBlock);
  const size_t stride = values.size() / blocks;
  std::vector<int64_t> sample;
  sample.reserve(target);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t start = b * stride;
    const size_t len = std::min(kBlock, values.size() - start);
    sample.insert(sample.end(), values.begin() + start,
                  values.begin() + start + len);
  }
  return sample;
}

}  // namespace

Result<Recommendation> AdviseCodec(std::span<const int64_t> values,
                                   const AdvisorOptions& options) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot advise on an empty series");
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.codecs.advisor.runs", 1);
  BOS_TELEMETRY_SPAN("bos.codecs.advisor.advise_ns");
  BOS_TRACE_SPAN("bos.codecs.advisor.advise");
  const std::vector<std::string> candidates =
      options.candidates.empty() ? DefaultCandidates(options.hybrid)
                                 : options.candidates;
  const std::vector<int64_t> sample = Sample(values, options.sample_values);
  BOS_TRACE_ANNOTATE("sample_values", static_cast<int64_t>(sample.size()));
  BOS_TRACE_ANNOTATE("candidates", static_cast<int64_t>(candidates.size()));

  Recommendation rec;
  for (const std::string& spec : candidates) {
    BOS_TRACE_SPAN("bos.codecs.advisor.trial");
    BOS_TRACE_ANNOTATE("spec", spec);
    BOS_ASSIGN_OR_RETURN(auto codec, MakeSeriesCodec(spec));
    Bytes out;
    BOS_RETURN_NOT_OK(codec->Compress(sample, &out));
    CandidateScore score;
    score.spec = spec;
    score.ratio = static_cast<double>(sample.size() * 8) /
                  static_cast<double>(out.size());
    BOS_TRACE_ANNOTATE("bytes", static_cast<int64_t>(out.size()));
    rec.ranking.push_back(std::move(score));
  }
  std::sort(rec.ranking.begin(), rec.ranking.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              return a.ratio > b.ratio;
            });
  rec.spec = rec.ranking.front().spec;
  rec.estimated_ratio = rec.ranking.front().ratio;
  // One counter per recommended spec: the advisor's decision distribution.
  BOS_TELEMETRY_ONLY(telemetry::Registry::Global()
                         .GetCounter("bos.codecs.advisor.pick." + rec.spec)
                         .Add(1));
  return rec;
}

}  // namespace bos::codecs
