#ifndef BOS_CODECS_DICTIONARY_H_
#define BOS_CODECS_DICTIONARY_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::codecs {

/// \brief Dictionary encoding (the IoTDB DICTIONARY strategy, applied to
/// integers): per block, distinct values go into a sorted dictionary and
/// the data becomes small dictionary indexes. Both the dictionary and the
/// index stream are packed with the configured operator, so outliers in
/// the *dictionary* still benefit from BOS while the indexes stay dense.
///
/// Blocks whose distinct-value count exceeds half the block fall back to
/// packing the raw values (flagged per block) — dictionaries only pay off
/// on low-cardinality data.
class DictionaryCodec final : public SeriesCodec {
 public:
  DictionaryCodec(std::shared_ptr<const core::PackingOperator> op,
                  size_t block_size = kDefaultBlockSize);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;

  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_DICTIONARY_H_
