#ifndef BOS_CODECS_TS2DIFF_H_
#define BOS_CODECS_TS2DIFF_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::codecs {

/// \brief TS2DIFF (the Apache IoTDB delta encoding): per block, store the
/// first value and pack the consecutive differences with the configured
/// packing operator.
///
/// The operator performs the frame-of-reference min subtraction, which is
/// exactly TS2DIFF's "subtract min delta" step; swapping BP for BOS gives
/// TS2DIFF+BOS, as in Figure 10.
class Ts2DiffCodec final : public SeriesCodec {
 public:
  Ts2DiffCodec(std::shared_ptr<const core::PackingOperator> op,
               size_t block_size = kDefaultBlockSize);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;

  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

/// \brief The delta pre-transform on its own (used by Figure 8 to plot the
/// value distribution "after TS2DIFF"). `out[0] = values[0]`, then
/// consecutive wrapped differences.
std::vector<int64_t> DeltaTransform(std::span<const int64_t> values);

}  // namespace bos::codecs

#endif  // BOS_CODECS_TS2DIFF_H_
