#ifndef BOS_CODECS_RLE_H_
#define BOS_CODECS_RLE_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::codecs {

/// \brief Run-length encoding (Golomb'66 style, as used by Apache IoTDB):
/// the series is split into maximal runs; run lengths are varint-coded and
/// the distinct run values are packed with the configured operator.
///
/// Excellent on high-repeat data; the packing operator determines how well
/// the run *values* compress, which is where BOS substitutes for BP.
class RleCodec final : public SeriesCodec {
 public:
  RleCodec(std::shared_ptr<const core::PackingOperator> op,
           size_t block_size = kDefaultBlockSize);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<int64_t>* out) const;

  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

}  // namespace bos::codecs

#endif  // BOS_CODECS_RLE_H_
