#include "codecs/dod.h"

#include <algorithm>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::codecs {
namespace {

int64_t WrappingSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
int64_t WrappingAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}

// GORILLA's bucket offsets: a value v in [-(2^(w-1) - 1), 2^(w-1)] is
// stored as v + (2^(w-1) - 1) in w bits.
struct Bucket {
  int64_t lo, hi;
  int bits;
};
constexpr Bucket kBuckets[3] = {{-63, 64, 7}, {-255, 256, 9}, {-2047, 2048, 12}};

}  // namespace

DodCodec::DodCodec(size_t block_size) : block_size_(block_size) {}

Status DodCodec::Compress(std::span<const int64_t> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    const auto block = values.subspan(start, len);
    bitpack::PutSignedVarint(out, block[0]);
    if (len == 1) continue;
    const int64_t first_delta = WrappingSub(block[1], block[0]);
    bitpack::PutSignedVarint(out, first_delta);

    bitpack::BitWriter writer(out);
    int64_t prev_delta = first_delta;
    for (size_t i = 2; i < len; ++i) {
      const int64_t delta = WrappingSub(block[i], block[i - 1]);
      const int64_t dod = WrappingSub(delta, prev_delta);
      prev_delta = delta;
      if (dod == 0) {
        writer.WriteBit(false);
        continue;
      }
      bool bucketed = false;
      for (int b = 0; b < 3; ++b) {
        if (dod >= kBuckets[b].lo && dod <= kBuckets[b].hi) {
          // Prefix '10' / '110' / '1110': (b+1) ones then a zero.
          writer.WriteBits(((1ULL << (b + 1)) - 1) << 1, b + 2);
          writer.WriteBits(
              static_cast<uint64_t>(dod - kBuckets[b].lo), kBuckets[b].bits);
          bucketed = true;
          break;
        }
      }
      if (!bucketed) {
        writer.WriteBits(0b1111, 4);
        writer.WriteBits(static_cast<uint64_t>(dod), 64);
      }
    }
    writer.AlignToByte();
  }
  return Status::OK();
}

Status DodCodec::Decompress(BytesView data, std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status DodCodec::DecompressImpl(BytesView data,
                                std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("DOD: n too large");
  ReserveBounded(out, n);
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    int64_t cur;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &cur));
    out->push_back(cur);
    if (len == 1) continue;
    int64_t delta;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &delta));
    cur = WrappingAdd(cur, delta);
    out->push_back(cur);

    bitpack::BitReader reader(data.subspan(offset));
    for (uint64_t i = 2; i < len; ++i) {
      // Count the leading ones of the prefix (max 4).
      int ones = 0;
      bool bit;
      while (ones < 4) {
        if (!reader.ReadBit(&bit)) return Status::Corruption("DOD: truncated");
        if (!bit) break;
        ++ones;
      }
      int64_t dod = 0;
      if (ones == 0) {
        dod = 0;
      } else if (ones <= 3) {
        const Bucket& bucket = kBuckets[ones - 1];
        uint64_t raw;
        if (!reader.ReadBits(bucket.bits, &raw)) {
          return Status::Corruption("DOD: truncated");
        }
        dod = static_cast<int64_t>(raw) + bucket.lo;
      } else {
        uint64_t raw;
        if (!reader.ReadBits(64, &raw)) return Status::Corruption("DOD: truncated");
        dod = static_cast<int64_t>(raw);
      }
      delta = WrappingAdd(delta, dod);
      cur = WrappingAdd(cur, delta);
      out->push_back(cur);
    }
    reader.AlignToByte();
    offset += reader.byte_position();
  }
  if (offset != data.size()) {
    return Status::Corruption("DOD: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
