#include "codecs/series_codec.h"

#include "util/macros.h"

namespace bos::codecs {

Status SeriesCodec::DecompressSelected(BytesView data,
                                       const select::SelectionView& sel,
                                       std::vector<int64_t>* out) const {
  // Transform codecs entangle neighboring values (deltas, runs,
  // dictionaries), so the portable default is decode-all + gather. The
  // fallback counter makes "selected reads that did not actually skip
  // work" visible in production.
  std::vector<int64_t> scratch;
  BOS_RETURN_NOT_OK(Decompress(data, &scratch));
  BOS_TELEMETRY_COUNTER_ADD("bos.select.fallback_decodes", 1);
  BOS_TELEMETRY_COUNTER_ADD("bos.select.values_decoded", scratch.size());
  Status status;
  sel.ForEach([&](uint64_t rel) {
    if (!status.ok()) return;
    if (rel >= scratch.size()) {
      status = Status::InvalidArgument(
          "DecompressSelected: position past end of stream");
      return;
    }
    out->push_back(scratch[static_cast<size_t>(rel)]);
  });
  return status;
}

Status SeriesCodec::DecompressFilter(
    BytesView data, int64_t v_min, int64_t v_max, uint64_t base_index,
    std::vector<std::pair<uint64_t, int64_t>>* out,
    uint64_t* values_decoded) const {
  std::vector<int64_t> scratch;
  BOS_RETURN_NOT_OK(Decompress(data, &scratch));
  BOS_TELEMETRY_COUNTER_ADD("bos.select.fallback_decodes", 1);
  if (values_decoded != nullptr) *values_decoded += scratch.size();
  for (size_t i = 0; i < scratch.size(); ++i) {
    if (scratch[i] >= v_min && scratch[i] <= v_max) {
      out->emplace_back(base_index + i, scratch[i]);
    }
  }
  return Status::OK();
}

}  // namespace bos::codecs
