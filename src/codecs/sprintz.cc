#include "codecs/sprintz.h"

#include <algorithm>

#include "bitpack/unpack_kernels.h"
#include "bitpack/varint.h"
#include "bitpack/zigzag.h"
#include "util/macros.h"

namespace bos::codecs {
namespace {

int64_t WrappingAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}

}  // namespace

SprintzCodec::SprintzCodec(std::shared_ptr<const core::PackingOperator> op,
                           size_t block_size)
    : op_(std::move(op)), block_size_(block_size) {}

std::string SprintzCodec::name() const {
  return std::string("SPRINTZ+") + std::string(op_->name());
}

Status SprintzCodec::Compress(std::span<const int64_t> values,
                              Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  // One scratch buffer for the whole stream, sized to the largest block;
  // the delta+zigzag transform is fused and vectorized (the zigzag code
  // is carried bit-exactly through int64).
  std::vector<int64_t> coded(
      values.empty() ? 0 : std::min(block_size_, values.size()) - 1);
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    bitpack::PutSignedVarint(out, values[start]);
    coded.resize(len - 1);
    bitpack::DeltaZigZagEncode(values.data() + start + 1, len - 1,
                               values[start], coded.data());
    BOS_RETURN_NOT_OK(op_->Encode(coded, out));
  }
  return Status::OK();
}

Status SprintzCodec::Decompress(BytesView data,
                                std::vector<int64_t>* out) const {
  return CountDecodeRejection(DecompressImpl(data, out));
}

Status SprintzCodec::DecompressImpl(BytesView data,
                                    std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > kMaxStreamValues) return Status::Corruption("SPRINTZ: n too large");
  ReserveBounded(out, n);
  std::vector<int64_t> coded;
  coded.reserve(std::min<uint64_t>(block_size_, n));
  for (uint64_t done = 0; done < n; done += block_size_) {
    const uint64_t len = std::min<uint64_t>(block_size_, n - done);
    int64_t first;
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &first));
    coded.clear();
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &coded));
    if (coded.size() != len - 1) {
      return Status::Corruption("SPRINTZ: block length mismatch");
    }
    int64_t cur = first;
    out->push_back(cur);
    for (int64_t c : coded) {
      const int64_t delta =
          bitpack::ZigZagDecode(static_cast<uint64_t>(c));
      cur = WrappingAdd(cur, delta);
      out->push_back(cur);
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("SPRINTZ: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::codecs
