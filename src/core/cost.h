#ifndef BOS_CORE_COST_H_
#define BOS_CORE_COST_H_

#include <cstdint>

namespace bos::core {

/// \brief The three-part split of a block that BOS prices (Figure 1).
///
/// `nl` lower outliers (values <= xl), `nc` center values, `nu` upper
/// outliers (values >= xu). Bases are only meaningful when the matching
/// count is non-zero; the invariant from Definition 5 is
/// `xmin <= max_xl < min_xc <= max_xc < min_xu <= xmax`.
struct Partition {
  uint64_t n = 0;
  uint64_t nl = 0;
  uint64_t nu = 0;
  int64_t xmin = 0;    ///< minimum of the whole block
  int64_t xmax = 0;    ///< maximum of the whole block
  int64_t max_xl = 0;  ///< largest lower outlier (valid iff nl > 0)
  int64_t min_xc = 0;  ///< smallest center value (center must be non-empty)
  int64_t max_xc = 0;  ///< largest center value
  int64_t min_xu = 0;  ///< smallest upper outlier (valid iff nu > 0)

  uint64_t nc() const { return n - nl - nu; }
};

/// \brief Storage cost of plain bit-packing with min subtraction
/// (Definition 1): n * ceil(log2(xmax - xmin + 1)) bits.
uint64_t PlainCostBits(uint64_t n, int64_t xmin, int64_t xmax);

/// \brief Bit-widths the separated layout uses (Figure 7). Degenerate
/// non-empty parts are clamped to 1 bit, per Definition 5's edge cases.
struct PartWidths {
  int alpha = 0;  ///< lower outliers, relative to xmin (0 when nl == 0)
  int beta = 0;   ///< center values, relative to min_xc
  int gamma = 0;  ///< upper outliers, relative to min_xu (0 when nu == 0)
};
PartWidths ComputeWidths(const Partition& p);

/// \brief Storage cost with outlier separation (Definition 5):
/// nl*(alpha+1) + nu*(gamma+1) + nc*beta + n bits, where the trailing `n`
/// plus the per-outlier `+1`s are exactly the bitmap of Figure 2.
uint64_t SeparatedCostBits(const Partition& p);

}  // namespace bos::core

#endif  // BOS_CORE_COST_H_
