#include "core/cost.h"

#include "util/bits.h"

namespace bos::core {

uint64_t PlainCostBits(uint64_t n, int64_t xmin, int64_t xmax) {
  return n * static_cast<uint64_t>(BitWidth(UnsignedRange(xmin, xmax)));
}

PartWidths ComputeWidths(const Partition& p) {
  PartWidths w;
  if (p.nl > 0) w.alpha = RangeBitWidth(UnsignedRange(p.xmin, p.max_xl));
  if (p.nc() > 0) w.beta = RangeBitWidth(UnsignedRange(p.min_xc, p.max_xc));
  if (p.nu > 0) w.gamma = RangeBitWidth(UnsignedRange(p.min_xu, p.xmax));
  return w;
}

uint64_t SeparatedCostBits(const Partition& p) {
  const PartWidths w = ComputeWidths(p);
  return p.nl * static_cast<uint64_t>(w.alpha + 1) +
         p.nu * static_cast<uint64_t>(w.gamma + 1) +
         p.nc() * static_cast<uint64_t>(w.beta) + p.n;
}

}  // namespace bos::core
