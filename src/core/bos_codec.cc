#include "core/bos_codec.h"

#include <cassert>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "core/block_io.h"
#include "util/bits.h"
#include "util/macros.h"

namespace bos::core {
namespace {

// Value classes, matching the bitmap codes of Figure 2.
enum Class : uint8_t { kCenter = 0, kLower = 1, kUpper = 2 };

// Decode-side MSB-first bit cursor over a payload whose total bit count
// the caller has already validated against the buffer size; reads past
// the end (only ever into padding) yield zero bits. Roughly 4x faster
// than going through BitReader's per-call bounds check on the hot
// per-value loop.
class MsbBitCursor {
 public:
  MsbBitCursor(const uint8_t* data, size_t bytes)
      : src_(data), end_(data + bytes) {}

  // bits <= 32.
  uint64_t Take(int bits) {
    while (acc_bits_ < bits) {
      acc_ = (acc_ << 8) | (src_ < end_ ? *src_++ : 0);
      acc_bits_ += 8;
    }
    acc_bits_ -= bits;
    return (acc_ >> acc_bits_) &
           (bits == 0 ? 0 : ((~0ULL) >> (64 - bits)));
  }

  // bits <= 64.
  uint64_t TakeWide(int bits) {
    if (bits <= 32) return Take(bits);
    const uint64_t high = Take(bits - 32);
    return (high << 32) | Take(32);
  }

  bool TakeBit() { return Take(1) != 0; }

 private:
  const uint8_t* src_;
  const uint8_t* end_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

Status EncodeSeparated(std::span<const int64_t> values, const Separation& sep,
                       Bytes* out) {
  const Partition& p = sep.partition;
  const PartWidths w = ComputeWidths(p);

  out->push_back(kSeparatedBlockMode);
  bitpack::PutVarint(out, p.n);
  bitpack::PutVarint(out, p.nl);
  bitpack::PutVarint(out, p.nu);
  if (p.nl > 0) bitpack::PutSignedVarint(out, p.xmin);
  bitpack::PutSignedVarint(out, p.min_xc);
  if (p.nu > 0) bitpack::PutSignedVarint(out, p.min_xu);
  if (p.nl > 0) out->push_back(static_cast<uint8_t>(w.alpha));
  out->push_back(static_cast<uint8_t>(w.beta));
  if (p.nu > 0) out->push_back(static_cast<uint8_t>(w.gamma));

  bitpack::BitWriter writer(out);
  // Bitmap: '0' center, '10' lower, '11' upper (Figure 2).
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(0b10, 2);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(0b11, 2);
    } else {
      writer.WriteBit(false);
    }
  }
  // Values in original order at their class width (Figure 7).
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(UnsignedRange(p.xmin, v), w.alpha);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(UnsignedRange(p.min_xu, v), w.gamma);
    } else {
      writer.WriteBits(UnsignedRange(p.min_xc, v), w.beta);
    }
  }
  return Status::OK();
}

Status DecodeSeparatedBody(BytesView data, size_t* offset,
                           std::vector<int64_t>* out) {
  uint64_t n, nl, nu;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nu));
  if (n > kMaxBlockValues) return Status::Corruption("BOS block: n too large");
  if (nl > n || nu > n || nl + nu > n) {
    return Status::Corruption("BOS block: outlier counts exceed n");
  }

  int64_t xmin = 0, min_xc = 0, min_xu = 0;
  if (nl > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &xmin));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xc));
  if (nu > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xu));

  int alpha = 0, beta = 0, gamma = 0;
  auto read_width = [&](int* width) -> Status {
    if (*offset >= data.size()) return Status::Corruption("BOS block truncated");
    *width = data[(*offset)++];
    if (*width > 64) return Status::Corruption("BOS block width > 64");
    return Status::OK();
  };
  if (nl > 0) BOS_RETURN_NOT_OK(read_width(&alpha));
  BOS_RETURN_NOT_OK(read_width(&beta));
  if (nu > 0) BOS_RETURN_NOT_OK(read_width(&gamma));

  const uint64_t payload_bits =
      (n + nl + nu) +  // bitmap
      nl * static_cast<uint64_t>(alpha) + nu * static_cast<uint64_t>(gamma) +
      (n - nl - nu) * static_cast<uint64_t>(beta);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (*offset + payload_bytes > data.size()) {
    return Status::Corruption("BOS block payload truncated");
  }
  MsbBitCursor cursor(data.data() + *offset, payload_bytes);

  std::vector<uint8_t> classes(n);
  uint64_t seen_l = 0, seen_u = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (!cursor.TakeBit()) {
      classes[i] = kCenter;
      continue;
    }
    const bool upper = cursor.TakeBit();
    classes[i] = upper ? kUpper : kLower;
    (upper ? seen_u : seen_l) += 1;
  }
  if (seen_l != nl || seen_u != nu) {
    return Status::Corruption("BOS bitmap does not match outlier counts");
  }

  // Per-class base and width tables keep the hot loop branch-free.
  const int64_t bases[3] = {min_xc, xmin, min_xu};
  const int widths[3] = {beta, alpha, gamma};
  out->reserve(out->size() + n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t cls = classes[i];
    const uint64_t delta = cursor.TakeWide(widths[cls]);
    out->push_back(static_cast<int64_t>(
        static_cast<uint64_t>(bases[cls]) + delta));
  }
  *offset += payload_bytes;
  return Status::OK();
}

// Mode-2 layout: same header as the bitmap layout, then the outlier
// positions as two ascending varint gap lists, then the values in
// original order at their class widths.
Status EncodeSeparatedList(std::span<const int64_t> values,
                           const Separation& sep, Bytes* out) {
  const Partition& p = sep.partition;
  const PartWidths w = ComputeWidths(p);

  out->push_back(kSeparatedListBlockMode);
  bitpack::PutVarint(out, p.n);
  bitpack::PutVarint(out, p.nl);
  bitpack::PutVarint(out, p.nu);
  if (p.nl > 0) bitpack::PutSignedVarint(out, p.xmin);
  bitpack::PutSignedVarint(out, p.min_xc);
  if (p.nu > 0) bitpack::PutSignedVarint(out, p.min_xu);
  if (p.nl > 0) out->push_back(static_cast<uint8_t>(w.alpha));
  out->push_back(static_cast<uint8_t>(w.beta));
  if (p.nu > 0) out->push_back(static_cast<uint8_t>(w.gamma));

  auto put_positions = [&](bool lower) {
    uint64_t prev = 0;
    bool first = true;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool is_lower = sep.has_lower && values[i] <= sep.xl;
      const bool is_upper =
          !is_lower && sep.has_upper && values[i] >= sep.xu;
      if ((lower && !is_lower) || (!lower && !is_upper)) continue;
      bitpack::PutVarint(out, first ? i : i - prev - 1);
      prev = i;
      first = false;
    }
  };
  put_positions(/*lower=*/true);
  put_positions(/*lower=*/false);

  bitpack::BitWriter writer(out);
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(UnsignedRange(p.xmin, v), w.alpha);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(UnsignedRange(p.min_xu, v), w.gamma);
    } else {
      writer.WriteBits(UnsignedRange(p.min_xc, v), w.beta);
    }
  }
  return Status::OK();
}

Status DecodeSeparatedListBody(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) {
  uint64_t n, nl, nu;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nu));
  if (n > kMaxBlockValues) return Status::Corruption("BOS-LIST: n too large");
  if (nl > n || nu > n || nl + nu > n) {
    return Status::Corruption("BOS-LIST: outlier counts exceed n");
  }

  int64_t xmin = 0, min_xc = 0, min_xu = 0;
  if (nl > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &xmin));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xc));
  if (nu > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xu));

  int alpha = 0, beta = 0, gamma = 0;
  auto read_width = [&](int* width) -> Status {
    if (*offset >= data.size()) return Status::Corruption("BOS-LIST truncated");
    *width = data[(*offset)++];
    if (*width > 64) return Status::Corruption("BOS-LIST: width > 64");
    return Status::OK();
  };
  if (nl > 0) BOS_RETURN_NOT_OK(read_width(&alpha));
  BOS_RETURN_NOT_OK(read_width(&beta));
  if (nu > 0) BOS_RETURN_NOT_OK(read_width(&gamma));

  std::vector<uint8_t> classes(n, kCenter);
  auto read_positions = [&](uint64_t count, uint8_t cls) -> Status {
    uint64_t pos = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t gap;
      BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &gap));
      pos = (i == 0) ? gap : pos + 1 + gap;
      if (pos >= n || classes[pos] != kCenter) {
        return Status::Corruption("BOS-LIST: bad position");
      }
      classes[pos] = cls;
    }
    return Status::OK();
  };
  BOS_RETURN_NOT_OK(read_positions(nl, kLower));
  BOS_RETURN_NOT_OK(read_positions(nu, kUpper));

  const uint64_t payload_bits = nl * static_cast<uint64_t>(alpha) +
                                nu * static_cast<uint64_t>(gamma) +
                                (n - nl - nu) * static_cast<uint64_t>(beta);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (*offset + payload_bytes > data.size()) {
    return Status::Corruption("BOS-LIST: payload truncated");
  }
  MsbBitCursor cursor(data.data() + *offset, payload_bytes);
  const int64_t bases[3] = {min_xc, xmin, min_xu};
  const int widths[3] = {beta, alpha, gamma};
  out->reserve(out->size() + n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t cls = classes[i];
    const uint64_t delta = cursor.TakeWide(widths[cls]);
    out->push_back(static_cast<int64_t>(
        static_cast<uint64_t>(bases[cls]) + delta));
  }
  *offset += payload_bytes;
  return Status::OK();
}

Status EncodeWithSeparation(std::span<const int64_t> values,
                            const Separation& sep, Bytes* out) {
  if (!sep.separated) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  return EncodeSeparated(values, sep, out);
}

Status DecodeBosBlock(BytesView data, size_t* offset,
                      std::vector<int64_t>* out) {
  if (*offset >= data.size()) return Status::Corruption("BOS block: no mode byte");
  const uint8_t mode = data[(*offset)++];
  switch (mode) {
    case kPlainBlockMode:
      return DecodePlainBlockBody(data, offset, out);
    case kSeparatedBlockMode:
      return DecodeSeparatedBody(data, offset, out);
    case kSeparatedListBlockMode:
      return DecodeSeparatedListBody(data, offset, out);
    default:
      return Status::Corruption("BOS block: unknown mode byte");
  }
}

}  // namespace

Status BitPackingOperator::Encode(std::span<const int64_t> values,
                                  Bytes* out) const {
  EncodePlainBlock(values, out);
  return Status::OK();
}

Status BitPackingOperator::Decode(BytesView data, size_t* offset,
                                  std::vector<int64_t>* out) const {
  if (*offset >= data.size()) return Status::Corruption("BP block: no mode byte");
  const uint8_t mode = data[(*offset)++];
  if (mode != kPlainBlockMode) {
    return Status::Corruption("BP block: unexpected mode byte");
  }
  return DecodePlainBlockBody(data, offset, out);
}

Status BosOperator::Encode(std::span<const int64_t> values, Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  const Separation sep = Separate(strategy_, values);
  return EncodeWithSeparation(values, sep, out);
}

Status BosOperator::Decode(BytesView data, size_t* offset,
                           std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosUpperOnlyOperator::Encode(std::span<const int64_t> values,
                                    Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  const Separation sep = SeparateUpperOnly(values);
  return EncodeWithSeparation(values, sep, out);
}

Status BosUpperOnlyOperator::Decode(BytesView data, size_t* offset,
                                    std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosListOperator::Encode(std::span<const int64_t> values,
                               Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  const Separation sep = SeparateBitWidth(values);
  if (!sep.separated) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  return EncodeSeparatedList(values, sep, out);
}

Status BosListOperator::Decode(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosAdaptiveOperator::Encode(std::span<const int64_t> values,
                                   Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  const Separation sep = SeparateBitWidth(values);
  if (!sep.separated) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  Bytes bitmap_form, list_form;
  BOS_RETURN_NOT_OK(EncodeSeparated(values, sep, &bitmap_form));
  BOS_RETURN_NOT_OK(EncodeSeparatedList(values, sep, &list_form));
  const Bytes& smaller =
      list_form.size() < bitmap_form.size() ? list_form : bitmap_form;
  out->insert(out->end(), smaller.begin(), smaller.end());
  return Status::OK();
}

Status BosAdaptiveOperator::Decode(BytesView data, size_t* offset,
                                   std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

}  // namespace bos::core
