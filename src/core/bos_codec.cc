#include "core/bos_codec.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/bitpacking.h"
#include "bitpack/unpack_kernels.h"
#include "bitpack/varint.h"
#include "core/block_io.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::core {

namespace {
std::atomic<bool> g_batched_decode{true};
}  // namespace

void SetBosBatchedDecodeEnabled(bool enabled) {
  g_batched_decode.store(enabled, std::memory_order_relaxed);
}

bool BosBatchedDecodeEnabled() {
  return g_batched_decode.load(std::memory_order_relaxed);
}

namespace {

// Value classes, matching the bitmap codes of Figure 2.
enum Class : uint8_t { kCenter = 0, kLower = 1, kUpper = 2 };

inline uint64_t LoadBE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}

// Decode-side MSB-first bit cursor over a payload whose total bit count
// the caller has already validated against the buffer size; reads past
// the end (only ever into padding) yield zero bits. Roughly 4x faster
// than going through BitReader's per-call bounds check on the hot
// per-value loop. This is the scalar reference path; the batched decoder
// below goes through bitpack::UnpackRunAddBase instead.
class MsbBitCursor {
 public:
  MsbBitCursor(const uint8_t* data, size_t bytes)
      : src_(data), end_(data + bytes) {}

  // bits <= 32.
  uint64_t Take(int bits) {
    while (acc_bits_ < bits) {
      acc_ = (acc_ << 8) | (src_ < end_ ? *src_++ : 0);
      acc_bits_ += 8;
    }
    acc_bits_ -= bits;
    return (acc_ >> acc_bits_) &
           (bits == 0 ? 0 : ((~0ULL) >> (64 - bits)));
  }

  // bits <= 64.
  uint64_t TakeWide(int bits) {
    if (bits <= 32) return Take(bits);
    const uint64_t high = Take(bits - 32);
    return (high << 32) | Take(32);
  }

  bool TakeBit() { return Take(1) != 0; }

 private:
  const uint8_t* src_;
  const uint8_t* end_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

// One outlier entry of a block, in value order.
struct OutlierRef {
  uint32_t pos;
  uint32_t cls;  // kLower or kUpper; 32-bit so an entry is one 8-byte store
};

// Per-(carry state, byte) precomputed step of the '0'/'10'/'11' class
// bitmap (Figure 2). State 0: no pending bits; state 1: a '1' was seen
// at the end of the previous byte and the first bit of this byte picks
// that outlier's class. A byte completes at most 4 outliers (each costs
// two bits), so their in-byte entry indices and classes pack into four
// 4-bit slots of `outinfo`: [upper:1 | entry_idx:3] per slot, in emit
// order from the low nibble up.
struct BitmapByte {
  uint16_t outinfo;
  uint8_t nsym;        // bitmap entries completed by this byte
  uint8_t nout;        // outliers among them (<= 4)
  uint8_t nup;         // upper-class outliers among them
  uint8_t next_state;  // carry into the next byte
};

constexpr std::array<std::array<BitmapByte, 256>, 2> BuildBitmapByteTable() {
  std::array<std::array<BitmapByte, 256>, 2> table{};
  for (int state = 0; state < 2; ++state) {
    for (int byte = 0; byte < 256; ++byte) {
      int st = state, nsym = 0, nout = 0, nup = 0;
      uint16_t info = 0;
      for (int bitpos = 7; bitpos >= 0; --bitpos) {
        const int bit = (byte >> bitpos) & 1;
        if (st == 1) {  // class bit of a pending outlier
          info = static_cast<uint16_t>(info |
                                       ((nsym | (bit << 3)) << (4 * nout)));
          ++nout;
          nup += bit;
          ++nsym;
          st = 0;
        } else if (bit == 0) {
          ++nsym;  // center
        } else {
          st = 1;  // outlier marker; class bit follows
        }
      }
      table[state][byte] = {info, static_cast<uint8_t>(nsym),
                            static_cast<uint8_t>(nout),
                            static_cast<uint8_t>(nup),
                            static_cast<uint8_t>(st)};
    }
  }
  return table;
}

constexpr auto kBitmapByteTable = BuildBitmapByteTable();

// Fused batched decode of a bitmap-mode block body (Figure 7): walks
// the class bitmap a byte at a time through kBitmapByteTable and decodes
// the value section in the same pass — no per-value class array and no
// outlier position list is ever materialized. Center entries only bump a
// pending-run counter (a center-only byte costs a few cycles), and each
// run is decoded in one shot when the next outlier — whose class and
// in-byte index come straight from the table entry — forces a width
// change, so long center runs still reach the wide run kernel. Returns
// false when the bitmap's outlier counts disagree with the header's
// nl/nu (the caller reports corruption; `out` then holds garbage for
// this block, which the caller discards with the error).
//
// `stream_len` may extend past the block's payload into later blocks:
// reads stay inside the stream, and on well-formed input (counts match)
// every decoded bit lies inside the validated payload, matching the
// scalar MsbBitCursor walk bit for bit.
bool DecodeSeparatedBatched(const uint8_t* stream, size_t stream_len,
                            uint64_t n, uint64_t nl, uint64_t nu,
                            const int64_t bases[3], const int widths[3],
                            std::vector<int64_t>* out) {
  const size_t old_size = out->size();
  out->resize(old_size + n);
  int64_t* dst = out->data() + old_size;

  // Value cursor: values start right after the bitmap's n + nl + nu bits.
  uint64_t vbit = n + nl + nu;
  // Inline decode does raw 8-byte loads; start bits up to this limit
  // keep them inside the stream (zero when the stream is too short).
  const uint64_t inline_bit_limit =
      stream_len >= 8 ? 8 * (stream_len - 8) + 7 : 0;
  const int wc = widths[kCenter];
  const uint64_t base_c = static_cast<uint64_t>(bases[kCenter]);
  const uint64_t mask_c = wc == 0 ? 0 : ((~0ULL) >> (64 - wc));
  const bool center_inline = wc >= 1 && wc <= 56 && stream_len >= 8;

  uint64_t done = 0;  // values decoded so far
  uint64_t pend = 0;  // center entries seen but not yet decoded
  uint64_t sl = 0, su = 0;

  const auto flush_centers = [&](uint64_t run) {
    if (run == 0) return;
    if (center_inline && run < 8 && vbit <= inline_bit_limit) {
      const int off = static_cast<int>(vbit & 7);
      if (run * static_cast<uint64_t>(wc) + off <= 64) {
        // The whole run fits in one load: left-align once, then peel
        // each value off the top of the register.
        uint64_t word = LoadBE64(stream + (vbit >> 3)) << off;
        for (uint64_t v = 0; v < run; ++v) {
          dst[done + v] = static_cast<int64_t>(base_c + (word >> (64 - wc)));
          word <<= wc;
        }
        vbit += run * static_cast<uint64_t>(wc);
        done += run;
        return;
      }
      if (vbit + (run - 1) * static_cast<uint64_t>(wc) <= inline_bit_limit) {
        uint64_t b = vbit;
        for (uint64_t v = 0; v < run; ++v, b += static_cast<uint64_t>(wc)) {
          const uint64_t word = LoadBE64(stream + (b >> 3));
          dst[done + v] = static_cast<int64_t>(
              base_c +
              ((word >> (64 - static_cast<int>(b & 7) - wc)) & mask_c));
        }
        vbit += run * static_cast<uint64_t>(wc);
        done += run;
        return;
      }
    }
    bitpack::UnpackRunAddBase(stream, stream_len, vbit, wc, run, base_c,
                              dst + done);
    vbit += run * static_cast<uint64_t>(wc);
    done += run;
  };
  const auto decode_outlier = [&](uint32_t cls) {
    const int w = widths[cls];
    if (w >= 1 && w <= 56 && vbit <= inline_bit_limit) {
      const uint64_t word = LoadBE64(stream + (vbit >> 3));
      dst[done] = static_cast<int64_t>(
          static_cast<uint64_t>(bases[cls]) +
          ((word >> (64 - static_cast<int>(vbit & 7) - w)) &
           ((~0ULL) >> (64 - w))));
    } else {
      bitpack::UnpackRunAddBase(stream, stream_len, vbit, w, 1,
                                static_cast<uint64_t>(bases[cls]), dst + done);
    }
    vbit += static_cast<uint64_t>(w);
    ++done;
  };

  size_t bpos = 0;
  int state = 0;
  // A byte completes at most 8 entries, so while >= 8 remain a whole
  // byte can never run past the bitmap into the value bits.
  while (n - (done + pend) >= 8 && bpos < stream_len) {
    const BitmapByte e = kBitmapByteTable[state][stream[bpos++]];
    if (e.nout == 0) {
      pend += e.nsym;
    } else {
      uint32_t info = e.outinfo;
      uint32_t prev = 0;  // in-byte entry index after the last outlier
      for (int k = 0; k < e.nout; ++k) {
        const uint32_t idx = info & 7;
        const uint32_t cls = kLower + ((info >> 3) & 1);
        info >>= 4;
        flush_centers(pend + (idx - prev));
        pend = 0;
        decode_outlier(cls);
        prev = idx + 1;
      }
      pend = e.nsym - prev;
      su += e.nup;
      sl += static_cast<uint64_t>(e.nout) - e.nup;
    }
    state = e.next_state;
  }
  // Tail (< 8 entries, or stream edge): bit by bit, with bitmap bits
  // past the stream reading as zero — same as MsbBitCursor.
  uint32_t acc = 0;
  int acc_bits = 0;
  int pending = state;
  while (done + pend < n) {
    if (acc_bits == 0) {
      acc = bpos < stream_len ? stream[bpos++] : 0;
      acc_bits = 8;
    }
    const uint32_t bit = (acc >> (acc_bits - 1)) & 1;
    --acc_bits;
    if (pending != 0) {
      flush_centers(pend);
      pend = 0;
      decode_outlier(kLower + bit);
      (bit != 0 ? su : sl) += 1;
      pending = 0;
    } else if (bit == 0) {
      ++pend;
    } else {
      pending = 1;
    }
  }
  flush_centers(pend);
  return sl == nl && su == nu;
}

// Scalar per-value decode of the classed value section (Figure 7). The
// per-class base and width tables keep the loop branch-free.
void DecodeClassedValuesScalar(MsbBitCursor* cursor,
                               const std::vector<uint8_t>& classes,
                               const int64_t bases[3], const int widths[3],
                               uint64_t n, std::vector<int64_t>* out) {
  out->reserve(out->size() + n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t cls = classes[i];
    const uint64_t delta = cursor->TakeWide(widths[cls]);
    out->push_back(
        static_cast<int64_t>(static_cast<uint64_t>(bases[cls]) + delta));
  }
}

// Batched decode of the value section directly from the outlier list:
// the maximal center run before each outlier goes through the
// bit-granular kernel in one call, then the outlier (extended to a run
// when consecutive outliers share a class) at its own width. No per-value
// class array is ever materialized. `stream_len` may extend past the
// payload (slack lets the wide kernels run to the stream edge); only bits
// below `start_bit + sum(widths)` are ever decoded.
void DecodeClassedValuesBatched(const uint8_t* stream, size_t stream_len,
                                uint64_t start_bit,
                                const std::vector<OutlierRef>& outliers,
                                const int64_t bases[3], const int widths[3],
                                uint64_t n, std::vector<int64_t>* out) {
  const size_t old_size = out->size();
  out->resize(old_size + n);
  int64_t* dst = out->data() + old_size;
  uint64_t bit = start_bit;
  uint64_t next = 0;  // first value index not yet decoded
  size_t k = 0;

  // Short runs decode right here — on outlier-dense blocks there are
  // hundreds of 1-5 value runs per block and even the call into the
  // dispatching kernel shows up. Inline decode needs its 8-byte loads to
  // stay inside the stream: start bits up to `inline_bit_limit` qualify
  // (zero when the stream is too short to ever qualify).
  const uint64_t inline_bit_limit =
      stream_len >= 8 ? 8 * (stream_len - 8) + 7 : 0;
  const int wc = widths[kCenter];
  const uint64_t base_c = static_cast<uint64_t>(bases[kCenter]);
  const uint64_t mask_c = wc == 0 ? 0 : ((~0ULL) >> (64 - wc));
  const bool center_inline = wc >= 1 && wc <= 56 && stream_len >= 8;

  while (k < outliers.size()) {
    const OutlierRef o = outliers[k];
    if (o.pos > next) {
      const uint64_t run = o.pos - next;
      if (center_inline && run < 8 &&
          bit + (run - 1) * static_cast<uint64_t>(wc) <= inline_bit_limit) {
        for (uint64_t v = 0; v < run; ++v) {
          const uint64_t b = bit + v * static_cast<uint64_t>(wc);
          const uint64_t word = LoadBE64(stream + (b >> 3));
          dst[next + v] = static_cast<int64_t>(
              base_c +
              ((word >> (64 - static_cast<int>(b & 7) - wc)) & mask_c));
        }
      } else {
        bitpack::UnpackRunAddBase(stream, stream_len, bit, wc, run, base_c,
                                  dst + next);
      }
      bit += run * static_cast<uint64_t>(wc);
    }
    const int w = widths[o.cls];
    if (w >= 1 && w <= 56 && bit <= inline_bit_limit && stream_len >= 8) {
      // The common shape: one isolated outlier.
      const uint64_t word = LoadBE64(stream + (bit >> 3));
      dst[o.pos] = static_cast<int64_t>(
          static_cast<uint64_t>(bases[o.cls]) +
          ((word >> (64 - static_cast<int>(bit & 7) - w)) &
           ((~0ULL) >> (64 - w))));
      bit += static_cast<uint64_t>(w);
      next = o.pos + 1;
      ++k;
      continue;
    }
    size_t e = k + 1;
    while (e < outliers.size() && outliers[e].cls == o.cls &&
           outliers[e].pos == o.pos + (e - k)) {
      ++e;
    }
    const uint64_t run = e - k;
    bitpack::UnpackRunAddBase(stream, stream_len, bit, w, run,
                              static_cast<uint64_t>(bases[o.cls]), dst + o.pos);
    bit += run * static_cast<uint64_t>(w);
    next = o.pos + run;
    k = e;
  }
  if (next < n) {
    bitpack::UnpackRunAddBase(stream, stream_len, bit, wc, n - next, base_c,
                              dst + next);
  }
}

// Per-block decision stats of the separated (bitmap) layout: the chosen
// class widths and outlier counts are exactly the Definition-5 cost
// inputs, so a live store can be audited against the paper's model.
void RecordSeparatedBlockStats(const char* mode_counter, const Partition& p,
                               const PartWidths& w) {
#if BOS_TELEMETRY_ENABLED
  // The mode decision and Figure-7 widths, attached to the enclosing
  // per-block span ("bitmap"/"list": past the "...encode.mode_" prefix).
  BOS_TRACE_ANNOTATE("mode", mode_counter + sizeof("bos.core.encode.mode_") - 1);
  BOS_TRACE_ANNOTATE("nl", static_cast<int64_t>(p.nl));
  BOS_TRACE_ANNOTATE("nu", static_cast<int64_t>(p.nu));
  BOS_TRACE_ANNOTATE("alpha", static_cast<int64_t>(p.nl > 0 ? w.alpha : 0));
  BOS_TRACE_ANNOTATE("beta", static_cast<int64_t>(w.beta));
  BOS_TRACE_ANNOTATE("gamma", static_cast<int64_t>(p.nu > 0 ? w.gamma : 0));
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::Registry::Global();
  registry.GetCounter(mode_counter).Add(1);
  static telemetry::Counter& lower =
      registry.GetCounter("bos.core.encode.outliers_lower");
  static telemetry::Counter& upper =
      registry.GetCounter("bos.core.encode.outliers_upper");
  lower.Add(p.nl);
  upper.Add(p.nu);
  static telemetry::Histogram& outliers = registry.GetHistogram(
      "bos.core.encode.outliers_per_block",
      telemetry::ExponentialBounds(1, 2, 11));
  outliers.Record(p.nl + p.nu);
  static telemetry::Histogram& alpha = registry.GetHistogram(
      "bos.core.encode.width_alpha", telemetry::WidthBounds());
  static telemetry::Histogram& beta = registry.GetHistogram(
      "bos.core.encode.width_beta", telemetry::WidthBounds());
  static telemetry::Histogram& gamma = registry.GetHistogram(
      "bos.core.encode.width_gamma", telemetry::WidthBounds());
  if (p.nl > 0) alpha.Record(static_cast<uint64_t>(w.alpha));
  beta.Record(static_cast<uint64_t>(w.beta));
  if (p.nu > 0) gamma.Record(static_cast<uint64_t>(w.gamma));
#else
  (void)mode_counter;
  (void)p;
  (void)w;
#endif
}

Status EncodeSeparated(std::span<const int64_t> values, const Separation& sep,
                       Bytes* out) {
  const Partition& p = sep.partition;
  const PartWidths w = ComputeWidths(p);

  out->push_back(kSeparatedBlockMode);
  bitpack::PutVarint(out, p.n);
  bitpack::PutVarint(out, p.nl);
  bitpack::PutVarint(out, p.nu);
  if (p.nl > 0) bitpack::PutSignedVarint(out, p.xmin);
  bitpack::PutSignedVarint(out, p.min_xc);
  if (p.nu > 0) bitpack::PutSignedVarint(out, p.min_xu);
  if (p.nl > 0) out->push_back(static_cast<uint8_t>(w.alpha));
  out->push_back(static_cast<uint8_t>(w.beta));
  if (p.nu > 0) out->push_back(static_cast<uint8_t>(w.gamma));

  const uint64_t payload_bits =
      (p.n + p.nl + p.nu) + p.nl * static_cast<uint64_t>(w.alpha) +
      p.nu * static_cast<uint64_t>(w.gamma) +
      p.nc() * static_cast<uint64_t>(w.beta);
  out->reserve(out->size() + BitsToBytes(payload_bits) + 8);

  bitpack::FastBitWriter writer(out);
  // Bitmap: '0' center, '10' lower, '11' upper (Figure 2).
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(0b10, 2);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(0b11, 2);
    } else {
      writer.WriteBit(false);
    }
  }
  // Values in original order at their class width (Figure 7).
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(UnsignedRange(p.xmin, v), w.alpha);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(UnsignedRange(p.min_xu, v), w.gamma);
    } else {
      writer.WriteBits(UnsignedRange(p.min_xc, v), w.beta);
    }
  }
  writer.Finish();
  return Status::OK();
}

Status DecodeSeparatedBody(BytesView data, size_t* offset,
                           std::vector<int64_t>* out) {
  uint64_t n, nl, nu;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nu));
  if (n > kMaxBlockValues) return Status::Corruption("BOS block: n too large");
  if (nl > n || nu > n || nl + nu > n) {
    return Status::Corruption("BOS block: outlier counts exceed n");
  }

  int64_t xmin = 0, min_xc = 0, min_xu = 0;
  if (nl > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &xmin));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xc));
  if (nu > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xu));

  int alpha = 0, beta = 0, gamma = 0;
  auto read_width = [&](int* width) -> Status {
    if (*offset >= data.size()) return Status::Corruption("BOS block truncated");
    *width = data[(*offset)++];
    if (*width > 64) return Status::Corruption("BOS block width > 64");
    return Status::OK();
  };
  if (nl > 0) BOS_RETURN_NOT_OK(read_width(&alpha));
  BOS_RETURN_NOT_OK(read_width(&beta));
  if (nu > 0) BOS_RETURN_NOT_OK(read_width(&gamma));

  const uint64_t bitmap_bits = n + nl + nu;
  const uint64_t payload_bits =
      bitmap_bits +  // bitmap
      nl * static_cast<uint64_t>(alpha) + nu * static_cast<uint64_t>(gamma) +
      (n - nl - nu) * static_cast<uint64_t>(beta);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (!SliceFits(data.size(), *offset, payload_bytes)) {
    return Status::Corruption("BOS block payload truncated");
  }
  const uint8_t* payload = data.data() + *offset;

  const int64_t bases[3] = {min_xc, xmin, min_xu};
  const int widths[3] = {beta, alpha, gamma};
  uint64_t seen_l = 0, seen_u = 0;

  if (BosBatchedDecodeEnabled()) {
    if (!DecodeSeparatedBatched(payload, data.size() - *offset, n, nl, nu,
                                bases, widths, out)) {
      return Status::Corruption("BOS bitmap does not match outlier counts");
    }
  } else {
    std::vector<uint8_t> classes(n, kCenter);
    MsbBitCursor cursor(payload, payload_bytes);
    for (uint64_t i = 0; i < n; ++i) {
      if (!cursor.TakeBit()) continue;
      const bool upper = cursor.TakeBit();
      classes[i] = upper ? kUpper : kLower;
      (upper ? seen_u : seen_l) += 1;
    }
    if (seen_l != nl || seen_u != nu) {
      return Status::Corruption("BOS bitmap does not match outlier counts");
    }
    DecodeClassedValuesScalar(&cursor, classes, bases, widths, n, out);
  }
  *offset += payload_bytes;
  return Status::OK();
}

// Mode-2 layout: same header as the bitmap layout, then the outlier
// positions as two ascending varint gap lists, then the values in
// original order at their class widths.
Status EncodeSeparatedList(std::span<const int64_t> values,
                           const Separation& sep, Bytes* out) {
  const Partition& p = sep.partition;
  const PartWidths w = ComputeWidths(p);

  out->push_back(kSeparatedListBlockMode);
  bitpack::PutVarint(out, p.n);
  bitpack::PutVarint(out, p.nl);
  bitpack::PutVarint(out, p.nu);
  if (p.nl > 0) bitpack::PutSignedVarint(out, p.xmin);
  bitpack::PutSignedVarint(out, p.min_xc);
  if (p.nu > 0) bitpack::PutSignedVarint(out, p.min_xu);
  if (p.nl > 0) out->push_back(static_cast<uint8_t>(w.alpha));
  out->push_back(static_cast<uint8_t>(w.beta));
  if (p.nu > 0) out->push_back(static_cast<uint8_t>(w.gamma));

  auto put_positions = [&](bool lower) {
    uint64_t prev = 0;
    bool first = true;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool is_lower = sep.has_lower && values[i] <= sep.xl;
      const bool is_upper =
          !is_lower && sep.has_upper && values[i] >= sep.xu;
      if ((lower && !is_lower) || (!lower && !is_upper)) continue;
      bitpack::PutVarint(out, first ? i : i - prev - 1);
      prev = i;
      first = false;
    }
  };
  put_positions(/*lower=*/true);
  put_positions(/*lower=*/false);

  bitpack::FastBitWriter writer(out);
  for (int64_t v : values) {
    if (sep.has_lower && v <= sep.xl) {
      writer.WriteBits(UnsignedRange(p.xmin, v), w.alpha);
    } else if (sep.has_upper && v >= sep.xu) {
      writer.WriteBits(UnsignedRange(p.min_xu, v), w.gamma);
    } else {
      writer.WriteBits(UnsignedRange(p.min_xc, v), w.beta);
    }
  }
  writer.Finish();
  return Status::OK();
}

Status DecodeSeparatedListBody(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) {
  uint64_t n, nl, nu;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &nu));
  if (n > kMaxBlockValues) return Status::Corruption("BOS-LIST: n too large");
  if (nl > n || nu > n || nl + nu > n) {
    return Status::Corruption("BOS-LIST: outlier counts exceed n");
  }

  int64_t xmin = 0, min_xc = 0, min_xu = 0;
  if (nl > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &xmin));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xc));
  if (nu > 0) BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min_xu));

  int alpha = 0, beta = 0, gamma = 0;
  auto read_width = [&](int* width) -> Status {
    if (*offset >= data.size()) return Status::Corruption("BOS-LIST truncated");
    *width = data[(*offset)++];
    if (*width > 64) return Status::Corruption("BOS-LIST: width > 64");
    return Status::OK();
  };
  if (nl > 0) BOS_RETURN_NOT_OK(read_width(&alpha));
  BOS_RETURN_NOT_OK(read_width(&beta));
  if (nu > 0) BOS_RETURN_NOT_OK(read_width(&gamma));

  // Each gap list yields strictly ascending positions by construction;
  // only cross-list duplicates need an explicit check (in the merge or
  // the classes fill below).
  std::vector<uint32_t> lower_pos, upper_pos;
  lower_pos.reserve(nl);
  upper_pos.reserve(nu);
  // Gap lists decode through the batched (BMI2-dispatched) varint run;
  // wrapping position arithmetic matches the historical per-varint loop
  // (a wrapped position lands < n at worst and the duplicate-position
  // checks below still reject the block).
  std::vector<uint64_t> gaps(std::max(nl, nu));
  auto read_positions = [&](uint64_t count,
                            std::vector<uint32_t>* pos_list) -> Status {
    BOS_RETURN_NOT_OK(bitpack::GetVarintRun(data, offset, count, gaps.data()));
    uint64_t pos = 0;
    for (uint64_t i = 0; i < count; ++i) {
      pos = (i == 0) ? gaps[i] : pos + 1 + gaps[i];
      if (pos >= n) return Status::Corruption("BOS-LIST: bad position");
      pos_list->push_back(static_cast<uint32_t>(pos));
    }
    return Status::OK();
  };
  BOS_RETURN_NOT_OK(read_positions(nl, &lower_pos));
  BOS_RETURN_NOT_OK(read_positions(nu, &upper_pos));

  const uint64_t payload_bits = nl * static_cast<uint64_t>(alpha) +
                                nu * static_cast<uint64_t>(gamma) +
                                (n - nl - nu) * static_cast<uint64_t>(beta);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (!SliceFits(data.size(), *offset, payload_bytes)) {
    return Status::Corruption("BOS-LIST: payload truncated");
  }
  const int64_t bases[3] = {min_xc, xmin, min_xu};
  const int widths[3] = {beta, alpha, gamma};
  if (BosBatchedDecodeEnabled()) {
    std::vector<OutlierRef> outliers;
    outliers.reserve(nl + nu);
    size_t i = 0, j = 0;
    while (i < lower_pos.size() || j < upper_pos.size()) {
      if (j >= upper_pos.size() ||
          (i < lower_pos.size() && lower_pos[i] < upper_pos[j])) {
        outliers.push_back({lower_pos[i++], kLower});
      } else if (i >= lower_pos.size() || upper_pos[j] < lower_pos[i]) {
        outliers.push_back({upper_pos[j++], kUpper});
      } else {
        return Status::Corruption("BOS-LIST: bad position");
      }
    }
    DecodeClassedValuesBatched(data.data() + *offset, data.size() - *offset,
                               /*start_bit=*/0, outliers, bases, widths, n,
                               out);
  } else {
    std::vector<uint8_t> classes(n, kCenter);
    for (uint32_t pos : lower_pos) classes[pos] = kLower;
    for (uint32_t pos : upper_pos) {
      if (classes[pos] != kCenter) {
        return Status::Corruption("BOS-LIST: bad position");
      }
      classes[pos] = kUpper;
    }
    MsbBitCursor cursor(data.data() + *offset, payload_bytes);
    DecodeClassedValuesScalar(&cursor, classes, bases, widths, n, out);
  }
  *offset += payload_bytes;
  return Status::OK();
}

Status EncodeWithSeparation(std::span<const int64_t> values,
                            const Separation& sep, Bytes* out) {
  if (!sep.separated) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.mode_plain", 1);
    BOS_TRACE_ANNOTATE("mode", "plain");
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  RecordSeparatedBlockStats("bos.core.encode.mode_bitmap", sep.partition,
                            ComputeWidths(sep.partition));
  return EncodeSeparated(values, sep, out);
}

Status DecodeBosBlockImpl(BytesView data, size_t* offset,
                          std::vector<int64_t>* out, bool allow_zone = true) {
  if (*offset >= data.size()) return Status::Corruption("BOS block: no mode byte");
  const uint8_t mode = data[(*offset)++];
  switch (mode) {
    case kPlainBlockMode:
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.mode_plain", 1);
      return DecodePlainBlockBody(data, offset, out);
    case kSeparatedBlockMode:
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.mode_bitmap", 1);
      return DecodeSeparatedBody(data, offset, out);
    case kSeparatedListBlockMode:
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.mode_list", 1);
      return DecodeSeparatedListBody(data, offset, out);
    case kZoneMapBlockMode: {
      if (!allow_zone) {
        return Status::Corruption("zone map: nested wrapper");
      }
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.mode_zonemap", 1);
      int64_t zone_min, zone_max;
      BOS_RETURN_NOT_OK(
          DecodeZoneMapHeader(data, offset, &zone_min, &zone_max));
      return DecodeBosBlockImpl(data, offset, out, /*allow_zone=*/false);
    }
    default:
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.bad_mode", 1);
      return Status::Corruption("BOS block: unknown mode byte");
  }
}

// All BOS/BP block decoding funnels through here, so one counter gives
// the production rate of rejected-corrupt blocks across every operator.
Status DecodeBosBlock(BytesView data, size_t* offset,
                      std::vector<int64_t>* out) {
  Status st = DecodeBosBlockImpl(data, offset, out);
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.corrupt_rejected", 1);
  }
  return st;
}

// ---------------------------------------------------------------------
// Selective decode: unpack only the rows a SelectionView asks for. Every
// body advances *offset past the whole block exactly as the full decode
// would (DecodeSelected doubles as the block-skip primitive), and the
// per-row bit offsets are derived from the same headers the full decode
// validates, so reads never leave the validated payload.
// ---------------------------------------------------------------------

void RecordSelectedDecode(uint64_t n, uint64_t selected) {
  BOS_TELEMETRY_COUNTER_ADD("bos.select.values_decoded", selected);
  BOS_TELEMETRY_COUNTER_ADD("bos.select.values_skipped", n - selected);
}

// Shared header parse of the separated layouts (modes 1 and 2), mirroring
// DecodeSeparatedBody / DecodeSeparatedListBody field for field.
struct SeparatedHeader {
  uint64_t n = 0, nl = 0, nu = 0;
  int64_t bases[3] = {0, 0, 0};  // indexed by Class
  int widths[3] = {0, 0, 0};
};

Status ParseSeparatedHeader(BytesView data, size_t* offset,
                            SeparatedHeader* h) {
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &h->n));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &h->nl));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &h->nu));
  if (h->n > kMaxBlockValues) {
    return Status::Corruption("BOS block: n too large");
  }
  if (h->nl > h->n || h->nu > h->n || h->nl + h->nu > h->n) {
    return Status::Corruption("BOS block: outlier counts exceed n");
  }
  if (h->nl > 0) {
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &h->bases[kLower]));
  }
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &h->bases[kCenter]));
  if (h->nu > 0) {
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &h->bases[kUpper]));
  }
  auto read_width = [&](int* width) -> Status {
    if (*offset >= data.size()) return Status::Corruption("BOS block truncated");
    *width = data[(*offset)++];
    if (*width > 64) return Status::Corruption("BOS block width > 64");
    return Status::OK();
  };
  if (h->nl > 0) BOS_RETURN_NOT_OK(read_width(&h->widths[kLower]));
  BOS_RETURN_NOT_OK(read_width(&h->widths[kCenter]));
  if (h->nu > 0) BOS_RETURN_NOT_OK(read_width(&h->widths[kUpper]));
  return Status::OK();
}

// Given ascending class counts before position p, decode the single
// value stored at the derived bit offset.
Status DecodeOneClassedValue(const uint8_t* stream, size_t stream_len,
                             const SeparatedHeader& h, uint64_t value_bit_base,
                             int cls, uint64_t cl, uint64_t cu, uint64_t cc,
                             std::vector<int64_t>* out) {
  // The class counts walked so far must stay inside the header's counts,
  // or the bit offset below would leave the validated payload.
  const uint64_t before[3] = {cc, cl, cu};
  const uint64_t totals[3] = {h.n - h.nl - h.nu, h.nl, h.nu};
  for (int c = 0; c < 3; ++c) {
    if (before[c] > totals[c]) {
      return Status::Corruption("BOS bitmap does not match outlier counts");
    }
  }
  if (before[cls] >= totals[cls]) {
    return Status::Corruption("BOS bitmap does not match outlier counts");
  }
  const uint64_t bit = value_bit_base +
                       cl * static_cast<uint64_t>(h.widths[kLower]) +
                       cu * static_cast<uint64_t>(h.widths[kUpper]) +
                       cc * static_cast<uint64_t>(h.widths[kCenter]);
  int64_t value;
  bitpack::UnpackRunAddBase(stream, stream_len, bit, h.widths[cls], 1,
                            static_cast<uint64_t>(h.bases[cls]), &value);
  out->push_back(value);
  return Status::OK();
}

Status DecodeSelectedPlainBody(BytesView data, size_t* offset,
                               const select::SelectionView& sel,
                               std::vector<int64_t>* out) {
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > kMaxBlockValues) return Status::Corruption("plain block: n too large");
  uint64_t max_pos = 0;
  uint64_t selected = 0;
  sel.ForEachRun([&](uint64_t start, uint64_t len) {
    max_pos = start + len;  // runs ascend; the last one carries the max
    selected += len;
  });
  if (selected > 0 && max_pos > n) {
    return Status::InvalidArgument(
        "DecodeSelected: position past end of block");
  }
  if (n == 0) return Status::OK();
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  if (*offset >= data.size()) return Status::Corruption("plain block truncated");
  const int width = data[(*offset)++];
  if (width > 64) return Status::Corruption("plain block width > 64");
  const uint64_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
  if (!SliceFits(data.size(), *offset, bytes)) {
    return Status::Corruption("plain block payload truncated");
  }
  const uint8_t* stream = data.data() + *offset;
  const size_t stream_len = data.size() - *offset;
  *offset += bytes;
  if (selected > 0) {
    const size_t old_size = out->size();
    out->resize(old_size + selected);
    int64_t* dst = out->data() + old_size;
    sel.ForEachRun([&](uint64_t start, uint64_t len) {
      // Plain blocks random-access directly: row i starts at bit i*width.
      bitpack::UnpackRunAddBase(stream, stream_len,
                                start * static_cast<uint64_t>(width), width,
                                len, static_cast<uint64_t>(min), dst);
      dst += len;
    });
  }
  RecordSelectedDecode(n, selected);
  return Status::OK();
}

Status DecodeSelectedSeparatedBody(BytesView data, size_t* offset,
                                   const select::SelectionView& sel,
                                   std::vector<int64_t>* out) {
  SeparatedHeader h;
  BOS_RETURN_NOT_OK(ParseSeparatedHeader(data, offset, &h));
  const uint64_t bitmap_bits = h.n + h.nl + h.nu;
  const uint64_t payload_bits =
      bitmap_bits + h.nl * static_cast<uint64_t>(h.widths[kLower]) +
      h.nu * static_cast<uint64_t>(h.widths[kUpper]) +
      (h.n - h.nl - h.nu) * static_cast<uint64_t>(h.widths[kCenter]);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (!SliceFits(data.size(), *offset, payload_bytes)) {
    return Status::Corruption("BOS block payload truncated");
  }
  const uint8_t* stream = data.data() + *offset;
  const size_t stream_len = data.size() - *offset;
  *offset += payload_bytes;

  const std::vector<uint64_t> targets = sel.ToVector();
  if (!targets.empty() && targets.back() >= h.n) {
    return Status::InvalidArgument(
        "DecodeSelected: position past end of block");
  }
  // One forward walk over the class bitmap for all targets (they ascend):
  // whole bytes whose entries all precede the next target are charged via
  // kBitmapByteTable without touching their bits; only the byte holding
  // the target entry is replayed bit by bit.
  size_t bpos = 0;
  int state = 0;
  uint64_t sym = 0, sl = 0, su = 0;
  for (const uint64_t p : targets) {
    while (true) {
      const uint8_t byte = bpos < stream_len ? stream[bpos] : 0;
      const BitmapByte e = kBitmapByteTable[state][byte];
      if (sym + e.nsym > p) break;
      sym += e.nsym;
      sl += static_cast<uint64_t>(e.nout) - e.nup;
      su += e.nup;
      state = e.next_state;
      ++bpos;
    }
    // Replay from the byte boundary until entry p completes. Bits past
    // the stream read as zero, matching MsbBitCursor, so this always
    // terminates (zero bits complete center entries).
    uint64_t sym2 = sym, sl2 = sl, su2 = su;
    int st2 = state;
    size_t bp = bpos;
    int cls = -1;
    while (cls < 0) {
      const uint8_t byte = bp < stream_len ? stream[bp] : 0;
      ++bp;
      for (int bitpos = 7; bitpos >= 0; --bitpos) {
        const int bit = (byte >> bitpos) & 1;
        if (st2 == 1) {
          if (sym2 == p) {
            cls = kLower + bit;
            break;
          }
          (bit != 0 ? su2 : sl2) += 1;
          ++sym2;
          st2 = 0;
        } else if (bit == 0) {
          if (sym2 == p) {
            cls = kCenter;
            break;
          }
          ++sym2;
        } else {
          st2 = 1;
        }
      }
    }
    BOS_RETURN_NOT_OK(DecodeOneClassedValue(stream, stream_len, h, bitmap_bits,
                                            cls, sl2, su2, p - sl2 - su2,
                                            out));
  }
  RecordSelectedDecode(h.n, targets.size());
  return Status::OK();
}

Status DecodeSelectedSeparatedListBody(BytesView data, size_t* offset,
                                       const select::SelectionView& sel,
                                       std::vector<int64_t>* out) {
  SeparatedHeader h;
  BOS_RETURN_NOT_OK(ParseSeparatedHeader(data, offset, &h));

  std::vector<uint32_t> lower_pos, upper_pos;
  lower_pos.reserve(h.nl);
  upper_pos.reserve(h.nu);
  std::vector<uint64_t> gaps(std::max(h.nl, h.nu));
  auto read_positions = [&](uint64_t count,
                            std::vector<uint32_t>* pos_list) -> Status {
    BOS_RETURN_NOT_OK(bitpack::GetVarintRun(data, offset, count, gaps.data()));
    uint64_t pos = 0;
    for (uint64_t i = 0; i < count; ++i) {
      pos = (i == 0) ? gaps[i] : pos + 1 + gaps[i];
      if (pos >= h.n) return Status::Corruption("BOS-LIST: bad position");
      pos_list->push_back(static_cast<uint32_t>(pos));
    }
    return Status::OK();
  };
  BOS_RETURN_NOT_OK(read_positions(h.nl, &lower_pos));
  BOS_RETURN_NOT_OK(read_positions(h.nu, &upper_pos));

  const uint64_t payload_bits =
      h.nl * static_cast<uint64_t>(h.widths[kLower]) +
      h.nu * static_cast<uint64_t>(h.widths[kUpper]) +
      (h.n - h.nl - h.nu) * static_cast<uint64_t>(h.widths[kCenter]);
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (!SliceFits(data.size(), *offset, payload_bytes)) {
    return Status::Corruption("BOS-LIST: payload truncated");
  }
  const uint8_t* stream = data.data() + *offset;
  const size_t stream_len = data.size() - *offset;
  *offset += payload_bytes;

  const std::vector<uint64_t> targets = sel.ToVector();
  if (!targets.empty() && targets.back() >= h.n) {
    return Status::InvalidArgument(
        "DecodeSelected: position past end of block");
  }
  for (const uint64_t p : targets) {
    // Class counts before p come from binary searches over the ascending
    // position lists; membership decides p's own class.
    const auto l_it =
        std::lower_bound(lower_pos.begin(), lower_pos.end(), p);
    const auto u_it =
        std::lower_bound(upper_pos.begin(), upper_pos.end(), p);
    const uint64_t cl = static_cast<uint64_t>(l_it - lower_pos.begin());
    const uint64_t cu = static_cast<uint64_t>(u_it - upper_pos.begin());
    const bool is_lower = l_it != lower_pos.end() && *l_it == p;
    const bool is_upper = u_it != upper_pos.end() && *u_it == p;
    if (is_lower && is_upper) {
      return Status::Corruption("BOS-LIST: bad position");
    }
    const int cls = is_lower ? kLower : is_upper ? kUpper : kCenter;
    BOS_RETURN_NOT_OK(DecodeOneClassedValue(stream, stream_len, h,
                                            /*value_bit_base=*/0, cls, cl, cu,
                                            p - cl - cu, out));
  }
  RecordSelectedDecode(h.n, targets.size());
  return Status::OK();
}

Status DecodeBosBlockSelectedImpl(BytesView data, size_t* offset,
                                  const select::SelectionView& sel,
                                  std::vector<int64_t>* out,
                                  bool allow_zone = true) {
  if (*offset >= data.size()) return Status::Corruption("BOS block: no mode byte");
  const uint8_t mode = data[(*offset)++];
  switch (mode) {
    case kPlainBlockMode:
      return DecodeSelectedPlainBody(data, offset, sel, out);
    case kSeparatedBlockMode:
      return DecodeSelectedSeparatedBody(data, offset, sel, out);
    case kSeparatedListBlockMode:
      return DecodeSelectedSeparatedListBody(data, offset, sel, out);
    case kZoneMapBlockMode: {
      if (!allow_zone) {
        return Status::Corruption("zone map: nested wrapper");
      }
      int64_t zone_min, zone_max;
      BOS_RETURN_NOT_OK(
          DecodeZoneMapHeader(data, offset, &zone_min, &zone_max));
      return DecodeBosBlockSelectedImpl(data, offset, sel, out,
                                        /*allow_zone=*/false);
    }
    default:
      BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.bad_mode", 1);
      return Status::Corruption("BOS block: unknown mode byte");
  }
}

Status DecodeBosBlockSelected(BytesView data, size_t* offset,
                              const select::SelectionView& sel,
                              std::vector<int64_t>* out) {
  if (sel.empty()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.select.blocks_skipped", 1);
  }
  Status st = DecodeBosBlockSelectedImpl(data, offset, sel, out);
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.corrupt_rejected", 1);
  }
  return st;
}

// Emits the zone-map wrapper ahead of the inner block when the operator
// was constructed with zone maps on. Empty blocks stay unwrapped, so the
// "empty block" golden bytes are flag-independent.
void MaybeWrapZoneMap(bool zone_maps, std::span<const int64_t> values,
                      Bytes* out) {
  if (!zone_maps || values.empty()) return;
  const auto mm = bitpack::ComputeMinMax(values);
  EncodeZoneMapHeader(mm.min, mm.max, out);
  BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.zone_maps", 1);
}

#if BOS_TELEMETRY_ENABLED
// Separation-search latency histogram for one strategy: the live
// counterpart of the paper's Table-IV search-time comparison
// (BOS-V >> BOS-B > BOS-M).
telemetry::Histogram* SearchSpanHistogram(SeparationStrategy strategy) {
  static telemetry::Histogram* hists[3] = {
      &telemetry::Registry::Global().GetHistogram(
          "bos.core.search.bos_v_ns", telemetry::LatencyBoundsNs()),
      &telemetry::Registry::Global().GetHistogram(
          "bos.core.search.bos_b_ns", telemetry::LatencyBoundsNs()),
      &telemetry::Registry::Global().GetHistogram(
          "bos.core.search.bos_m_ns", telemetry::LatencyBoundsNs()),
  };
  return hists[static_cast<int>(strategy)];
}
#endif

// Runs the separation search under a per-strategy telemetry span.
Separation SeparateTimed(SeparationStrategy strategy,
                         std::span<const int64_t> values) {
#if BOS_TELEMETRY_ENABLED
  telemetry::ScopedSpan span(
      telemetry::Enabled() ? SearchSpanHistogram(strategy) : nullptr);
#endif
  return Separate(strategy, values);
}

// Consumes the mode byte of a BP block, unwrapping at most one zone-map
// extension; leaves *offset at the plain block body.
Status ConsumePlainMode(BytesView data, size_t* offset) {
  if (*offset >= data.size()) {
    return Status::Corruption("BP block: no mode byte");
  }
  uint8_t mode = data[(*offset)++];
  if (mode == kZoneMapBlockMode) {
    int64_t zone_min, zone_max;
    BOS_RETURN_NOT_OK(DecodeZoneMapHeader(data, offset, &zone_min, &zone_max));
    if (*offset >= data.size()) {
      return Status::Corruption("BP block: no mode byte");
    }
    mode = data[(*offset)++];
  }
  if (mode != kPlainBlockMode) {
    return Status::Corruption("BP block: unexpected mode byte");
  }
  return Status::OK();
}

}  // namespace

bool PeekBlockZoneMap(BytesView data, size_t offset, int64_t* min,
                      int64_t* max) {
  if (offset >= data.size() || data[offset] != kZoneMapBlockMode) return false;
  ++offset;
  return DecodeZoneMapHeader(data, &offset, min, max).ok();
}

Status BitPackingOperator::Encode(std::span<const int64_t> values,
                                  Bytes* out) const {
  MaybeWrapZoneMap(zone_maps_, values, out);
  EncodePlainBlock(values, out);
  return Status::OK();
}

Status BitPackingOperator::Decode(BytesView data, size_t* offset,
                                  std::vector<int64_t>* out) const {
  Status st = [&]() -> Status {
    BOS_RETURN_NOT_OK(ConsumePlainMode(data, offset));
    return DecodePlainBlockBody(data, offset, out);
  }();
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.corrupt_rejected", 1);
  }
  return st;
}

Status BitPackingOperator::DecodeSelected(BytesView data, size_t* offset,
                                          const select::SelectionView& sel,
                                          std::vector<int64_t>* out) const {
  if (sel.empty()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.select.blocks_skipped", 1);
  }
  Status st = [&]() -> Status {
    BOS_RETURN_NOT_OK(ConsumePlainMode(data, offset));
    return DecodeSelectedPlainBody(data, offset, sel, out);
  }();
  if (st.IsCorruption()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.decode.corrupt_rejected", 1);
  }
  return st;
}

Status BosOperator::Encode(std::span<const int64_t> values, Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  BOS_TRACE_SPAN("bos.core.encode.block");
  BOS_TRACE_ANNOTATE("op", SeparationStrategyName(strategy_));
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  MaybeWrapZoneMap(zone_maps_, values, out);
  const Separation sep = SeparateTimed(strategy_, values);
  return EncodeWithSeparation(values, sep, out);
}

Status BosOperator::Decode(BytesView data, size_t* offset,
                           std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosOperator::DecodeSelected(BytesView data, size_t* offset,
                                   const select::SelectionView& sel,
                                   std::vector<int64_t>* out) const {
  return DecodeBosBlockSelected(data, offset, sel, out);
}

Status BosUpperOnlyOperator::Encode(std::span<const int64_t> values,
                                    Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  BOS_TRACE_SPAN("bos.core.encode.block");
  BOS_TRACE_ANNOTATE("op", "BOS-UPPER");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  MaybeWrapZoneMap(zone_maps_, values, out);
  const Separation sep = SeparateUpperOnly(values);
  return EncodeWithSeparation(values, sep, out);
}

Status BosUpperOnlyOperator::Decode(BytesView data, size_t* offset,
                                    std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosUpperOnlyOperator::DecodeSelected(BytesView data, size_t* offset,
                                            const select::SelectionView& sel,
                                            std::vector<int64_t>* out) const {
  return DecodeBosBlockSelected(data, offset, sel, out);
}

Status BosListOperator::Encode(std::span<const int64_t> values,
                               Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  BOS_TRACE_SPAN("bos.core.encode.block");
  BOS_TRACE_ANNOTATE("op", "BOS-LIST");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  MaybeWrapZoneMap(zone_maps_, values, out);
  const Separation sep = SeparateBitWidth(values);
  if (!sep.separated) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.mode_plain", 1);
    BOS_TRACE_ANNOTATE("mode", "plain");
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  RecordSeparatedBlockStats("bos.core.encode.mode_list", sep.partition,
                            ComputeWidths(sep.partition));
  return EncodeSeparatedList(values, sep, out);
}

Status BosListOperator::Decode(BytesView data, size_t* offset,
                               std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosListOperator::DecodeSelected(BytesView data, size_t* offset,
                                       const select::SelectionView& sel,
                                       std::vector<int64_t>* out) const {
  return DecodeBosBlockSelected(data, offset, sel, out);
}

Status BosHybridOperator::Encode(std::span<const int64_t> values,
                                 Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  BOS_TRACE_SPAN("bos.core.encode.block");
  BOS_TRACE_ANNOTATE("op", "BOS-H");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  MaybeWrapZoneMap(zone_maps_, values, out);
  Separation sep = SeparateTimed(SeparationStrategy::kMedian, values);
  // When BOS-M found no split its cost_bits already IS the Definition-1
  // plain cost (and its partition fields are meaningless), so the gap
  // test below degenerates to "escalate iff t < 1" without special-casing.
  const uint64_t plain_bits =
      sep.separated ? PlainCostBits(values.size(), sep.partition.xmin,
                                    sep.partition.xmax)
                    : sep.cost_bits;
  const bool escalate =
      static_cast<double>(sep.cost_bits) >
      escalate_threshold_ * static_cast<double>(plain_bits);
  if (escalate) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.hybrid_escalated", 1);
    sep = SeparateTimed(SeparationStrategy::kBitWidth, values);
  } else {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.hybrid_kept_median", 1);
  }
  BOS_TRACE_ANNOTATE("escalated", static_cast<int64_t>(escalate ? 1 : 0));
  return EncodeWithSeparation(values, sep, out);
}

Status BosHybridOperator::Decode(BytesView data, size_t* offset,
                                 std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosHybridOperator::DecodeSelected(BytesView data, size_t* offset,
                                         const select::SelectionView& sel,
                                         std::vector<int64_t>* out) const {
  return DecodeBosBlockSelected(data, offset, sel, out);
}

Status BosAdaptiveOperator::Encode(std::span<const int64_t> values,
                                   Bytes* out) const {
  if (values.empty()) {
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  BOS_TRACE_SPAN("bos.core.encode.block");
  BOS_TRACE_ANNOTATE("op", "BOS-ADAPTIVE");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(values.size()));
  MaybeWrapZoneMap(zone_maps_, values, out);
  const Separation sep = SeparateBitWidth(values);
  if (!sep.separated) {
    BOS_TELEMETRY_COUNTER_ADD("bos.core.encode.mode_plain", 1);
    BOS_TRACE_ANNOTATE("mode", "plain");
    EncodePlainBlock(values, out);
    return Status::OK();
  }
  Bytes bitmap_form, list_form;
  BOS_RETURN_NOT_OK(EncodeSeparated(values, sep, &bitmap_form));
  BOS_RETURN_NOT_OK(EncodeSeparatedList(values, sep, &list_form));
  const bool pick_list = list_form.size() < bitmap_form.size();
  RecordSeparatedBlockStats(pick_list ? "bos.core.encode.mode_list"
                                      : "bos.core.encode.mode_bitmap",
                            sep.partition, ComputeWidths(sep.partition));
  const Bytes& smaller = pick_list ? list_form : bitmap_form;
  out->insert(out->end(), smaller.begin(), smaller.end());
  return Status::OK();
}

Status BosAdaptiveOperator::Decode(BytesView data, size_t* offset,
                                   std::vector<int64_t>* out) const {
  return DecodeBosBlock(data, offset, out);
}

Status BosAdaptiveOperator::DecodeSelected(BytesView data, size_t* offset,
                                           const select::SelectionView& sel,
                                           std::vector<int64_t>* out) const {
  return DecodeBosBlockSelected(data, offset, sel, out);
}

}  // namespace bos::core
