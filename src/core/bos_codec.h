#ifndef BOS_CORE_BOS_CODEC_H_
#define BOS_CORE_BOS_CODEC_H_

#include <memory>

#include "core/packing.h"
#include "core/separation.h"

namespace bos::core {

/// \brief Toggles the batched BOS decode paths (word-at-a-time bitmap
/// classification and run-batched value unpacking). Enabled by default;
/// the scalar per-value paths are kept so benchmarks can measure the
/// batched speedup and tests can cross-check the two implementations.
/// Both paths accept exactly the same byte streams.
void SetBosBatchedDecodeEnabled(bool enabled);
bool BosBatchedDecodeEnabled();

/// \brief Plain bit-packing (BP): the operator BOS replaces. Encodes each
/// block as frame-of-reference fixed-width values (Definition 1).
class BitPackingOperator final : public PackingOperator {
 public:
  std::string_view name() const override { return "BP"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief Bit-packing with Outlier Separation — the paper's contribution.
///
/// Runs the configured separation strategy (BOS-V / BOS-B / BOS-M) on each
/// block, and emits either the separated layout of Figure 7 or, when the
/// search finds no split cheaper than Definition 1, a plain block.
///
/// Separated layout, after the mode byte:
///   varint n, nl, nu;
///   zigzag-varint bases: xmin (iff nl>0), minXc, minXu (iff nu>0);
///   width bytes: alpha (iff nl>0), beta, gamma (iff nu>0);
///   bitmap, one entry per value in original order: '0' center,
///   '10' lower outlier, '11' upper outlier (Figure 2);
///   values in original order, each packed at its class width relative to
///   its class base (Figure 7), so decoding scans the data exactly once.
class BosOperator final : public PackingOperator {
 public:
  explicit BosOperator(SeparationStrategy strategy) : strategy_(strategy) {}

  std::string_view name() const override {
    return SeparationStrategyName(strategy_);
  }
  SeparationStrategy strategy() const { return strategy_; }

  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;

 private:
  SeparationStrategy strategy_;
};

/// \brief Figure-12 ablation: BOS restricted to upper-outlier separation
/// only (lower outliers are never split off), exact search.
class BosUpperOnlyOperator final : public PackingOperator {
 public:
  std::string_view name() const override { return "BOS-UPPER"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief Position-encoding ablation (paper §II-C): the PFOR family keeps
/// outlier *index lists* while BOS uses a bitmap. This operator runs the
/// exact BOS-B separation but serializes outlier positions as varint gap
/// lists — bitmap-free — so the two index encodings can be compared on
/// identical splits.
class BosListOperator final : public PackingOperator {
 public:
  std::string_view name() const override { return "BOS-LIST"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief Adaptive position encoding: encodes each block both ways
/// (bitmap and gap list) and keeps the smaller — "in some cases, bitmap
/// could save the index storage" (§II-C), and in the remaining cases the
/// list does. Decodes any of the three block modes.
class BosAdaptiveOperator final : public PackingOperator {
 public:
  std::string_view name() const override { return "BOS-ADAPTIVE"; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
};

/// \brief "BOS-H": hybrid search for write-heavy tenants. Each block is
/// searched with the O(n) approximate BOS-M strategy first; the exact
/// BOS-B search runs only when BOS-M's modeled saving over plain packing
/// (Definition 5 vs Definition 1 cost) is below `escalate_threshold` —
/// the blocks where the approximate search risks leaving compression
/// behind. The emitted streams are ordinary BOS blocks either way, so
/// decoding is unchanged. Opt-in: registered as "BOS-H" in the codec
/// registry but not part of the default operator list; encoded bytes
/// depend on the threshold, so it is excluded from format-golden
/// coverage by design.
class BosHybridOperator final : public PackingOperator {
 public:
  /// `escalate_threshold` t in [0, 1]: escalate when
  /// modeled_separated_cost > t * modeled_plain_cost, i.e. when BOS-M's
  /// modeled saving is below the fraction (1 - t). t = 0 always
  /// escalates (exact search everywhere); t = 1 never does (pure BOS-M).
  explicit BosHybridOperator(double escalate_threshold = 0.95)
      : escalate_threshold_(escalate_threshold) {}

  std::string_view name() const override { return "BOS-H"; }
  double escalate_threshold() const { return escalate_threshold_; }

  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;

 private:
  double escalate_threshold_;
};

}  // namespace bos::core

#endif  // BOS_CORE_BOS_CODEC_H_
