#ifndef BOS_CORE_BOS_CODEC_H_
#define BOS_CORE_BOS_CODEC_H_

#include <memory>
#include <string>

#include "core/packing.h"
#include "core/separation.h"

namespace bos::core {

/// \brief Toggles the batched BOS decode paths (word-at-a-time bitmap
/// classification and run-batched value unpacking). Enabled by default;
/// the scalar per-value paths are kept so benchmarks can measure the
/// batched speedup and tests can cross-check the two implementations.
/// Both paths accept exactly the same byte streams.
void SetBosBatchedDecodeEnabled(bool enabled);
bool BosBatchedDecodeEnabled();

/// \brief Peeks the zone-map bounds of the block starting at `offset`
/// without decoding it. Returns true and fills `*min`/`*max` when the
/// block carries a well-formed zone-map wrapper; false otherwise
/// (including for every pre-extension block).
bool PeekBlockZoneMap(BytesView data, size_t offset, int64_t* min,
                      int64_t* max);

/// \brief Plain bit-packing (BP): the operator BOS replaces. Encodes each
/// block as frame-of-reference fixed-width values (Definition 1).
///
/// With `zone_maps` set ("BP.Z" in the registry), every non-empty block
/// is wrapped in the versioned zone-map extension (block_io.h); decoding
/// accepts wrapped and unwrapped blocks either way, so old files read
/// unchanged.
class BitPackingOperator final : public PackingOperator {
 public:
  explicit BitPackingOperator(bool zone_maps = false)
      : zone_maps_(zone_maps), name_(zone_maps ? "BP.Z" : "BP") {}

  std::string_view name() const override { return name_; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  bool zone_maps_;
  std::string name_;
};

/// \brief Bit-packing with Outlier Separation — the paper's contribution.
///
/// Runs the configured separation strategy (BOS-V / BOS-B / BOS-M) on each
/// block, and emits either the separated layout of Figure 7 or, when the
/// search finds no split cheaper than Definition 1, a plain block.
///
/// Separated layout, after the mode byte:
///   varint n, nl, nu;
///   zigzag-varint bases: xmin (iff nl>0), minXc, minXu (iff nu>0);
///   width bytes: alpha (iff nl>0), beta, gamma (iff nu>0);
///   bitmap, one entry per value in original order: '0' center,
///   '10' lower outlier, '11' upper outlier (Figure 2);
///   values in original order, each packed at its class width relative to
///   its class base (Figure 7), so decoding scans the data exactly once.
class BosOperator final : public PackingOperator {
 public:
  explicit BosOperator(SeparationStrategy strategy, bool zone_maps = false)
      : strategy_(strategy),
        zone_maps_(zone_maps),
        name_(std::string(SeparationStrategyName(strategy)) +
              (zone_maps ? ".Z" : "")) {}

  std::string_view name() const override { return name_; }
  SeparationStrategy strategy() const { return strategy_; }

  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  SeparationStrategy strategy_;
  bool zone_maps_;
  std::string name_;
};

/// \brief Figure-12 ablation: BOS restricted to upper-outlier separation
/// only (lower outliers are never split off), exact search.
class BosUpperOnlyOperator final : public PackingOperator {
 public:
  explicit BosUpperOnlyOperator(bool zone_maps = false)
      : zone_maps_(zone_maps), name_(zone_maps ? "BOS-UPPER.Z" : "BOS-UPPER") {}

  std::string_view name() const override { return name_; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  bool zone_maps_;
  std::string name_;
};

/// \brief Position-encoding ablation (paper §II-C): the PFOR family keeps
/// outlier *index lists* while BOS uses a bitmap. This operator runs the
/// exact BOS-B separation but serializes outlier positions as varint gap
/// lists — bitmap-free — so the two index encodings can be compared on
/// identical splits.
class BosListOperator final : public PackingOperator {
 public:
  explicit BosListOperator(bool zone_maps = false)
      : zone_maps_(zone_maps), name_(zone_maps ? "BOS-LIST.Z" : "BOS-LIST") {}

  std::string_view name() const override { return name_; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  bool zone_maps_;
  std::string name_;
};

/// \brief Adaptive position encoding: encodes each block both ways
/// (bitmap and gap list) and keeps the smaller — "in some cases, bitmap
/// could save the index storage" (§II-C), and in the remaining cases the
/// list does. Decodes any of the three block modes.
class BosAdaptiveOperator final : public PackingOperator {
 public:
  explicit BosAdaptiveOperator(bool zone_maps = false)
      : zone_maps_(zone_maps),
        name_(zone_maps ? "BOS-ADAPTIVE.Z" : "BOS-ADAPTIVE") {}

  std::string_view name() const override { return name_; }
  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  bool zone_maps_;
  std::string name_;
};

/// \brief "BOS-H": hybrid search for write-heavy tenants. Each block is
/// searched with the O(n) approximate BOS-M strategy first; the exact
/// BOS-B search runs only when BOS-M's modeled saving over plain packing
/// (Definition 5 vs Definition 1 cost) is below `escalate_threshold` —
/// the blocks where the approximate search risks leaving compression
/// behind. The emitted streams are ordinary BOS blocks either way, so
/// decoding is unchanged. Opt-in: registered as "BOS-H" in the codec
/// registry but not part of the default operator list; encoded bytes
/// depend on the threshold, so it is excluded from format-golden
/// coverage by design.
class BosHybridOperator final : public PackingOperator {
 public:
  /// `escalate_threshold` t in [0, 1]: escalate when
  /// modeled_separated_cost > t * modeled_plain_cost, i.e. when BOS-M's
  /// modeled saving is below the fraction (1 - t). t = 0 always
  /// escalates (exact search everywhere); t = 1 never does (pure BOS-M).
  explicit BosHybridOperator(double escalate_threshold = 0.95,
                             bool zone_maps = false)
      : escalate_threshold_(escalate_threshold),
        zone_maps_(zone_maps),
        name_(zone_maps ? "BOS-H.Z" : "BOS-H") {}

  std::string_view name() const override { return name_; }
  double escalate_threshold() const { return escalate_threshold_; }

  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;
  Status DecodeSelected(BytesView data, size_t* offset,
                        const select::SelectionView& sel,
                        std::vector<int64_t>* out) const override;

 private:
  double escalate_threshold_;
  bool zone_maps_;
  std::string name_;
};

}  // namespace bos::core

#endif  // BOS_CORE_BOS_CODEC_H_
