#ifndef BOS_CORE_PACKING_H_
#define BOS_CORE_PACKING_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "select/selection.h"
#include "util/buffer.h"
#include "util/status.h"

namespace bos::core {

/// \brief A block-level packing operator: the role Bit-packing plays inside
/// RLE / SPRINTZ / TS2DIFF, and the role BOS replaces (paper §I-B).
///
/// An operator encodes one block of integers into a self-delimiting byte
/// string appended to `out`, and decodes it back from an offset. Because
/// the encoding is self-delimiting, series codecs can concatenate blocks
/// without extra framing.
///
/// Implementations: plain bit-packing (`BitPackingOperator`), the PFOR
/// family (`src/pfor/`), and BOS-V / BOS-B / BOS-M (`BosOperator`).
///
/// Thread safety: operators are immutable after construction —
/// `Encode`/`Decode` are const and keep all working state on the stack,
/// so one shared instance may process independent blocks concurrently
/// (the exec layer's chunk-parallel driver depends on this; see the
/// contract in codecs/registry.h).
class PackingOperator {
 public:
  virtual ~PackingOperator() = default;

  /// Display name used in benchmark tables, e.g. "BOS-B".
  virtual std::string_view name() const = 0;

  /// Appends the encoded block to `out`. An empty block is legal.
  virtual Status Encode(std::span<const int64_t> values, Bytes* out) const = 0;

  /// Decodes one block starting at `*offset`, advancing it past the block.
  /// Decoded values are appended to `out`.
  virtual Status Decode(BytesView data, size_t* offset,
                        std::vector<int64_t>* out) const = 0;

  /// Decodes only the block positions selected by `sel` (positions are
  /// relative to the block, i.e. `sel` reports rel ∈ [0, n)), appending
  /// them to `out` in ascending position order.
  ///
  /// Contract:
  ///  * `*offset` is advanced past the whole block exactly as `Decode`
  ///    would advance it — even when `sel` is empty, so the call doubles
  ///    as a cheap block-skip primitive.
  ///  * A selected position >= the block's value count is InvalidArgument.
  ///  * The base implementation decodes the full block into stack scratch
  ///    and gathers (counted by `bos.select.fallback_decodes`); operators
  ///    with random-access layouts (plain packing, the BOS modes) override
  ///    it to unpack only the requested rows.
  virtual Status DecodeSelected(BytesView data, size_t* offset,
                                const select::SelectionView& sel,
                                std::vector<int64_t>* out) const;
};

}  // namespace bos::core

#endif  // BOS_CORE_PACKING_H_
