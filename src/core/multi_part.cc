#include "core/multi_part.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "core/block_io.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::core {
namespace {

// Extra tag bits a non-short class pays beyond its leading '1', when the
// block actually uses `m` classes.
int ExtraTagBits(int m) { return m <= 2 ? 0 : BitWidth(static_cast<uint64_t>(m - 2)); }

struct Segment {
  int i, j;       // unique-value index range [i, j)
  bool is_short;  // this class carries the 1-bit tag
};

// Interval DP: exactly `m` contiguous classes over the `u` sorted unique
// values, one of them short-tagged, tag widths priced for `m` classes.
// Returns the optimal cost and fills `segments`; returns infinity when
// m > u.
uint64_t ExactPartitionDp(const std::vector<int64_t>& uniq,
                          const std::vector<uint64_t>& cum, int m,
                          std::vector<Segment>* segments) {
  const int u = static_cast<int>(uniq.size());
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max() / 4;
  if (m > u) return kInf;
  const uint64_t extra = ExtraTagBits(m);

  const auto idx = [&](int j, int c, int s) { return (j * (m + 1) + c) * 2 + s; };
  std::vector<uint64_t> dp((u + 1) * (m + 1) * 2, kInf);
  struct Parent {
    int i = -1;
    int c = -1;
    int s = -1;
  };
  std::vector<Parent> parent((u + 1) * (m + 1) * 2);
  dp[idx(0, 0, 0)] = 0;

  for (int j = 1; j <= u; ++j) {
    for (int i = 0; i < j; ++i) {
      const uint64_t cnt = cum[j - 1] - (i > 0 ? cum[i - 1] : 0);
      const uint64_t width = RangeBitWidth(UnsignedRange(uniq[i], uniq[j - 1]));
      const uint64_t cost_long = cnt * (width + 1 + extra);
      const uint64_t cost_short = cnt * (width + 1);
      for (int c = 1; c <= m; ++c) {
        const uint64_t from0 = dp[idx(i, c - 1, 0)];
        const uint64_t from1 = dp[idx(i, c - 1, 1)];
        if (from0 < kInf && from0 + cost_long < dp[idx(j, c, 0)]) {
          dp[idx(j, c, 0)] = from0 + cost_long;
          parent[idx(j, c, 0)] = {i, c - 1, 0};
        }
        if (from1 < kInf && from1 + cost_long < dp[idx(j, c, 1)]) {
          dp[idx(j, c, 1)] = from1 + cost_long;
          parent[idx(j, c, 1)] = {i, c - 1, 1};
        }
        if (from0 < kInf && from0 + cost_short < dp[idx(j, c, 1)]) {
          dp[idx(j, c, 1)] = from0 + cost_short;
          parent[idx(j, c, 1)] = {i, c - 1, 0};
        }
      }
    }
  }

  const uint64_t best = dp[idx(u, m, 1)];
  if (best >= kInf) return kInf;
  segments->clear();
  int j = u, c = m, s = 1;
  while (j > 0) {
    const Parent par = parent[idx(j, c, s)];
    segments->push_back({par.i, j, s == 1 && par.s == 0});
    j = par.i;
    c = par.c;
    s = par.s;
  }
  std::reverse(segments->begin(), segments->end());
  return best;
}

}  // namespace

MultiPartPlan PlanMultiPart(std::span<const int64_t> values, int k) {
  assert(!values.empty() && k >= 1);
  std::vector<int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<int64_t> uniq;
  std::vector<uint64_t> cum;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (uniq.empty() || sorted[i] != uniq.back()) {
      uniq.push_back(sorted[i]);
      cum.push_back(i + 1);
    } else {
      cum.back() = i + 1;
    }
  }
  const int u = static_cast<int>(uniq.size());
  const uint64_t n = values.size();
  const int kk = std::min(k, u);

  // m = 1 baseline: a single untagged class (Definition 1 layout).
  MultiPartPlan plan;
  {
    PartClass c;
    c.count = n;
    c.base = uniq.front();
    c.top = uniq.back();
    c.width = BitWidth(UnsignedRange(c.base, c.top));
    plan.classes.push_back(c);
    plan.short_class = 0;
    plan.cost_bits = n * static_cast<uint64_t>(c.width);
  }
  if (kk <= 1) return plan;

  // Tag width depends on the class count actually used, so search each
  // exact m separately; monotonicity in k follows because larger k only
  // adds candidate values of m.
  uint64_t best = plan.cost_bits;
  std::vector<Segment> best_segments;
  for (int m = 2; m <= kk; ++m) {
    std::vector<Segment> segments;
    const uint64_t cost = ExactPartitionDp(uniq, cum, m, &segments);
    if (cost < best) {
      best = cost;
      best_segments = std::move(segments);
    }
  }
  if (best_segments.empty()) return plan;  // no split beats plain packing

  plan.classes.clear();
  plan.cost_bits = best;
  for (size_t si = 0; si < best_segments.size(); ++si) {
    const Segment& seg = best_segments[si];
    PartClass pc;
    pc.base = uniq[seg.i];
    pc.top = uniq[seg.j - 1];
    pc.count = cum[seg.j - 1] - (seg.i > 0 ? cum[seg.i - 1] : 0);
    pc.width = static_cast<int>(RangeBitWidth(UnsignedRange(pc.base, pc.top)));
    if (seg.is_short) plan.short_class = static_cast<int>(si);
    plan.classes.push_back(pc);
  }
  return plan;
}

MultiPartOperator::MultiPartOperator(int k) : k_(k) {
  assert(k >= 1 && k <= 16);
  name_ = "MULTIPART-" + std::to_string(k);
}

Status MultiPartOperator::Encode(std::span<const int64_t> values,
                                 Bytes* out) const {
  out->push_back(static_cast<uint8_t>(k_));
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return Status::OK();

  const MultiPartPlan plan = PlanMultiPart(values, k_);
  const int m = static_cast<int>(plan.classes.size());
  out->push_back(static_cast<uint8_t>(m));
  out->push_back(static_cast<uint8_t>(plan.short_class));
  for (const PartClass& c : plan.classes) {
    bitpack::PutVarint(out, c.count);
    bitpack::PutSignedVarint(out, c.base);
    out->push_back(static_cast<uint8_t>(c.width));
  }
  if (m == 1) {
    bitpack::BitWriter writer(out);
    for (int64_t v : values) {
      writer.WriteBits(UnsignedRange(plan.classes[0].base, v),
                       plan.classes[0].width);
    }
    return Status::OK();
  }

  // Rank of each non-short class in tag order.
  const int extra = ExtraTagBits(m);
  std::vector<int> rank(m, -1);
  for (int ci = 0, r = 0; ci < m; ++ci) {
    if (ci != plan.short_class) rank[ci] = r++;
  }
  auto class_of = [&](int64_t v) {
    for (int ci = 0; ci < m; ++ci) {
      if (v <= plan.classes[ci].top) return ci;
    }
    return m - 1;
  };

  bitpack::BitWriter writer(out);
  for (int64_t v : values) {
    const int ci = class_of(v);
    if (ci == plan.short_class) {
      writer.WriteBit(false);
    } else {
      writer.WriteBit(true);
      writer.WriteBits(static_cast<uint64_t>(rank[ci]), extra);
    }
  }
  for (int64_t v : values) {
    const int ci = class_of(v);
    writer.WriteBits(UnsignedRange(plan.classes[ci].base, v),
                     plan.classes[ci].width);
  }
  return Status::OK();
}

Status MultiPartOperator::Decode(BytesView data, size_t* offset,
                                 std::vector<int64_t>* out) const {
  if (*offset >= data.size()) return Status::Corruption("multipart: truncated");
  const int k = data[(*offset)++];
  if (k < 1 || k > 16) return Status::Corruption("multipart: bad k");
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > kMaxBlockValues) return Status::Corruption("multipart: n too large");
  if (n == 0) return Status::OK();

  if (!SliceFits(data.size(), *offset, 2)) {
    return Status::Corruption("multipart: truncated");
  }
  const int m = data[(*offset)++];
  const int short_class = data[(*offset)++];
  if (m < 1 || m > k || short_class >= m) {
    return Status::Corruption("multipart: bad class header");
  }
  std::vector<PartClass> classes(m);
  uint64_t total = 0;
  for (PartClass& c : classes) {
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &c.count));
    BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &c.base));
    if (*offset >= data.size()) return Status::Corruption("multipart: truncated");
    c.width = data[(*offset)++];
    if (c.width > 64) return Status::Corruption("multipart: width > 64");
    // Per-class cap before summing: untrusted counts may otherwise wrap
    // `total` around to match n.
    if (c.count > n || !CheckedAdd(total, c.count, &total) || total > n) {
      return Status::Corruption("multipart: class counts mismatch");
    }
  }
  if (total != n) return Status::Corruption("multipart: class counts mismatch");

  const int extra = ExtraTagBits(m);
  uint64_t payload_bits = 0;
  for (const PartClass& c : classes) {
    payload_bits += c.count * static_cast<uint64_t>(c.width);
  }
  if (m > 1) {
    payload_bits += n;  // leading tag bit
    payload_bits += (n - classes[short_class].count) * static_cast<uint64_t>(extra);
  }
  const uint64_t payload_bytes = BitsToBytes(payload_bits);
  if (!SliceFits(data.size(), *offset, payload_bytes)) {
    return Status::Corruption("multipart: payload truncated");
  }
  bitpack::BitReader reader(data.subspan(*offset, payload_bytes));

  std::vector<int> class_ids(n, short_class);
  if (m > 1) {
    // Map rank -> class index.
    std::vector<int> by_rank;
    for (int ci = 0; ci < m; ++ci) {
      if (ci != short_class) by_rank.push_back(ci);
    }
    for (uint64_t i = 0; i < n; ++i) {
      bool bit;
      if (!reader.ReadBit(&bit)) return Status::Corruption("multipart: tags truncated");
      if (!bit) continue;
      uint64_t r = 0;
      if (extra > 0 && !reader.ReadBits(extra, &r)) {
        return Status::Corruption("multipart: tags truncated");
      }
      if (r >= by_rank.size()) return Status::Corruption("multipart: bad tag rank");
      class_ids[i] = by_rank[r];
    }
  }

  out->reserve(out->size() + n);
  for (uint64_t i = 0; i < n; ++i) {
    const PartClass& c = classes[class_ids[i]];
    uint64_t delta = 0;
    if (c.width > 0 && !reader.ReadBits(c.width, &delta)) {
      return Status::Corruption("multipart: values truncated");
    }
    out->push_back(static_cast<int64_t>(static_cast<uint64_t>(c.base) + delta));
  }
  *offset += payload_bytes;
  return Status::OK();
}

}  // namespace bos::core
