#ifndef BOS_CORE_MULTI_PART_H_
#define BOS_CORE_MULTI_PART_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/packing.h"

namespace bos::core {

/// \brief One class of a k-part split: a contiguous value interval packed
/// at its own width, tagged in the per-value tag stream.
struct PartClass {
  uint64_t count = 0;
  int64_t base = 0;   ///< minimum value of the class
  int64_t top = 0;    ///< maximum value of the class
  int width = 0;      ///< bits per value, relative to base
};

/// \brief Result of the k-part partition search.
struct MultiPartPlan {
  std::vector<PartClass> classes;  ///< ordered by value interval
  int short_class = 0;             ///< index of the class with the 1-bit tag
  uint64_t cost_bits = 0;          ///< modeled payload cost
};

/// \brief Optimal contiguous partition of the block's value domain into at
/// most `k` classes (Figure 14's "number of divided parts").
///
/// Generalizes BOS: k=1 is plain bit-packing, k=3 is lower/center/upper.
/// Exactly one class pays a 1-bit tag per value ('0'); every other class
/// pays 1 + ceil(log2(k-1)) bits ('1' + class rank). The split and the
/// short-tag assignment are chosen jointly by interval DP over the sorted
/// unique values, O(u^2 * k).
MultiPartPlan PlanMultiPart(std::span<const int64_t> values, int k);

/// \brief PackingOperator encoding each block with the optimal k-part
/// split. `MultiPartOperator(3)` is cost-equivalent to BOS-B up to the
/// tag-code difference documented in DESIGN.md.
class MultiPartOperator final : public PackingOperator {
 public:
  /// `k` in [1, 16].
  explicit MultiPartOperator(int k);

  std::string_view name() const override { return name_; }
  int parts() const { return k_; }

  Status Encode(std::span<const int64_t> values, Bytes* out) const override;
  Status Decode(BytesView data, size_t* offset,
                std::vector<int64_t>* out) const override;

 private:
  int k_;
  std::string name_;
};

}  // namespace bos::core

#endif  // BOS_CORE_MULTI_PART_H_
