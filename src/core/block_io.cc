#include "core/block_io.h"

#include "bitpack/bitpacking.h"
#include "bitpack/unpack_kernels.h"
#include "bitpack/varint.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::core {

void EncodePlainBlock(std::span<const int64_t> values, Bytes* out) {
  out->push_back(kPlainBlockMode);
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return;
  const auto mm = bitpack::ComputeMinMax(values);
  const int width = BitWidth(UnsignedRange(mm.min, mm.max));
  bitpack::PutSignedVarint(out, mm.min);
  out->push_back(static_cast<uint8_t>(width));
  // Fused rebase-and-pack through the block-of-32 kernels: no
  // intermediate delta buffer on the frame-of-reference path (mirror of
  // the decode side's UnpackBlocksAddBase). 8 transient slack bytes let
  // the wide kernels' overlapping stores run to the end.
  const size_t start = out->size();
  const size_t payload =
      BitsToBytes(static_cast<uint64_t>(width) * values.size());
  out->resize(start + payload + 8);
  bitpack::PackBlocksSubBase(values.data(), values.size(), width,
                             static_cast<uint64_t>(mm.min),
                             out->data() + start, payload + 8);
  out->resize(start + payload);
}

Status DecodePlainBlockBody(BytesView data, size_t* offset,
                            std::vector<int64_t>* out) {
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &n));
  if (n > kMaxBlockValues) return Status::Corruption("plain block: n too large");
  if (n == 0) return Status::OK();
  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, &min));
  if (*offset >= data.size()) return Status::Corruption("plain block truncated");
  const int width = data[(*offset)++];
  if (width > 64) return Status::Corruption("plain block width > 64");
  const uint64_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
  if (!SliceFits(data.size(), *offset, bytes)) {
    return Status::Corruption("plain block payload truncated");
  }
  // Fused unpack-and-rebase through the block-of-32 kernels: no
  // intermediate delta buffer on the frame-of-reference path.
  const size_t old_size = out->size();
  out->resize(old_size + n);
  bitpack::UnpackBlocksAddBase(data.data() + *offset, data.size() - *offset,
                               width, n, static_cast<uint64_t>(min),
                               out->data() + old_size);
  *offset += bytes;
  return Status::OK();
}

void EncodeZoneMapHeader(int64_t min, int64_t max, Bytes* out) {
  out->push_back(kZoneMapBlockMode);
  out->push_back(kZoneMapVersion);
  Bytes ext;
  bitpack::PutSignedVarint(&ext, min);
  bitpack::PutSignedVarint(&ext, max);
  bitpack::PutVarint(out, ext.size());
  out->insert(out->end(), ext.begin(), ext.end());
}

Status DecodeZoneMapHeader(BytesView data, size_t* offset, int64_t* min,
                           int64_t* max) {
  if (*offset >= data.size()) {
    return Status::Corruption("zone map: truncated version");
  }
  const uint8_t version = data[(*offset)++];
  if (version < kZoneMapVersion) {
    return Status::Corruption("zone map: bad version");
  }
  uint64_t ext_len;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &ext_len));
  if (!SliceFits(data.size(), *offset, ext_len)) {
    return Status::Corruption("zone map: extension truncated");
  }
  const size_t ext_end = *offset + static_cast<size_t>(ext_len);
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, min));
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, offset, max));
  if (*offset > ext_end) {
    return Status::Corruption("zone map: bounds overrun extension");
  }
  if (*min > *max) return Status::Corruption("zone map: min > max");
  // Skip any fields a newer version appended.
  *offset = ext_end;
  return Status::OK();
}

}  // namespace bos::core
