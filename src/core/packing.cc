#include "core/packing.h"

#include "telemetry/telemetry.h"
#include "util/macros.h"
#include "util/status.h"

namespace bos::core {

Status PackingOperator::DecodeSelected(BytesView data, size_t* offset,
                                       const select::SelectionView& sel,
                                       std::vector<int64_t>* out) const {
  // Fallback for operators without a random-access layout: decode the
  // whole block and gather. Correct for every operator, and the oracle
  // the specialized overrides are tested against.
  std::vector<int64_t> scratch;
  BOS_RETURN_NOT_OK(Decode(data, offset, &scratch));
  BOS_TELEMETRY_COUNTER_ADD("bos.select.fallback_decodes", 1);
  BOS_TELEMETRY_COUNTER_ADD("bos.select.values_decoded", scratch.size());
  Status status;
  sel.ForEach([&](uint64_t rel) {
    if (!status.ok()) return;
    if (rel >= scratch.size()) {
      status = Status::InvalidArgument(
          "DecodeSelected: position past end of block");
      return;
    }
    out->push_back(scratch[static_cast<size_t>(rel)]);
  });
  return status;
}

}  // namespace bos::core
