#ifndef BOS_CORE_SEPARATION_H_
#define BOS_CORE_SEPARATION_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "core/cost.h"

namespace bos::core {

/// \brief Result of the outlier-separation search (Problem 1).
///
/// When `separated` is false the search concluded that plain bit-packing
/// (Definition 1) is at least as cheap as any split, and the other fields
/// besides `cost_bits` are meaningless. Otherwise `partition` describes
/// the chosen split; `has_lower`/`has_upper` say which outlier classes are
/// non-empty, and `xl`/`xu` are *inclusive* thresholds realized by actual
/// block values: lower outliers are `x <= xl`, upper outliers `x >= xu`.
struct Separation {
  bool separated = false;
  bool has_lower = false;
  bool has_upper = false;
  int64_t xl = 0;
  int64_t xu = 0;
  uint64_t cost_bits = 0;  ///< modeled payload cost (Definition 1 or 5)
  Partition partition;
};

/// Strategy selector for `Separate` and `BosOperator`.
enum class SeparationStrategy {
  kValue,     ///< BOS-V: exact, O(n^2) enumeration of value pairs (Alg. 1)
  kBitWidth,  ///< BOS-B: exact, O(n log n) bit-width enumeration (Alg. 2)
  kMedian,    ///< BOS-M: approximate, O(n) median + bucket search (Alg. 3)
};

std::string_view SeparationStrategyName(SeparationStrategy s);

/// \brief Toggles the histogram/narrow-range search acceleration (counting
/// front-end plus successor-index candidate enumeration). Defaults to
/// enabled; both settings produce bit-identical separations — the toggle
/// exists so benchmarks can measure the old sort+cursor path. Affects all
/// threads (relaxed atomic), intended for tests and benchmarks only.
void SetHistogramSearchEnabled(bool enabled);
bool HistogramSearchEnabled();

/// \brief BOS-V (Algorithm 1): enumerates every pair of block values as
/// (xl, xu) via cumulative counts; provably optimal (Proposition 1).
/// `values` must be non-empty.
Separation SeparateValues(std::span<const int64_t> values);

/// \brief BOS-B (Algorithm 2): for each candidate xl enumerates only the
/// bit-width solutions of Table II — `xu = minXc + 2^beta` (Prop. 2) and
/// `xu = xmax - 2^gamma + 1` (Prop. 3) — yet still returns an optimal
/// separation, at O(n log n).
Separation SeparateBitWidth(std::span<const int64_t> values);

/// \brief BOS-M (Algorithm 3): approximate separation using the median
/// and the bucket counts of Definition 7, candidates
/// `(median - 2^beta, median + 2^beta)`; O(n).
Separation SeparateMedian(std::span<const int64_t> values);

/// Dispatches on `strategy`.
Separation Separate(SeparationStrategy strategy, std::span<const int64_t> values);

/// \brief Ablation for Figure 12: the BOS-B search restricted to upper
/// outliers only (the PFOR-style setting — lower outliers never split).
Separation SeparateUpperOnly(std::span<const int64_t> values);

}  // namespace bos::core

#endif  // BOS_CORE_SEPARATION_H_
