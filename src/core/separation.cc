#include "core/separation.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

#include "telemetry/trace.h"
#include "util/bits.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define BOS_SEPARATION_X86 1
#include <immintrin.h>
#endif

namespace bos::core {
namespace {

std::atomic<bool> g_histogram_search{true};

// Sorted unique values with cumulative counts (Definition 6): cum[i] is the
// number of block values <= uniq[i].
struct UniqueCounts {
  std::vector<int64_t> uniq;
  std::vector<uint64_t> cum;
};

struct MinMax {
  int64_t min;
  int64_t max;
};

#ifdef BOS_SEPARATION_X86
bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

// AVX2 has no 64-bit min/max, so both reductions are a compare + blend.
__attribute__((target("avx2"))) MinMax MinMaxAvx2(const int64_t* v, size_t n) {
  __m256i mn = _mm256_set1_epi64x(v[0]);
  __m256i mx = mn;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    mn = _mm256_blendv_epi8(mn, x, _mm256_cmpgt_epi64(mn, x));
    mx = _mm256_blendv_epi8(mx, x, _mm256_cmpgt_epi64(x, mx));
  }
  alignas(32) int64_t lo[4];
  alignas(32) int64_t hi[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo), mn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi), mx);
  MinMax mm{lo[0], hi[0]};
  for (int k = 1; k < 4; ++k) {
    mm.min = std::min(mm.min, lo[k]);
    mm.max = std::max(mm.max, hi[k]);
  }
  for (; i < n; ++i) {
    mm.min = std::min(mm.min, v[i]);
    mm.max = std::max(mm.max, v[i]);
  }
  return mm;
}
#endif  // BOS_SEPARATION_X86

MinMax ComputeMinMax(std::span<const int64_t> values) {
#ifdef BOS_SEPARATION_X86
  if (HasAvx2() && values.size() >= 8) {
    return MinMaxAvx2(values.data(), values.size());
  }
#endif
  MinMax mm{values.front(), values.front()};
  for (int64_t v : values) {
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

// The histogram front-end and the successor-index search below spend
// O(range) per block, so they only pay off when the value range is narrow
// relative to the block (the common IoT shape). The n cap also keeps every
// candidate cost below 2^27 bits, which the vectorized scan relies on for
// packing (cost, li) into one 64-bit lane.
constexpr uint64_t kNarrowRangeMax = (1ULL << 16) - 1;  // offsets fit uint16
constexpr uint64_t kNarrowMaxValues = 1ULL << 19;

bool NarrowRangeEligible(uint64_t n, uint64_t range) {
  return range <= kNarrowRangeMax && range < 64 * n && n <= kNarrowMaxValues;
}

UniqueCounts BuildUniqueCountsSort(std::span<const int64_t> values) {
  UniqueCounts uc;
  std::vector<int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  uc.uniq.reserve(sorted.size());
  uc.cum.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (uc.uniq.empty() || sorted[i] != uc.uniq.back()) {
      uc.uniq.push_back(sorted[i]);
      uc.cum.push_back(i + 1);
    } else {
      uc.cum.back() = i + 1;
    }
  }
  return uc;
}

// Counting-sort front-end for narrow ranges: one pass to count, one sweep
// over the (small) value domain to emit uniq/cum in sorted order. The
// thread-local histogram is re-zeroed during the sweep, which touches
// exactly the slots the counting pass did, so it stays all-zero between
// calls and is never cleared wholesale.
UniqueCounts BuildUniqueCountsHistogram(std::span<const int64_t> values,
                                        int64_t xmin, uint64_t range) {
  thread_local std::vector<uint32_t> hist;
  const size_t slots = static_cast<size_t>(range) + 1;
  if (hist.size() < slots) hist.resize(slots, 0);
  uint32_t* h = hist.data();
  for (int64_t v : values) ++h[UnsignedRange(xmin, v)];

  UniqueCounts uc;
  const size_t cap = std::min(values.size(), slots);
  uc.uniq.resize(cap);
  uc.cum.resize(cap);
  int64_t* uniq = uc.uniq.data();
  uint64_t* cum = uc.cum.data();
  uint64_t running = 0;
  size_t k = 0;
  // Branchless compressed write: every slot stores to position k, but k
  // only advances past occupied slots, so empty slots are overwritten by
  // the next occupied one. Occupancy is ~random, which makes a branchy
  // sweep mispredict constantly.
  for (size_t o = 0; o < slots; ++o) {
    const uint32_t c = h[o];
    h[o] = 0;
    running += c;
    uniq[k] = xmin + static_cast<int64_t>(o);
    cum[k] = running;
    k += c != 0;
  }
  uc.uniq.resize(k);
  uc.cum.resize(k);
  return uc;
}

UniqueCounts BuildUniqueCounts(std::span<const int64_t> values) {
  if (g_histogram_search.load(std::memory_order_relaxed)) {
    const MinMax mm = ComputeMinMax(values);
    const uint64_t range = UnsignedRange(mm.min, mm.max);
    if (NarrowRangeEligible(values.size(), range)) {
      return BuildUniqueCountsHistogram(values, mm.min, range);
    }
  }
  return BuildUniqueCountsSort(values);
}

// Builds the Partition for the candidate where lower outliers are
// uniq[0..li] and upper outliers are uniq[ui..u-1]. li == -1 means no lower
// outliers; ui == u means no upper outliers. Requires a non-empty center:
// ui >= li + 2.
Partition MakePartition(const UniqueCounts& uc, int li, int ui, uint64_t n) {
  const int u = static_cast<int>(uc.uniq.size());
  assert(ui >= li + 2 && li >= -1 && ui <= u);
  Partition p;
  p.n = n;
  p.xmin = uc.uniq.front();
  p.xmax = uc.uniq.back();
  if (li >= 0) {
    p.nl = uc.cum[li];
    p.max_xl = uc.uniq[li];
  }
  if (ui < u) {
    p.nu = n - uc.cum[ui - 1];
    p.min_xu = uc.uniq[ui];
  }
  p.min_xc = uc.uniq[li + 1];
  p.max_xc = uc.uniq[ui - 1];
  return p;
}

// Tracks the best candidate seen so far.
struct Best {
  uint64_t cost;
  int li = -1;
  int ui = 0;
  bool separated = false;
};

// Precomputed per-boundary cost pieces so each candidate evaluation is a
// handful of arithmetic ops: lower_term[li] = nl*(alpha+1) for lower
// outliers uniq[0..li]; upper_term[ui] = nu*(gamma+1) for upper outliers
// uniq[ui..u-1].
struct SearchContext {
  const UniqueCounts& uc;
  uint64_t n;
  std::vector<uint64_t> lower_term;
  std::vector<uint64_t> lower_count;
  std::vector<uint64_t> upper_term;
  std::vector<uint64_t> upper_count;

  explicit SearchContext(const UniqueCounts& counts, uint64_t total)
      : uc(counts), n(total) {
    const size_t u = uc.uniq.size();
    lower_term.resize(u);
    lower_count.resize(u);
    upper_term.resize(u + 1, 0);
    upper_count.resize(u + 1, 0);
    for (size_t li = 0; li < u; ++li) {
      const uint64_t nl = uc.cum[li];
      lower_count[li] = nl;
      lower_term[li] =
          nl * (RangeBitWidth(UnsignedRange(uc.uniq.front(), uc.uniq[li])) + 1);
    }
    for (size_t ui = 0; ui < u; ++ui) {
      // upper_count[ui] = #values >= uniq[ui]; ui == 0 never occurs as a
      // candidate (the center would be empty) but is filled for symmetry.
      upper_count[ui] = ui == 0 ? n : n - uc.cum[ui - 1];
      upper_term[ui] =
          upper_count[ui] *
          (RangeBitWidth(UnsignedRange(uc.uniq[ui], uc.uniq.back())) + 1);
    }
  }

  uint64_t Cost(int li, int ui) const {
    const uint64_t nl = li >= 0 ? lower_count[li] : 0;
    const uint64_t nu = upper_count[ui];  // upper_count[u] == 0
    const uint64_t nc = n - nl - nu;
    return n + (li >= 0 ? lower_term[li] : 0) + upper_term[ui] +
           nc * RangeBitWidth(UnsignedRange(uc.uniq[li + 1], uc.uniq[ui - 1]));
  }
};

void Consider(const SearchContext& ctx, int li, int ui, Best* best) {
  const uint64_t cost = ctx.Cost(li, ui);
  if (cost < best->cost) {
    best->cost = cost;
    best->li = li;
    best->ui = ui;
    best->separated = true;
  }
}

Separation Finish(const UniqueCounts& uc, uint64_t n, const Best& best) {
  Separation s;
  s.cost_bits = best.cost;
  if (!best.separated) return s;
  const int u = static_cast<int>(uc.uniq.size());
  s.separated = true;
  s.partition = MakePartition(uc, best.li, best.ui, n);
  s.has_lower = best.li >= 0;
  s.has_upper = best.ui < u;
  if (s.has_lower) s.xl = uc.uniq[best.li];
  if (s.has_upper) s.xu = uc.uniq[best.ui];
  return s;
}

Separation PlainOnly(const UniqueCounts& uc, uint64_t n) {
  Separation s;
  s.cost_bits = PlainCostBits(n, uc.uniq.front(), uc.uniq.back());
  return s;
}

// Shared BOS-V search body; `allow_lower` disabled gives the Figure-12
// upper-only ablation (and the BOS-B body reuses the candidate helpers).
Separation ValueSearch(std::span<const int64_t> values, bool allow_lower) {
  const uint64_t n = values.size();
  BOS_TRACE_SPAN("bos.core.search.value");
  const UniqueCounts uc = BuildUniqueCounts(values);
  const int u = static_cast<int>(uc.uniq.size());
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(n));
  BOS_TRACE_ANNOTATE("unique", static_cast<int64_t>(u));
  if (u < 2) return PlainOnly(uc, n);

  const SearchContext ctx(uc, n);
  Best best{PlainCostBits(n, uc.uniq.front(), uc.uniq.back())};
  const int li_max = allow_lower ? u - 2 : -1;
  for (int li = -1; li <= li_max; ++li) {
    for (int ui = li + 2; ui <= u; ++ui) {
      if (li == -1 && ui == u) continue;  // no split at all == plain
      Consider(ctx, li, ui, &best);
    }
  }
  return Finish(uc, n, best);
}

// First index in uniq with uniq[idx] >= threshold (== u when none).
int LowerBoundIndex(const std::vector<int64_t>& uniq, int64_t threshold) {
  return static_cast<int>(
      std::lower_bound(uniq.begin(), uniq.end(), threshold) - uniq.begin());
}

#ifdef BOS_SEPARATION_X86
// Scans candidates (li, ui) for a fixed ui over li in [li_lo, li_hi], four
// lanes at a time. To reproduce the scalar tie-break (strict <, first
// candidate wins), each lane packs (cost << 20) | (li + 1); the running
// unsigned minimum of that packing picks the smallest li among equal
// costs, which is exactly the first one the scalar loop would have kept.
// Requires the narrow-mode bounds: cost < 2^27 and li + 1 < 2^20, so the
// packed value stays below 2^47 and signed 64-bit compares are safe.
__attribute__((target("avx2"))) uint64_t ScanFixedUpperAvx2(
    const SearchContext& ctx, int li_lo, int li_hi, int ui,
    uint64_t best_packed) {
  const std::vector<int64_t>& uniq = ctx.uc.uniq;
  const uint64_t base_cost = ctx.n + ctx.upper_term[ui];
  const uint64_t n_minus_nu = ctx.n - ctx.upper_count[ui];
  const __m256i vbase = _mm256_set1_epi64x(static_cast<int64_t>(base_cost));
  const __m256i vnnu = _mm256_set1_epi64x(static_cast<int64_t>(n_minus_nu));
  const __m256i vmax_xc = _mm256_set1_epi64x(uniq[ui - 1]);
  const __m128i vexp_bias = _mm_set1_epi32(126);
  const __m128i vone = _mm_set1_epi32(1);
  __m256i vbest = _mm256_set1_epi64x(static_cast<int64_t>(best_packed));
  __m256i vid = _mm256_setr_epi64x(li_lo + 1, li_lo + 2, li_lo + 3, li_lo + 4);
  const __m256i vid_step = _mm256_set1_epi64x(4);
  int li = li_lo;
  for (; li + 4 <= li_hi + 1; li += 4) {
    const __m256i lt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ctx.lower_term.data() + li));
    const __m256i lc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ctx.lower_count.data() + li));
    const __m256i min_xc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(uniq.data() + li + 1));
    // Center range fits 17 bits in narrow mode, so the float conversion is
    // exact and RangeBitWidth(r) is max(1, float_exponent(r) - 126).
    const __m256i crange = _mm256_sub_epi64(vmax_xc, min_xc);
    const __m128i crange32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        crange, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
    const __m128i fbits = _mm_castps_si128(_mm_cvtepi32_ps(crange32));
    const __m128i width32 = _mm_max_epi32(
        vone, _mm_sub_epi32(_mm_srli_epi32(fbits, 23), vexp_bias));
    const __m256i width = _mm256_cvtepu32_epi64(width32);
    const __m256i nc = _mm256_sub_epi64(vnnu, lc);
    const __m256i center_term = _mm256_mul_epu32(nc, width);
    const __m256i cost =
        _mm256_add_epi64(_mm256_add_epi64(vbase, lt), center_term);
    const __m256i packed = _mm256_or_si256(_mm256_slli_epi64(cost, 20), vid);
    vbest = _mm256_blendv_epi8(vbest, packed, _mm256_cmpgt_epi64(vbest, packed));
    vid = _mm256_add_epi64(vid, vid_step);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  for (uint64_t lane : lanes) best_packed = std::min(best_packed, lane);
  for (; li <= li_hi; ++li) {
    const uint64_t packed =
        (ctx.Cost(li, ui) << 20) | static_cast<uint64_t>(li + 1);
    best_packed = std::min(best_packed, packed);
  }
  return best_packed;
}
// Cost pass of the Proposition 2 inner loop over candidates li = j - 1,
// j in [j_begin, j_end), after the successor pass resolved each ui into
// ui_buf. Same packed (cost << 20) | (li + 1) minimum trick as the
// fixed-upper scan; the only non-sequential access is one gather into the
// packed upper-boundary table.
__attribute__((target("avx2"))) uint64_t Prop2ScanAvx2(
    const uint64_t* upk, const uint64_t* lpk, const uint16_t* ui_buf,
    const uint16_t* op, uint64_t n, int j_begin, int j_end,
    uint64_t best_packed) {
  const __m256i vn = _mm256_set1_epi64x(static_cast<int64_t>(n));
  const __m256i mask20 = _mm256_set1_epi64x(0xFFFFF);
  const __m256i mask26 = _mm256_set1_epi64x((1 << 26) - 1);
  const __m128i vexp_bias = _mm_set1_epi32(126);
  const __m128i vone32 = _mm_set1_epi32(1);
  __m256i vbest = _mm256_set1_epi64x(static_cast<int64_t>(best_packed));
  __m256i vid =
      _mm256_setr_epi64x(j_begin, j_begin + 1, j_begin + 2, j_begin + 3);
  const __m256i vid_step = _mm256_set1_epi64x(4);
  int j = j_begin;
  for (; j + 4 <= j_end; j += 4) {
    const __m256i ui = _mm256_cvtepu16_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ui_buf + j)));
    const __m256i head = _mm256_cvtepu16_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(op + j)));
    const __m256i pk = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(upk), ui, 8);
    const __m256i lp = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lpk + j - 1));
    const __m256i nl = _mm256_and_si256(lp, mask20);
    const __m256i lt = _mm256_srli_epi64(lp, 20);
    const __m256i nu = _mm256_and_si256(_mm256_srli_epi64(pk, 26), mask20);
    const __m256i ut = _mm256_and_si256(pk, mask26);
    const __m256i crange =
        _mm256_sub_epi64(_mm256_srli_epi64(pk, 46), head);
    const __m128i crange32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        crange, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
    const __m128i fbits = _mm_castps_si128(_mm_cvtepi32_ps(crange32));
    const __m128i width32 = _mm_max_epi32(
        vone32, _mm_sub_epi32(_mm_srli_epi32(fbits, 23), vexp_bias));
    const __m256i width = _mm256_cvtepu32_epi64(width32);
    const __m256i nc = _mm256_sub_epi64(_mm256_sub_epi64(vn, nl), nu);
    const __m256i center = _mm256_mul_epu32(nc, width);
    const __m256i cost = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_add_epi64(vn, lt), ut), center);
    const __m256i packed = _mm256_or_si256(_mm256_slli_epi64(cost, 20), vid);
    vbest =
        _mm256_blendv_epi8(vbest, packed, _mm256_cmpgt_epi64(vbest, packed));
    vid = _mm256_add_epi64(vid, vid_step);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  for (uint64_t lane : lanes) best_packed = std::min(best_packed, lane);
  for (; j < j_end; ++j) {
    const uint64_t pk = upk[ui_buf[j]];
    const uint64_t lp = lpk[j - 1];
    const uint64_t nc = n - (lp & 0xFFFFF) - ((pk >> 26) & 0xFFFFF);
    const uint64_t cost = n + (lp >> 20) + (pk & ((1ULL << 26) - 1)) +
                          nc * RangeBitWidth((pk >> 46) - op[j]);
    const uint64_t packed = (cost << 20) | static_cast<uint64_t>(j);
    best_packed = std::min(best_packed, packed);
  }
  return best_packed;
}
#endif  // BOS_SEPARATION_X86

// Considers (li, ui) for every li in [li_lo, li_hi] with ui fixed,
// preserving the scalar loop's candidate order and tie-breaking.
void ScanFixedUpper(const SearchContext& ctx, int li_lo, int li_hi, int ui,
                    Best* best) {
  if (li_hi < li_lo) return;
  if (li_lo == -1) {
    Consider(ctx, -1, ui, best);
    li_lo = 0;
    if (li_hi < li_lo) return;
  }
#ifdef BOS_SEPARATION_X86
  if (HasAvx2() && li_hi - li_lo + 1 >= 8) {
    // Seed with the incumbent so equal-cost candidates lose to it, exactly
    // like the strict < in Consider.
    const uint64_t incumbent = best->cost << 20;
    const uint64_t packed =
        ScanFixedUpperAvx2(ctx, li_lo, li_hi, ui, incumbent);
    if (packed < incumbent) {
      best->cost = packed >> 20;
      best->li = static_cast<int>(packed & ((1u << 20) - 1)) - 1;
      best->ui = ui;
      best->separated = true;
    }
    return;
  }
#endif
  for (int li = li_lo; li <= li_hi; ++li) Consider(ctx, li, ui, best);
}

// Narrow-range BOS-B candidate enumeration: identical candidate set and
// order to the cursor-based loops below, but the Proposition 2 inner loop
// resolves ui with an O(1) successor lookup over the value domain instead
// of a data-dependent cursor walk, and the fixed-ui scans are vectorized.
void NarrowBitWidthCandidates(const SearchContext& ctx, int li_max,
                              Best* best) {
  const std::vector<int64_t>& uniq = ctx.uc.uniq;
  const int u = static_cast<int>(uniq.size());
  const int64_t xmin = uniq.front();
  const int64_t xmax = uniq.back();
  const uint64_t range = UnsignedRange(xmin, xmax);

  // succ[o] = first index i with uniq[i] >= xmin + o, for o in [0, range].
  // 16-bit entries keep the table inside L1 for typical ranges; the caller
  // guarantees u <= 65535. Filled run-by-run with 16-byte broadcast
  // stores; a run may spill into its successors' slots, but runs are
  // written in ascending order, so later (correct) stores win. The +16
  // slack absorbs the final spill.
  thread_local std::vector<uint16_t> succ;
  const size_t slots = static_cast<size_t>(range) + 1;
  if (succ.size() < slots + 16) succ.resize(slots + 16);
  {
    uint16_t* sp = succ.data();
    const int64_t* up = uniq.data();
    size_t prev = 0;
    for (int i = 0; i < u; ++i) {
      const size_t off = static_cast<size_t>(UnsignedRange(xmin, up[i]));
      const uint64_t pat =
          static_cast<uint64_t>(i) * 0x0001000100010001ULL;
      const uint64_t buf[2] = {pat, pat};
      std::memcpy(sp + prev, buf, 16);
      for (size_t o = prev + 8; o <= off; o += 8) std::memcpy(sp + o, buf, 16);
      prev = off + 1;
    }
  }

  // Narrow-mode sidecars of the context arrays, sized to keep the
  // Proposition 2 loop's working set inside L1: 16-bit value offsets
  // instead of 64-bit uniques, and the lower-side (term, count) pair
  // packed into one word (terms < 2^26, counts < 2^20, offsets < 2^17).
  thread_local std::vector<uint16_t> off16;
  thread_local std::vector<uint64_t> lower_pack;
  if (off16.size() < static_cast<size_t>(u)) off16.resize(u);
  if (lower_pack.size() < static_cast<size_t>(u)) lower_pack.resize(u);
  for (int i = 0; i < u; ++i) {
    off16[i] = static_cast<uint16_t>(UnsignedRange(xmin, uniq[i]));
    lower_pack[i] = (ctx.lower_term[i] << 20) | ctx.lower_count[i];
  }

  // One word per upper boundary so a candidate's upper-side cost pieces
  // are a single load: (uniq[ui-1]-xmin) << 46 | upper_count << 26 |
  // upper_term. The narrow-mode bounds make the fields fit: offsets take
  // 17 bits, counts 20 (n <= 2^19), terms 26 (cost terms < 65n < 2^26).
  thread_local std::vector<uint64_t> upper_pack;
  if (upper_pack.size() < static_cast<size_t>(u) + 1) {
    upper_pack.resize(static_cast<size_t>(u) + 1);
  }
  for (int ui = 1; ui <= u; ++ui) {
    upper_pack[ui] = (UnsignedRange(xmin, uniq[ui - 1]) << 46) |
                     (ctx.upper_count[ui] << 26) | ctx.upper_term[ui];
  }

  // Case beta <= gamma (Proposition 2): xu = minXc + 2^beta. The cursor
  // loop's skip condition (no unique value >= threshold) coincides with
  // its break condition, so inside the loop the successor always exists
  // (and is >= li + 2: uniq[li+1] < threshold).
  const uint16_t* sp = succ.data();
  const uint16_t* op = off16.data();
  const uint64_t* upk = upper_pack.data();
  const uint64_t* lpk = lower_pack.data();
  const uint64_t n = ctx.n;

  // Scratch for the per-beta successor pass: ui for candidate li = j - 1.
  thread_local std::vector<uint16_t> ui_buf;
  if (ui_buf.size() < static_cast<size_t>(u) + 8) ui_buf.resize(u + 8);
  uint16_t* ub = ui_buf.data();

  Best b = *best;
  for (int beta = 1; beta < 64; ++beta) {
    const uint64_t step = 1ULL << beta;
    if (step > range) break;
    // The inner loop of the cursor formulation breaks at the first li with
    // 2^beta > xmax - minXc; offsets are monotone, so that boundary is a
    // binary search, and the remaining iterations split into an address
    // pass (successor lookups, store-forwarded below) and a cost pass.
    const uint16_t keep = static_cast<uint16_t>(range - step);
    int jn = static_cast<int>(
        std::upper_bound(op, op + u, keep) - op);
    jn = std::min(jn, li_max + 2);
    for (int j = 0; j < jn; ++j) ub[j] = sp[op[j] + step];
    // li == -1 (no lower outliers) first, as in the candidate order.
    {
      const uint64_t pk = upk[ub[0]];
      const uint64_t nu = (pk >> 26) & 0xFFFFF;
      const uint64_t cost = n + (pk & ((1ULL << 26) - 1)) +
                            (n - nu) * RangeBitWidth(pk >> 46);
      if (cost < b.cost) {
        b.cost = cost;
        b.li = -1;
        b.ui = ub[0];
        b.separated = true;
      }
    }
#ifdef BOS_SEPARATION_X86
    if (HasAvx2() && jn - 1 >= 8) {
      const uint64_t incumbent = b.cost << 20;
      const uint64_t packed =
          Prop2ScanAvx2(upk, lpk, ub, op, n, 1, jn, incumbent);
      if (packed < incumbent) {
        b.cost = packed >> 20;
        b.li = static_cast<int>(packed & 0xFFFFF) - 1;
        b.ui = ub[b.li + 1];
        b.separated = true;
      }
      continue;
    }
#endif
    for (int j = 1; j < jn; ++j) {
      const uint64_t head = op[j];
      const int ui = ub[j];
      const uint64_t pk = upk[ui];
      const uint64_t lp = lpk[j - 1];
      const uint64_t nl = lp & 0xFFFFF;
      const uint64_t nu = (pk >> 26) & 0xFFFFF;
      const uint64_t nc = n - nl - nu;
      const uint64_t cost = n + (lp >> 20) + (pk & ((1ULL << 26) - 1)) +
                            nc * RangeBitWidth((pk >> 46) - head);
      if (cost < b.cost) {
        b.cost = cost;
        b.li = j - 1;
        b.ui = ui;
        b.separated = true;
      }
    }
  }
  *best = b;

  // Case beta > gamma (Proposition 3): xu = xmax - 2^gamma + 1 does not
  // depend on xl, so the index is resolved once per gamma.
  for (int gamma = 1; gamma < 64; ++gamma) {
    const uint64_t step = (1ULL << gamma) - 1;
    if (step > range) break;
    const int ui = succ[range - step];
    ScanFixedUpper(ctx, -1, std::min(li_max, ui - 2), ui, best);
  }

  // No upper outliers for each xl. Cost(li, u) reads upper_term[u] ==
  // upper_count[u] == 0 and max_xc = uniq[u - 1], so the fixed-upper scan
  // applies unchanged.
  ScanFixedUpper(ctx, 0, li_max, u, best);
}

Separation BitWidthSearch(std::span<const int64_t> values, bool allow_lower) {
  const uint64_t n = values.size();
  BOS_TRACE_SPAN("bos.core.search.bit_width");
  const UniqueCounts uc = BuildUniqueCounts(values);
  const int u = static_cast<int>(uc.uniq.size());
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(n));
  BOS_TRACE_ANNOTATE("unique", static_cast<int64_t>(u));
  if (u < 2) return PlainOnly(uc, n);

  const int64_t xmax = uc.uniq.back();
  const SearchContext ctx(uc, n);
  Best best{PlainCostBits(n, uc.uniq.front(), xmax)};
  const int li_max = allow_lower ? u - 2 : -1;

  const uint64_t range = UnsignedRange(uc.uniq.front(), xmax);
  if (g_histogram_search.load(std::memory_order_relaxed) &&
      NarrowRangeEligible(n, range) && u <= 65535) {
    BOS_TRACE_ANNOTATE("phase", "histogram");
    NarrowBitWidthCandidates(ctx, li_max, &best);
    return Finish(uc, n, best);
  }
  BOS_TRACE_ANNOTATE("phase", "cursor");

  // Case beta <= gamma (Proposition 2): xu = minXc + 2^beta. As Algorithm
  // 2 notes, traversing the bit-width first lets the cumulative count of
  // xl + 2^beta be fetched with a monotone cursor instead of a search:
  // minXc grows with li, so the threshold and its index only move right.
  for (int beta = 1; beta < 64; ++beta) {
    const uint64_t step = 1ULL << beta;
    int ui = 0;
    for (int li = -1; li <= li_max; ++li) {
      const int64_t min_xc = uc.uniq[li + 1];
      // Once 2^beta exceeds the remaining span it does for all larger li
      // too (minXc only grows); those candidates collapse into no-upper.
      if (step > UnsignedRange(min_xc, xmax)) break;
      const int64_t threshold =
          static_cast<int64_t>(static_cast<uint64_t>(min_xc) + step);
      if (ui < li + 2) ui = li + 2;
      while (ui < u && uc.uniq[ui] < threshold) ++ui;
      if (ui < u) Consider(ctx, li, ui, &best);
    }
  }

  // Case beta > gamma (Proposition 3): xu = xmax - 2^gamma + 1 does not
  // depend on xl, so the index is resolved once per gamma.
  for (int gamma = 1; gamma < 64; ++gamma) {
    const uint64_t step = (1ULL << gamma) - 1;
    if (step > UnsignedRange(uc.uniq.front(), xmax)) break;
    const int64_t threshold =
        static_cast<int64_t>(static_cast<uint64_t>(xmax) - step);
    const int ui = LowerBoundIndex(uc.uniq, threshold);
    if (ui >= u) continue;
    for (int li = -1; li <= std::min(li_max, ui - 2); ++li) {
      Consider(ctx, li, ui, &best);
    }
  }

  // No upper outliers for each xl.
  for (int li = 0; li <= li_max; ++li) Consider(ctx, li, u, &best);

  return Finish(uc, n, best);
}

}  // namespace

void SetHistogramSearchEnabled(bool enabled) {
  g_histogram_search.store(enabled, std::memory_order_relaxed);
}

bool HistogramSearchEnabled() {
  return g_histogram_search.load(std::memory_order_relaxed);
}

std::string_view SeparationStrategyName(SeparationStrategy s) {
  switch (s) {
    case SeparationStrategy::kValue:
      return "BOS-V";
    case SeparationStrategy::kBitWidth:
      return "BOS-B";
    case SeparationStrategy::kMedian:
      return "BOS-M";
  }
  return "BOS-?";
}

Separation SeparateValues(std::span<const int64_t> values) {
  assert(!values.empty());
  return ValueSearch(values, /*allow_lower=*/true);
}

Separation SeparateBitWidth(std::span<const int64_t> values) {
  assert(!values.empty());
  return BitWidthSearch(values, /*allow_lower=*/true);
}

Separation SeparateUpperOnly(std::span<const int64_t> values) {
  assert(!values.empty());
  return BitWidthSearch(values, /*allow_lower=*/false);
}

Separation SeparateMedian(std::span<const int64_t> values) {
  assert(!values.empty());
  const uint64_t n = values.size();
  BOS_TRACE_SPAN("bos.core.search.median");
  BOS_TRACE_ANNOTATE("n", static_cast<int64_t>(n));

  // FindMedian (QuickSelect): the lower median, an actual block value.
  std::vector<int64_t> scratch(values.begin(), values.end());
  const size_t mid = (scratch.size() - 1) / 2;
  std::nth_element(scratch.begin(), scratch.begin() + mid, scratch.end());
  const int64_t median = scratch[mid];

  // Bucket counts of Definition 7, augmented with per-bucket min/max so
  // Formula 5 can be evaluated exactly for every candidate beta.
  struct Bucket {
    uint64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    void Add(int64_t v) {
      if (count == 0) {
        min = max = v;
      } else {
        min = std::min(min, v);
        max = std::max(max, v);
      }
      ++count;
    }
  };
  constexpr int kMaxW = 65;
  std::vector<Bucket> low(kMaxW + 2), high(kMaxW + 2);
  int64_t xmin = values.front(), xmax = values.front();
  int maxw = 1;
  for (int64_t v : values) {
    xmin = std::min(xmin, v);
    xmax = std::max(xmax, v);
    if (v < median) {
      const int b = RangeBitWidth(UnsignedRange(v, median));
      low[b].Add(v);
      maxw = std::max(maxw, b);
    } else if (v > median) {
      const int b = RangeBitWidth(UnsignedRange(median, v));
      high[b].Add(v);
      maxw = std::max(maxw, b);
    }
  }

  // Suffix aggregates over buckets > beta (the outliers for candidate beta)
  // and prefix aggregates over buckets <= beta (the center).
  std::vector<uint64_t> low_cnt_suf(kMaxW + 2, 0), high_cnt_suf(kMaxW + 2, 0);
  std::vector<int64_t> low_max_suf(kMaxW + 2, 0), high_min_suf(kMaxW + 2, 0);
  for (int b = kMaxW; b >= 1; --b) {
    low_cnt_suf[b] = low_cnt_suf[b + 1] + low[b].count;
    low_max_suf[b] = low[b].count > 0
                         ? (low_cnt_suf[b + 1] > 0
                                ? std::max(low[b].max, low_max_suf[b + 1])
                                : low[b].max)
                         : low_max_suf[b + 1];
    high_cnt_suf[b] = high_cnt_suf[b + 1] + high[b].count;
    high_min_suf[b] = high[b].count > 0
                          ? (high_cnt_suf[b + 1] > 0
                                 ? std::min(high[b].min, high_min_suf[b + 1])
                                 : high[b].min)
                          : high_min_suf[b + 1];
  }
  std::vector<int64_t> low_min_pre(kMaxW + 2, median), high_max_pre(kMaxW + 2, median);
  std::vector<uint64_t> low_cnt_pre(kMaxW + 2, 0), high_cnt_pre(kMaxW + 2, 0);
  for (int b = 1; b <= kMaxW; ++b) {
    low_cnt_pre[b] = low_cnt_pre[b - 1] + low[b].count;
    low_min_pre[b] = low[b].count > 0 ? std::min(low_min_pre[b - 1], low[b].min)
                                      : low_min_pre[b - 1];
    high_cnt_pre[b] = high_cnt_pre[b - 1] + high[b].count;
    high_max_pre[b] = high[b].count > 0
                          ? std::max(high_max_pre[b - 1], high[b].max)
                          : high_max_pre[b - 1];
  }

  const uint64_t plain_cost = PlainCostBits(n, xmin, xmax);
  uint64_t best_cost = plain_cost;
  int best_beta = -1;
  Partition best_partition;
  for (int beta = maxw; beta >= 1; --beta) {
    Partition p;
    p.n = n;
    p.xmin = xmin;
    p.xmax = xmax;
    p.nl = low_cnt_suf[beta + 1];
    p.nu = high_cnt_suf[beta + 1];
    if (p.nl > 0) p.max_xl = low_max_suf[beta + 1];
    if (p.nu > 0) p.min_xu = high_min_suf[beta + 1];
    // The center always contains the median itself, so it is non-empty.
    p.min_xc = low_cnt_pre[beta] > 0 ? low_min_pre[beta] : median;
    p.max_xc = high_cnt_pre[beta] > 0 ? high_max_pre[beta] : median;
    if (p.nl == 0 && p.nu == 0) continue;  // degenerate: plain is cheaper
    const uint64_t cost = SeparatedCostBits(p);
    if (cost < best_cost) {
      best_cost = cost;
      best_beta = beta;
      best_partition = p;
    }
  }

  Separation s;
  s.cost_bits = best_cost;
  if (best_beta < 0) return s;
  s.separated = true;
  s.partition = best_partition;
  s.has_lower = best_partition.nl > 0;
  s.has_upper = best_partition.nu > 0;
  if (s.has_lower) s.xl = best_partition.max_xl;
  if (s.has_upper) s.xu = best_partition.min_xu;
  return s;
}

Separation Separate(SeparationStrategy strategy, std::span<const int64_t> values) {
  switch (strategy) {
    case SeparationStrategy::kValue:
      return SeparateValues(values);
    case SeparationStrategy::kBitWidth:
      return SeparateBitWidth(values);
    case SeparationStrategy::kMedian:
      return SeparateMedian(values);
  }
  return SeparateBitWidth(values);
}

}  // namespace bos::core
