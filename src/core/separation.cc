#include "core/separation.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/bits.h"

namespace bos::core {
namespace {

// Sorted unique values with cumulative counts (Definition 6): cum[i] is the
// number of block values <= uniq[i].
struct UniqueCounts {
  std::vector<int64_t> uniq;
  std::vector<uint64_t> cum;
};

UniqueCounts BuildUniqueCounts(std::span<const int64_t> values) {
  UniqueCounts uc;
  std::vector<int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  uc.uniq.reserve(sorted.size());
  uc.cum.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (uc.uniq.empty() || sorted[i] != uc.uniq.back()) {
      uc.uniq.push_back(sorted[i]);
      uc.cum.push_back(i + 1);
    } else {
      uc.cum.back() = i + 1;
    }
  }
  return uc;
}

// Builds the Partition for the candidate where lower outliers are
// uniq[0..li] and upper outliers are uniq[ui..u-1]. li == -1 means no lower
// outliers; ui == u means no upper outliers. Requires a non-empty center:
// ui >= li + 2.
Partition MakePartition(const UniqueCounts& uc, int li, int ui, uint64_t n) {
  const int u = static_cast<int>(uc.uniq.size());
  assert(ui >= li + 2 && li >= -1 && ui <= u);
  Partition p;
  p.n = n;
  p.xmin = uc.uniq.front();
  p.xmax = uc.uniq.back();
  if (li >= 0) {
    p.nl = uc.cum[li];
    p.max_xl = uc.uniq[li];
  }
  if (ui < u) {
    p.nu = n - uc.cum[ui - 1];
    p.min_xu = uc.uniq[ui];
  }
  p.min_xc = uc.uniq[li + 1];
  p.max_xc = uc.uniq[ui - 1];
  return p;
}

// Tracks the best candidate seen so far.
struct Best {
  uint64_t cost;
  int li = -1;
  int ui = 0;
  bool separated = false;
};

// Precomputed per-boundary cost pieces so each candidate evaluation is a
// handful of arithmetic ops: lower_term[li] = nl*(alpha+1) for lower
// outliers uniq[0..li]; upper_term[ui] = nu*(gamma+1) for upper outliers
// uniq[ui..u-1].
struct SearchContext {
  const UniqueCounts& uc;
  uint64_t n;
  std::vector<uint64_t> lower_term;
  std::vector<uint64_t> lower_count;
  std::vector<uint64_t> upper_term;
  std::vector<uint64_t> upper_count;

  explicit SearchContext(const UniqueCounts& counts, uint64_t total)
      : uc(counts), n(total) {
    const size_t u = uc.uniq.size();
    lower_term.resize(u);
    lower_count.resize(u);
    upper_term.resize(u + 1, 0);
    upper_count.resize(u + 1, 0);
    for (size_t li = 0; li < u; ++li) {
      const uint64_t nl = uc.cum[li];
      lower_count[li] = nl;
      lower_term[li] =
          nl * (RangeBitWidth(UnsignedRange(uc.uniq.front(), uc.uniq[li])) + 1);
    }
    for (size_t ui = 0; ui < u; ++ui) {
      // upper_count[ui] = #values >= uniq[ui]; ui == 0 never occurs as a
      // candidate (the center would be empty) but is filled for symmetry.
      upper_count[ui] = ui == 0 ? n : n - uc.cum[ui - 1];
      upper_term[ui] =
          upper_count[ui] *
          (RangeBitWidth(UnsignedRange(uc.uniq[ui], uc.uniq.back())) + 1);
    }
  }

  uint64_t Cost(int li, int ui) const {
    const uint64_t nl = li >= 0 ? lower_count[li] : 0;
    const uint64_t nu = upper_count[ui];  // upper_count[u] == 0
    const uint64_t nc = n - nl - nu;
    return n + (li >= 0 ? lower_term[li] : 0) + upper_term[ui] +
           nc * RangeBitWidth(UnsignedRange(uc.uniq[li + 1], uc.uniq[ui - 1]));
  }
};

void Consider(const SearchContext& ctx, int li, int ui, Best* best) {
  const uint64_t cost = ctx.Cost(li, ui);
  if (cost < best->cost) {
    best->cost = cost;
    best->li = li;
    best->ui = ui;
    best->separated = true;
  }
}

Separation Finish(const UniqueCounts& uc, uint64_t n, const Best& best) {
  Separation s;
  s.cost_bits = best.cost;
  if (!best.separated) return s;
  const int u = static_cast<int>(uc.uniq.size());
  s.separated = true;
  s.partition = MakePartition(uc, best.li, best.ui, n);
  s.has_lower = best.li >= 0;
  s.has_upper = best.ui < u;
  if (s.has_lower) s.xl = uc.uniq[best.li];
  if (s.has_upper) s.xu = uc.uniq[best.ui];
  return s;
}

Separation PlainOnly(const UniqueCounts& uc, uint64_t n) {
  Separation s;
  s.cost_bits = PlainCostBits(n, uc.uniq.front(), uc.uniq.back());
  return s;
}

// Shared BOS-V search body; `allow_lower` disabled gives the Figure-12
// upper-only ablation (and the BOS-B body reuses the candidate helpers).
Separation ValueSearch(std::span<const int64_t> values, bool allow_lower) {
  const uint64_t n = values.size();
  const UniqueCounts uc = BuildUniqueCounts(values);
  const int u = static_cast<int>(uc.uniq.size());
  if (u < 2) return PlainOnly(uc, n);

  const SearchContext ctx(uc, n);
  Best best{PlainCostBits(n, uc.uniq.front(), uc.uniq.back())};
  const int li_max = allow_lower ? u - 2 : -1;
  for (int li = -1; li <= li_max; ++li) {
    for (int ui = li + 2; ui <= u; ++ui) {
      if (li == -1 && ui == u) continue;  // no split at all == plain
      Consider(ctx, li, ui, &best);
    }
  }
  return Finish(uc, n, best);
}

// First index in uniq with uniq[idx] >= threshold (== u when none).
int LowerBoundIndex(const std::vector<int64_t>& uniq, int64_t threshold) {
  return static_cast<int>(
      std::lower_bound(uniq.begin(), uniq.end(), threshold) - uniq.begin());
}

Separation BitWidthSearch(std::span<const int64_t> values, bool allow_lower) {
  const uint64_t n = values.size();
  const UniqueCounts uc = BuildUniqueCounts(values);
  const int u = static_cast<int>(uc.uniq.size());
  if (u < 2) return PlainOnly(uc, n);

  const int64_t xmax = uc.uniq.back();
  const SearchContext ctx(uc, n);
  Best best{PlainCostBits(n, uc.uniq.front(), xmax)};
  const int li_max = allow_lower ? u - 2 : -1;

  // Case beta <= gamma (Proposition 2): xu = minXc + 2^beta. As Algorithm
  // 2 notes, traversing the bit-width first lets the cumulative count of
  // xl + 2^beta be fetched with a monotone cursor instead of a search:
  // minXc grows with li, so the threshold and its index only move right.
  for (int beta = 1; beta < 64; ++beta) {
    const uint64_t step = 1ULL << beta;
    int ui = 0;
    for (int li = -1; li <= li_max; ++li) {
      const int64_t min_xc = uc.uniq[li + 1];
      // Once 2^beta exceeds the remaining span it does for all larger li
      // too (minXc only grows); those candidates collapse into no-upper.
      if (step > UnsignedRange(min_xc, xmax)) break;
      const int64_t threshold =
          static_cast<int64_t>(static_cast<uint64_t>(min_xc) + step);
      if (ui < li + 2) ui = li + 2;
      while (ui < u && uc.uniq[ui] < threshold) ++ui;
      if (ui < u) Consider(ctx, li, ui, &best);
    }
  }

  // Case beta > gamma (Proposition 3): xu = xmax - 2^gamma + 1 does not
  // depend on xl, so the index is resolved once per gamma.
  for (int gamma = 1; gamma < 64; ++gamma) {
    const uint64_t step = (1ULL << gamma) - 1;
    if (step > UnsignedRange(uc.uniq.front(), xmax)) break;
    const int64_t threshold =
        static_cast<int64_t>(static_cast<uint64_t>(xmax) - step);
    const int ui = LowerBoundIndex(uc.uniq, threshold);
    if (ui >= u) continue;
    for (int li = -1; li <= std::min(li_max, ui - 2); ++li) {
      Consider(ctx, li, ui, &best);
    }
  }

  // No upper outliers for each xl.
  for (int li = 0; li <= li_max; ++li) Consider(ctx, li, u, &best);

  return Finish(uc, n, best);
}

}  // namespace

std::string_view SeparationStrategyName(SeparationStrategy s) {
  switch (s) {
    case SeparationStrategy::kValue:
      return "BOS-V";
    case SeparationStrategy::kBitWidth:
      return "BOS-B";
    case SeparationStrategy::kMedian:
      return "BOS-M";
  }
  return "BOS-?";
}

Separation SeparateValues(std::span<const int64_t> values) {
  assert(!values.empty());
  return ValueSearch(values, /*allow_lower=*/true);
}

Separation SeparateBitWidth(std::span<const int64_t> values) {
  assert(!values.empty());
  return BitWidthSearch(values, /*allow_lower=*/true);
}

Separation SeparateUpperOnly(std::span<const int64_t> values) {
  assert(!values.empty());
  return BitWidthSearch(values, /*allow_lower=*/false);
}

Separation SeparateMedian(std::span<const int64_t> values) {
  assert(!values.empty());
  const uint64_t n = values.size();

  // FindMedian (QuickSelect): the lower median, an actual block value.
  std::vector<int64_t> scratch(values.begin(), values.end());
  const size_t mid = (scratch.size() - 1) / 2;
  std::nth_element(scratch.begin(), scratch.begin() + mid, scratch.end());
  const int64_t median = scratch[mid];

  // Bucket counts of Definition 7, augmented with per-bucket min/max so
  // Formula 5 can be evaluated exactly for every candidate beta.
  struct Bucket {
    uint64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    void Add(int64_t v) {
      if (count == 0) {
        min = max = v;
      } else {
        min = std::min(min, v);
        max = std::max(max, v);
      }
      ++count;
    }
  };
  constexpr int kMaxW = 65;
  std::vector<Bucket> low(kMaxW + 2), high(kMaxW + 2);
  int64_t xmin = values.front(), xmax = values.front();
  int maxw = 1;
  for (int64_t v : values) {
    xmin = std::min(xmin, v);
    xmax = std::max(xmax, v);
    if (v < median) {
      const int b = RangeBitWidth(UnsignedRange(v, median));
      low[b].Add(v);
      maxw = std::max(maxw, b);
    } else if (v > median) {
      const int b = RangeBitWidth(UnsignedRange(median, v));
      high[b].Add(v);
      maxw = std::max(maxw, b);
    }
  }

  // Suffix aggregates over buckets > beta (the outliers for candidate beta)
  // and prefix aggregates over buckets <= beta (the center).
  std::vector<uint64_t> low_cnt_suf(kMaxW + 2, 0), high_cnt_suf(kMaxW + 2, 0);
  std::vector<int64_t> low_max_suf(kMaxW + 2, 0), high_min_suf(kMaxW + 2, 0);
  for (int b = kMaxW; b >= 1; --b) {
    low_cnt_suf[b] = low_cnt_suf[b + 1] + low[b].count;
    low_max_suf[b] = low[b].count > 0
                         ? (low_cnt_suf[b + 1] > 0
                                ? std::max(low[b].max, low_max_suf[b + 1])
                                : low[b].max)
                         : low_max_suf[b + 1];
    high_cnt_suf[b] = high_cnt_suf[b + 1] + high[b].count;
    high_min_suf[b] = high[b].count > 0
                          ? (high_cnt_suf[b + 1] > 0
                                 ? std::min(high[b].min, high_min_suf[b + 1])
                                 : high[b].min)
                          : high_min_suf[b + 1];
  }
  std::vector<int64_t> low_min_pre(kMaxW + 2, median), high_max_pre(kMaxW + 2, median);
  std::vector<uint64_t> low_cnt_pre(kMaxW + 2, 0), high_cnt_pre(kMaxW + 2, 0);
  for (int b = 1; b <= kMaxW; ++b) {
    low_cnt_pre[b] = low_cnt_pre[b - 1] + low[b].count;
    low_min_pre[b] = low[b].count > 0 ? std::min(low_min_pre[b - 1], low[b].min)
                                      : low_min_pre[b - 1];
    high_cnt_pre[b] = high_cnt_pre[b - 1] + high[b].count;
    high_max_pre[b] = high[b].count > 0
                          ? std::max(high_max_pre[b - 1], high[b].max)
                          : high_max_pre[b - 1];
  }

  const uint64_t plain_cost = PlainCostBits(n, xmin, xmax);
  uint64_t best_cost = plain_cost;
  int best_beta = -1;
  Partition best_partition;
  for (int beta = maxw; beta >= 1; --beta) {
    Partition p;
    p.n = n;
    p.xmin = xmin;
    p.xmax = xmax;
    p.nl = low_cnt_suf[beta + 1];
    p.nu = high_cnt_suf[beta + 1];
    if (p.nl > 0) p.max_xl = low_max_suf[beta + 1];
    if (p.nu > 0) p.min_xu = high_min_suf[beta + 1];
    // The center always contains the median itself, so it is non-empty.
    p.min_xc = low_cnt_pre[beta] > 0 ? low_min_pre[beta] : median;
    p.max_xc = high_cnt_pre[beta] > 0 ? high_max_pre[beta] : median;
    if (p.nl == 0 && p.nu == 0) continue;  // degenerate: plain is cheaper
    const uint64_t cost = SeparatedCostBits(p);
    if (cost < best_cost) {
      best_cost = cost;
      best_beta = beta;
      best_partition = p;
    }
  }

  Separation s;
  s.cost_bits = best_cost;
  if (best_beta < 0) return s;
  s.separated = true;
  s.partition = best_partition;
  s.has_lower = best_partition.nl > 0;
  s.has_upper = best_partition.nu > 0;
  if (s.has_lower) s.xl = best_partition.max_xl;
  if (s.has_upper) s.xu = best_partition.min_xu;
  return s;
}

Separation Separate(SeparationStrategy strategy, std::span<const int64_t> values) {
  switch (strategy) {
    case SeparationStrategy::kValue:
      return SeparateValues(values);
    case SeparationStrategy::kBitWidth:
      return SeparateBitWidth(values);
    case SeparationStrategy::kMedian:
      return SeparateMedian(values);
  }
  return SeparateBitWidth(values);
}

}  // namespace bos::core
