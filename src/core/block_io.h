#ifndef BOS_CORE_BLOCK_IO_H_
#define BOS_CORE_BLOCK_IO_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::core {

/// Mode byte shared by the plain and separated block layouts, so a BOS
/// stream degrades to plain bit-packing block-by-block when separation
/// does not pay off.
inline constexpr uint8_t kPlainBlockMode = 0;
inline constexpr uint8_t kSeparatedBlockMode = 1;
/// Separated layout with varint gap lists for outlier positions instead
/// of the bitmap (the §II-C position-encoding ablation).
inline constexpr uint8_t kSeparatedListBlockMode = 2;

/// Versioned zone-map extension wrapper: `3 | version | varint ext_len |
/// ext payload | inner block (mode 0/1/2)`. The v1 payload is the
/// zigzag-varint min and max of the block's original values. Readers
/// accept any version >= 1 by parsing the known prefix fields and
/// skipping the remaining `ext_len` bytes, so future versions can append
/// fields without breaking old binaries; files that never use the
/// wrapper are byte-identical to the pre-extension format.
inline constexpr uint8_t kZoneMapBlockMode = 3;
inline constexpr uint8_t kZoneMapVersion = 1;

/// Upper bound on the declared value count of a single block, far above
/// any real block size; decoders reject larger counts as corruption
/// before allocating.
inline constexpr uint64_t kMaxBlockValues = 1ULL << 28;

/// \brief Appends a plain frame-of-reference bit-packed block (Definition
/// 1 layout): mode byte, varint n, zigzag-varint min, width byte, packed
/// payload of `n * width` bits.
void EncodePlainBlock(std::span<const int64_t> values, Bytes* out);

/// \brief Decodes a block written by EncodePlainBlock (after the caller
/// consumed and verified the mode byte). Appends to `out`.
Status DecodePlainBlockBody(BytesView data, size_t* offset,
                            std::vector<int64_t>* out);

/// \brief Appends the zone-map wrapper prefix (mode byte through ext
/// payload); the caller appends the inner block right after.
void EncodeZoneMapHeader(int64_t min, int64_t max, Bytes* out);

/// \brief Parses a zone-map wrapper after the caller consumed the mode
/// byte `kZoneMapBlockMode`: reads version + ext, returns the min/max
/// bounds and leaves `*offset` at the inner block's mode byte. Unknown
/// trailing extension bytes are skipped (forward compatibility).
Status DecodeZoneMapHeader(BytesView data, size_t* offset, int64_t* min,
                           int64_t* max);

}  // namespace bos::core

#endif  // BOS_CORE_BLOCK_IO_H_
