#ifndef BOS_FLOATCODEC_ELF_H_
#define BOS_FLOATCODEC_ELF_H_

#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief Elf (Li et al., VLDB'23): erasing-based lossless float
/// compression.
///
/// Values that are exact decimals at the configured precision have their
/// low mantissa bits erased (zeroed) before XOR compression — the erased
/// double still rounds back to the same decimal, so decompression restores
/// the original exactly by re-quantizing. A per-value flag distinguishes
/// erased values from pass-through values (non-decimal doubles keep their
/// full mantissa). The XOR stage reuses the GORILLA window encoding.
///
/// This follows the paper's published algorithm in spirit; the per-value
/// alpha computation is specialized to a fixed dataset precision, which is
/// how the BOS paper's datasets are described (a single precision p per
/// series). The substitution is documented in DESIGN.md.
class ElfCodec final : public FloatCodec {
 public:
  /// `precision` = number of decimal digits after the point (0..15).
  explicit ElfCodec(int precision = 3);

  std::string name() const override { return "Elf"; }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;

 private:
  int precision_;
  double scale_;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_ELF_H_
