#ifndef BOS_FLOATCODEC_SCALED_H_
#define BOS_FLOATCODEC_SCALED_H_

#include <memory>

#include "codecs/series_codec.h"
#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief Adapter running an integer SeriesCodec over float data by
/// decimal scaling (paper §VIII-A2) — this is how the RLE / SPRINTZ /
/// TS2DIFF rows of Figure 10 handle the float datasets.
///
/// Doubles that are not exact decimals at the precision are stored
/// verbatim in an exception list, so the adapter is lossless on any
/// input; the synthetic datasets are generated at fixed precision, so
/// exceptions are empty there, as with the paper's datasets.
class ScaledSeriesFloatCodec final : public FloatCodec {
 public:
  ScaledSeriesFloatCodec(std::shared_ptr<const codecs::SeriesCodec> inner,
                         int precision);

  std::string name() const override { return inner_->name(); }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<double>* out) const;

  std::shared_ptr<const codecs::SeriesCodec> inner_;
  int precision_;
  double scale_;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_SCALED_H_
