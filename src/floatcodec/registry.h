#ifndef BOS_FLOATCODEC_REGISTRY_H_
#define BOS_FLOATCODEC_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "floatcodec/float_codec.h"
#include "util/result.h"

namespace bos::floatcodec {

/// The native float codecs of Figure 10's "Float" rows.
std::vector<std::string> FloatCodecNames();

/// \brief Creates a float codec by name. Accepts the native codecs
/// ("GORILLA", "CHIMP", "Elf", "BUFF") and any integer series-codec spec
/// ("TRANSFORM+OPERATOR"), which is wrapped in the decimal-scaling
/// adapter at `precision` digits — the paper's §VIII-A2 convention.
Result<std::shared_ptr<const FloatCodec>> MakeFloatCodec(std::string_view name,
                                                         int precision = 3);

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_REGISTRY_H_
