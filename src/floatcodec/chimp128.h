#ifndef BOS_FLOATCODEC_CHIMP128_H_
#define BOS_FLOATCODEC_CHIMP128_H_

#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief CHIMP128 (Liakos et al., VLDB'22): CHIMP with a 128-value
/// reference window.
///
/// For every value a reference is looked up among the previous 128 values
/// by hashing their low bits; XORing against a similar *older* value
/// often leaves far more trailing zeros than XORing against the
/// immediate predecessor. Flags:
///   00 — identical to the referenced value: 7-bit index only;
///   01 — XOR with the reference has > 6 trailing zeros: 7-bit index,
///        3-bit rounded leading-zero code, 6-bit significant length,
///        significant bits;
///   10 — XOR with the immediate predecessor, reusing the previous
///        leading-zero count;
///   11 — XOR with the immediate predecessor, fresh 3-bit leading code.
class Chimp128Codec final : public FloatCodec {
 public:
  std::string name() const override { return "CHIMP128"; }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_CHIMP128_H_
