#include "floatcodec/chimp128.h"

#include <array>
#include <bit>
#include <vector>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::floatcodec {
namespace {

uint64_t ToBits(double v) { return std::bit_cast<uint64_t>(v); }
double FromBits(uint64_t b) { return std::bit_cast<double>(b); }

constexpr int kWindow = 128;          // previous values searched
constexpr int kIndexBits = 7;         // log2(kWindow)
constexpr int kKeyBits = 14;          // hash key = low 14 bits of the value
constexpr int kTrailingThreshold = 6;

// Same rounded leading-zero classes as CHIMP.
constexpr int kLeadingRound[65] = {
    0,  0,  0,  0,  0,  0,  0,  0,  8,  8,  8,  8,  12, 12, 12, 12, 16,
    16, 18, 18, 20, 20, 22, 22, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24};
constexpr int kLeadingToCode[25] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2,
                                    2, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7};
constexpr int kCodeToLeading[8] = {0, 8, 12, 16, 18, 20, 22, 24};

}  // namespace

Status Chimp128Codec::Compress(std::span<const double> values,
                               Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return Status::OK();

  bitpack::BitWriter writer(out);
  std::array<uint64_t, kWindow> ring{};
  // Last global position seen for each low-bits key (-1 = none).
  std::vector<int64_t> key_index(size_t{1} << kKeyBits, -1);

  uint64_t prev = ToBits(values[0]);
  writer.WriteBits(prev, 64);
  ring[0] = prev;
  key_index[prev & ((1u << kKeyBits) - 1)] = 0;

  int prev_lead = -1;
  for (size_t i = 1; i < values.size(); ++i) {
    const uint64_t cur = ToBits(values[i]);
    const uint64_t key = cur & ((1u << kKeyBits) - 1);
    const int64_t candidate_pos = key_index[key];

    bool emitted = false;
    if (candidate_pos >= 0 &&
        static_cast<int64_t>(i) - candidate_pos <= kWindow) {
      const int ring_slot = static_cast<int>(candidate_pos % kWindow);
      const uint64_t ref = ring[ring_slot];
      const uint64_t x = cur ^ ref;
      if (x == 0) {
        writer.WriteBits(0b00, 2);
        writer.WriteBits(static_cast<uint64_t>(ring_slot), kIndexBits);
        prev_lead = -1;
        emitted = true;
      } else if (std::countr_zero(x) > kTrailingThreshold) {
        const int lead = kLeadingRound[std::countl_zero(x)];
        const int trail = std::countr_zero(x);
        const int sig = 64 - lead - trail;
        writer.WriteBits(0b01, 2);
        writer.WriteBits(static_cast<uint64_t>(ring_slot), kIndexBits);
        writer.WriteBits(static_cast<uint64_t>(kLeadingToCode[lead]), 3);
        writer.WriteBits(static_cast<uint64_t>(sig), 6);
        writer.WriteBits(x >> trail, sig);
        prev_lead = -1;
        emitted = true;
      }
    }
    if (!emitted) {
      // Fall back to the CHIMP immediate-predecessor path.
      const uint64_t x = cur ^ prev;
      const int lead = x == 0 ? 24 : kLeadingRound[std::countl_zero(x)];
      if (x != 0 && lead == prev_lead) {
        writer.WriteBits(0b10, 2);
        writer.WriteBits(x, 64 - lead);
      } else {
        writer.WriteBits(0b11, 2);
        writer.WriteBits(static_cast<uint64_t>(kLeadingToCode[lead]), 3);
        writer.WriteBits(x, 64 - lead);
        prev_lead = lead;
      }
    }
    prev = cur;
    ring[i % kWindow] = cur;
    key_index[key] = static_cast<int64_t>(i);
  }
  return Status::OK();
}

Status Chimp128Codec::Decompress(BytesView data,
                                 std::vector<double>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n == 0) return Status::OK();
  if (n > data.size() * 8) return Status::Corruption("CHIMP128: n too large");

  bitpack::BitReader reader(data.subspan(offset));
  std::array<uint64_t, kWindow> ring{};
  uint64_t prev;
  if (!reader.ReadBits(64, &prev)) return Status::Corruption("CHIMP128: header");
  out->reserve(out->size() + n);
  out->push_back(FromBits(prev));
  ring[0] = prev;

  int prev_lead = -1;
  for (uint64_t i = 1; i < n; ++i) {
    uint64_t flag;
    if (!reader.ReadBits(2, &flag)) return Status::Corruption("CHIMP128: truncated");
    uint64_t cur = 0;
    switch (flag) {
      case 0b00: {
        uint64_t slot;
        if (!reader.ReadBits(kIndexBits, &slot)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        cur = ring[slot];
        prev_lead = -1;
        break;
      }
      case 0b01: {
        uint64_t slot, code, sig;
        if (!reader.ReadBits(kIndexBits, &slot) || !reader.ReadBits(3, &code) ||
            !reader.ReadBits(6, &sig)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        const int lead = kCodeToLeading[code];
        if (sig == 0 || lead + static_cast<int>(sig) > 64) {
          return Status::Corruption("CHIMP128: bad window");
        }
        uint64_t sig_bits;
        if (!reader.ReadBits(static_cast<int>(sig), &sig_bits)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        cur = ring[slot] ^ (sig_bits << (64 - lead - static_cast<int>(sig)));
        prev_lead = -1;
        break;
      }
      case 0b10: {
        if (prev_lead < 0) return Status::Corruption("CHIMP128: no leading state");
        uint64_t rest;
        if (!reader.ReadBits(64 - prev_lead, &rest)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        cur = prev ^ rest;
        break;
      }
      case 0b11: {
        uint64_t code;
        if (!reader.ReadBits(3, &code)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        const int lead = kCodeToLeading[code];
        uint64_t rest;
        if (!reader.ReadBits(64 - lead, &rest)) {
          return Status::Corruption("CHIMP128: truncated");
        }
        cur = prev ^ rest;
        prev_lead = lead;
        break;
      }
    }
    out->push_back(FromBits(cur));
    prev = cur;
    ring[i % kWindow] = cur;
  }
  return Status::OK();
}

}  // namespace bos::floatcodec
