#ifndef BOS_FLOATCODEC_BUFF_H_
#define BOS_FLOATCODEC_BUFF_H_

#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief BUFF (Liu et al., VLDB'21): decomposed bounded floats.
///
/// Values are quantized to fixed point at the configured decimal
/// precision, offset by the block minimum, and stored column-wise in
/// 8-bit slices. Slices that are mostly zero (the high bytes, i.e. the
/// outliers) switch to a sparse position+value encoding — BUFF's outlier
/// handling, which the BOS paper contrasts with in §II-A. Doubles that are
/// not exact decimals at the precision are carried verbatim in an
/// exception list, keeping the codec lossless on arbitrary input.
class BuffCodec final : public FloatCodec {
 public:
  /// `precision` = number of decimal digits after the point (0..15).
  explicit BuffCodec(int precision = 3);

  std::string name() const override { return "BUFF"; }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;

 private:
  Status DecompressImpl(BytesView data, std::vector<double>* out) const;

  int precision_;
  double scale_;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_BUFF_H_
