#include "floatcodec/chimp.h"

#include <bit>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::floatcodec {
namespace {

uint64_t ToBits(double v) { return std::bit_cast<uint64_t>(v); }
double FromBits(uint64_t b) { return std::bit_cast<double>(b); }

// CHIMP's rounded leading-zero classes and their 3-bit codes.
constexpr int kLeadingRound[65] = {
    0,  0,  0,  0,  0,  0,  0,  0,  8,  8,  8,  8,  12, 12, 12, 12, 16,
    16, 18, 18, 20, 20, 22, 22, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24};
constexpr int kLeadingToCode[25] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2,
                                    2, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7};
constexpr int kCodeToLeading[8] = {0, 8, 12, 16, 18, 20, 22, 24};

constexpr int kTrailingThreshold = 6;

}  // namespace

Status ChimpCodec::Compress(std::span<const double> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return Status::OK();

  bitpack::BitWriter writer(out);
  uint64_t prev = ToBits(values[0]);
  writer.WriteBits(prev, 64);
  int prev_lead = -1;
  for (size_t i = 1; i < values.size(); ++i) {
    const uint64_t cur = ToBits(values[i]);
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      writer.WriteBits(0b00, 2);
      prev_lead = -1;  // reference forbids window reuse after a repeat
      continue;
    }
    const int lead = kLeadingRound[std::countl_zero(x)];
    const int trail = std::countr_zero(x);
    if (trail > kTrailingThreshold) {
      writer.WriteBits(0b01, 2);
      writer.WriteBits(static_cast<uint64_t>(kLeadingToCode[lead]), 3);
      const int sig = 64 - lead - trail;
      writer.WriteBits(static_cast<uint64_t>(sig), 6);  // sig in 1..58
      writer.WriteBits(x >> trail, sig);
      prev_lead = -1;  // reference resets the stored leading count
    } else if (lead == prev_lead) {
      writer.WriteBits(0b10, 2);
      writer.WriteBits(x, 64 - lead);
    } else {
      writer.WriteBits(0b11, 2);
      writer.WriteBits(static_cast<uint64_t>(kLeadingToCode[lead]), 3);
      writer.WriteBits(x, 64 - lead);
      prev_lead = lead;
    }
  }
  return Status::OK();
}

Status ChimpCodec::Decompress(BytesView data, std::vector<double>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n == 0) return Status::OK();
  if (n > data.size() * 8) return Status::Corruption("CHIMP: n too large");

  bitpack::BitReader reader(data.subspan(offset));
  uint64_t prev;
  if (!reader.ReadBits(64, &prev)) return Status::Corruption("CHIMP: header");
  out->reserve(out->size() + n);
  out->push_back(FromBits(prev));
  int prev_lead = -1;
  for (uint64_t i = 1; i < n; ++i) {
    uint64_t flag;
    if (!reader.ReadBits(2, &flag)) return Status::Corruption("CHIMP: truncated");
    uint64_t x = 0;
    switch (flag) {
      case 0b00:
        prev_lead = -1;
        break;
      case 0b01: {
        uint64_t code, sig;
        if (!reader.ReadBits(3, &code) || !reader.ReadBits(6, &sig)) {
          return Status::Corruption("CHIMP: truncated");
        }
        const int lead = kCodeToLeading[code];
        if (sig == 0 || lead + static_cast<int>(sig) > 64) {
          return Status::Corruption("CHIMP: bad window");
        }
        uint64_t sig_bits;
        if (!reader.ReadBits(static_cast<int>(sig), &sig_bits)) {
          return Status::Corruption("CHIMP: truncated");
        }
        x = sig_bits << (64 - lead - static_cast<int>(sig));
        prev_lead = -1;
        break;
      }
      case 0b10: {
        if (prev_lead < 0) return Status::Corruption("CHIMP: no leading state");
        uint64_t rest;
        if (!reader.ReadBits(64 - prev_lead, &rest)) {
          return Status::Corruption("CHIMP: truncated");
        }
        x = rest;
        break;
      }
      case 0b11: {
        uint64_t code;
        if (!reader.ReadBits(3, &code)) return Status::Corruption("CHIMP: truncated");
        const int lead = kCodeToLeading[code];
        uint64_t rest;
        if (!reader.ReadBits(64 - lead, &rest)) {
          return Status::Corruption("CHIMP: truncated");
        }
        x = rest;
        prev_lead = lead;
        break;
      }
    }
    prev ^= x;
    out->push_back(FromBits(prev));
  }
  return Status::OK();
}

}  // namespace bos::floatcodec
