#ifndef BOS_FLOATCODEC_FLOAT_CODEC_H_
#define BOS_FLOATCODEC_FLOAT_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::floatcodec {

/// \brief A whole-series lossless double-precision compressor: the "Float"
/// rows of Figure 10 (GORILLA, CHIMP, Elf, BUFF) plus the scaled-integer
/// adapter used by the RLE/SPRINTZ/TS2DIFF rows on float datasets.
class FloatCodec {
 public:
  virtual ~FloatCodec() = default;

  virtual std::string name() const = 0;

  /// Compresses the series into `out` (appending). Must be lossless: the
  /// decompressed doubles compare bit-identical to the input.
  virtual Status Compress(std::span<const double> values, Bytes* out) const = 0;

  virtual Status Decompress(BytesView data, std::vector<double>* out) const = 0;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_FLOAT_CODEC_H_
