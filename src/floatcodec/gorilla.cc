#include "floatcodec/gorilla.h"

#include <bit>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "floatcodec/xor_window.h"
#include "util/macros.h"

namespace bos::floatcodec {

Status GorillaCodec::Compress(std::span<const double> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  if (values.empty()) return Status::OK();

  bitpack::BitWriter writer(out);
  XorWindowWriter xw(&writer);
  xw.WriteFirst(std::bit_cast<uint64_t>(values[0]));
  for (size_t i = 1; i < values.size(); ++i) {
    xw.WriteNext(std::bit_cast<uint64_t>(values[i]));
  }
  return Status::OK();
}

Status GorillaCodec::Decompress(BytesView data, std::vector<double>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n == 0) return Status::OK();
  if (n > data.size() * 8) return Status::Corruption("GORILLA: n too large");

  bitpack::BitReader reader(data.subspan(offset));
  XorWindowReader xr(&reader);
  out->reserve(out->size() + n);
  uint64_t bits;
  if (!xr.ReadFirst(&bits)) return Status::Corruption("GORILLA: header");
  out->push_back(std::bit_cast<double>(bits));
  for (uint64_t i = 1; i < n; ++i) {
    if (!xr.ReadNext(&bits)) return Status::Corruption("GORILLA: truncated");
    out->push_back(std::bit_cast<double>(bits));
  }
  return Status::OK();
}

}  // namespace bos::floatcodec
