#include "floatcodec/registry.h"

#include "codecs/registry.h"
#include "floatcodec/buff.h"
#include "floatcodec/chimp.h"
#include "floatcodec/chimp128.h"
#include "floatcodec/elf.h"
#include "floatcodec/gorilla.h"
#include "floatcodec/scaled.h"
#include "util/macros.h"

namespace bos::floatcodec {

std::vector<std::string> FloatCodecNames() {
  return {"GORILLA", "CHIMP", "CHIMP128", "Elf", "BUFF"};
}

Result<std::shared_ptr<const FloatCodec>> MakeFloatCodec(std::string_view name,
                                                         int precision) {
  if (precision < 0 || precision > 15) {
    return Status::InvalidArgument("precision must be in [0, 15]");
  }
  if (name == "GORILLA") return {std::make_shared<GorillaCodec>()};
  if (name == "CHIMP") return {std::make_shared<ChimpCodec>()};
  if (name == "CHIMP128") return {std::make_shared<Chimp128Codec>()};
  if (name == "Elf") return {std::make_shared<ElfCodec>(precision)};
  if (name == "BUFF") return {std::make_shared<BuffCodec>(precision)};
  BOS_ASSIGN_OR_RETURN(auto inner, codecs::MakeSeriesCodec(name));
  return {std::make_shared<ScaledSeriesFloatCodec>(std::move(inner), precision)};
}

}  // namespace bos::floatcodec
