#include "floatcodec/scaled.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "bitpack/varint.h"
#include "floatcodec/quantize.h"
#include "util/macros.h"

namespace bos::floatcodec {

ScaledSeriesFloatCodec::ScaledSeriesFloatCodec(
    std::shared_ptr<const codecs::SeriesCodec> inner, int precision)
    : inner_(std::move(inner)), precision_(precision) {
  assert(precision >= 0 && precision <= 15);
  scale_ = std::pow(10.0, precision);
}

Status ScaledSeriesFloatCodec::Compress(std::span<const double> values,
                                        Bytes* out) const {
  out->push_back(static_cast<uint8_t>(precision_));

  std::vector<int64_t> q(values.size(), 0);
  std::vector<uint64_t> exc_positions;
  std::vector<double> exc_values;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!RoundTripsAtPrecision(values[i], scale_, &q[i])) {
      q[i] = i > 0 ? q[i - 1] : 0;  // neutral filler for the delta codecs
      exc_positions.push_back(i);
      exc_values.push_back(values[i]);
    }
  }
  bitpack::PutVarint(out, exc_positions.size());
  uint64_t prev = 0;
  for (size_t e = 0; e < exc_positions.size(); ++e) {
    bitpack::PutVarint(out, exc_positions[e] - prev);
    prev = exc_positions[e];
    PutFixed<uint64_t>(out, std::bit_cast<uint64_t>(exc_values[e]));
  }
  return inner_->Compress(q, out);
}

Status ScaledSeriesFloatCodec::Decompress(BytesView data,
                                          std::vector<double>* out) const {
  return codecs::CountDecodeRejection(DecompressImpl(data, out));
}

Status ScaledSeriesFloatCodec::DecompressImpl(BytesView data,
                                              std::vector<double>* out) const {
  size_t offset = 0;
  if (offset >= data.size()) return Status::Corruption("scaled: missing precision");
  const int precision = data[offset++];
  if (precision > 15) return Status::Corruption("scaled: bad precision");
  const double scale = std::pow(10.0, precision);

  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &num_exc));
  if (num_exc > data.size()) return Status::Corruption("scaled: exception count");
  std::vector<uint64_t> exc_positions(num_exc);
  std::vector<double> exc_values(num_exc);
  uint64_t prev = 0;
  for (uint64_t e = 0; e < num_exc; ++e) {
    uint64_t gap;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &gap));
    prev += gap;
    exc_positions[e] = prev;
    uint64_t bits;
    if (!GetFixed<uint64_t>(data, offset, &bits)) {
      return Status::Corruption("scaled: exception truncated");
    }
    offset += 8;
    exc_values[e] = std::bit_cast<double>(bits);
  }

  std::vector<int64_t> q;
  BOS_RETURN_NOT_OK(inner_->Decompress(data.subspan(offset), &q));
  out->reserve(out->size() + q.size());
  size_t e = 0;
  for (size_t i = 0; i < q.size(); ++i) {
    if (e < num_exc && exc_positions[e] == i) {
      out->push_back(exc_values[e++]);
    } else {
      out->push_back(static_cast<double>(q[i]) / scale);
    }
  }
  if (e != num_exc) return Status::Corruption("scaled: exception positions");
  return Status::OK();
}

}  // namespace bos::floatcodec
