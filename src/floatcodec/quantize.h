#ifndef BOS_FLOATCODEC_QUANTIZE_H_
#define BOS_FLOATCODEC_QUANTIZE_H_

#include <bit>
#include <cmath>
#include <cstdint>

namespace bos::floatcodec {

/// \brief Decimal fixed-point quantization shared by Elf, BUFF and the
/// scaled-integer adapter (§VIII-A2: "convert float into integer by
/// scaling 10^p, where p is the precision of the original data").

/// True when |v| * scale stays well inside int64, so llround is defined.
inline bool Quantizable(double v, double scale) {
  return std::isfinite(v) && std::abs(v) * scale < 4.0e18;
}

/// True when v is an exact decimal at the precision: re-dividing the
/// quantized integer reproduces v bit-for-bit. On success *q holds the
/// quantized value.
inline bool RoundTripsAtPrecision(double v, double scale, int64_t* q) {
  if (!Quantizable(v, scale)) return false;
  *q = std::llround(v * scale);
  return std::bit_cast<uint64_t>(static_cast<double>(*q) / scale) ==
         std::bit_cast<uint64_t>(v);
}

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_QUANTIZE_H_
