#include "floatcodec/buff.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "codecs/series_codec.h"
#include "bitpack/varint.h"
#include "floatcodec/quantize.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::floatcodec {
namespace {

uint64_t ToBits(double v) { return std::bit_cast<uint64_t>(v); }

// A slice flips to the sparse layout when at most 10% of its bytes are
// non-zero (BUFF's frequency-based outlier split).
bool ShouldBeSparse(const std::vector<uint8_t>& slice) {
  size_t nonzero = 0;
  for (uint8_t b : slice) nonzero += (b != 0);
  return nonzero * 10 <= slice.size();
}

}  // namespace

BuffCodec::BuffCodec(int precision) : precision_(precision) {
  assert(precision >= 0 && precision <= 15);
  scale_ = std::pow(10.0, precision);
}

Status BuffCodec::Compress(std::span<const double> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  out->push_back(static_cast<uint8_t>(precision_));
  if (values.empty()) return Status::OK();
  const size_t n = values.size();

  // Quantize; collect exceptions (non-decimal doubles) verbatim.
  std::vector<int64_t> q(n, 0);
  std::vector<uint64_t> exc_positions;
  std::vector<double> exc_values;
  for (size_t i = 0; i < n; ++i) {
    if (!RoundTripsAtPrecision(values[i], scale_, &q[i])) {
      q[i] = 0;
      exc_positions.push_back(i);
      exc_values.push_back(values[i]);
    }
  }

  bitpack::PutVarint(out, exc_positions.size());
  uint64_t prev_pos = 0;
  for (size_t e = 0; e < exc_positions.size(); ++e) {
    bitpack::PutVarint(out, exc_positions[e] - prev_pos);
    prev_pos = exc_positions[e];
    PutFixed<uint64_t>(out, ToBits(exc_values[e]));
  }

  // Frame of reference over the quantized values.
  int64_t min = q[0];
  int64_t max = q[0];
  for (int64_t v : q) {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  const int width = BitWidth(UnsignedRange(min, max));
  const int num_slices = static_cast<int>((width + 7) / 8);
  bitpack::PutSignedVarint(out, min);
  out->push_back(static_cast<uint8_t>(num_slices));

  // Column-wise byte slices, least significant first.
  std::vector<uint8_t> slice(n);
  for (int s = 0; s < num_slices; ++s) {
    for (size_t i = 0; i < n; ++i) {
      slice[i] = static_cast<uint8_t>(UnsignedRange(min, q[i]) >> (8 * s));
    }
    if (ShouldBeSparse(slice)) {
      out->push_back(1);  // sparse slice
      uint64_t count = 0;
      for (uint8_t b : slice) count += (b != 0);
      bitpack::PutVarint(out, count);
      uint64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        if (slice[i] == 0) continue;
        bitpack::PutVarint(out, i - prev);
        prev = i;
        out->push_back(slice[i]);
      }
    } else {
      out->push_back(0);  // dense slice
      out->insert(out->end(), slice.begin(), slice.end());
    }
  }
  return Status::OK();
}

Status BuffCodec::Decompress(BytesView data, std::vector<double>* out) const {
  return codecs::CountDecodeRejection(DecompressImpl(data, out));
}

Status BuffCodec::DecompressImpl(BytesView data,
                                 std::vector<double>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (offset >= data.size()) return Status::Corruption("BUFF: missing precision");
  const int precision = data[offset++];
  if (precision > 15) return Status::Corruption("BUFF: bad precision");
  const double scale = std::pow(10.0, precision);
  if (n == 0) return Status::OK();
  // Constant data compresses below a bit per value, so bound n by a fixed
  // sanity cap (decompression-bomb guard) rather than the payload size.
  if (n > codecs::kMaxStreamValues) return Status::Corruption("BUFF: n too large");

  uint64_t num_exc;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &num_exc));
  if (num_exc > n) return Status::Corruption("BUFF: exception count");
  std::vector<uint64_t> exc_positions(num_exc);
  std::vector<double> exc_values(num_exc);
  uint64_t prev_pos = 0;
  for (uint64_t e = 0; e < num_exc; ++e) {
    uint64_t gap;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &gap));
    prev_pos += gap;
    if (prev_pos >= n) return Status::Corruption("BUFF: exception position");
    exc_positions[e] = prev_pos;
    uint64_t bits;
    if (!GetFixed<uint64_t>(data, offset, &bits)) {
      return Status::Corruption("BUFF: exception value truncated");
    }
    offset += 8;
    exc_values[e] = std::bit_cast<double>(bits);
  }

  int64_t min;
  BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(data, &offset, &min));
  if (offset >= data.size()) return Status::Corruption("BUFF: missing slices");
  const int num_slices = data[offset++];
  if (num_slices > 8) return Status::Corruption("BUFF: too many slices");

  std::vector<uint64_t> delta(n, 0);
  for (int s = 0; s < num_slices; ++s) {
    if (offset >= data.size()) return Status::Corruption("BUFF: slice truncated");
    const uint8_t sparse = data[offset++];
    if (sparse == 1) {
      uint64_t count;
      BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &count));
      if (count > n) return Status::Corruption("BUFF: sparse count");
      uint64_t pos = 0;
      for (uint64_t k = 0; k < count; ++k) {
        uint64_t gap;
        BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &gap));
        pos += gap;
        if (pos >= n || offset >= data.size()) {
          return Status::Corruption("BUFF: sparse slice truncated");
        }
        delta[pos] |= static_cast<uint64_t>(data[offset++]) << (8 * s);
      }
    } else if (sparse == 0) {
      if (!SliceFits(data.size(), offset, n)) {
        return Status::Corruption("BUFF: dense slice truncated");
      }
      for (uint64_t i = 0; i < n; ++i) {
        delta[i] |= static_cast<uint64_t>(data[offset + i]) << (8 * s);
      }
      offset += n;
    } else {
      return Status::Corruption("BUFF: bad slice flag");
    }
  }

  out->reserve(out->size() + n);
  size_t e = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (e < num_exc && exc_positions[e] == i) {
      out->push_back(exc_values[e++]);
      continue;
    }
    const int64_t q = static_cast<int64_t>(static_cast<uint64_t>(min) + delta[i]);
    out->push_back(static_cast<double>(q) / scale);
  }
  return Status::OK();
}

}  // namespace bos::floatcodec
