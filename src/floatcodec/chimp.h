#ifndef BOS_FLOATCODEC_CHIMP_H_
#define BOS_FLOATCODEC_CHIMP_H_

#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief CHIMP (Liakos et al., VLDB'22): improves GORILLA's XOR scheme
/// with a 2-bit flag per value and a rounded 3-bit leading-zero code.
///
/// Flags: 00 identical value; 01 the XOR has more than 6 trailing zeros
/// (store rounded leading-zero code, 6-bit significant length and the
/// significant bits); 10 reuse the previous leading-zero count and store
/// all remaining bits; 11 fresh leading-zero code plus remaining bits.
class ChimpCodec final : public FloatCodec {
 public:
  std::string name() const override { return "CHIMP"; }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_CHIMP_H_
