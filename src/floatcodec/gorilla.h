#ifndef BOS_FLOATCODEC_GORILLA_H_
#define BOS_FLOATCODEC_GORILLA_H_

#include "floatcodec/float_codec.h"

namespace bos::floatcodec {

/// \brief GORILLA (Pelkonen et al., VLDB'15) XOR float compression.
///
/// Each value is XORed with its predecessor. A zero XOR costs one '0'
/// bit; otherwise a '10' control reuses the previous leading/trailing
/// window, and '11' writes a fresh 5-bit leading-zero count and 6-bit
/// significant-bit length before the significant bits.
class GorillaCodec final : public FloatCodec {
 public:
  std::string name() const override { return "GORILLA"; }
  Status Compress(std::span<const double> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<double>* out) const override;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_GORILLA_H_
