#include "floatcodec/elf.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "bitpack/varint.h"
#include "floatcodec/quantize.h"
#include "floatcodec/xor_window.h"
#include "util/macros.h"

namespace bos::floatcodec {
namespace {

uint64_t ToBits(double v) { return std::bit_cast<uint64_t>(v); }
double FromBits(uint64_t b) { return std::bit_cast<double>(b); }

}  // namespace

ElfCodec::ElfCodec(int precision) : precision_(precision) {
  assert(precision >= 0 && precision <= 15);
  scale_ = std::pow(10.0, precision);
}

Status ElfCodec::Compress(std::span<const double> values, Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  out->push_back(static_cast<uint8_t>(precision_));
  if (values.empty()) return Status::OK();

  bitpack::BitWriter writer(out);
  XorWindowWriter xw(&writer);
  bool first = true;
  for (double v : values) {
    int64_t q;
    uint64_t emitted;
    if (RoundTripsAtPrecision(v, scale_, &q)) {
      // Erase: zero as many trailing mantissa bits as still re-quantize to
      // the same decimal.
      const uint64_t bits = ToBits(v);
      uint64_t erased = bits;
      for (int t = 52; t >= 1; --t) {
        const uint64_t candidate = bits & ~((1ULL << t) - 1);
        if (Quantizable(FromBits(candidate), scale_) &&
            std::llround(FromBits(candidate) * scale_) == q) {
          erased = candidate;
          break;
        }
      }
      writer.WriteBit(true);
      emitted = erased;
    } else {
      writer.WriteBit(false);
      emitted = ToBits(v);
    }
    if (first) {
      xw.WriteFirst(emitted);
      first = false;
    } else {
      xw.WriteNext(emitted);
    }
  }
  return Status::OK();
}

Status ElfCodec::Decompress(BytesView data, std::vector<double>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (offset >= data.size()) return Status::Corruption("Elf: missing precision");
  const int precision = data[offset++];
  if (precision > 15) return Status::Corruption("Elf: bad precision");
  const double scale = std::pow(10.0, precision);
  if (n == 0) return Status::OK();
  if (n > data.size() * 8) return Status::Corruption("Elf: n too large");

  bitpack::BitReader reader(data.subspan(offset));
  XorWindowReader xr(&reader);
  out->reserve(out->size() + n);
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    bool erased;
    if (!reader.ReadBit(&erased)) return Status::Corruption("Elf: truncated");
    uint64_t bits;
    const bool ok = first ? xr.ReadFirst(&bits) : xr.ReadNext(&bits);
    first = false;
    if (!ok) return Status::Corruption("Elf: truncated");
    double v = FromBits(bits);
    if (erased) {
      if (!Quantizable(v, scale)) return Status::Corruption("Elf: bad erased value");
      v = static_cast<double>(std::llround(v * scale)) / scale;
    }
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace bos::floatcodec
