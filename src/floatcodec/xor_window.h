#ifndef BOS_FLOATCODEC_XOR_WINDOW_H_
#define BOS_FLOATCODEC_XOR_WINDOW_H_

#include <bit>
#include <cstdint>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"

namespace bos::floatcodec {

/// \brief The GORILLA XOR window encoder, shared by GorillaCodec and
/// ElfCodec's XOR stage.
///
/// Controls: '0' identical; '10' reuse the previous leading/trailing
/// window; '11' fresh 5-bit leading-zero count + 6-bit significant length
/// + significant bits.
class XorWindowWriter {
 public:
  explicit XorWindowWriter(bitpack::BitWriter* writer) : writer_(writer) {}

  /// Writes the first value raw (64 bits) and seeds the chain.
  void WriteFirst(uint64_t bits) {
    writer_->WriteBits(bits, 64);
    prev_ = bits;
  }

  /// Writes a subsequent value as a XOR against the previous one.
  void WriteNext(uint64_t bits) {
    const uint64_t x = bits ^ prev_;
    prev_ = bits;
    if (x == 0) {
      writer_->WriteBit(false);
      return;
    }
    int lead = std::countl_zero(x);
    const int trail = std::countr_zero(x);
    if (lead > 31) lead = 31;  // 5-bit field
    const int sig = 64 - lead - trail;
    if (lead >= prev_lead_ && 64 - prev_lead_ - prev_sig_ <= trail) {
      writer_->WriteBits(0b10, 2);
      writer_->WriteBits(x >> (64 - prev_lead_ - prev_sig_), prev_sig_);
    } else {
      writer_->WriteBits(0b11, 2);
      writer_->WriteBits(static_cast<uint64_t>(lead), 5);
      writer_->WriteBits(static_cast<uint64_t>(sig - 1), 6);
      writer_->WriteBits(x >> trail, sig);
      prev_lead_ = lead;
      prev_sig_ = sig;
    }
  }

 private:
  bitpack::BitWriter* writer_;
  uint64_t prev_ = 0;
  int prev_lead_ = 65;  // 65 = no window yet
  int prev_sig_ = 0;
};

/// Mirror of XorWindowWriter. Read methods return false on truncated or
/// malformed input.
class XorWindowReader {
 public:
  explicit XorWindowReader(bitpack::BitReader* reader) : reader_(reader) {}

  bool ReadFirst(uint64_t* bits) {
    if (!reader_->ReadBits(64, &prev_)) return false;
    *bits = prev_;
    return true;
  }

  bool ReadNext(uint64_t* bits) {
    bool bit;
    if (!reader_->ReadBit(&bit)) return false;
    if (!bit) {
      *bits = prev_;
      return true;
    }
    if (!reader_->ReadBit(&bit)) return false;
    uint64_t x;
    if (!bit) {
      if (prev_lead_ > 64) return false;  // '10' before any '11'
      uint64_t sig_bits;
      if (!reader_->ReadBits(prev_sig_, &sig_bits)) return false;
      x = sig_bits << (64 - prev_lead_ - prev_sig_);
    } else {
      uint64_t lead, sig_m1;
      if (!reader_->ReadBits(5, &lead) || !reader_->ReadBits(6, &sig_m1)) {
        return false;
      }
      const int sig = static_cast<int>(sig_m1) + 1;
      if (static_cast<int>(lead) + sig > 64) return false;
      uint64_t sig_bits;
      if (!reader_->ReadBits(sig, &sig_bits)) return false;
      x = sig_bits << (64 - static_cast<int>(lead) - sig);
      prev_lead_ = static_cast<int>(lead);
      prev_sig_ = sig;
    }
    prev_ ^= x;
    *bits = prev_;
    return true;
  }

 private:
  bitpack::BitReader* reader_;
  uint64_t prev_ = 0;
  int prev_lead_ = 65;
  int prev_sig_ = 0;
};

}  // namespace bos::floatcodec

#endif  // BOS_FLOATCODEC_XOR_WINDOW_H_
