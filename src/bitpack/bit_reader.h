#ifndef BOS_BITPACK_BIT_READER_H_
#define BOS_BITPACK_BIT_READER_H_

#include <cassert>
#include <cstdint>

#include "util/buffer.h"

namespace bos::bitpack {

/// \brief MSB-first bit cursor over an immutable byte view.
///
/// Mirror of `BitWriter`. Reads never run past the view: callers must
/// check `RemainingBits()` (the BOS/PFOR decoders validate sizes from
/// their headers before reading).
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  /// Reads `width` bits MSB-first; `width` in [0, 64]. Returns false if
  /// fewer than `width` bits remain.
  bool ReadBits(int width, uint64_t* value) {
    assert(width >= 0 && width <= 64);
    if (RemainingBits() < static_cast<size_t>(width)) return false;
    uint64_t v = 0;
    int remaining = width;
    while (remaining > 0) {
      const int avail = 8 - bit_pos_;
      const int take = remaining < avail ? remaining : avail;
      const uint8_t byte = data_[byte_pos_];
      const uint64_t chunk = (byte >> (avail - take)) & ((1u << take) - 1);
      v = (v << take) | chunk;
      bit_pos_ += take;
      if (bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
      }
      remaining -= take;
    }
    *value = v;
    return true;
  }

  /// Reads one bit.
  bool ReadBit(bool* bit) {
    uint64_t v;
    if (!ReadBits(1, &v)) return false;
    *bit = v != 0;
    return true;
  }

  /// Skips to the next byte boundary.
  void AlignToByte() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }

  size_t RemainingBits() const {
    return (data_.size() - byte_pos_) * 8 - bit_pos_;
  }

  /// Byte offset of the cursor (rounded up to the current byte).
  size_t byte_position() const { return byte_pos_ + (bit_pos_ != 0 ? 1 : 0); }

 private:
  BytesView data_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_BIT_READER_H_
