#include "bitpack/varint.h"

#include <cstring>

#include "bitpack/zigzag.h"
#include "util/macros.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define BOS_VARINT_X86 1
#endif

namespace bos::bitpack {
namespace {

#ifdef BOS_VARINT_X86

bool HasBmi2() {
  static const bool has = __builtin_cpu_supports("bmi2") != 0;
  return has;
}

// Decodes one varint of at most 8 bytes from `p` (8 readable bytes
// required): writes the value and returns its length 1..8, or 0 when no
// terminator byte lies in the window (a 9/10-byte or overlong encoding —
// the caller falls back to the scalar decoder, which keeps the exact
// rejection semantics). Encodings up to 8 bytes carry at most 56 bits,
// so no overflow check is needed here.
__attribute__((target("bmi2"))) inline int GetVarint8Bmi2(const uint8_t* p,
                                                          uint64_t* v) {
  uint64_t chunk;
  std::memcpy(&chunk, p, 8);
  const uint64_t stops = ~chunk & 0x8080808080808080ULL;
  if (stops == 0) return 0;
  // Zero every byte past the first terminator, then gather the 7-bit
  // groups low-to-high in one pext.
  const uint64_t keep = stops ^ (stops - 1);
  *v = _pext_u64(chunk & keep, 0x7f7f7f7f7f7f7f7fULL);
  return static_cast<int>((__builtin_ctzll(stops) >> 3) + 1);
}

#endif  // BOS_VARINT_X86

}  // namespace

void PutVarint(Bytes* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void PutSignedVarint(Bytes* out, int64_t v) { PutVarint(out, ZigZagEncode(v)); }

Status GetVarintScalar(BytesView data, size_t* offset, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (true) {
    if (pos >= data.size()) return Status::Corruption("varint truncated");
    if (shift > 63) return Status::Corruption("varint too long");
    const uint8_t byte = data[pos++];
    // The 10th byte lands at shift 63: only its lowest bit fits in the
    // result, so anything else is an overflowing encoding that would
    // silently truncate to a wrong value.
    if (shift == 63 && byte > 1) {
      return Status::Corruption("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *offset = pos;
  *v = result;
  return Status::OK();
}

Status GetVarint(BytesView data, size_t* offset, uint64_t* v) {
#ifdef BOS_VARINT_X86
  if (HasBmi2() && *offset + 8 <= data.size()) {
    const int len = GetVarint8Bmi2(data.data() + *offset, v);
    if (len > 0) {
      *offset += len;
      return Status::OK();
    }
  }
#endif
  return GetVarintScalar(data, offset, v);
}

Status GetVarintRun(BytesView data, size_t* offset, size_t count,
                    uint64_t* out) {
  size_t pos = *offset;
  size_t i = 0;
  while (i < count) {
#ifdef BOS_VARINT_X86
    if (HasBmi2() && pos + 8 <= data.size()) {
      const int len = GetVarint8Bmi2(data.data() + pos, &out[i]);
      if (len > 0) {
        pos += len;
        ++i;
        continue;
      }
    }
#endif
    BOS_RETURN_NOT_OK(GetVarintScalar(data, &pos, &out[i]));
    ++i;
  }
  *offset = pos;
  return Status::OK();
}

bool HasBmi2Varint() {
#ifdef BOS_VARINT_X86
  return HasBmi2();
#else
  return false;
#endif
}

Status GetSignedVarint(BytesView data, size_t* offset, int64_t* v) {
  uint64_t raw;
  BOS_RETURN_NOT_OK(GetVarint(data, offset, &raw));
  *v = ZigZagDecode(raw);
  return Status::OK();
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace bos::bitpack
