#include "bitpack/varint.h"

#include "bitpack/zigzag.h"
#include "util/macros.h"

namespace bos::bitpack {

void PutVarint(Bytes* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void PutSignedVarint(Bytes* out, int64_t v) { PutVarint(out, ZigZagEncode(v)); }

Status GetVarint(BytesView data, size_t* offset, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (true) {
    if (pos >= data.size()) return Status::Corruption("varint truncated");
    if (shift > 63) return Status::Corruption("varint too long");
    const uint8_t byte = data[pos++];
    // The 10th byte lands at shift 63: only its lowest bit fits in the
    // result, so anything else is an overflowing encoding that would
    // silently truncate to a wrong value.
    if (shift == 63 && byte > 1) {
      return Status::Corruption("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *offset = pos;
  *v = result;
  return Status::OK();
}

Status GetSignedVarint(BytesView data, size_t* offset, int64_t* v) {
  uint64_t raw;
  BOS_RETURN_NOT_OK(GetVarint(data, offset, &raw));
  *v = ZigZagDecode(raw);
  return Status::OK();
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace bos::bitpack
