#ifndef BOS_BITPACK_BITPACKING_H_
#define BOS_BITPACK_BITPACKING_H_

#include <cstdint>
#include <span>

#include "bitpack/bit_reader.h"
#include "bitpack/bit_writer.h"
#include "util/buffer.h"
#include "util/status.h"

namespace bos::bitpack {

/// \brief Packs `values` at a fixed `width` (bits per value, 0..64)
/// MSB-first through `writer`. Values must already fit in `width` bits;
/// higher bits are masked off.
void PackFixed(std::span<const uint64_t> values, int width, BitWriter* writer);

/// \brief Unpacks `n` fixed-width values from `reader` into `out`.
/// Fails when the reader runs out of bits.
Status UnpackFixed(BitReader* reader, int width, size_t n, uint64_t* out);

/// \brief Fast path for byte-aligned fixed-width packing: appends exactly
/// the bytes a byte-aligned `BitWriter` stream of PackFixed would produce
/// (MSB-first, zero-padded to a whole byte), but runs full 32-value
/// blocks through the per-width kernels of unpack_kernels.h. Used by the
/// plain-block and PFOR-slot encoders, whose payloads start on byte
/// boundaries.
void PackFixedAligned(std::span<const uint64_t> values, int width, Bytes* out);

/// \brief Inverse of PackFixedAligned. Reads ceil(n*width/8) bytes at
/// `*offset`, advancing it. Fails with InvalidArgument when `width` is
/// outside [0, 64] and with Corruption on a short buffer.
Status UnpackFixedAligned(BytesView data, size_t* offset, int width, size_t n,
                          uint64_t* out);

/// \brief Computes min and max of a non-empty span.
struct MinMax {
  int64_t min;
  int64_t max;
};
MinMax ComputeMinMax(std::span<const int64_t> values);

/// \brief Frame-of-reference helper: the packed width Definition 1 charges
/// for a series, ceil(log2(max - min + 1)).
int FrameWidth(std::span<const int64_t> values);

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_BITPACKING_H_
