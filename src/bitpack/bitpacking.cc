#include "bitpack/bitpacking.h"

#include <array>
#include <utility>

#include "util/bits.h"

namespace bos::bitpack {

void PackFixed(std::span<const uint64_t> values, int width, BitWriter* writer) {
  if (width == 0) return;
  for (uint64_t v : values) writer->WriteBits(v, width);
}

Status UnpackFixed(BitReader* reader, int width, size_t n, uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (!reader->ReadBits(width, &out[i])) {
      return Status::Corruption("bit-packed payload truncated");
    }
  }
  return Status::OK();
}

namespace {

// Appends up to 32 bits to an MSB-first accumulator, flushing whole bytes.
// Chunking to <= 32 bits keeps `acc_bits + chunk` <= 39 < 64, so the shift
// never overflows.
inline void AppendBits(uint64_t chunk, int chunk_bits, uint64_t* acc,
                       int* acc_bits, uint8_t** dst) {
  *acc = (*acc << chunk_bits) | chunk;
  *acc_bits += chunk_bits;
  while (*acc_bits >= 8) {
    *acc_bits -= 8;
    *(*dst)++ = static_cast<uint8_t>(*acc >> *acc_bits);
  }
}

// Reads up to 32 bits from an MSB-first accumulator fed from `src`.
inline uint64_t TakeBits(int chunk_bits, uint64_t* acc, int* acc_bits,
                         const uint8_t** src) {
  while (*acc_bits < chunk_bits) {
    *acc = (*acc << 8) | *(*src)++;
    *acc_bits += 8;
  }
  *acc_bits -= chunk_bits;
  const uint64_t mask =
      chunk_bits == 0 ? 0 : ((~0ULL) >> (64 - chunk_bits));
  return (*acc >> *acc_bits) & mask;
}

}  // namespace

void PackFixedAligned(std::span<const uint64_t> values, int width, Bytes* out) {
  if (width == 0 || values.empty()) return;
  const size_t start = out->size();
  out->resize(start + BitsToBytes(static_cast<uint64_t>(width) * values.size()));
  uint8_t* dst = out->data() + start;
  uint64_t acc = 0;
  int acc_bits = 0;
  const uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  if (width <= 32) {
    for (uint64_t v : values) {
      AppendBits(v & mask, width, &acc, &acc_bits, &dst);
    }
  } else {
    const int high_bits = width - 32;
    for (uint64_t v : values) {
      v &= mask;
      AppendBits(v >> 32, high_bits, &acc, &acc_bits, &dst);
      AppendBits(v & 0xFFFFFFFFULL, 32, &acc, &acc_bits, &dst);
    }
  }
  if (acc_bits > 0) {
    *dst++ = static_cast<uint8_t>(acc << (8 - acc_bits));
  }
}

namespace {

// Width-templated unpack body: with W a compile-time constant the
// accumulator loop unrolls into straight-line shifts, which measurably
// beats the runtime-width loop on wide scans (the FastPFOR trick).
template <int W>
void UnpackWidth(const uint8_t* src, size_t n, uint64_t* out) {
  uint64_t acc = 0;
  int acc_bits = 0;
  if constexpr (W == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
  } else if constexpr (W <= 32) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = TakeBits(W, &acc, &acc_bits, &src);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t high = TakeBits(W - 32, &acc, &acc_bits, &src);
      out[i] = (high << 32) | TakeBits(32, &acc, &acc_bits, &src);
    }
  }
}

using UnpackFn = void (*)(const uint8_t*, size_t, uint64_t*);

template <int... Ws>
constexpr std::array<UnpackFn, sizeof...(Ws)> MakeUnpackTable(
    std::integer_sequence<int, Ws...>) {
  return {&UnpackWidth<Ws>...};
}

constexpr auto kUnpackTable =
    MakeUnpackTable(std::make_integer_sequence<int, 65>{});

}  // namespace

Status UnpackFixedAligned(BytesView data, size_t* offset, int width, size_t n,
                          uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return Status::OK();
  }
  const uint64_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
  if (*offset + bytes > data.size()) {
    return Status::Corruption("bit-packed payload truncated");
  }
  kUnpackTable[width](data.data() + *offset, n, out);
  *offset += bytes;
  return Status::OK();
}

MinMax ComputeMinMax(std::span<const int64_t> values) {
  MinMax mm{values.front(), values.front()};
  for (int64_t v : values) {
    if (v < mm.min) mm.min = v;
    if (v > mm.max) mm.max = v;
  }
  return mm;
}

int FrameWidth(std::span<const int64_t> values) {
  const MinMax mm = ComputeMinMax(values);
  return BitWidth(UnsignedRange(mm.min, mm.max));
}

}  // namespace bos::bitpack
