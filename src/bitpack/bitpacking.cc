#include "bitpack/bitpacking.h"

#include "bitpack/unpack_kernels.h"
#include "util/bits.h"
#include "util/safe_math.h"

namespace bos::bitpack {

void PackFixed(std::span<const uint64_t> values, int width, BitWriter* writer) {
  if (width == 0) return;
  for (uint64_t v : values) writer->WriteBits(v, width);
}

Status UnpackFixed(BitReader* reader, int width, size_t n, uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (!reader->ReadBits(width, &out[i])) {
      return Status::Corruption("bit-packed payload truncated");
    }
  }
  return Status::OK();
}

void PackFixedAligned(std::span<const uint64_t> values, int width, Bytes* out) {
  if (width == 0 || values.empty()) return;
  const size_t start = out->size();
  const size_t payload =
      BitsToBytes(static_cast<uint64_t>(width) * values.size());
  // Full 32-value blocks through the per-width kernels, scalar tail;
  // bit-identical to the historical single-pass stream (see
  // unpack_kernels.h for the block contract). The 8 transient slack
  // bytes let the wide kernels' overlapping stores run to the end.
  out->resize(start + payload + 8);
  PackBlocks(values.data(), values.size(), width, out->data() + start,
             payload + 8);
  out->resize(start + payload);
}

Status UnpackFixedAligned(BytesView data, size_t* offset, int width, size_t n,
                          uint64_t* out) {
  if (width < 0 || width > 64) {
    return Status::InvalidArgument("bit width out of range [0, 64]");
  }
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return Status::OK();
  }
  uint64_t bits;
  if (!CheckedMul(static_cast<uint64_t>(width), n, &bits)) {
    return Status::Corruption("bit-packed payload too large");
  }
  const uint64_t bytes = BitsToBytes(bits);
  if (!SliceFits(data.size(), *offset, bytes)) {
    return Status::Corruption("bit-packed payload truncated");
  }
  UnpackBlocks(data.data() + *offset, data.size() - *offset, width, n, out);
  *offset += bytes;
  return Status::OK();
}

MinMax ComputeMinMax(std::span<const int64_t> values) {
  MinMax mm{values.front(), values.front()};
  for (int64_t v : values) {
    if (v < mm.min) mm.min = v;
    if (v > mm.max) mm.max = v;
  }
  return mm;
}

int FrameWidth(std::span<const int64_t> values) {
  const MinMax mm = ComputeMinMax(values);
  return BitWidth(UnsignedRange(mm.min, mm.max));
}

}  // namespace bos::bitpack
