#ifndef BOS_BITPACK_UNPACK_KERNELS_H_
#define BOS_BITPACK_UNPACK_KERNELS_H_

// Batched per-width pack/unpack kernels — the hot-path substrate under
// PackFixedAligned/UnpackFixedAligned and the BOS/PFOR block decoders.
//
// Block-of-32 contract: a *block* is 32 consecutive values packed
// MSB-first at a fixed width `w` (0..64). 32 values x `w` bits is always
// exactly `4*w` bytes, so every full block starts AND ends on a byte
// boundary; kernels therefore read/write exactly `4*w` bytes and never
// touch memory past the block. A stream packed as full blocks plus an
// MSB-first scalar tail is bit-identical to the historical single-pass
// `PackFixedAligned` stream — the wire format is unchanged, only the
// traversal is batched.
//
// Each width gets its own straight-line routine (constexpr-unrolled
// template, no per-value branches); callers dispatch through a
// table of function pointers indexed by width.

#include <array>
#include <cstddef>
#include <cstdint>

namespace bos::bitpack {

/// Unpacks one block of 32 values of `width` bits from `src` (reads
/// exactly `4*width` bytes).
using UnpackBlock32Fn = void (*)(const uint8_t* src, uint64_t* out);

/// Packs one block of 32 values at `width` bits into `dst` (writes
/// exactly `4*width` bytes; values are masked to `width` bits).
using PackBlock32Fn = void (*)(const uint64_t* in, uint8_t* dst);

/// Dispatch tables indexed by width 0..64.
extern const std::array<UnpackBlock32Fn, 65> kUnpackBlock32Table;
extern const std::array<PackBlock32Fn, 65> kPackBlock32Table;

/// Number of values per kernel block.
inline constexpr size_t kBlockValues = 32;

/// Bytes one full block occupies at `width` bits (exact, no padding).
constexpr size_t BlockBytes(int width) {
  return 4 * static_cast<size_t>(width);
}

/// Unpacks 32 values of `width` (0..64) bits starting at `src`.
inline void UnpackBlock32(const uint8_t* src, int width, uint64_t* out) {
  kUnpackBlock32Table[width](src, out);
}

/// Packs 32 values at `width` (0..64) bits into `dst`.
inline void PackBlock32(const uint64_t* in, int width, uint8_t* dst) {
  kPackBlock32Table[width](in, dst);
}

/// Unpacks `n` values of `width` bits: full blocks through the kernel
/// table, MSB-first scalar tail. `src_len` is the number of readable
/// bytes at `src` (>= ceil(n*width/8)); any slack beyond the packed
/// payload lets the wide (SIMD) kernels run right up to the end instead
/// of falling back to the portable path for the final blocks. Only the
/// packed payload influences the output.
void UnpackBlocks(const uint8_t* src, size_t src_len, int width, size_t n,
                  uint64_t* out);

/// Packs `n` values at `width` bits into `dst`; the final partial byte
/// (if any) is zero-padded, matching the historical PackFixedAligned
/// stream byte-for-byte. `dst_len` is the number of writable bytes at
/// `dst` (>= ceil(n*width/8)); slack beyond the packed payload lets the
/// wide (SIMD) kernels store right up to the end with their overlapping
/// 8-byte stores instead of falling back to the portable path for the
/// final blocks. Bytes past the payload but inside `dst_len` may be
/// clobbered (with zeros); bytes at `dst_len` and beyond are never
/// touched.
void PackBlocks(const uint64_t* in, size_t n, int width, uint8_t* dst,
                size_t dst_len);

/// Back-compat exact-fit form: `dst` holds exactly ceil(n*width/8)
/// bytes. With no slack the wide kernels cover all but the last blocks;
/// prefer the `dst_len` form on hot paths.
inline void PackBlocks(const uint64_t* in, size_t n, int width, uint8_t* dst) {
  PackBlocks(in, n, width, dst,
             (static_cast<size_t>(width) * n + 7) / 8);
}

/// Fused rebase-and-pack: packs (uint64_t)in[i] - base at `width` bits —
/// the encode-side mirror of UnpackBlocksAddBase. Saves the temporary
/// delta buffer on the frame-of-reference encode path; the subtraction
/// happens in vector registers on the wide path. `dst_len` as in
/// PackBlocks.
void PackBlocksSubBase(const int64_t* in, size_t n, int width, uint64_t base,
                       uint8_t* dst, size_t dst_len);

/// Delta transform: out[i] = in[i] - in[i-1] (wrapping), with `prev`
/// standing in for in[-1]. `out` may not alias `in`. Vectorized where
/// the CPU allows; feeds the TS2DIFF encode path.
void DeltaEncode(const int64_t* in, size_t n, int64_t prev, int64_t* out);

/// Fused delta+zigzag transform: out[i] = ZigZagEncode(in[i] - in[i-1])
/// carried bit-exactly through int64. Feeds the SPRINTZ encode path.
void DeltaZigZagEncode(const int64_t* in, size_t n, int64_t prev,
                       int64_t* out);

/// Fused unpack-and-rebase: out[i] = (int64_t)(base + delta[i]).
/// Saves the temporary delta buffer on the frame-of-reference decode
/// path. `src_len` as in UnpackBlocks.
void UnpackBlocksAddBase(const uint8_t* src, size_t src_len, int width,
                         size_t n, uint64_t base, int64_t* out);

/// Bit-granular batch decode for payloads that do not start on a byte
/// boundary (the BOS Figure-7 value section): reads `count` `width`-bit
/// values MSB-first starting `bit_pos` bits into `stream` and writes
/// out[k] = (int64_t)(add + value_k). Never reads past
/// `stream + stream_len`; bits past the end read as zero, matching the
/// scalar decode cursor. Dispatches per width like the block kernels.
void UnpackRunAddBase(const uint8_t* stream, size_t stream_len,
                      uint64_t bit_pos, int width, size_t count, uint64_t add,
                      int64_t* out);

/// True when the CPU offers the wide (AVX2) kernel variants; useful for
/// benchmarks that want to label their results.
bool HasWideKernels();

/// Scalar reference implementations — the pre-kernel single-pass code.
/// Kept callable so tests can assert byte-identical streams and benches
/// can measure the kernel speedup against the same baseline forever.
void UnpackScalar(const uint8_t* src, int width, size_t n, uint64_t* out);
void PackScalar(const uint64_t* in, size_t n, int width, uint8_t* dst);

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_UNPACK_KERNELS_H_
