#ifndef BOS_BITPACK_VARINT_H_
#define BOS_BITPACK_VARINT_H_

#include <cstdint>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::bitpack {

/// Appends `v` as LEB128 (7 bits per byte, little groups first).
void PutVarint(Bytes* out, uint64_t v);

/// Appends a zigzag-coded signed varint.
void PutSignedVarint(Bytes* out, int64_t v);

/// Reads a varint at `*offset`, advancing it. Fails on truncation or a
/// value longer than 10 bytes. Dispatches to a BMI2 `pext` word decoder
/// at runtime where the CPU allows (one 8-byte load instead of a byte
/// loop for varints up to 8 bytes); rejection semantics are identical
/// to the scalar decoder.
Status GetVarint(BytesView data, size_t* offset, uint64_t* v);

/// Scalar reference decoder — the pre-BMI2 byte loop. Kept callable so
/// tests and fuzzers can assert agreement with the dispatched path.
Status GetVarintScalar(BytesView data, size_t* offset, uint64_t* v);

/// Batched decode: reads `count` consecutive varints into `out`,
/// advancing `*offset` past all of them. On a corrupt varint, returns
/// the Status GetVarint would return for it, `*offset` is unchanged,
/// and the decoded prefix in `out` is unspecified. Amortizes the BMI2
/// dispatch over the run; the 9/10-byte and stream-tail edges fall back
/// to the scalar decoder, preserving the overlong-encoding rejections.
Status GetVarintRun(BytesView data, size_t* offset, size_t count,
                    uint64_t* out);

/// True when the CPU offers the BMI2 varint fast path (bench labels).
bool HasBmi2Varint();

/// Reads a zigzag-coded signed varint.
Status GetSignedVarint(BytesView data, size_t* offset, int64_t* v);

/// Number of bytes PutVarint would emit for `v`.
int VarintLength(uint64_t v);

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_VARINT_H_
