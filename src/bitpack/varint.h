#ifndef BOS_BITPACK_VARINT_H_
#define BOS_BITPACK_VARINT_H_

#include <cstdint>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::bitpack {

/// Appends `v` as LEB128 (7 bits per byte, little groups first).
void PutVarint(Bytes* out, uint64_t v);

/// Appends a zigzag-coded signed varint.
void PutSignedVarint(Bytes* out, int64_t v);

/// Reads a varint at `*offset`, advancing it. Fails on truncation or a
/// value longer than 10 bytes.
Status GetVarint(BytesView data, size_t* offset, uint64_t* v);

/// Reads a zigzag-coded signed varint.
Status GetSignedVarint(BytesView data, size_t* offset, int64_t* v);

/// Number of bytes PutVarint would emit for `v`.
int VarintLength(uint64_t v);

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_VARINT_H_
