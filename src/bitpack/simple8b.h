#ifndef BOS_BITPACK_SIMPLE8B_H_
#define BOS_BITPACK_SIMPLE8B_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::bitpack {

/// \brief Simple-8b word-aligned codec (Anh & Moffat).
///
/// Packs a sequence of unsigned integers into 64-bit words: 4 selector
/// bits choose one of 16 (count, width) layouts for the remaining 60 data
/// bits. NewPFOR uses it here to compress exception high bits and
/// positions, as in Yan et al.'s original design.
///
/// Values must fit in 60 bits; larger values are rejected with
/// InvalidArgument.
Status Simple8bEncode(std::span<const uint64_t> values, Bytes* out);

/// \brief Decodes exactly `n` values appended by Simple8bEncode starting
/// at `*offset`; advances `*offset` past the consumed words.
Status Simple8bDecode(BytesView data, size_t* offset, size_t n,
                      std::vector<uint64_t>* out);

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_SIMPLE8B_H_
