#include "bitpack/simple8b.h"

#include <algorithm>

#include "util/bits.h"

namespace bos::bitpack {
namespace {

// (max value count, bits per value) for each 4-bit selector.
struct Layout {
  int count;
  int bits;
};
constexpr Layout kLayouts[16] = {
    {240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4}, {12, 5}, {10, 6},
    {8, 7},   {7, 8},   {6, 10}, {5, 12}, {4, 15}, {3, 20}, {2, 30}, {1, 60},
};

bool Fits(uint64_t v, int bits) { return BitWidth(v) <= bits; }

}  // namespace

Status Simple8bEncode(std::span<const uint64_t> values, Bytes* out) {
  size_t pos = 0;
  const size_t n = values.size();
  while (pos < n) {
    // Pick the densest selector whose layout every next value fits.
    bool emitted = false;
    for (int sel = 0; sel < 16; ++sel) {
      const Layout layout = kLayouts[sel];
      const size_t take = std::min(static_cast<size_t>(layout.count), n - pos);
      // Selectors 0/1 encode full runs of zeros only.
      if (layout.bits == 0) {
        if (take < static_cast<size_t>(layout.count)) continue;
        bool all_zero = true;
        for (size_t i = 0; i < take; ++i) {
          if (values[pos + i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) continue;
        PutFixed<uint64_t>(out, static_cast<uint64_t>(sel) << 60);
        pos += take;
        emitted = true;
        break;
      }
      bool ok = true;
      for (size_t i = 0; i < take; ++i) {
        if (!Fits(values[pos + i], layout.bits)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // take < layout.count only happens at the tail of the stream; the
      // unused slots stay zero and the decoder stops after n values.
      uint64_t word = static_cast<uint64_t>(sel) << 60;
      int shift = 60 - layout.bits;
      for (size_t i = 0; i < take; ++i) {
        word |= values[pos + i] << shift;
        shift -= layout.bits;
      }
      PutFixed<uint64_t>(out, word);
      pos += take;
      emitted = true;
      break;
    }
    if (!emitted) {
      return Status::InvalidArgument("Simple-8b value exceeds 60 bits");
    }
  }
  return Status::OK();
}

Status Simple8bDecode(BytesView data, size_t* offset, size_t n,
                      std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(n);
  size_t pos = *offset;
  while (out->size() < n) {
    uint64_t word;
    if (!GetFixed<uint64_t>(data, pos, &word)) {
      return Status::Corruption("Simple-8b stream truncated");
    }
    pos += sizeof(uint64_t);
    const int sel = static_cast<int>(word >> 60);
    const Layout layout = kLayouts[sel];
    if (layout.bits == 0) {
      for (int i = 0; i < layout.count && out->size() < n; ++i) out->push_back(0);
      continue;
    }
    const uint64_t mask = (layout.bits == 60) ? ((1ULL << 60) - 1)
                                              : ((1ULL << layout.bits) - 1);
    int shift = 60 - layout.bits;
    for (int i = 0; i < layout.count && out->size() < n; ++i) {
      out->push_back((word >> shift) & mask);
      shift -= layout.bits;
    }
  }
  *offset = pos;
  return Status::OK();
}

}  // namespace bos::bitpack
