#ifndef BOS_BITPACK_ZIGZAG_H_
#define BOS_BITPACK_ZIGZAG_H_

#include <cstdint>

namespace bos::bitpack {

/// \brief ZigZag maps signed integers to unsigned so that values of small
/// magnitude get small codes: 0→0, -1→1, 1→2, -2→3, ...
///
/// Used by SPRINTZ after delta prediction and by the varint codec for
/// signed headers.
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_ZIGZAG_H_
