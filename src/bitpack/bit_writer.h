#ifndef BOS_BITPACK_BIT_WRITER_H_
#define BOS_BITPACK_BIT_WRITER_H_

#include <cassert>
#include <cstdint>

#include "util/buffer.h"

namespace bos::bitpack {

/// \brief MSB-first bit appender over a growable byte buffer.
///
/// Bits are written most-significant-first within each byte, which makes
/// hex dumps of encoded blocks readable left-to-right and matches the
/// bitmap layout in Figure 2 of the paper. The writer owns no memory; it
/// appends to a caller-supplied `Bytes`.
class BitWriter {
 public:
  /// Starts appending at the current end of `out`, on a byte boundary.
  explicit BitWriter(Bytes* out) : out_(out) {}

  BitWriter(const BitWriter&) = delete;
  BitWriter& operator=(const BitWriter&) = delete;

  /// Appends the low `width` bits of `value`, MSB first. width in [0, 64].
  void WriteBits(uint64_t value, int width) {
    assert(width >= 0 && width <= 64);
    if (width < 64) value &= (width == 0) ? 0 : ((~0ULL) >> (64 - width));
    int remaining = width;
    while (remaining > 0) {
      if (bit_pos_ == 0) out_->push_back(0);
      const int avail = 8 - bit_pos_;
      const int take = remaining < avail ? remaining : avail;
      const uint64_t chunk = (value >> (remaining - take)) & ((1ULL << take) - 1);
      out_->back() |= static_cast<uint8_t>(chunk << (avail - take));
      bit_pos_ = (bit_pos_ + take) & 7;
      remaining -= take;
    }
  }

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() { bit_pos_ = 0; }

  /// Total bits written so far (including alignment padding).
  size_t bit_count() const {
    return out_->size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
  }

 private:
  Bytes* out_;
  int bit_pos_ = 0;  // Next free bit within the last byte; 0 = byte-aligned.
};

/// \brief Accumulator-based MSB-first bit appender for hot encode loops.
///
/// Produces the exact byte stream `BitWriter` would (same MSB-first bit
/// order), but batches bits in a 64-bit register and flushes whole words,
/// so per-value cost is a few shifts instead of per-byte appends. Unlike
/// `BitWriter`, pending bits live in the accumulator until `Finish()` —
/// callers MUST call `Finish()` before reading `out`, and must not
/// interleave other appends to `out` while writing.
class FastBitWriter {
 public:
  explicit FastBitWriter(Bytes* out) : out_(out) {}

  FastBitWriter(const FastBitWriter&) = delete;
  FastBitWriter& operator=(const FastBitWriter&) = delete;

  /// Appends the low `width` bits of `value`, MSB first. width in [0, 64].
  void WriteBits(uint64_t value, int width) {
    assert(width >= 0 && width <= 64);
    if (width < 64) value &= (width == 0) ? 0 : ((~0ULL) >> (64 - width));
    const int free_bits = 64 - bits_;  // >= 1: bits_ stays in [0, 63]
    if (width < free_bits) {
      acc_ |= value << (free_bits - width);
      bits_ += width;
    } else {
      const int lo = width - free_bits;  // in [0, 63]
      acc_ |= value >> lo;
      FlushWord();
      acc_ = lo == 0 ? 0 : value << (64 - lo);
      bits_ = lo;
    }
  }

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Flushes pending bits (zero-padded to a byte boundary). Must be called
  /// exactly once, after the last WriteBits.
  void Finish() {
    const int nbytes = (bits_ + 7) / 8;
    const size_t sz = out_->size();
    out_->resize(sz + nbytes);
    for (int i = 0; i < nbytes; ++i) {
      (*out_)[sz + i] = static_cast<uint8_t>(acc_ >> (56 - 8 * i));
    }
    acc_ = 0;
    bits_ = 0;
  }

 private:
  void FlushWord() {
    const size_t sz = out_->size();
    out_->resize(sz + 8);
    uint8_t* p = out_->data() + sz;
    for (int i = 0; i < 8; ++i) {
      p[i] = static_cast<uint8_t>(acc_ >> (56 - 8 * i));
    }
    acc_ = 0;
    bits_ = 0;
  }

  Bytes* out_;
  uint64_t acc_ = 0;
  int bits_ = 0;  // pending bits held in the top of acc_
};

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_BIT_WRITER_H_
