#ifndef BOS_BITPACK_BIT_WRITER_H_
#define BOS_BITPACK_BIT_WRITER_H_

#include <cassert>
#include <cstdint>

#include "util/buffer.h"

namespace bos::bitpack {

/// \brief MSB-first bit appender over a growable byte buffer.
///
/// Bits are written most-significant-first within each byte, which makes
/// hex dumps of encoded blocks readable left-to-right and matches the
/// bitmap layout in Figure 2 of the paper. The writer owns no memory; it
/// appends to a caller-supplied `Bytes`.
class BitWriter {
 public:
  /// Starts appending at the current end of `out`, on a byte boundary.
  explicit BitWriter(Bytes* out) : out_(out) {}

  BitWriter(const BitWriter&) = delete;
  BitWriter& operator=(const BitWriter&) = delete;

  /// Appends the low `width` bits of `value`, MSB first. width in [0, 64].
  void WriteBits(uint64_t value, int width) {
    assert(width >= 0 && width <= 64);
    if (width < 64) value &= (width == 0) ? 0 : ((~0ULL) >> (64 - width));
    int remaining = width;
    while (remaining > 0) {
      if (bit_pos_ == 0) out_->push_back(0);
      const int avail = 8 - bit_pos_;
      const int take = remaining < avail ? remaining : avail;
      const uint64_t chunk = (value >> (remaining - take)) & ((1ULL << take) - 1);
      out_->back() |= static_cast<uint8_t>(chunk << (avail - take));
      bit_pos_ = (bit_pos_ + take) & 7;
      remaining -= take;
    }
  }

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() { bit_pos_ = 0; }

  /// Total bits written so far (including alignment padding).
  size_t bit_count() const {
    return out_->size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
  }

 private:
  Bytes* out_;
  int bit_pos_ = 0;  // Next free bit within the last byte; 0 = byte-aligned.
};

}  // namespace bos::bitpack

#endif  // BOS_BITPACK_BIT_WRITER_H_
