#include "bitpack/unpack_kernels.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "bitpack/zigzag.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define BOS_KERNELS_X86 1
#endif

namespace bos::bitpack {
namespace {

inline uint32_t LoadBE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

inline void StoreBE32(uint8_t* p, uint32_t v) {
  v = __builtin_bswap32(v);
  std::memcpy(p, &v, 4);
}

inline uint64_t LoadBE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}

// ---------------------------------------------------------------------
// Portable straight-line block kernels.
//
// A 32-value block at width W is exactly W big-endian 32-bit words; value
// I occupies bits [I*W, I*W + W) of that word stream, so with W and I both
// compile-time constants every extract/deposit reduces to one or two
// constant shifts against registers.
// ---------------------------------------------------------------------

template <int W, int I>
inline uint64_t Extract(const uint32_t* w) {
  constexpr int kBit = I * W;
  constexpr int kWord = kBit >> 5;
  constexpr int kOff = kBit & 31;
  constexpr uint64_t kMask = (W >= 64) ? ~0ULL : ((1ULL << W) - 1);
  if constexpr (kOff + W <= 32) {
    return (static_cast<uint64_t>(w[kWord]) >> (32 - kOff - W)) & kMask;
  } else if constexpr (kOff + W <= 64) {
    const uint64_t pair =
        (static_cast<uint64_t>(w[kWord]) << 32) | w[kWord + 1];
    return (pair >> (64 - kOff - W)) & kMask;
  } else {
    // Widths > 33 can straddle three words; kOff > 0 here.
    constexpr int kRem = kOff + W - 64;
    const uint64_t pair =
        (static_cast<uint64_t>(w[kWord]) << 32) | w[kWord + 1];
    const uint64_t head = pair & ((~0ULL) >> kOff);
    return ((head << kRem) | (w[kWord + 2] >> (32 - kRem))) & kMask;
  }
}

template <int W, int I>
inline void Deposit(const uint64_t* in, uint32_t* w) {
  constexpr int kBit = I * W;
  constexpr int kWord = kBit >> 5;
  constexpr int kOff = kBit & 31;
  constexpr uint64_t kMask = (W >= 64) ? ~0ULL : ((1ULL << W) - 1);
  const uint64_t v = in[I] & kMask;
  if constexpr (kOff + W <= 32) {
    w[kWord] |= static_cast<uint32_t>(v << (32 - kOff - W));
  } else if constexpr (kOff + W <= 64) {
    w[kWord] |= static_cast<uint32_t>(v >> (kOff + W - 32));
    w[kWord + 1] |= static_cast<uint32_t>(v << (64 - kOff - W));
  } else {
    constexpr int kRem = kOff + W - 64;
    w[kWord] |= static_cast<uint32_t>(v >> (kRem + 32));
    w[kWord + 1] |= static_cast<uint32_t>(v >> kRem);
    w[kWord + 2] |= static_cast<uint32_t>(v << (32 - kRem));
  }
}

template <int W, size_t... Is>
inline void ExtractAll(const uint32_t* w, uint64_t* out,
                       std::index_sequence<Is...>) {
  ((out[Is] = Extract<W, Is>(w)), ...);
}

template <int W, size_t... Is>
inline void DepositAll(const uint64_t* in, uint32_t* w,
                       std::index_sequence<Is...>) {
  (Deposit<W, Is>(in, w), ...);
}

template <int W>
void UnpackBlock32T(const uint8_t* src, uint64_t* out) {
  if constexpr (W == 0) {
    for (size_t i = 0; i < kBlockValues; ++i) out[i] = 0;
  } else {
    uint32_t w[W];
    for (int k = 0; k < W; ++k) w[k] = LoadBE32(src + 4 * k);
    ExtractAll<W>(w, out, std::make_index_sequence<kBlockValues>{});
  }
}

template <int W>
void PackBlock32T(const uint64_t* in, uint8_t* dst) {
  if constexpr (W == 0) {
    (void)in;
    (void)dst;
  } else {
    uint32_t w[W] = {};
    DepositAll<W>(in, w, std::make_index_sequence<kBlockValues>{});
    for (int k = 0; k < W; ++k) StoreBE32(dst + 4 * k, w[k]);
  }
}

template <int... Ws>
constexpr std::array<UnpackBlock32Fn, sizeof...(Ws)> MakeUnpackBlockTable(
    std::integer_sequence<int, Ws...>) {
  return {&UnpackBlock32T<Ws>...};
}

template <int... Ws>
constexpr std::array<PackBlock32Fn, sizeof...(Ws)> MakePackBlockTable(
    std::integer_sequence<int, Ws...>) {
  return {&PackBlock32T<Ws>...};
}

// ---------------------------------------------------------------------
// Wide (AVX2) kernels, dispatched at runtime behind HasWideKernels().
//
// For W <= 14 a group of four consecutive values spans at most
// 4*14 + 7 = 63 bits, so one unaligned 64-bit big-endian load covers the
// whole group regardless of its bit offset; a per-lane variable shift
// (vpsrlvq) then fans the four values out in one step. W == 16 works too
// on byte-aligned streams (a group is exactly 64 bits, offset always 0).
// A group's load may touch up to 7 bytes past the group itself, so these
// kernels only run where the caller proves slack bytes exist; the
// portable kernels finish the edge.
// ---------------------------------------------------------------------

#ifdef BOS_KERNELS_X86

// Per-block fast path: bits [0, 32*W) at src, byte-aligned. Valid for
// W in [1, 14] and W == 16.
template <int W>
__attribute__((target("avx2"))) void UnpackBlock32Avx2(const uint8_t* src,
                                                       uint64_t* out) {
  const __m256i mask = _mm256_set1_epi64x((1LL << W) - 1);
  // Groups of 4 values sharing one 64-bit load: when 4*W divides 64
  // (power-of-two widths) several consecutive groups sit byte-aligned in
  // the same word, so one load + broadcast feeds multiple shift/stores.
  constexpr int kGplRaw = (64 % (4 * W) == 0) ? 64 / (4 * W) : 1;
  constexpr int kGpl = kGplRaw > 8 ? 8 : kGplRaw;
#pragma GCC unroll 8
  for (int s = 0; s < 8 / kGpl; ++s) {
    const int load_bit = s * kGpl * 4 * W;  // byte-aligned when kGpl > 1
    const __m256i word = _mm256_set1_epi64x(
        static_cast<long long>(LoadBE64(src + (load_bit >> 3))));
#pragma GCC unroll 8
    for (int g = 0; g < kGpl; ++g) {
      // Constant after unrolling: one rodata vector per group position,
      // hoisted across the outer loop.
      const int off = (load_bit & 7) + g * 4 * W;
      const __m256i counts = _mm256_set_epi64x(
          64 - off - 4 * W, 64 - off - 3 * W, 64 - off - 2 * W, 64 - off - W);
      const __m256i v =
          _mm256_and_si256(_mm256_srlv_epi64(word, counts), mask);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + (s * kGpl + g) * 4), v);
    }
  }
}

// Run fast path: `groups` groups of 4 values starting at an arbitrary
// `bit_pos`, each fused with `+ add`. Valid for W in [1, 14]; the caller
// guarantees each group's 8-byte load stays inside the stream.
template <int W>
__attribute__((target("avx2"))) void UnpackRunAvx2(const uint8_t* stream,
                                                   uint64_t bit_pos,
                                                   size_t groups, uint64_t add,
                                                   int64_t* out) {
  const __m256i mask = _mm256_set1_epi64x((1LL << W) - 1);
  const __m256i vadd = _mm256_set1_epi64x(static_cast<long long>(add));
  const __m256i base_counts =
      _mm256_set_epi64x(64 - 4 * W, 64 - 3 * W, 64 - 2 * W, 64 - W);
  for (size_t g = 0; g < groups; ++g) {
    const uint64_t bit = bit_pos + g * 4 * W;
    const __m256i word = _mm256_set1_epi64x(
        static_cast<long long>(LoadBE64(stream + (bit >> 3))));
    const __m256i counts = _mm256_sub_epi64(
        base_counts, _mm256_set1_epi64x(static_cast<long long>(bit & 7)));
    const __m256i v = _mm256_add_epi64(
        _mm256_and_si256(_mm256_srlv_epi64(word, counts), mask), vadd);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * g), v);
  }
}

using RunAvx2Fn = void (*)(const uint8_t*, uint64_t, size_t, uint64_t,
                           int64_t*);

template <int... Ws>
constexpr std::array<UnpackBlock32Fn, sizeof...(Ws)> MakeAvx2BlockTable(
    std::integer_sequence<int, Ws...>) {
  // Entry 0 and 15 are unreachable (dispatch skips them); point them at
  // W=1/W=16 to keep the table total.
  return {(Ws == 0   ? &UnpackBlock32Avx2<1>
           : Ws == 15 ? &UnpackBlock32Avx2<16>
                      : &UnpackBlock32Avx2<(Ws == 0 || Ws == 15) ? 1 : Ws>)...};
}

template <int... Ws>
constexpr std::array<RunAvx2Fn, sizeof...(Ws)> MakeAvx2RunTable(
    std::integer_sequence<int, Ws...>) {
  return {(Ws == 0 ? &UnpackRunAvx2<1>
                   : &UnpackRunAvx2<(Ws == 0) ? 1 : Ws>)...};
}

// Widths 0..16; entries 0 and 15 are never dispatched to (15 can
// straddle 9 bytes per group, 0 is handled by the caller).
const auto kAvx2BlockTable =
    MakeAvx2BlockTable(std::make_integer_sequence<int, 17>{});
// Widths 0..14; entry 0 never dispatched.
const auto kAvx2RunTable =
    MakeAvx2RunTable(std::make_integer_sequence<int, 15>{});

inline bool BlockWidthHasAvx2(int width) {
  return (width >= 1 && width <= 14) || width == 16;
}

// ---------------------------------------------------------------------
// Wide (AVX2) pack kernels, W in [1, 16].
//
// MSB-first packing has a byte-aligned seam every 8 values (8*W bits is
// exactly W bytes), so a block splits into four independent 8-value
// pairs. Each pair's bits are assembled in 64-bit lanes with per-lane
// variable shifts and OR-reduced via a 4x4 transpose; the result is
// byte-swapped and stored big-endian, top-aligned, with the store's zero
// tail overwritten by the next (overlapping) store. The last store of a
// block reaches up to 7 bytes past the block's 4*W bytes, so these
// kernels only run where the caller proves slack exists; the portable
// kernels finish the edge.
// ---------------------------------------------------------------------

// Byte-swaps each 64-bit lane (for big-endian stores).
__attribute__((target("avx2"))) inline __m256i BSwap64x4(__m256i v) {
  const __m256i m =
      _mm256_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
                       7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8);
  return _mm256_shuffle_epi8(v, m);
}

// OR-reduces the four lanes of each of t0..t3 into one lane each:
// result lane j = t_j[0] | t_j[1] | t_j[2] | t_j[3].
__attribute__((target("avx2"))) inline __m256i OrTranspose4x4(
    __m256i t0, __m256i t1, __m256i t2, __m256i t3) {
  const __m256i ab = _mm256_or_si256(_mm256_unpacklo_epi64(t0, t1),
                                     _mm256_unpackhi_epi64(t0, t1));
  const __m256i cd = _mm256_or_si256(_mm256_unpacklo_epi64(t2, t3),
                                     _mm256_unpackhi_epi64(t2, t3));
  // ab = {t0[0]|t0[1], t1[0]|t1[1], t0[2]|t0[3], t1[2]|t1[3]}, cd alike;
  // pairing the 128-bit halves finishes the reduction in lane order.
  return _mm256_or_si256(_mm256_permute2x128_si256(ab, cd, 0x20),
                         _mm256_permute2x128_si256(ab, cd, 0x31));
}

// Loads 4 values, optionally rebased, masked to the pack width.
// (A plain function, not a lambda: lambdas do not inherit the enclosing
// function's target("avx2") attribute.)
template <bool kSub>
__attribute__((target("avx2"))) inline __m256i LoadMasked4(const uint64_t* p,
                                                           __m256i vbase,
                                                           __m256i mask) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  if constexpr (kSub) v = _mm256_sub_epi64(v, vbase);
  return _mm256_and_si256(v, mask);
}

// Packs one 32-value block at width W, subtracting `base` from every
// value first (base = 0 gives the plain kernel; kSub gates the subtract
// at compile time so the plain table pays nothing for the fusion).
// Writes the block's 4*W bytes plus up to 7 slack bytes of zeros.
template <int W, bool kSub>
__attribute__((target("avx2"))) void PackBlock32Avx2(const uint64_t* in,
                                                     uint64_t base,
                                                     uint8_t* dst) {
  static_assert(W >= 1 && W <= 16);
  const __m256i mask = _mm256_set1_epi64x((1LL << W) - 1);
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  if constexpr (W <= 8) {
    // One 8-value pair per 64-bit lane: p = v0<<7W | v1<<6W | ... | v7.
    const __m256i c_hi = _mm256_set_epi64x(4 * W, 5 * W, 6 * W, 7 * W);
    const __m256i c_lo = _mm256_set_epi64x(0, W, 2 * W, 3 * W);
    __m256i t[4];
    for (int j = 0; j < 4; ++j) {
      t[j] = _mm256_or_si256(
          _mm256_sllv_epi64(LoadMasked4<kSub>(in + 8 * j, vbase, mask), c_hi),
          _mm256_sllv_epi64(LoadMasked4<kSub>(in + 8 * j + 4, vbase, mask),
                            c_lo));
    }
    const __m256i pairs = OrTranspose4x4(t[0], t[1], t[2], t[3]);
    // Top-align each pair's 8W bits and store big-endian, W bytes apart;
    // ascending stores overwrite the previous pair's zero tail.
    const __m256i be = BSwap64x4(_mm256_slli_epi64(pairs, 64 - 8 * W));
    const __m128i lo = _mm256_castsi256_si128(be);
    const __m128i hi = _mm256_extracti128_si256(be, 1);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), lo);
    _mm_storeh_pd(reinterpret_cast<double*>(dst + W), _mm_castsi128_pd(lo));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 2 * W), hi);
    _mm_storeh_pd(reinterpret_cast<double*>(dst + 3 * W),
                  _mm_castsi128_pd(hi));
  } else {
    // A pair's 8W bits exceed 64: build 4-value groups g = v0<<3W | ...
    // | v3 (4W <= 64 bits), splice group pairs into a 128-bit quantity
    // P = g_even:g_odd and store its top-aligned halves as two 64-bit
    // big-endian stores per pair.
    const __m256i cg = _mm256_set_epi64x(0, W, 2 * W, 3 * W);
    __m256i r[2];
    for (int h = 0; h < 2; ++h) {
      __m256i t[4];
      for (int j = 0; j < 4; ++j) {
        t[j] = _mm256_sllv_epi64(
            LoadMasked4<kSub>(in + 16 * h + 4 * j, vbase, mask), cg);
      }
      r[h] = OrTranspose4x4(t[0], t[1], t[2], t[3]);  // {g0..g3} / {g4..g7}
    }
    // evens = {g0, g4, g2, g6}, odds = {g1, g5, g3, g7}: lane k holds the
    // pair (g_even, g_odd) of memory pair {0, 2, 1, 3}[k].
    const __m256i evens = _mm256_unpacklo_epi64(r[0], r[1]);
    const __m256i odds = _mm256_unpackhi_epi64(r[0], r[1]);
    // P = g_even * 2^(4W) + g_odd, 8W in (64, 128] bits, top-aligned:
    // hi64 = g_even << (64-4W) | g_odd >> (8W-64), lo64 = g_odd << (128-8W).
    // (srli with count 64 — the W = 16 case — correctly yields zero.)
    const __m256i hi64 = _mm256_or_si256(_mm256_slli_epi64(evens, 64 - 4 * W),
                                         _mm256_srli_epi64(odds, 8 * W - 64));
    const __m256i lo64 = _mm256_slli_epi64(odds, 128 - 8 * W);
    const __m256i hi_be = BSwap64x4(hi64);
    const __m256i lo_be = BSwap64x4(lo64);
    const __m128i h01 = _mm256_castsi256_si128(hi_be);
    const __m128i h23 = _mm256_extracti128_si256(hi_be, 1);
    const __m128i l01 = _mm256_castsi256_si128(lo_be);
    const __m128i l23 = _mm256_extracti128_si256(lo_be, 1);
    // Ascending stores; pair j's lo-store zero tail (W >= 9 > 8 bytes
    // apart) is overwritten by pair j+1's hi store.
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), h01);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 8), l01);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + W), h23);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + W + 8), l23);
    _mm_storeh_pd(reinterpret_cast<double*>(dst + 2 * W),
                  _mm_castsi128_pd(h01));
    _mm_storeh_pd(reinterpret_cast<double*>(dst + 2 * W + 8),
                  _mm_castsi128_pd(l01));
    _mm_storeh_pd(reinterpret_cast<double*>(dst + 3 * W),
                  _mm_castsi128_pd(h23));
    _mm_storeh_pd(reinterpret_cast<double*>(dst + 3 * W + 8),
                  _mm_castsi128_pd(l23));
  }
}

using PackAvx2Fn = void (*)(const uint64_t*, uint64_t, uint8_t*);

template <bool kSub, int... Ws>
constexpr std::array<PackAvx2Fn, sizeof...(Ws)> MakeAvx2PackTable(
    std::integer_sequence<int, Ws...>) {
  // Entry 0 is unreachable (dispatch handles width 0 first).
  return {&PackBlock32Avx2<(Ws == 0) ? 1 : Ws, kSub>...};
}

// Widths 0..16.
const auto kAvx2PackTable =
    MakeAvx2PackTable<false>(std::make_integer_sequence<int, 17>{});
const auto kAvx2PackSubTable =
    MakeAvx2PackTable<true>(std::make_integer_sequence<int, 17>{});

// Bytes of `dst` a wide pack kernel touches from a block's start: the
// last store begins at 3*W and covers 8 bytes (W <= 8, single store per
// pair) or 16 bytes (W > 8, split store).
constexpr size_t PackReach(int width) {
  return 3 * static_cast<size_t>(width) + (width <= 8 ? 8 : 16);
}

// Four wrapping deltas out[0..3] = in[0..3] - in[-1..2] in one step.
__attribute__((target("avx2"))) inline void DeltaLanes(const int64_t* in,
                                                       int64_t* out) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i p =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in - 1));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_sub_epi64(v, p));
}

// Same, fused with zigzag: (d << 1) ^ (d >> 63). AVX2 has no 64-bit
// arithmetic shift; cmpgt against zero produces the same all-ones /
// all-zeros sign mask.
__attribute__((target("avx2"))) inline void DeltaZigZagLanes(
    const int64_t* in, int64_t* out) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i p =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in - 1));
  const __m256i d = _mm256_sub_epi64(v, p);
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), d);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_xor_si256(_mm256_slli_epi64(d, 1), sign));
}

#endif  // BOS_KERNELS_X86

inline uint64_t ZigZag(uint64_t delta) {
  return ZigZagEncode(static_cast<int64_t>(delta));
}

// ---------------------------------------------------------------------
// Scalar reference: the pre-kernel single-pass accumulator code, kept
// verbatim so its streams (and its speed, as a bench baseline) stay
// exactly what the format was defined against.
// ---------------------------------------------------------------------

// Appends up to 32 bits to an MSB-first accumulator, flushing whole bytes.
// Chunking to <= 32 bits keeps `acc_bits + chunk` <= 39 < 64, so the shift
// never overflows.
inline void AppendBits(uint64_t chunk, int chunk_bits, uint64_t* acc,
                       int* acc_bits, uint8_t** dst) {
  *acc = (*acc << chunk_bits) | chunk;
  *acc_bits += chunk_bits;
  while (*acc_bits >= 8) {
    *acc_bits -= 8;
    *(*dst)++ = static_cast<uint8_t>(*acc >> *acc_bits);
  }
}

// Reads up to 32 bits from an MSB-first accumulator fed from `src`.
inline uint64_t TakeBits(int chunk_bits, uint64_t* acc, int* acc_bits,
                         const uint8_t** src) {
  while (*acc_bits < chunk_bits) {
    *acc = (*acc << 8) | *(*src)++;
    *acc_bits += 8;
  }
  *acc_bits -= chunk_bits;
  const uint64_t mask = chunk_bits == 0 ? 0 : ((~0ULL) >> (64 - chunk_bits));
  return (*acc >> *acc_bits) & mask;
}

// Width-templated unpack body: with W a compile-time constant the
// accumulator loop unrolls into straight-line shifts (the FastPFOR
// trick); still one value at a time, byte-fed — the bench baseline.
template <int W>
void UnpackWidthScalar(const uint8_t* src, size_t n, uint64_t* out) {
  uint64_t acc = 0;
  int acc_bits = 0;
  if constexpr (W == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
  } else if constexpr (W <= 32) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = TakeBits(W, &acc, &acc_bits, &src);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t high = TakeBits(W - 32, &acc, &acc_bits, &src);
      out[i] = (high << 32) | TakeBits(32, &acc, &acc_bits, &src);
    }
  }
}

using ScalarUnpackFn = void (*)(const uint8_t*, size_t, uint64_t*);

template <int... Ws>
constexpr std::array<ScalarUnpackFn, sizeof...(Ws)> MakeScalarUnpackTable(
    std::integer_sequence<int, Ws...>) {
  return {&UnpackWidthScalar<Ws>...};
}

constexpr auto kScalarUnpackTable =
    MakeScalarUnpackTable(std::make_integer_sequence<int, 65>{});

// ---------------------------------------------------------------------
// Bit-granular run decode (UnpackRunAddBase substrate).
// ---------------------------------------------------------------------

// Per-width scalar run body: one unaligned 64-bit load per value while at
// least 8 (9 for W > 56) readable bytes remain at the load site, then a
// byte-fed cursor for the stream edge (bits past the end read as zero).
template <int W>
void UnpackRunScalarT(const uint8_t* stream, size_t stream_len,
                      uint64_t bit_pos, size_t count, uint64_t add,
                      int64_t* out) {
  if constexpr (W == 0) {
    for (size_t k = 0; k < count; ++k) out[k] = static_cast<int64_t>(add);
    return;
  } else {
    constexpr uint64_t kMask = (W >= 64) ? ~0ULL : ((1ULL << W) - 1);
    constexpr size_t kWindow = W <= 56 ? 8 : 9;
    size_t k = 0;
    if (stream_len >= kWindow) {
      // Highest start bit whose window load stays inside the stream.
      const uint64_t bit_limit = 8 * (stream_len - kWindow) + 7;
      const size_t fast =
          bit_pos > bit_limit
              ? 0
              : std::min<uint64_t>(count, (bit_limit - bit_pos) / W + 1);
      if constexpr (W <= 56) {
        for (; k < fast; ++k) {
          const uint64_t bit = bit_pos + k * W;
          const uint64_t word = LoadBE64(stream + (bit >> 3));
          out[k] = static_cast<int64_t>(
              add + ((word >> (64 - static_cast<int>(bit & 7) - W)) & kMask));
        }
      } else {
        for (; k < fast; ++k) {
          const uint64_t bit = bit_pos + k * W;
          const uint8_t* p = stream + (bit >> 3);
          const int off = static_cast<int>(bit & 7);
          // 64 stream bits starting at `bit`, left-aligned.
          const uint64_t a =
              (LoadBE64(p) << off) | (static_cast<uint64_t>(p[8]) >> (8 - off));
          out[k] = static_cast<int64_t>(add + (a >> (64 - W)));
        }
      }
    }
    if (k == count) return;
    // Stream edge: byte-fed MSB-first cursor, zero bits past the end.
    const uint64_t bit = bit_pos + k * W;
    const uint8_t* src = stream + (bit >> 3);
    const uint8_t* end = stream + stream_len;
    uint64_t acc = 0;
    int acc_bits = 0;
    auto take = [&](int bits) -> uint64_t {
      while (acc_bits < bits) {
        acc = (acc << 8) | (src < end ? *src++ : 0);
        acc_bits += 8;
      }
      acc_bits -= bits;
      return (acc >> acc_bits) & (bits == 0 ? 0 : ((~0ULL) >> (64 - bits)));
    };
    take(static_cast<int>(bit & 7));  // discard to the start bit
    for (; k < count; ++k) {
      uint64_t v;
      if constexpr (W <= 32) {
        v = take(W);
      } else {
        v = take(W - 32) << 32;
        v |= take(32);
      }
      out[k] = static_cast<int64_t>(add + v);
    }
  }
}

using RunScalarFn = void (*)(const uint8_t*, size_t, uint64_t, size_t,
                             uint64_t, int64_t*);

template <int... Ws>
constexpr std::array<RunScalarFn, sizeof...(Ws)> MakeRunScalarTable(
    std::integer_sequence<int, Ws...>) {
  return {&UnpackRunScalarT<Ws>...};
}

constexpr auto kRunScalarTable =
    MakeRunScalarTable(std::make_integer_sequence<int, 65>{});

}  // namespace

const std::array<UnpackBlock32Fn, 65> kUnpackBlock32Table =
    MakeUnpackBlockTable(std::make_integer_sequence<int, 65>{});

const std::array<PackBlock32Fn, 65> kPackBlock32Table =
    MakePackBlockTable(std::make_integer_sequence<int, 65>{});

bool HasWideKernels() {
#ifdef BOS_KERNELS_X86
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

void UnpackScalar(const uint8_t* src, int width, size_t n, uint64_t* out) {
  kScalarUnpackTable[width](src, n, out);
}

void PackScalar(const uint64_t* in, size_t n, int width, uint8_t* dst) {
  if (width == 0 || n == 0) return;
  uint64_t acc = 0;
  int acc_bits = 0;
  const uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  if (width <= 32) {
    for (size_t i = 0; i < n; ++i) {
      AppendBits(in[i] & mask, width, &acc, &acc_bits, &dst);
    }
  } else {
    const int high_bits = width - 32;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t v = in[i] & mask;
      AppendBits(v >> 32, high_bits, &acc, &acc_bits, &dst);
      AppendBits(v & 0xFFFFFFFFULL, 32, &acc, &acc_bits, &dst);
    }
  }
  if (acc_bits > 0) {
    *dst = static_cast<uint8_t>(acc << (8 - acc_bits));
  }
}

void UnpackBlocks(const uint8_t* src, size_t src_len, int width, size_t n,
                  uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const size_t step = BlockBytes(width);
  size_t blocks = n / kBlockValues;
  size_t done = 0;

#ifdef BOS_KERNELS_X86
  if (blocks > 0 && HasWideKernels() && BlockWidthHasAvx2(width)) {
    // Block b's widest load ends at b*step + (28*width)/8 + 8 bytes;
    // only blocks where that stays inside src_len take the wide kernel.
    const size_t reach = (28 * static_cast<size_t>(width)) / 8 + 8;
    size_t wide = 0;
    if (src_len >= reach) {
      wide = std::min(blocks, (src_len - reach) / step + 1);
    }
    const UnpackBlock32Fn kernel = kAvx2BlockTable[width];
    for (size_t b = 0; b < wide; ++b) {
      kernel(src + b * step, out + b * kBlockValues);
    }
    done = wide;
  }
#endif

  const UnpackBlock32Fn kernel = kUnpackBlock32Table[width];
  for (size_t b = done; b < blocks; ++b) {
    kernel(src + b * step, out + b * kBlockValues);
  }
  const size_t tail = n % kBlockValues;
  if (tail > 0) {
    UnpackScalar(src + blocks * step, width, tail, out + blocks * kBlockValues);
  }
  (void)src_len;
}

void PackBlocks(const uint64_t* in, size_t n, int width, uint8_t* dst,
                size_t dst_len) {
  if (width == 0) return;
  const size_t step = BlockBytes(width);
  const size_t blocks = n / kBlockValues;
  size_t done = 0;

#ifdef BOS_KERNELS_X86
  if (blocks > 0 && HasWideKernels() && width >= 1 && width <= 16) {
    // Block b's stores end at b*step + PackReach(width) bytes; only
    // blocks where that stays inside dst_len take the wide kernel.
    const size_t reach = PackReach(width);
    size_t wide = 0;
    if (dst_len >= reach) {
      wide = std::min(blocks, (dst_len - reach) / step + 1);
    }
    const PackAvx2Fn kernel = kAvx2PackTable[width];
    for (size_t b = 0; b < wide; ++b) {
      kernel(in + b * kBlockValues, 0, dst + b * step);
    }
    done = wide;
  }
#endif

  const PackBlock32Fn kernel = kPackBlock32Table[width];
  for (size_t b = done; b < blocks; ++b) {
    kernel(in + b * kBlockValues, dst + b * step);
  }
  const size_t tail = n % kBlockValues;
  if (tail > 0) {
    PackScalar(in + blocks * kBlockValues, tail, width, dst + blocks * step);
  }
  (void)dst_len;
}

void PackBlocksSubBase(const int64_t* in, size_t n, int width, uint64_t base,
                       uint8_t* dst, size_t dst_len) {
  if (width == 0) return;
  const size_t step = BlockBytes(width);
  const size_t blocks = n / kBlockValues;
  size_t done = 0;

#ifdef BOS_KERNELS_X86
  if (blocks > 0 && HasWideKernels() && width >= 1 && width <= 16) {
    const size_t reach = PackReach(width);
    size_t wide = 0;
    if (dst_len >= reach) {
      wide = std::min(blocks, (dst_len - reach) / step + 1);
    }
    const PackAvx2Fn kernel = kAvx2PackSubTable[width];
    for (size_t b = 0; b < wide; ++b) {
      kernel(reinterpret_cast<const uint64_t*>(in) + b * kBlockValues, base,
             dst + b * step);
    }
    done = wide;
  }
#endif

  // Portable edge: rebase one block at a time into a stack strip, then
  // reuse the per-width block kernels — no heap scratch.
  uint64_t strip[kBlockValues];
  const PackBlock32Fn kernel = kPackBlock32Table[width];
  for (size_t b = done; b < blocks; ++b) {
    for (size_t i = 0; i < kBlockValues; ++i) {
      strip[i] = static_cast<uint64_t>(in[b * kBlockValues + i]) - base;
    }
    kernel(strip, dst + b * step);
  }
  const size_t tail = n % kBlockValues;
  if (tail > 0) {
    for (size_t i = 0; i < tail; ++i) {
      strip[i] = static_cast<uint64_t>(in[blocks * kBlockValues + i]) - base;
    }
    PackScalar(strip, tail, width, dst + blocks * step);
  }
  (void)dst_len;
}

void DeltaEncode(const int64_t* in, size_t n, int64_t prev, int64_t* out) {
  if (n == 0) return;
  out[0] = static_cast<int64_t>(static_cast<uint64_t>(in[0]) -
                                static_cast<uint64_t>(prev));
  size_t i = 1;
#ifdef BOS_KERNELS_X86
  if (HasWideKernels()) {
    for (; i + 4 <= n; i += 4) {
      DeltaLanes(in + i, out + i);
    }
  }
#endif
  for (; i < n; ++i) {
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(in[i]) -
                                  static_cast<uint64_t>(in[i - 1]));
  }
}

void DeltaZigZagEncode(const int64_t* in, size_t n, int64_t prev,
                       int64_t* out) {
  if (n == 0) return;
  out[0] = static_cast<int64_t>(
      ZigZag(static_cast<uint64_t>(in[0]) - static_cast<uint64_t>(prev)));
  size_t i = 1;
#ifdef BOS_KERNELS_X86
  if (HasWideKernels()) {
    for (; i + 4 <= n; i += 4) {
      DeltaZigZagLanes(in + i, out + i);
    }
  }
#endif
  for (; i < n; ++i) {
    out[i] = static_cast<int64_t>(
        ZigZag(static_cast<uint64_t>(in[i]) - static_cast<uint64_t>(in[i - 1])));
  }
}

void UnpackRunAddBase(const uint8_t* stream, size_t stream_len,
                      uint64_t bit_pos, int width, size_t count, uint64_t add,
                      int64_t* out) {
  if (count == 0) return;
  if (width == 0) {
    for (size_t k = 0; k < count; ++k) out[k] = static_cast<int64_t>(add);
    return;
  }
  // Short runs (outliers and the center gaps between them in the BOS
  // value section, mostly) decode inline: a table dispatch plus a
  // per-width indirect call costs more than the values themselves. 8 is
  // where the wide path starts winning.
  if (width <= 56 && count < 8 && stream_len >= 8) {
    const uint64_t bit_limit = 8 * (stream_len - 8) + 7;
    if (bit_pos + (count - 1) * static_cast<uint64_t>(width) <= bit_limit) {
      const uint64_t mask = (1ULL << width) - 1;
      for (size_t k = 0; k < count; ++k) {
        const uint64_t bit = bit_pos + k * static_cast<uint64_t>(width);
        const uint64_t word = LoadBE64(stream + (bit >> 3));
        out[k] = static_cast<int64_t>(
            add +
            ((word >> (64 - static_cast<int>(bit & 7) - width)) & mask));
      }
      return;
    }
  }
  size_t done = 0;
#ifdef BOS_KERNELS_X86
  if (width <= 14 && count >= 8 && HasWideKernels() && stream_len >= 8) {
    // Each 4-value group issues one 8-byte load at its start bit; cap
    // the wide groups to those whose load stays inside the stream.
    const uint64_t bit_limit = 8 * (stream_len - 8) + 7;
    const uint64_t group_bits = 4ULL * width;
    size_t groups = count / 4;
    if (bit_pos > bit_limit) {
      groups = 0;
    } else {
      groups = std::min<uint64_t>(groups,
                                  (bit_limit - bit_pos) / group_bits + 1);
    }
    if (groups > 0) {
      kAvx2RunTable[width](stream, bit_pos, groups, add, out);
      done = groups * 4;
    }
  }
#endif
  if (done < count) {
    kRunScalarTable[width](stream, stream_len,
                           bit_pos + done * static_cast<uint64_t>(width),
                           count - done, add, out + done);
  }
}

void UnpackBlocksAddBase(const uint8_t* src, size_t src_len, int width,
                         size_t n, uint64_t base, int64_t* out) {
  UnpackRunAddBase(src, src_len, /*bit_pos=*/0, width, n, base, out);
}

}  // namespace bos::bitpack
