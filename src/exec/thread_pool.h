#ifndef BOS_EXEC_THREAD_POOL_H_
#define BOS_EXEC_THREAD_POOL_H_

/// \file
/// Fixed-size work-stealing thread pool (DESIGN.md §9).
///
/// Each worker owns a deque it pushes and pops from the front (LIFO: the
/// task most recently submitted by a worker is the one whose data is
/// hottest); idle workers first drain the global injector queue (FIFO:
/// external submissions keep their order), then steal from the *back* of
/// a sibling's deque (the coldest task, minimising contention with the
/// owner). All queues are mutex-guarded — the pool favours being easy to
/// prove data-race-free (it is part of the TSan CI job) over lock-free
/// peak throughput; the codec chunks it schedules run for microseconds,
/// so queue cost is noise.
///
/// `ParallelFor` is the only construct library code should need. It is
/// **cooperative**: the calling thread claims and executes chunks
/// alongside the workers, so calling it from inside a pool task (nested
/// parallelism) can never deadlock — in the worst case the caller simply
/// executes every chunk itself. Chunk claiming is a single atomic
/// counter; results are whatever the body writes into caller-owned
/// slots, so output is deterministic regardless of which thread runs
/// which chunk.
///
/// Error handling: the body returns `Status`. The first non-OK status
/// (in completion order) wins and is returned from `ParallelFor`;
/// chunks not yet started when the error lands are drained without
/// running the body. Nothing throws; shutdown joins every worker.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace bos::exec {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 picks the hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains every queued task, then joins all workers. Safe to call with
  /// tasks still queued; ParallelFor callers never outlive their chunks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide shared pool, created on first use and never destroyed
  /// (its workers park when idle). Sized to the hardware concurrency.
  static ThreadPool& Default();

  size_t num_threads() const { return num_threads_; }

  /// Enqueues a fire-and-forget task. Called from a worker of this pool
  /// the task goes to that worker's own deque (LIFO); called from any
  /// other thread it goes to the global injector (FIFO).
  void Submit(std::function<void()> task);

  /// Runs `body(begin, end)` over disjoint chunks of [0, n), each at
  /// most `grain` long, on the pool plus the calling thread. Returns the
  /// first error (remaining chunks are skipped) or OK. `grain` == 0 is
  /// treated as 1. A single-chunk range runs inline with no scheduling.
  Status ParallelFor(size_t n, size_t grain,
                     const std::function<Status(size_t begin, size_t end)>& body);

  /// Lifetime total of tasks stolen from a sibling worker's deque
  /// (mirrored in the `bos.exec.pool.steals` telemetry counter).
  uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };
  struct ForState;

  void WorkerLoop(size_t index);
  /// Pops one task (own deque, injector, then steal) and runs it.
  bool RunOneTask(size_t self_index);
  bool PopTask(size_t self_index, std::function<void()>* task);

  size_t num_threads_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex injector_mu_;
  std::deque<std::function<void()>> injector_;

  // Parking lot: pending_ counts queued-but-unclaimed tasks; workers
  // sleep on cv_ only after a full scan finds nothing.
  std::mutex sleep_mu_;
  std::condition_variable cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> steals_{0};

  std::vector<std::thread> threads_;
};

}  // namespace bos::exec

#endif  // BOS_EXEC_THREAD_POOL_H_
