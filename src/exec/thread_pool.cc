#include "exec/thread_pool.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace bos::exec {
namespace {

// Identity of the current thread inside a pool, for Submit's push-to-own-
// deque fast path and for ParallelFor nesting diagnostics.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  BOS_TELEMETRY_GAUGE_SET("bos.exec.pool.threads",
                          static_cast<int64_t>(num_threads));
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  // Workers only exit once every queue is empty, so nothing is dropped.
}

ThreadPool& ThreadPool::Default() {
  // Leaked: the default pool's parked workers outlive every user,
  // including exit-time destructors that might still encode.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  BOS_TELEMETRY_COUNTER_ADD("bos.exec.pool.tasks", 1);
#if BOS_TELEMETRY_ENABLED
  // Trace-context propagation: wrap the task so it runs as a child of
  // the span that submitted it, whichever worker picks it up. Only done
  // while a trace is being recorded — otherwise submission cost is
  // exactly the untraced path.
  if (telemetry::trace::Active()) {
    const uint64_t parent = telemetry::trace::CurrentSpanId();
    task = [parent, inner = std::move(task)] {
      telemetry::trace::ScopedContext context(parent);
      BOS_TRACE_SPAN("bos.exec.pool.task");
      inner();
    };
  }
#endif
  if (tls_worker.pool == this) {
    Worker& w = *workers_[tls_worker.index];
    std::lock_guard<std::mutex> lock(w.mu);
    w.deque.push_front(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.push_back(std::move(task));
  }
  const size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  BOS_TELEMETRY_GAUGE_SET("bos.exec.pool.queue_depth",
                          static_cast<int64_t>(depth));
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    cv_.notify_one();
  }
}

bool ThreadPool::PopTask(size_t self_index, std::function<void()>* task) {
  // 1. Own deque, front (LIFO, hottest task).
  {
    Worker& w = *workers_[self_index];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      *task = std::move(w.deque.front());
      w.deque.pop_front();
      return true;
    }
  }
  // 2. Global injector, front (FIFO, external submission order).
  {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (!injector_.empty()) {
      *task = std::move(injector_.front());
      injector_.pop_front();
      return true;
    }
  }
  // 3. Steal from a sibling's back (coldest task). Start at the next
  // worker over so victims differ per thief.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self_index + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.deque.empty()) {
      *task = std::move(victim.deque.back());
      victim.deque.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      BOS_TELEMETRY_COUNTER_ADD("bos.exec.pool.steals", 1);
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunOneTask(size_t self_index) {
  std::function<void()> task;
  if (!PopTask(self_index, &task)) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  {
    BOS_TELEMETRY_SPAN("bos.exec.task.run_ns");
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker.pool = this;
  tls_worker.index = index;
  for (;;) {
    if (RunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    // Re-check under the parking-lot lock: a Submit between our failed
    // scan and this wait would otherwise be a lost wakeup.
    cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

// Shared state of one ParallelFor call. Runner tasks hold a shared_ptr,
// so a runner scheduled after the call already returned finds the claim
// counter exhausted and exits without touching the (caller-owned) body.
struct ThreadPool::ForState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  // Span that issued the ParallelFor; chunks adopt it as parent on
  // whichever thread claims them. 0 when no trace is being recorded.
  uint64_t trace_parent = 0;
  // Owned by the ParallelFor stack frame; only dereferenced while a
  // chunk is executing, which always happens before the caller returns.
  const std::function<Status(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  Status first_error;

  void RunChunks() {
    // Chunk spans parent directly to the submitting span (not to the
    // worker's queue-task span), so the fan-out reads as one flat layer
    // under the caller in the exported trace.
    telemetry::trace::ScopedContext trace_context(trace_parent);
    for (;;) {
      const size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        const size_t begin = chunk * grain;
        const size_t end = std::min(n, begin + grain);
        BOS_TRACE_SPAN("bos.exec.parallel_for.chunk");
        BOS_TRACE_ANNOTATE("begin", static_cast<int64_t>(begin));
        BOS_TRACE_ANNOTATE("end", static_cast<int64_t>(end));
        Status st = (*body)(begin, end);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.ok()) first_error = std::move(st);
          failed.store(true, std::memory_order_release);
        }
      }
      // Drained-on-error chunks still count as completed so the caller's
      // wait condition stays a single counter.
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

Status ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<Status(size_t begin, size_t end)>& body) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) return body(0, n);
  BOS_TELEMETRY_COUNTER_ADD("bos.exec.parallel_for.calls", 1);
  BOS_TELEMETRY_SPAN("bos.exec.parallel_for.span_ns");

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  if (telemetry::trace::Active()) {
    state->trace_parent = telemetry::trace::CurrentSpanId();
  }
  state->body = &body;

  // One runner per worker is enough: each runner loops over the claim
  // counter. The caller is runner number zero, so at most
  // num_chunks - 1 helpers are useful.
  const size_t helpers = std::min(num_threads_, num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == num_chunks;
  });
  return state->first_error;
}

}  // namespace bos::exec
