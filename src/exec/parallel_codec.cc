#include "exec/parallel_codec.h"

#include <algorithm>
#include <cstring>

#include "bitpack/varint.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::exec {
namespace {

// Encodes chunk `i` of `values` exactly as the serial path would: one
// independent Compress call into the chunk's own buffer.
Status EncodeOneChunk(const codecs::SeriesCodec& codec,
                      std::span<const int64_t> values, size_t chunk_values,
                      size_t i, Bytes* payload) {
  const size_t begin = i * chunk_values;
  const size_t len = std::min(chunk_values, values.size() - begin);
  return codec.Compress(values.subspan(begin, len), payload);
}

// Stitches the chunk directory and payloads; shared by the serial and
// parallel encoders so the frame bytes come from one place.
void StitchFrame(std::span<const int64_t> values, size_t chunk_values,
                 const std::vector<Bytes>& payloads, Bytes* out) {
  bitpack::PutVarint(out, values.size());
  bitpack::PutVarint(out, chunk_values);
  bitpack::PutVarint(out, payloads.size());
  for (const Bytes& p : payloads) bitpack::PutVarint(out, p.size());
  for (const Bytes& p : payloads) out->insert(out->end(), p.begin(), p.end());
}

struct FrameHeader {
  uint64_t total = 0;
  uint64_t chunk_values = 0;
  uint64_t num_chunks = 0;
  // Validated [offset, size) window of each chunk payload within `data`.
  std::vector<std::pair<size_t, size_t>> payloads;
};

// Parses and fully validates the chunk directory. All lengths are
// untrusted; every sum goes through checked arithmetic and the payloads
// must tile the rest of the buffer exactly.
Status ParseFrame(BytesView data, FrameHeader* hdr) {
  size_t offset = 0;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &hdr->total));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &hdr->chunk_values));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &hdr->num_chunks));
  if (hdr->total > codecs::kMaxStreamValues) {
    return Status::Corruption("chunked frame: total too large");
  }
  if (hdr->chunk_values == 0) {
    return Status::Corruption("chunked frame: zero chunk size");
  }
  const uint64_t expect_chunks =
      hdr->total == 0 ? 0
                      : (hdr->total + hdr->chunk_values - 1) / hdr->chunk_values;
  if (hdr->num_chunks != expect_chunks) {
    return Status::Corruption("chunked frame: chunk count mismatch");
  }
  // Every directory entry costs at least one byte, so a hostile header
  // claiming more chunks than remaining bytes is rejected before the
  // directory vector is allocated.
  if (hdr->num_chunks > data.size() - offset) {
    return Status::Corruption("chunked frame: directory truncated");
  }
  std::vector<uint64_t> sizes(hdr->num_chunks);
  for (uint64_t i = 0; i < hdr->num_chunks; ++i) {
    BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &sizes[i]));
  }
  uint64_t pos = offset;
  hdr->payloads.reserve(hdr->num_chunks);
  for (uint64_t i = 0; i < hdr->num_chunks; ++i) {
    if (!SliceFits(data.size(), pos, sizes[i])) {
      return Status::Corruption("chunked frame: payload truncated");
    }
    hdr->payloads.emplace_back(static_cast<size_t>(pos),
                               static_cast<size_t>(sizes[i]));
    pos += sizes[i];  // cannot wrap: SliceFits bounds it by data.size()
  }
  if (pos != data.size()) {
    return Status::Corruption("chunked frame: trailing bytes");
  }
  return Status::OK();
}

// Decodes chunk `i` into its slot of `out` (pre-sized by the caller) and
// checks the count matches the directory's tiling.
Status DecodeOneChunk(const codecs::SeriesCodec& codec, BytesView data,
                      const FrameHeader& hdr, size_t i, int64_t* slot_begin) {
  const auto [pay_off, pay_len] = hdr.payloads[i];
  const uint64_t begin = i * hdr.chunk_values;
  const uint64_t expect =
      std::min<uint64_t>(hdr.chunk_values, hdr.total - begin);
  std::vector<int64_t> local;
  BOS_RETURN_NOT_OK(codec.Decompress(data.subspan(pay_off, pay_len), &local));
  if (local.size() != expect) {
    return Status::Corruption("chunked frame: chunk value count mismatch");
  }
  std::memcpy(slot_begin, local.data(), local.size() * sizeof(int64_t));
  return Status::OK();
}

ThreadPool& PoolOf(const ParallelCodecOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::Default();
}

size_t ChunkValuesOf(const ParallelCodecOptions& options) {
  return std::max<size_t>(1, options.chunk_values);
}

}  // namespace

Status ParallelEncodeSeries(const codecs::SeriesCodec& codec,
                            std::span<const int64_t> values, Bytes* out,
                            const ParallelCodecOptions& options) {
  BOS_TELEMETRY_SPAN("bos.exec.codec.encode_ns");
  BOS_TRACE_SPAN("bos.exec.codec.encode");
  BOS_TRACE_ANNOTATE("values", static_cast<int64_t>(values.size()));
  const size_t chunk_values = ChunkValuesOf(options);
  const size_t num_chunks =
      values.empty() ? 0 : (values.size() + chunk_values - 1) / chunk_values;
  BOS_TELEMETRY_COUNTER_ADD("bos.exec.codec.encode_chunks", num_chunks);
  std::vector<Bytes> payloads(num_chunks);
  BOS_RETURN_NOT_OK(PoolOf(options).ParallelFor(
      num_chunks, 1, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          BOS_TRACE_SPAN("bos.exec.codec.encode_chunk");
          BOS_TRACE_ANNOTATE("chunk", static_cast<int64_t>(i));
          BOS_RETURN_NOT_OK(
              EncodeOneChunk(codec, values, chunk_values, i, &payloads[i]));
          BOS_TRACE_ANNOTATE("bytes", static_cast<int64_t>(payloads[i].size()));
        }
        return Status::OK();
      }));
  StitchFrame(values, chunk_values, payloads, out);
  return Status::OK();
}

Status ParallelDecodeSeries(const codecs::SeriesCodec& codec, BytesView data,
                            std::vector<int64_t>* out,
                            const ParallelCodecOptions& options) {
  BOS_TELEMETRY_SPAN("bos.exec.codec.decode_ns");
  BOS_TRACE_SPAN("bos.exec.codec.decode");
  FrameHeader hdr;
  BOS_RETURN_NOT_OK(codecs::CountDecodeRejection(ParseFrame(data, &hdr)));
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(hdr.total));
  const Status st = PoolOf(options).ParallelFor(
      hdr.num_chunks, 1, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          BOS_RETURN_NOT_OK(DecodeOneChunk(
              codec, data, hdr, i,
              out->data() + base + i * static_cast<size_t>(hdr.chunk_values)));
        }
        return Status::OK();
      });
  if (!st.ok()) out->resize(base);  // leave no partially decoded tail
  return codecs::CountDecodeRejection(st);
}

Status SerialEncodeChunked(const codecs::SeriesCodec& codec,
                           std::span<const int64_t> values, Bytes* out,
                           size_t chunk_values) {
  chunk_values = std::max<size_t>(1, chunk_values);
  const size_t num_chunks =
      values.empty() ? 0 : (values.size() + chunk_values - 1) / chunk_values;
  std::vector<Bytes> payloads(num_chunks);
  for (size_t i = 0; i < num_chunks; ++i) {
    BOS_RETURN_NOT_OK(
        EncodeOneChunk(codec, values, chunk_values, i, &payloads[i]));
  }
  StitchFrame(values, chunk_values, payloads, out);
  return Status::OK();
}

Status SerialDecodeChunked(const codecs::SeriesCodec& codec, BytesView data,
                           std::vector<int64_t>* out) {
  FrameHeader hdr;
  BOS_RETURN_NOT_OK(codecs::CountDecodeRejection(ParseFrame(data, &hdr)));
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(hdr.total));
  for (size_t i = 0; i < hdr.num_chunks; ++i) {
    const Status st = DecodeOneChunk(
        codec, data, hdr, i,
        out->data() + base + i * static_cast<size_t>(hdr.chunk_values));
    if (!st.ok()) {
      out->resize(base);
      return codecs::CountDecodeRejection(st);
    }
  }
  return Status::OK();
}

}  // namespace bos::exec
