#ifndef BOS_EXEC_STRAND_H_
#define BOS_EXEC_STRAND_H_

/// \file
/// Serialized executor over a ThreadPool (DESIGN.md §14).
///
/// A Strand guarantees that the tasks posted to it run one at a time, in
/// FIFO order, on the underlying pool — the classic asio strand. It is
/// the concurrency primitive the network server builds shards from: a
/// `TsStore`'s public API is externally synchronized, so giving each
/// shard a strand turns "serialize all access to this store" into "post
/// to this shard's strand", with no mutex held across the store's own
/// internal `ParallelFor` fan-out (strand tasks run *on* pool workers,
/// and the pool's cooperative ParallelFor nests safely).
///
/// Scheduling: Post appends to the strand's queue; if no drain task is in
/// flight, one is submitted to the pool. The drain task runs tasks from
/// the queue one at a time and, when more remain after a bounded run
/// quantum, resubmits itself — so one busy strand cannot monopolize a
/// worker while other pool work starves.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "exec/thread_pool.h"

namespace bos::exec {

class Strand {
 public:
  /// Tasks run on `pool`, which must outlive the strand.
  explicit Strand(ThreadPool* pool);

  /// Blocks until the queue is empty and no task is running.
  ~Strand();

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  /// Enqueues `task`. Tasks run in Post order, never concurrently with
  /// each other. Safe to call from any thread, including from inside a
  /// strand task (the nested task runs after the current one returns).
  void Post(std::function<void()> task);

  /// Blocks until every task posted before this call has finished.
  /// Tasks posted concurrently with Wait may or may not be covered. Must
  /// not be called from inside a strand task (it would wait on itself).
  void Wait();

  /// Queued-but-not-started tasks (diagnostics; racy by nature).
  size_t pending() const;

 private:
  /// Runs up to `kQuantum` tasks, then either resubmits or goes idle.
  void Drain();

  static constexpr size_t kQuantum = 16;

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  bool running_ = false;  ///< a Drain task is submitted or executing
};

}  // namespace bos::exec

#endif  // BOS_EXEC_STRAND_H_
