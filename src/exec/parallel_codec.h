#ifndef BOS_EXEC_PARALLEL_CODEC_H_
#define BOS_EXEC_PARALLEL_CODEC_H_

/// \file
/// Chunk-parallel series encode/decode (DESIGN.md §9).
///
/// A series is split into block-aligned chunks; each chunk is compressed
/// independently through the ordinary `SeriesCodec` interface (so every
/// TRANSFORM+OPERATOR spec in the registry parallelises for free), and
/// the chunk payloads are stitched behind a framed chunk directory:
///
///   varint total_values | varint chunk_values | varint num_chunks |
///   num_chunks x varint payload_size | payloads, in chunk order
///
/// **Determinism invariant:** each chunk is encoded into its own buffer
/// and buffers are concatenated in chunk order, so the frame is
/// byte-identical regardless of thread count or scheduling order — and
/// identical to `SerialEncodeChunked`, the no-pool reference path
/// (tests/parallel_codec_test.cc pins this for every registered spec at
/// 1/2/7/16 threads). Each payload is exactly what `codec.Compress`
/// produces for that chunk, i.e. the serial bytes of the underlying
/// codec.
///
/// The directory is what makes *decode* parallel: block streams are
/// self-delimiting but not indexable, so without the per-chunk sizes a
/// reader must decode sequentially to find block boundaries.

#include <cstdint>
#include <span>
#include <vector>

#include "codecs/series_codec.h"
#include "exec/thread_pool.h"
#include "util/buffer.h"
#include "util/status.h"

namespace bos::exec {

/// Default chunk length: 16 BOS blocks. Big enough that per-chunk codec
/// setup amortises, small enough that short series still fan out.
inline constexpr size_t kDefaultChunkValues = 16 * codecs::kDefaultBlockSize;

struct ParallelCodecOptions {
  /// Values per chunk. Must stay a multiple of the codec block size for
  /// the per-chunk streams to be block-aligned (the default block size
  /// divides kDefaultChunkValues). Clamped to >= 1.
  size_t chunk_values = kDefaultChunkValues;

  /// Pool to run on; nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

/// Compresses `values` into a chunk-directory frame appended to `out`,
/// encoding chunks on the pool. Byte-identical to SerialEncodeChunked for
/// any thread count.
Status ParallelEncodeSeries(const codecs::SeriesCodec& codec,
                            std::span<const int64_t> values, Bytes* out,
                            const ParallelCodecOptions& options = {});

/// Decompresses a chunk-directory frame (the whole of `data`), decoding
/// chunks on the pool. Appends to `out`; the result is identical to
/// SerialDecodeChunked.
Status ParallelDecodeSeries(const codecs::SeriesCodec& codec, BytesView data,
                            std::vector<int64_t>* out,
                            const ParallelCodecOptions& options = {});

/// Single-threaded reference implementations of the same frame. These
/// never touch a pool; the determinism tests diff the parallel paths
/// against them.
Status SerialEncodeChunked(const codecs::SeriesCodec& codec,
                           std::span<const int64_t> values, Bytes* out,
                           size_t chunk_values = kDefaultChunkValues);
Status SerialDecodeChunked(const codecs::SeriesCodec& codec, BytesView data,
                           std::vector<int64_t>* out);

}  // namespace bos::exec

#endif  // BOS_EXEC_PARALLEL_CODEC_H_
