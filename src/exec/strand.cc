#include "exec/strand.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace bos::exec {

Strand::Strand(ThreadPool* pool) : pool_(pool) {}

Strand::~Strand() { Wait(); }

void Strand::Post(std::function<void()> task) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (!running_) {
      running_ = true;
      schedule = true;
    }
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.exec.strand.posted", 1);
  if (schedule) pool_->Submit([this] { Drain(); });
}

void Strand::Drain() {
  for (size_t ran = 0; ran < kQuantum; ++ran) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        running_ = false;
        idle_cv_.notify_all();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // queue_ unlocked: the task may Post to this strand
  }
  // Quantum exhausted with work left: yield the worker and requeue.
  // running_ stays true, so Posts in between do not double-schedule.
  BOS_TELEMETRY_COUNTER_ADD("bos.exec.strand.requeues", 1);
  pool_->Submit([this] { Drain(); });
}

void Strand::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

size_t Strand::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace bos::exec
