#include "general/lzma_lite.h"

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "bitpack/varint.h"
#include "util/macros.h"

namespace bos::general {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = kMinMatch + 255;  // length fits the 8-bit tree
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr uint16_t kProbInit = 1024;  // = 2048 / 2

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761U) >> (32 - kHashBits);
}

// ----- LZMA-style binary range coder ---------------------------------

class RangeEncoder {
 public:
  explicit RangeEncoder(Bytes* out) : out_(out) {}

  void EncodeBit(uint16_t* prob, int bit) {
    const uint32_t bound = (range_ >> 11) * *prob;
    if (bit == 0) {
      range_ = bound;
      *prob += (2048 - *prob) >> 5;
    } else {
      low_ += bound;
      range_ -= bound;
      *prob -= *prob >> 5;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      ShiftLow();
    }
  }

  void EncodeTree(uint16_t* probs, int bits, uint32_t value) {
    uint32_t ctx = 1;
    for (int i = bits - 1; i >= 0; --i) {
      const int bit = (value >> i) & 1;
      EncodeBit(&probs[ctx], bit);
      ctx = (ctx << 1) | bit;
    }
  }

  void Flush() {
    for (int i = 0; i < 5; ++i) ShiftLow();
  }

 private:
  void ShiftLow() {
    if (static_cast<uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
      do {
        out_->push_back(static_cast<uint8_t>(cache_ + carry));
        cache_ = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = static_cast<uint32_t>(low_) << 8;
  }

  Bytes* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  RangeDecoder(BytesView data, size_t* pos) : data_(data), pos_(pos) {
    for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | NextByte();
  }

  int DecodeBit(uint16_t* prob) {
    const uint32_t bound = (range_ >> 11) * *prob;
    int bit;
    if (code_ < bound) {
      range_ = bound;
      *prob += (2048 - *prob) >> 5;
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      *prob -= *prob >> 5;
      bit = 1;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | NextByte();
    }
    return bit;
  }

  uint32_t DecodeTree(uint16_t* probs, int bits) {
    uint32_t ctx = 1;
    for (int i = 0; i < bits; ++i) {
      ctx = (ctx << 1) | static_cast<uint32_t>(DecodeBit(&probs[ctx]));
    }
    return ctx - (1u << bits);
  }

 private:
  // Reading past the stream yields zero bytes; the symbol loop is bounded
  // by the decoded size, and truncation surfaces as a size mismatch.
  uint8_t NextByte() {
    return *pos_ < data_.size() ? data_[(*pos_)++] : 0;
  }

  BytesView data_;
  size_t* pos_;
  uint32_t code_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
};

// ----- Probability model ----------------------------------------------

struct Model {
  uint16_t is_match = kProbInit;
  std::array<uint16_t, 512> literal;    // 8-bit tree (256 leaves)
  std::array<uint16_t, 512> match_len;  // 8-bit tree, length - kMinMatch
  std::vector<uint16_t> offset;         // 16-bit tree, offset - 1

  Model() : offset(1u << 17, kProbInit) {
    literal.fill(kProbInit);
    match_len.fill(kProbInit);
  }
};

}  // namespace

Status LzmaLiteCodec::Compress(BytesView input, Bytes* out) const {
  bitpack::PutVarint(out, input.size());
  if (input.empty()) return Status::OK();

  auto model = std::make_unique<Model>();
  RangeEncoder enc(out);
  std::vector<int64_t> table(1 << kHashBits, -1);
  const uint8_t* base = input.data();
  const size_t n = input.size();
  size_t pos = 0;
  const size_t match_limit = n > kMinMatch ? n - kMinMatch : 0;
  while (pos < n) {
    size_t match_len = 0;
    size_t match_offset = 0;
    if (pos < match_limit) {
      const uint32_t h = Hash4(base + pos);
      const int64_t candidate = table[h];
      table[h] = static_cast<int64_t>(pos);
      if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kMaxOffset &&
          std::memcmp(base + candidate, base + pos, kMinMatch) == 0) {
        size_t len = kMinMatch;
        while (len < kMaxMatch && pos + len < n &&
               base[candidate + len] == base[pos + len]) {
          ++len;
        }
        match_len = len;
        match_offset = pos - static_cast<size_t>(candidate);
      }
    }
    if (match_len >= kMinMatch) {
      enc.EncodeBit(&model->is_match, 1);
      enc.EncodeTree(model->match_len.data(), 8,
                     static_cast<uint32_t>(match_len - kMinMatch));
      enc.EncodeTree(model->offset.data(), 16,
                     static_cast<uint32_t>(match_offset - 1));
      pos += match_len;
    } else {
      enc.EncodeBit(&model->is_match, 0);
      enc.EncodeTree(model->literal.data(), 8, base[pos]);
      ++pos;
    }
  }
  enc.Flush();
  return Status::OK();
}

Status LzmaLiteCodec::Decompress(BytesView data, Bytes* out) const {
  size_t pos = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &pos, &n));
  if (n == 0) return Status::OK();
  if (n > (1ULL << 30)) return Status::Corruption("LZMA: size too large");

  auto model = std::make_unique<Model>();
  RangeDecoder dec(data, &pos);
  const size_t out_start = out->size();
  out->reserve(out_start + static_cast<size_t>(std::min<uint64_t>(n, 1ULL << 20)));
  while (out->size() - out_start < n) {
    if (dec.DecodeBit(&model->is_match)) {
      const size_t match_len =
          kMinMatch + dec.DecodeTree(model->match_len.data(), 8);
      const size_t offset = 1 + dec.DecodeTree(model->offset.data(), 16);
      if (offset > out->size() - out_start) {
        return Status::Corruption("LZMA: bad offset");
      }
      if (out->size() - out_start + match_len > n) {
        return Status::Corruption("LZMA: overlong match");
      }
      const size_t src = out->size() - offset;
      for (size_t i = 0; i < match_len; ++i) out->push_back((*out)[src + i]);
    } else {
      out->push_back(
          static_cast<uint8_t>(dec.DecodeTree(model->literal.data(), 8)));
    }
  }
  return Status::OK();
}

}  // namespace bos::general
