#ifndef BOS_GENERAL_FFT_H_
#define BOS_GENERAL_FFT_H_

#include <complex>
#include <span>
#include <vector>

namespace bos::general {

/// \brief In-place iterative radix-2 FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and divides by n.
void Fft(std::vector<std::complex<double>>* data, bool inverse);

/// \brief DCT-II of a real sequence (any power-of-two length), computed
/// via a same-size complex FFT using the even-odd reordering identity.
/// Orthonormal scaling is NOT applied; `InverseDct` is the exact inverse
/// of this transform.
std::vector<double> Dct(std::span<const double> input);

/// \brief Inverse of `Dct` (a scaled DCT-III).
std::vector<double> InverseDct(std::span<const double> coeffs);

/// \brief Real-input FFT: returns the first n/2+1 complex bins (the rest
/// follow by conjugate symmetry). `n` must be a power of two.
std::vector<std::complex<double>> RealFft(std::span<const double> input);

/// \brief Inverse of `RealFft`: reconstructs the length-`n` real sequence
/// from its n/2+1 bins.
std::vector<double> InverseRealFft(
    std::span<const std::complex<double>> bins, size_t n);

}  // namespace bos::general

#endif  // BOS_GENERAL_FFT_H_
