#include "general/transform_codec.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <complex>

#include "bitpack/varint.h"
#include "general/fft.h"
#include "util/macros.h"

namespace bos::general {
namespace {

// Quantization target: coefficients land in roughly +-2^20.
constexpr double kCoeffRange = 1048576.0;

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double ChooseQuantStep(const std::vector<double>& coeffs) {
  double max_abs = 0;
  for (double c : coeffs) max_abs = std::max(max_abs, std::abs(c));
  return std::max(1.0, max_abs / kCoeffRange);
}

std::vector<int64_t> Quantize(const std::vector<double>& coeffs, double q) {
  std::vector<int64_t> out(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) out[i] = std::llround(coeffs[i] / q);
  return out;
}

std::vector<double> Dequantize(const std::vector<int64_t>& coeffs, double q) {
  std::vector<double> out(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) {
    out[i] = static_cast<double>(coeffs[i]) * q;
  }
  return out;
}

// Reconstruction must be bit-identical between encoder and decoder, so
// both sides call exactly this function.
std::vector<double> Reconstruct(TransformKind kind,
                                const std::vector<int64_t>& qcoeffs, double q,
                                size_t padded) {
  const std::vector<double> coeffs = Dequantize(qcoeffs, q);
  if (kind == TransformKind::kDct) return InverseDct(coeffs);
  // FFT: coefficients hold interleaved (re, im) for padded/2+1 bins.
  std::vector<std::complex<double>> bins(padded / 2 + 1);
  for (size_t k = 0; k < bins.size(); ++k) {
    bins[k] = {coeffs[2 * k], coeffs[2 * k + 1]};
  }
  return InverseRealFft(bins, padded);
}

int64_t SafeRound(double v) {
  if (!(std::abs(v) < 4.0e18)) return 0;  // residual absorbs the difference
  return std::llround(v);
}

int64_t WrappingSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
int64_t WrappingAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}

}  // namespace

TransformCodec::TransformCodec(TransformKind kind,
                               std::shared_ptr<const core::PackingOperator> op,
                               size_t block_size)
    : kind_(kind), op_(std::move(op)), block_size_(block_size) {
  assert(block_size_ >= 2 && (block_size_ & (block_size_ - 1)) == 0);
}

std::string TransformCodec::name() const {
  return std::string(kind_ == TransformKind::kDct ? "DCT+" : "FFT+") +
         std::string(op_->name());
}

Status TransformCodec::Compress(std::span<const int64_t> values,
                                Bytes* out) const {
  bitpack::PutVarint(out, values.size());
  for (size_t start = 0; start < values.size(); start += block_size_) {
    const size_t len = std::min(block_size_, values.size() - start);
    const size_t padded = NextPowerOfTwo(std::max<size_t>(len, 2));
    // Pad with the last value: keeps the padded tail smooth.
    std::vector<double> d(padded, static_cast<double>(values[start + len - 1]));
    for (size_t i = 0; i < len; ++i) {
      d[i] = static_cast<double>(values[start + i]);
    }

    std::vector<double> coeffs;
    if (kind_ == TransformKind::kDct) {
      coeffs = Dct(d);
    } else {
      const auto bins = RealFft(d);
      coeffs.reserve(2 * bins.size());
      for (const auto& b : bins) {
        coeffs.push_back(b.real());
        coeffs.push_back(b.imag());
      }
    }
    const double q = ChooseQuantStep(coeffs);
    const std::vector<int64_t> qcoeffs = Quantize(coeffs, q);
    const std::vector<double> recon = Reconstruct(kind_, qcoeffs, q, padded);

    std::vector<int64_t> residuals(len);
    for (size_t i = 0; i < len; ++i) {
      residuals[i] = WrappingSub(values[start + i], SafeRound(recon[i]));
    }

    PutFixed<uint64_t>(out, std::bit_cast<uint64_t>(q));
    BOS_RETURN_NOT_OK(op_->Encode(qcoeffs, out));
    BOS_RETURN_NOT_OK(op_->Encode(residuals, out));
  }
  return Status::OK();
}

Status TransformCodec::Decompress(BytesView data,
                                  std::vector<int64_t>* out) const {
  size_t offset = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &offset, &n));
  if (n > codecs::kMaxStreamValues) {
    return Status::Corruption("transform: n too large");
  }
  codecs::ReserveBounded(out, n);
  for (uint64_t done = 0; done < n; done += block_size_) {
    const size_t len = std::min<uint64_t>(block_size_, n - done);
    const size_t padded = NextPowerOfTwo(std::max<size_t>(len, 2));
    uint64_t q_bits;
    if (!GetFixed<uint64_t>(data, offset, &q_bits)) {
      return Status::Corruption("transform: quant step truncated");
    }
    offset += 8;
    const double q = std::bit_cast<double>(q_bits);
    if (!(q >= 1.0) || !std::isfinite(q)) {
      return Status::Corruption("transform: bad quant step");
    }

    std::vector<int64_t> qcoeffs, residuals;
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &qcoeffs));
    BOS_RETURN_NOT_OK(op_->Decode(data, &offset, &residuals));
    const size_t expected_coeffs =
        kind_ == TransformKind::kDct ? padded : 2 * (padded / 2 + 1);
    if (qcoeffs.size() != expected_coeffs || residuals.size() != len) {
      return Status::Corruption("transform: block shape mismatch");
    }
    const std::vector<double> recon = Reconstruct(kind_, qcoeffs, q, padded);
    for (size_t i = 0; i < len; ++i) {
      out->push_back(WrappingAdd(SafeRound(recon[i]), residuals[i]));
    }
  }
  if (offset != data.size()) {
    return Status::Corruption("transform: trailing bytes after stream");
  }
  return Status::OK();
}

}  // namespace bos::general
