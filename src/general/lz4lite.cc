#include "general/lz4lite.h"

#include <cstring>
#include <vector>

#include "bitpack/varint.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::general {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761U) >> (32 - kHashBits);
}

// Emits a length in the LZ4 style: the 4-bit nibble is given by the
// caller; the remainder is a run of 255-bytes plus a final byte.
void PutExtendedLength(Bytes* out, size_t remainder) {
  while (remainder >= 255) {
    out->push_back(255);
    remainder -= 255;
  }
  out->push_back(static_cast<uint8_t>(remainder));
}

Status GetExtendedLength(BytesView data, size_t* pos, size_t* length) {
  for (;;) {
    if (*pos >= data.size()) return Status::Corruption("LZ4: length truncated");
    const uint8_t b = data[(*pos)++];
    *length += b;
    if (b != 255) return Status::OK();
  }
}

void EmitSequence(BytesView literals, size_t match_len, size_t offset,
                  Bytes* out) {
  const size_t lit_len = literals.size();
  const size_t match_extra = match_len == 0 ? 0 : match_len - kMinMatch;
  const uint8_t token =
      static_cast<uint8_t>((std::min<size_t>(lit_len, 15) << 4) |
                           std::min<size_t>(match_extra, 15));
  out->push_back(token);
  if (lit_len >= 15) PutExtendedLength(out, lit_len - 15);
  out->insert(out->end(), literals.begin(), literals.end());
  if (match_len == 0) return;  // final literal-only sequence
  out->push_back(static_cast<uint8_t>(offset & 0xff));
  out->push_back(static_cast<uint8_t>(offset >> 8));
  if (match_extra >= 15) PutExtendedLength(out, match_extra - 15);
}

}  // namespace

Status Lz4LiteCodec::Compress(BytesView input, Bytes* out) const {
  bitpack::PutVarint(out, input.size());
  if (input.empty()) return Status::OK();

  std::vector<int64_t> table(1 << kHashBits, -1);
  const uint8_t* base = input.data();
  const size_t n = input.size();
  size_t pos = 0;
  size_t literal_start = 0;
  // The last kMinMatch+1 bytes are always literals (simplified end rule).
  const size_t match_limit = n > kMinMatch + 1 ? n - kMinMatch - 1 : 0;
  while (pos < match_limit) {
    const uint32_t h = Hash4(base + pos);
    const int64_t candidate = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kMaxOffset &&
        std::memcmp(base + candidate, base + pos, kMinMatch) == 0) {
      // Extend the match forward.
      size_t len = kMinMatch;
      while (pos + len < n &&
             base[candidate + len] == base[pos + len]) {
        ++len;
      }
      EmitSequence(input.subspan(literal_start, pos - literal_start), len,
                   pos - static_cast<size_t>(candidate), out);
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals (omitted when a match ended exactly at the input
  // end; the decoder stops on the byte count).
  if (literal_start < n) EmitSequence(input.subspan(literal_start), 0, 0, out);
  return Status::OK();
}

Status Lz4LiteCodec::Decompress(BytesView data, Bytes* out) const {
  size_t pos = 0;
  uint64_t n;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, &pos, &n));
  if (n > (1ULL << 30)) return Status::Corruption("LZ4: size too large");
  const size_t out_start = out->size();
  out->reserve(out_start + static_cast<size_t>(std::min<uint64_t>(n, 1ULL << 20)));
  while (out->size() - out_start < n) {
    if (pos >= data.size()) return Status::Corruption("LZ4: token truncated");
    const uint8_t token = data[pos++];
    size_t lit_len = token >> 4;
    if (lit_len == 15) BOS_RETURN_NOT_OK(GetExtendedLength(data, &pos, &lit_len));
    if (!SliceFits(data.size(), pos, lit_len)) {
      return Status::Corruption("LZ4: literals truncated");
    }
    out->insert(out->end(), data.begin() + pos, data.begin() + pos + lit_len);
    pos += lit_len;
    if (out->size() - out_start >= n) break;  // final sequence has no match

    if (pos + 2 > data.size()) return Status::Corruption("LZ4: offset truncated");
    const size_t offset = data[pos] | (static_cast<size_t>(data[pos + 1]) << 8);
    pos += 2;
    size_t match_len = token & 0x0f;
    if (match_len == 15) {
      BOS_RETURN_NOT_OK(GetExtendedLength(data, &pos, &match_len));
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > out->size() - out_start) {
      return Status::Corruption("LZ4: bad offset");
    }
    // Byte-by-byte copy: offsets shorter than the match length replicate.
    size_t src = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src + i]);
    }
  }
  if (out->size() - out_start != n) return Status::Corruption("LZ4: size mismatch");
  return Status::OK();
}

}  // namespace bos::general
