#ifndef BOS_GENERAL_LZMA_LITE_H_
#define BOS_GENERAL_LZMA_LITE_H_

#include "general/byte_codec.h"

namespace bos::general {

/// \brief LZMA-lite: dictionary compression with range encoding, the two
/// ingredients the paper attributes to 7-Zip (§II-B).
///
/// A greedy LZ77 parse (hash-table matcher, 64 KiB window, minimum match
/// 4) feeds an adaptive binary range coder in the LZMA style: one
/// probability per is-match flag, a 256-leaf bit tree for literals, an
/// 8-bit tree for match lengths and a 16-bit tree for offsets. All
/// probabilities adapt with the classic 2048/32 update rule.
///
/// Stands in for the 7-Zip binary in the Figure 13 experiment.
class LzmaLiteCodec final : public ByteCodec {
 public:
  std::string name() const override { return "7-Zip"; }
  Status Compress(BytesView input, Bytes* out) const override;
  Status Decompress(BytesView data, Bytes* out) const override;
};

}  // namespace bos::general

#endif  // BOS_GENERAL_LZMA_LITE_H_
