#ifndef BOS_GENERAL_TRANSFORM_CODEC_H_
#define BOS_GENERAL_TRANSFORM_CODEC_H_

#include <memory>

#include "codecs/series_codec.h"
#include "core/packing.h"

namespace bos::general {

/// Frequency transform used by TransformCodec.
enum class TransformKind {
  kDct,  ///< DCT-II, the speech-processing path of §II-B
  kFft,  ///< real FFT, the signal-processing path of §II-B
};

/// \brief Lossless frequency-domain codec: per block, transform, quantize
/// the coefficients, and store quantized coefficients *plus* the integer
/// residuals needed to reproduce the input exactly (the paper: "to enable
/// lossless compression, the corresponding residuals need to be stored").
///
/// Both the coefficient stream and the residual stream go through the
/// configured packing operator, so `DCT+BOS` / `FFT+BOS` vs `DCT+BP` /
/// `FFT+BP` (Figure 13) differ only in the operator.
class TransformCodec final : public codecs::SeriesCodec {
 public:
  /// `block_size` must be a power of two.
  TransformCodec(TransformKind kind,
                 std::shared_ptr<const core::PackingOperator> op,
                 size_t block_size = 1024);

  std::string name() const override;
  Status Compress(std::span<const int64_t> values, Bytes* out) const override;
  Status Decompress(BytesView data, std::vector<int64_t>* out) const override;

 private:
  TransformKind kind_;
  std::shared_ptr<const core::PackingOperator> op_;
  size_t block_size_;
};

}  // namespace bos::general

#endif  // BOS_GENERAL_TRANSFORM_CODEC_H_
