#ifndef BOS_GENERAL_BYTE_CODEC_H_
#define BOS_GENERAL_BYTE_CODEC_H_

#include <string>

#include "util/buffer.h"
#include "util/status.h"

namespace bos::general {

/// \brief A general-purpose lossless byte-stream compressor (the LZ4 and
/// 7-Zip roles of Figure 13). Byte codecs apply directly over data encoded
/// by a packing operator, i.e. they are complementary to BOS (§II-B):
/// `BOS+LZ4` is `Lz4Compress(BosEncode(values))`.
class ByteCodec {
 public:
  virtual ~ByteCodec() = default;

  virtual std::string name() const = 0;

  /// Compresses `input` into `out` (appending). Self-framing: the
  /// uncompressed size is stored in the stream.
  virtual Status Compress(BytesView input, Bytes* out) const = 0;

  /// Inverse of Compress: consumes the entire `data` buffer.
  virtual Status Decompress(BytesView data, Bytes* out) const = 0;
};

}  // namespace bos::general

#endif  // BOS_GENERAL_BYTE_CODEC_H_
