#ifndef BOS_GENERAL_LZ4LITE_H_
#define BOS_GENERAL_LZ4LITE_H_

#include "general/byte_codec.h"

namespace bos::general {

/// \brief LZ4-lite: an LZ77 compressor in the LZ4 block format spirit
/// (Collet) — greedy hash-table matching, token bytes with 4-bit literal
/// and match lengths, 2-byte offsets, minimum match of 4.
///
/// Stands in for the LZ4 binary in the Figure 13 experiment; same
/// algorithmic family (byte-oriented sliding-window LZ77), independent
/// implementation.
class Lz4LiteCodec final : public ByteCodec {
 public:
  std::string name() const override { return "LZ4"; }
  Status Compress(BytesView input, Bytes* out) const override;
  Status Decompress(BytesView data, Bytes* out) const override;
};

}  // namespace bos::general

#endif  // BOS_GENERAL_LZ4LITE_H_
