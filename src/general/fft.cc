#include "general/fft.h"

#include <cassert>
#include <cmath>

namespace bos::general {
namespace {

constexpr double kPi = 3.14159265358979323846;

[[maybe_unused]] bool IsPowerOfTwo(size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  auto& a = *data;
  const size_t n = a.size();
  assert(IsPowerOfTwo(n));
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2 * kPi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> Dct(std::span<const double> input) {
  const size_t n = input.size();
  assert(IsPowerOfTwo(n));
  // Makhoul's even-odd reordering: v = (x0, x2, ..., x3, x1).
  std::vector<std::complex<double>> v(n);
  for (size_t k = 0; k < n / 2; ++k) {
    v[k] = input[2 * k];
    v[n - 1 - k] = input[2 * k + 1];
  }
  if (n == 1) v[0] = input[0];
  Fft(&v, /*inverse=*/false);
  std::vector<double> out(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle = -kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    const std::complex<double> w(std::cos(angle), std::sin(angle));
    out[k] = 2.0 * (w * v[k]).real();
  }
  return out;
}

std::vector<double> InverseDct(std::span<const double> coeffs) {
  const size_t n = coeffs.size();
  assert(IsPowerOfTwo(n));
  if (n == 1) return {coeffs[0] / 2.0};
  std::vector<std::complex<double>> v(n);
  for (size_t k = 0; k < n; ++k) {
    const double ck = coeffs[k];
    const double cnk = k == 0 ? 0.0 : coeffs[n - k];
    const double angle = kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    const std::complex<double> w(std::cos(angle), std::sin(angle));
    v[k] = 0.5 * w * std::complex<double>(ck, -cnk);
  }
  Fft(&v, /*inverse=*/true);
  std::vector<double> out(n);
  for (size_t k = 0; k < n / 2; ++k) {
    out[2 * k] = v[k].real();
    out[2 * k + 1] = v[n - 1 - k].real();
  }
  return out;
}

std::vector<std::complex<double>> RealFft(std::span<const double> input) {
  const size_t n = input.size();
  assert(IsPowerOfTwo(n));
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = input[i];
  Fft(&data, /*inverse=*/false);
  data.resize(n / 2 + 1);
  return data;
}

std::vector<double> InverseRealFft(std::span<const std::complex<double>> bins,
                                   size_t n) {
  assert(IsPowerOfTwo(n));
  assert(bins.size() == n / 2 + 1);
  std::vector<std::complex<double>> data(n);
  for (size_t k = 0; k <= n / 2; ++k) data[k] = bins[k];
  for (size_t k = n / 2 + 1; k < n; ++k) data[k] = std::conj(bins[n - k]);
  Fft(&data, /*inverse=*/true);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = data[i].real();
  return out;
}

}  // namespace bos::general
