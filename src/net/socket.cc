#include "net/socket.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define BOS_NET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace bos::net {

#if defined(BOS_NET_HAVE_SOCKETS)

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

#if !defined(MSG_NOSIGNAL)
constexpr int MSG_NOSIGNAL = 0;  // macOS: rely on SO_NOSIGPIPE instead
#endif

void DisableSigpipe(int fd) {
#if defined(SO_NOSIGPIPE)
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address literal: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  DisableSigpipe(fd);
  return Socket(fd);
}

Status Socket::SendAll(BytesView data) {
  if (fd_ < 0) return Status::InvalidArgument("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvSome(size_t cap, Bytes* out) {
  if (fd_ < 0) return Status::InvalidArgument("recv on closed socket");
  const size_t old = out->size();
  out->resize(old + cap);
  for (;;) {
    const ssize_t n = ::recv(fd_, out->data() + old, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      out->resize(old);
      return Errno("recv");
    }
    out->resize(old + static_cast<size_t>(n));
    return Status::OK();
  }
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ListenSocket::Listen(uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Socket> ListenSocket::Accept() {
  // Snapshot the fd: Close() from another thread sets fd_ = -1 and
  // closes it, which makes the blocked accept below return with an
  // error — the intended shutdown path.
  const int fd = fd_;
  if (fd < 0) return Status::InvalidArgument("accept on closed listener");
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    DisableSigpipe(conn);
    return Socket(conn);
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    const int fd = fd_;
    fd_ = -1;
    ::shutdown(fd, SHUT_RDWR);  // wake a blocked Accept before closing
    ::close(fd);
  }
}

#else  // !BOS_NET_HAVE_SOCKETS

Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
Result<Socket> Socket::Connect(const std::string&, uint16_t) {
  return Status::NotImplemented("sockets require POSIX");
}
Status Socket::SendAll(BytesView) {
  return Status::NotImplemented("sockets require POSIX");
}
Status Socket::RecvSome(size_t, Bytes*) {
  return Status::NotImplemented("sockets require POSIX");
}
void Socket::ShutdownWrite() {}
void Socket::ShutdownBoth() {}
void Socket::Close() { fd_ = -1; }

Status ListenSocket::Listen(uint16_t) {
  return Status::NotImplemented("sockets require POSIX");
}
Result<Socket> ListenSocket::Accept() {
  return Status::NotImplemented("sockets require POSIX");
}
void ListenSocket::Close() { fd_ = -1; }

#endif  // BOS_NET_HAVE_SOCKETS

}  // namespace bos::net
