#ifndef BOS_NET_SERVER_H_
#define BOS_NET_SERVER_H_

/// \file
/// bosd: a sharded ingestion/query server over TsStore (DESIGN.md §14).
///
/// Architecture:
///
///   * N shards, each a private `TsStore` under `<dir>/shard-<i>` with
///     its own `exec::Strand` on one shared work-stealing ThreadPool.
///     A series lives on shard `SeriesHash(name) % N`; the store's
///     externally-synchronized API is honoured by the strand (one task
///     at a time per shard), with no shard mutex held across the
///     store's internal ParallelFor fan-out.
///   * Connections each get a dedicated std::thread (bounded by
///     `max_connections`) that does the blocking socket I/O, parses
///     frames, posts shard work, and waits for completion. Pool workers
///     never block on other pool tasks, so the pool cannot deadlock.
///   * Appends group-commit: each shard queues incoming batches; a
///     single strand task drains the whole queue — every batch's
///     WriteBatch, then ONE `TsStore::SyncWal()` fsync for all of them.
///     The store runs with `wal_sync_every_n = 0`, so the drain task is
///     the only thing paying for fsyncs; concurrent writers amortize it.
///   * Backpressure is a bounded queue: when a shard already holds
///     `max_pending_points` unapplied points, new appends are rejected
///     with kResourceExhausted instead of buffered — memory is bounded
///     by policy, not by the client's send rate.
///
/// Error policy, mirrored by the client: a frame that *parses* but whose
/// payload or semantics are bad gets a kError response and the
/// connection lives on; bytes that cannot be framed at all (bad magic,
/// CRC mismatch, oversize length) get a best-effort kError and the
/// connection is closed, because a desynchronized stream has no reliable
/// resync point.

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/strand.h"
#include "exec/thread_pool.h"
#include "net/socket.h"
#include "net/wire.h"
#include "storage/store.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::net {

struct ServerOptions {
  std::string dir;     ///< root; shard i stores under dir/shard-<i>
  uint16_t port = 0;   ///< 0 = ephemeral, readable from port()
  size_t shards = 4;
  size_t threads = 0;  ///< pool size; 0 = hardware concurrency

  /// Per-shard StoreOptions knobs (wal_sync_every_n is forced to 0 —
  /// the group-commit drain owns fsync policy).
  size_t memtable_points = 65536;
  std::string spec = "TS2DIFF+BOS-B|TS2DIFF+BOS-B";
  size_t cache_mb = 16;

  /// Bounded append queue per shard, in points. Appends that would
  /// push a shard past this are rejected with kResourceExhausted.
  size_t max_pending_points = 1u << 20;

  /// Connection threads; further accepts are rejected by closing.
  size_t max_connections = 64;
};

class BosServer {
 public:
  explicit BosServer(ServerOptions options);
  ~BosServer();
  BosServer(const BosServer&) = delete;
  BosServer& operator=(const BosServer&) = delete;

  /// Opens every shard store, binds the listener and starts the accept
  /// thread. On any failure the server is left stopped.
  Status Start();

  /// Drains connections, flushes every shard and joins all threads.
  /// Idempotent.
  void Stop();

  /// Flushes every shard's memtable (used by tests and shutdown).
  Status FlushAll();

  uint16_t port() const { return listener_.port(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  /// One parked append batch: the writer's connection thread blocks on
  /// `done` until the group-commit drain has applied AND fsynced it, so
  /// an acked append is durable to the same degree a lone WalWriter::Sync
  /// would make it.
  struct PendingAppend {
    AppendRequest req;
    std::promise<Status> done;
  };

  struct Shard {
    std::unique_ptr<storage::TsStore> store;
    std::unique_ptr<exec::Strand> strand;

    // Group-commit queue: appends park here until the drain task runs.
    std::mutex q_mu;
    std::deque<PendingAppend> pending;
    size_t queued_points = 0;  // sum of pending[i].req.points.size()
    bool drain_scheduled = false;
  };

  void AcceptLoop();
  void ServeConnection(Socket sock);

  /// Dispatches one parsed frame; fills `*response` (always exactly one
  /// frame). Returns false when the connection must close (unframeable
  /// input).
  bool HandleFrame(const OwnedFrame& frame, Bytes* response);

  Status HandleAppend(BytesView payload, Bytes* response);
  Status HandleQueryRange(BytesView payload, Bytes* response);
  Status HandleQuerySelected(BytesView payload, Bytes* response);
  Status HandleStats(Bytes* response);
  Status HandleListSeries(Bytes* response);
  Status HandleFlush(Bytes* response);

  /// Queues `req` on its shard, schedules the group-commit drain and
  /// blocks until the drain has durably applied the batch. Rejects with
  /// kResourceExhausted past max_pending_points (without blocking).
  Status EnqueueAppend(AppendRequest req);

  /// The drain task body: applies every queued batch, then one SyncWal.
  void DrainShard(size_t shard_index);

  /// Runs `fn` on the series' shard strand and waits for the result.
  /// Safe: the calling thread is a connection thread, never a pool
  /// worker, so this wait cannot deadlock the pool.
  Status RunOnShard(size_t shard_index, std::function<Status()> fn);

  size_t ShardFor(std::string_view series) const {
    return static_cast<size_t>(SeriesHash(series) % shards_.size());
  }

  std::string StatsJsonLocked();

  ServerOptions options_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ListenSocket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  /// Live connection sockets, keyed by an id private to this map; Stop
  /// calls ShutdownBoth on each so blocked reads wake with EOF.
  std::map<uint64_t, Socket*> live_sockets_;
  uint64_t next_conn_id_ = 0;
  size_t live_connections_ = 0;
  std::atomic<uint64_t> total_connections_{0};
};

}  // namespace bos::net

#endif  // BOS_NET_SERVER_H_
