#ifndef BOS_NET_CLIENT_H_
#define BOS_NET_CLIENT_H_

/// \file
/// Synchronous client for the bosd wire protocol (DESIGN.md §14). One
/// request in flight per client; use one client per thread for
/// concurrency (bosload does exactly that).

#include <cstdint>
#include <string>
#include <vector>

#include "codecs/timeseries.h"
#include "net/socket.h"
#include "net/wire.h"
#include "select/selection.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::net {

class BosClient {
 public:
  /// Connects to a bosd at `host:port` (IPv4 literal host).
  static Result<BosClient> Connect(const std::string& host, uint16_t port);

  BosClient(BosClient&&) = default;
  BosClient& operator=(BosClient&&) = default;

  /// Appends `points` to `series`. OK means the server has applied and
  /// group-commit-fsynced the batch.
  Status Append(const std::string& series,
                std::span<const codecs::DataPoint> points);

  /// Forces every shard's memtable to disk.
  Status Flush();

  /// Points of `series` with timestamp in [t_min, t_max].
  Status QueryRange(const std::string& series, int64_t t_min, int64_t t_max,
                    std::vector<codecs::DataPoint>* out);

  /// Like QueryRange, with a server-side value predicate v in
  /// [v_min, v_max].
  Status QueryValueRange(const std::string& series, int64_t t_min,
                         int64_t t_max, int64_t v_min, int64_t v_max,
                         std::vector<codecs::DataPoint>* out);

  /// Point lookup by store-order positions.
  Status QuerySelected(const std::string& series,
                       const select::SelectionVector& sel,
                       std::vector<codecs::DataPoint>* out);

  /// The server's stats snapshot (JSON text; schema_version inside).
  Result<std::string> StatsJson();

  /// All series names across every shard, sorted.
  Result<std::vector<std::string>> ListSeries();

  /// Sends raw bytes on the wire — test hook for malformed-frame and
  /// CRC-corruption cases. Not part of the protocol.
  Status SendRaw(BytesView bytes);

  /// Sends a frame and returns the response frame — building block the
  /// typed calls use; exposed for tests.
  Result<OwnedFrame> RoundTrip(FrameType type, BytesView payload);

 private:
  explicit BosClient(Socket sock) : sock_(std::move(sock)) {}

  /// Reads until one complete frame is buffered.
  Result<OwnedFrame> ReadFrame();

  Socket sock_;
  FrameBuffer frames_;
};

}  // namespace bos::net

#endif  // BOS_NET_CLIENT_H_
