#include "net/wire.h"

#include <cstring>

#include "bitpack/varint.h"
#include "telemetry/telemetry.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::net {
namespace {

using bitpack::GetSignedVarint;
using bitpack::GetVarint;
using bitpack::PutSignedVarint;
using bitpack::PutVarint;

/// Reads `varint len | bytes` with the series-name bound applied.
Status GetSeriesName(BytesView payload, size_t* offset, std::string* out) {
  uint64_t len = 0;
  BOS_RETURN_NOT_OK(GetVarint(payload, offset, &len));
  if (len > kMaxSeriesNameBytes) {
    return Status::InvalidArgument("series name over " +
                                   std::to_string(kMaxSeriesNameBytes) +
                                   " bytes");
  }
  BOS_ASSIGN_OR_RETURN(const BytesView name,
                       CheckedSlice(payload, *offset, len, "series name"));
  out->assign(reinterpret_cast<const char*>(name.data()), name.size());
  *offset += static_cast<size_t>(len);
  return Status::OK();
}

/// A parser that consumed less than the whole payload accepted a frame
/// whose tail it never validated; reject instead.
Status ExpectConsumedAll(BytesView payload, size_t offset, const char* what) {
  if (offset != payload.size()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes after request");
  }
  return Status::OK();
}

}  // namespace

void EncodeFrame(uint8_t type, BytesView payload, Bytes* out) {
  out->insert(out->end(), kMagic, kMagic + sizeof(kMagic));
  const size_t crc_begin = out->size();
  out->push_back(type);
  PutVarint(out, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc =
      Crc32(out->data() + crc_begin, out->size() - crc_begin);
  PutFixed<uint32_t>(out, crc);
}

Status DecodeFrame(BytesView data, FrameView* out, size_t* consumed) {
  if (data.empty()) return Status::OutOfRange("empty frame buffer");
  if (data.size() < sizeof(kMagic)) {
    // A shorter prefix of a valid frame must still match the magic.
    if (std::memcmp(data.data(), kMagic, data.size()) != 0) {
      return Status::Corruption("bad frame magic");
    }
    return Status::OutOfRange("incomplete frame header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  size_t offset = sizeof(kMagic);
  if (offset >= data.size()) return Status::OutOfRange("incomplete frame type");
  const uint8_t type = data[offset++];

  uint64_t payload_len = 0;
  {
    const size_t len_begin = offset;  // GetVarint leaves it here on failure
    const Status st = GetVarint(data, &offset, &payload_len);
    if (!st.ok()) {
      // Incomplete, not corrupt, iff every available byte continues the
      // varint and fewer than the 10-byte limit have arrived: more bytes
      // could still complete it. Anything else can never parse.
      const size_t avail = data.size() - len_begin;
      bool all_continue = avail < 10;
      for (size_t i = len_begin; all_continue && i < data.size(); ++i) {
        all_continue = (data[i] & 0x80) != 0;
      }
      if (all_continue) return Status::OutOfRange("incomplete frame length");
      return Status::Corruption("corrupt frame length varint");
    }
  }
  if (payload_len > kMaxPayloadBytes) {
    return Status::Corruption("frame payload over " +
                              std::to_string(kMaxPayloadBytes) + " bytes");
  }
  uint64_t need_after_len = 0;
  if (!CheckedAdd(payload_len, sizeof(uint32_t), &need_after_len)) {
    return Status::Corruption("frame length overflow");
  }
  if (!SliceFits(data.size(), offset, need_after_len)) {
    return Status::OutOfRange("incomplete frame payload");
  }
  const BytesView payload = data.subspan(offset, payload_len);
  offset += static_cast<size_t>(payload_len);
  uint32_t stored_crc = 0;
  (void)GetFixed<uint32_t>(data, offset, &stored_crc);  // bounds proven above
  offset += sizeof(uint32_t);
  const uint32_t actual_crc =
      Crc32(data.data() + sizeof(kMagic), offset - sizeof(uint32_t) -
                                              sizeof(kMagic));
  if (stored_crc != actual_crc) {
    BOS_TELEMETRY_COUNTER_ADD("bos.net.frames.crc_failures", 1);
    return Status::Corruption("frame CRC mismatch");
  }
  out->type = type;
  out->payload = payload;
  *consumed = offset;
  return Status::OK();
}

Status FrameBuffer::Next(OwnedFrame* out) {
  FrameView view;
  size_t consumed = 0;
  BOS_RETURN_NOT_OK(DecodeFrame(buf_, &view, &consumed));
  out->type = view.type;
  out->payload.assign(view.payload.begin(), view.payload.end());
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed));
  return Status::OK();
}

uint8_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusCode WireToStatusCode(uint8_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kCorruption;
    case 3:
      return StatusCode::kNotImplemented;
    case 4:
      return StatusCode::kIoError;
    case 5:
      return StatusCode::kOutOfRange;
    case 7:
      return StatusCode::kResourceExhausted;
    default:
      return StatusCode::kUnknown;
  }
}

void EncodeError(const Status& status, Bytes* out) {
  out->push_back(StatusCodeToWire(status.code()));
  const std::string& msg = status.message();
  PutVarint(out, msg.size());
  out->insert(out->end(), msg.begin(), msg.end());
}

Result<ErrorBody> ParseError(BytesView payload) {
  if (payload.empty()) return Status::InvalidArgument("empty error body");
  ErrorBody body;
  body.code = WireToStatusCode(payload[0]);
  size_t offset = 1;
  uint64_t len = 0;
  BOS_RETURN_NOT_OK(GetVarint(payload, &offset, &len));
  BOS_ASSIGN_OR_RETURN(const BytesView msg,
                       CheckedSlice(payload, offset, len, "error message"));
  body.message.assign(reinterpret_cast<const char*>(msg.data()), msg.size());
  offset += static_cast<size_t>(len);
  BOS_RETURN_NOT_OK(ExpectConsumedAll(payload, offset, "error body"));
  return body;
}

Status ErrorBodyToStatus(const ErrorBody& body) {
  if (body.code == StatusCode::kOk) return Status::OK();
  return Status(body.code, body.message);
}

void EncodeAppendRequest(const AppendRequest& req, Bytes* out) {
  PutVarint(out, req.series.size());
  out->insert(out->end(), req.series.begin(), req.series.end());
  PutVarint(out, req.points.size());
  for (const codecs::DataPoint& p : req.points) {
    PutSignedVarint(out, p.timestamp);
    PutSignedVarint(out, p.value);
  }
}

Result<AppendRequest> ParseAppendRequest(BytesView payload) {
  AppendRequest req;
  size_t offset = 0;
  BOS_RETURN_NOT_OK(GetSeriesName(payload, &offset, &req.series));
  if (req.series.empty()) {
    return Status::InvalidArgument("append: empty series name");
  }
  uint64_t n = 0;
  BOS_RETURN_NOT_OK(GetVarint(payload, &offset, &n));
  // Every point is at least two bytes, so a count beyond the remaining
  // payload is a lie — reject before sizing any allocation from it.
  if (n > (payload.size() - offset) / 2) {
    return Status::InvalidArgument("append: point count exceeds payload");
  }
  req.points.resize(static_cast<size_t>(n));
  for (codecs::DataPoint& p : req.points) {
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &p.timestamp));
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &p.value));
  }
  BOS_RETURN_NOT_OK(ExpectConsumedAll(payload, offset, "append"));
  return req;
}

void EncodeQueryRangeRequest(const QueryRangeRequest& req, Bytes* out) {
  PutVarint(out, req.series.size());
  out->insert(out->end(), req.series.begin(), req.series.end());
  PutSignedVarint(out, req.t_min);
  PutSignedVarint(out, req.t_max);
  out->push_back(req.has_value_filter ? 1 : 0);
  if (req.has_value_filter) {
    PutSignedVarint(out, req.v_min);
    PutSignedVarint(out, req.v_max);
  }
}

Result<QueryRangeRequest> ParseQueryRangeRequest(BytesView payload) {
  QueryRangeRequest req;
  size_t offset = 0;
  BOS_RETURN_NOT_OK(GetSeriesName(payload, &offset, &req.series));
  BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &req.t_min));
  BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &req.t_max));
  if (offset >= payload.size()) {
    return Status::InvalidArgument("query: missing filter flag");
  }
  const uint8_t flags = payload[offset++];
  if (flags > 1) {
    return Status::InvalidArgument("query: unknown filter flags");
  }
  req.has_value_filter = flags == 1;
  if (req.has_value_filter) {
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &req.v_min));
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &req.v_max));
  }
  BOS_RETURN_NOT_OK(ExpectConsumedAll(payload, offset, "query"));
  return req;
}

void EncodeQuerySelectedRequest(const QuerySelectedRequest& req, Bytes* out) {
  PutVarint(out, req.series.size());
  out->insert(out->end(), req.series.begin(), req.series.end());
  req.selection.Serialize(out);
}

Result<QuerySelectedRequest> ParseQuerySelectedRequest(BytesView payload) {
  QuerySelectedRequest req;
  size_t offset = 0;
  BOS_RETURN_NOT_OK(GetSeriesName(payload, &offset, &req.series));
  // The selection is the last field; Deserialize consumes the remainder
  // exactly (it rejects trailing bytes itself).
  BOS_ASSIGN_OR_RETURN(
      req.selection,
      select::SelectionVector::Deserialize(payload.subspan(offset)));
  return req;
}

void EncodePoints(std::span<const codecs::DataPoint> points, Bytes* out) {
  PutVarint(out, points.size());
  for (const codecs::DataPoint& p : points) {
    PutSignedVarint(out, p.timestamp);
    PutSignedVarint(out, p.value);
  }
}

Result<std::vector<codecs::DataPoint>> ParsePoints(BytesView payload) {
  size_t offset = 0;
  uint64_t n = 0;
  BOS_RETURN_NOT_OK(GetVarint(payload, &offset, &n));
  if (n > (payload.size() - offset) / 2) {
    return Status::Corruption("points response count exceeds payload");
  }
  std::vector<codecs::DataPoint> points(static_cast<size_t>(n));
  for (codecs::DataPoint& p : points) {
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &p.timestamp));
    BOS_RETURN_NOT_OK(GetSignedVarint(payload, &offset, &p.value));
  }
  BOS_RETURN_NOT_OK(ExpectConsumedAll(payload, offset, "points response"));
  return points;
}

void EncodeSeriesList(const std::vector<std::string>& names, Bytes* out) {
  PutVarint(out, names.size());
  for (const std::string& name : names) {
    PutVarint(out, name.size());
    out->insert(out->end(), name.begin(), name.end());
  }
}

Result<std::vector<std::string>> ParseSeriesList(BytesView payload) {
  size_t offset = 0;
  uint64_t n = 0;
  BOS_RETURN_NOT_OK(GetVarint(payload, &offset, &n));
  // Every name costs at least its one-byte length varint.
  if (n > payload.size() - offset) {
    return Status::Corruption("series list count exceeds payload");
  }
  std::vector<std::string> names(static_cast<size_t>(n));
  for (std::string& name : names) {
    BOS_RETURN_NOT_OK(GetSeriesName(payload, &offset, &name));
  }
  BOS_RETURN_NOT_OK(ExpectConsumedAll(payload, offset, "series list"));
  return names;
}

uint64_t SeriesHash(std::string_view series) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : series) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bos::net
