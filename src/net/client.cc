#include "net/client.h"

#include <utility>

#include "util/macros.h"

namespace bos::net {

namespace {

/// The server answered `kError`: reconstruct the Status it sent.
Status StatusFromErrorFrame(const OwnedFrame& frame) {
  auto body = ParseError(frame.payload);
  if (!body.ok()) return Status::Corruption("unparseable error frame");
  return ErrorBodyToStatus(body.value());
}

Status ExpectType(const OwnedFrame& frame, FrameType want) {
  if (static_cast<FrameType>(frame.type) == FrameType::kError) {
    return StatusFromErrorFrame(frame);
  }
  if (static_cast<FrameType>(frame.type) != want) {
    return Status::Corruption("unexpected response frame type " +
                              std::to_string(frame.type));
  }
  return Status::OK();
}

}  // namespace

Result<BosClient> BosClient::Connect(const std::string& host, uint16_t port) {
  BOS_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  return BosClient(std::move(sock));
}

Result<OwnedFrame> BosClient::ReadFrame() {
  Bytes chunk;
  for (;;) {
    OwnedFrame frame;
    const Status st = frames_.Next(&frame);
    if (st.ok()) return frame;
    if (!st.IsOutOfRange()) return st;  // corrupt response stream
    chunk.clear();
    BOS_RETURN_NOT_OK(sock_.RecvSome(64 * 1024, &chunk));
    if (chunk.empty()) {
      return Status::IoError("connection closed by server mid-response");
    }
    frames_.Append(chunk);
  }
}

Result<OwnedFrame> BosClient::RoundTrip(FrameType type, BytesView payload) {
  Bytes wire;
  EncodeFrame(static_cast<uint8_t>(type), payload, &wire);
  BOS_RETURN_NOT_OK(sock_.SendAll(wire));
  return ReadFrame();
}

Status BosClient::SendRaw(BytesView bytes) { return sock_.SendAll(bytes); }

Status BosClient::Append(const std::string& series,
                         std::span<const codecs::DataPoint> points) {
  AppendRequest req;
  req.series = series;
  req.points.assign(points.begin(), points.end());
  Bytes payload;
  EncodeAppendRequest(req, &payload);
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp,
                       RoundTrip(FrameType::kAppend, payload));
  return ExpectType(resp, FrameType::kAppendOk);
}

Status BosClient::Flush() {
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp, RoundTrip(FrameType::kFlush, {}));
  return ExpectType(resp, FrameType::kFlushOk);
}

Status BosClient::QueryRange(const std::string& series, int64_t t_min,
                             int64_t t_max,
                             std::vector<codecs::DataPoint>* out) {
  QueryRangeRequest req;
  req.series = series;
  req.t_min = t_min;
  req.t_max = t_max;
  Bytes payload;
  EncodeQueryRangeRequest(req, &payload);
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp,
                       RoundTrip(FrameType::kQueryRange, payload));
  BOS_RETURN_NOT_OK(ExpectType(resp, FrameType::kPoints));
  BOS_ASSIGN_OR_RETURN(*out, ParsePoints(resp.payload));
  return Status::OK();
}

Status BosClient::QueryValueRange(const std::string& series, int64_t t_min,
                                  int64_t t_max, int64_t v_min, int64_t v_max,
                                  std::vector<codecs::DataPoint>* out) {
  QueryRangeRequest req;
  req.series = series;
  req.t_min = t_min;
  req.t_max = t_max;
  req.has_value_filter = true;
  req.v_min = v_min;
  req.v_max = v_max;
  Bytes payload;
  EncodeQueryRangeRequest(req, &payload);
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp,
                       RoundTrip(FrameType::kQueryRange, payload));
  BOS_RETURN_NOT_OK(ExpectType(resp, FrameType::kPoints));
  BOS_ASSIGN_OR_RETURN(*out, ParsePoints(resp.payload));
  return Status::OK();
}

Status BosClient::QuerySelected(const std::string& series,
                                const select::SelectionVector& sel,
                                std::vector<codecs::DataPoint>* out) {
  QuerySelectedRequest req;
  req.series = series;
  req.selection = sel;
  Bytes payload;
  EncodeQuerySelectedRequest(req, &payload);
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp,
                       RoundTrip(FrameType::kQuerySelected, payload));
  BOS_RETURN_NOT_OK(ExpectType(resp, FrameType::kPoints));
  BOS_ASSIGN_OR_RETURN(*out, ParsePoints(resp.payload));
  return Status::OK();
}

Result<std::string> BosClient::StatsJson() {
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp, RoundTrip(FrameType::kStats, {}));
  BOS_RETURN_NOT_OK(ExpectType(resp, FrameType::kStatsJson));
  return std::string(resp.payload.begin(), resp.payload.end());
}

Result<std::vector<std::string>> BosClient::ListSeries() {
  BOS_ASSIGN_OR_RETURN(OwnedFrame resp, RoundTrip(FrameType::kListSeries, {}));
  BOS_RETURN_NOT_OK(ExpectType(resp, FrameType::kSeriesList));
  return ParseSeriesList(resp.payload);
}

}  // namespace bos::net
