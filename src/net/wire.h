#ifndef BOS_NET_WIRE_H_
#define BOS_NET_WIRE_H_

/// \file
/// The bosd wire protocol: length-framed, CRC32-checked messages
/// (DESIGN.md §14).
///
/// Frame grammar (all varints LEB128, fixed ints little-endian):
///
///   frame   = magic "BNF1" | type u8 | varint payload_len
///           | payload payload_len bytes | crc u32
///   crc     = Crc32 over everything between the magic and the crc
///             field, i.e. [type | len varint | payload]
///
/// Frames arrive from the network, so every field is untrusted input:
/// the decoder uses the §8 `safe_math.h` checked idioms (no length
/// arithmetic that can wrap, no allocation sized from an unvalidated
/// count), rejects payloads over kMaxPayloadBytes before buffering
/// them, and distinguishes "incomplete — read more bytes"
/// (StatusCode::kOutOfRange) from "corrupt — the stream cannot be
/// resynchronized" (kCorruption). Request/response payload parsers are
/// separate functions with the same discipline, so the framing layer
/// accepts any type byte and dispatch rejects unknown ones.
///
/// The error-code half of the protocol is the `StatusCode` enum itself:
/// a kError frame carries `u8 wire_code | varint msg_len | msg`, where
/// wire_code is StatusCodeToWire(status.code()). Unknown wire codes map
/// back to kUnknown, so old clients survive new error kinds.

#include <cstdint>
#include <string>
#include <vector>

#include "codecs/timeseries.h"
#include "select/selection.h"
#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::net {

/// Frame magic: "BNF1" (Bos Net Frame, version 1).
inline constexpr uint8_t kMagic[4] = {'B', 'N', 'F', '1'};

/// Hard cap on a frame payload. Larger lengths are rejected before any
/// buffering, so a hostile 2^60 length cannot size an allocation.
inline constexpr uint64_t kMaxPayloadBytes = 16u << 20;

/// Cap on a series name inside any request (matches nothing on disk —
/// purely a protocol sanity bound).
inline constexpr uint64_t kMaxSeriesNameBytes = 4096;

/// Frame type bytes. Requests are < 16, responses >= 16.
enum class FrameType : uint8_t {
  kAppend = 1,         ///< AppendRequest  -> kAppendOk | kError
  kFlush = 2,          ///< empty payload  -> kFlushOk  | kError
  kQueryRange = 3,     ///< QueryRangeRequest -> kPoints | kError
  kQuerySelected = 4,  ///< QuerySelectedRequest -> kPoints | kError
  kStats = 5,          ///< empty payload  -> kStatsJson | kError
  kListSeries = 6,     ///< empty payload  -> kSeriesList | kError

  kError = 16,       ///< ErrorBody
  kAppendOk = 17,    ///< varint points_appended
  kFlushOk = 18,     ///< empty payload
  kPoints = 19,      ///< varint n | n * (svarint ts | svarint value)
  kStatsJson = 20,   ///< raw JSON bytes
  kSeriesList = 21,  ///< varint n | n * (varint len | name)
};

/// One parsed frame, viewing the payload inside the caller's buffer.
struct FrameView {
  uint8_t type = 0;
  BytesView payload;
};

/// One parsed frame owning its payload (what FrameBuffer hands out).
struct OwnedFrame {
  uint8_t type = 0;
  Bytes payload;
};

/// Appends one encoded frame (magic, type, length, payload, CRC) to
/// `*out`. The encoding is canonical: a round trip through DecodeFrame
/// reproduces it byte for byte.
void EncodeFrame(uint8_t type, BytesView payload, Bytes* out);

/// Parses one frame from the front of `data`. On success fills `*out`
/// (payload views into `data`) and `*consumed` with the frame's total
/// size. Returns kOutOfRange when `data` is a valid but incomplete
/// prefix (read more bytes and retry) and kCorruption when the bytes can
/// never become a valid frame (bad magic, oversize length, CRC
/// mismatch, overlong length varint).
Status DecodeFrame(BytesView data, FrameView* out, size_t* consumed);

/// Incremental frame decoder for a byte stream: feed network chunks with
/// Append, pull complete frames with Next. Corruption is sticky — once
/// the stream desynchronizes there is no reliable resync point, so the
/// connection must be dropped.
class FrameBuffer {
 public:
  void Append(BytesView chunk) {
    buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  }

  /// OK: one frame removed from the buffer into `*out`. kOutOfRange:
  /// no complete frame buffered yet. kCorruption: stream unusable.
  Status Next(OwnedFrame* out);

  size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// ---------------------------------------------------------------------
// Status <-> wire error code taxonomy.
// ---------------------------------------------------------------------

/// StatusCode as a stable wire byte (the enum's numeric values are the
/// wire format — see status.h; new codes append, never renumber).
uint8_t StatusCodeToWire(StatusCode code);

/// Inverse of StatusCodeToWire; unknown bytes map to kUnknown.
StatusCode WireToStatusCode(uint8_t wire);

/// Payload of a kError frame.
struct ErrorBody {
  StatusCode code = StatusCode::kUnknown;
  std::string message;
};

void EncodeError(const Status& status, Bytes* out);
Result<ErrorBody> ParseError(BytesView payload);

/// Reconstructs the Status a kError frame carries.
Status ErrorBodyToStatus(const ErrorBody& body);

// ---------------------------------------------------------------------
// Request / response payload codecs. Every parser treats the payload as
// untrusted and returns InvalidArgument/Corruption instead of trusting
// any count or length.
// ---------------------------------------------------------------------

struct AppendRequest {
  std::string series;
  std::vector<codecs::DataPoint> points;
};

struct QueryRangeRequest {
  std::string series;
  int64_t t_min = 0;
  int64_t t_max = 0;
  /// When true, only points with value in [v_min, v_max] are returned
  /// (the server applies the predicate after the time-range merge).
  bool has_value_filter = false;
  int64_t v_min = 0;
  int64_t v_max = 0;
};

struct QuerySelectedRequest {
  std::string series;
  select::SelectionVector selection;
};

void EncodeAppendRequest(const AppendRequest& req, Bytes* out);
Result<AppendRequest> ParseAppendRequest(BytesView payload);

void EncodeQueryRangeRequest(const QueryRangeRequest& req, Bytes* out);
Result<QueryRangeRequest> ParseQueryRangeRequest(BytesView payload);

void EncodeQuerySelectedRequest(const QuerySelectedRequest& req, Bytes* out);
Result<QuerySelectedRequest> ParseQuerySelectedRequest(BytesView payload);

/// kPoints / kAppendOk / kSeriesList payload helpers.
void EncodePoints(std::span<const codecs::DataPoint> points, Bytes* out);
Result<std::vector<codecs::DataPoint>> ParsePoints(BytesView payload);

void EncodeSeriesList(const std::vector<std::string>& names, Bytes* out);
Result<std::vector<std::string>> ParseSeriesList(BytesView payload);

/// Stable shard assignment for a series name: FNV-1a 64 of the bytes.
/// Both ends of the protocol (and DESIGN.md §14) agree on this, so a
/// client can predict request fan-in and tests can target one shard.
uint64_t SeriesHash(std::string_view series);

}  // namespace bos::net

#endif  // BOS_NET_WIRE_H_
