#include "net/server.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "bitpack/varint.h"
#include "telemetry/telemetry.h"
#include "util/macros.h"

namespace bos::net {

namespace {

/// Wraps `status` as a complete kError frame appended to `*out`.
void AppendErrorFrame(const Status& status, Bytes* out) {
  Bytes body;
  EncodeError(status, &body);
  EncodeFrame(static_cast<uint8_t>(FrameType::kError), body, out);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

BosServer::BosServer(ServerOptions options) : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
}

BosServer::~BosServer() { Stop(); }

Status BosServer::Start() {
  if (!shards_.empty()) return Status::InvalidArgument("server already started");
  pool_ = std::make_unique<exec::ThreadPool>(options_.threads);

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  for (size_t i = 0; i < options_.shards; ++i) {
    storage::StoreOptions so;
    so.dir = (fs::path(options_.dir) / ("shard-" + std::to_string(i))).string();
    so.memtable_points = options_.memtable_points;
    so.spec = options_.spec;
    so.cache_mb = options_.cache_mb;
    // Store-internal fan-out uses the process default pool; strand tasks
    // run on the server pool, and the nested ParallelFor is cooperative
    // either way, so neither pool can deadlock the other.
    so.threads = 0;
    // Every explicit fsync is owned by the group-commit drain.
    so.wal_sync_every_n = 0;
    auto store = storage::TsStore::Open(so);
    if (!store.ok()) {
      shards_.clear();
      pool_.reset();
      return store.status();
    }
    auto shard = std::make_unique<Shard>();
    shard->store = std::move(store).value();
    shard->strand = std::make_unique<exec::Strand>(pool_.get());
    shards_.push_back(std::move(shard));
  }

  const Status st = listener_.Listen(options_.port);
  if (!st.ok()) {
    shards_.clear();
    pool_.reset();
    return st;
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void BosServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the first one is (or was) tearing down; just make
    // sure the accept thread is gone before returning.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();  // wakes the blocked Accept
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, sock] : live_sockets_) sock->ShutdownBoth();
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }

  // Connection threads are gone, so no new appends or queries; let every
  // shard finish its queued drains, then flush and close the stores.
  for (auto& shard : shards_) {
    if (shard->strand) shard->strand->Wait();
    shard->strand.reset();
    if (shard->store) {
      (void)shard->store->Flush();
      shard->store.reset();
    }
  }
  shards_.clear();
  pool_.reset();
}

Status BosServer::FlushAll() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = RunOnShard(i, [this, i] { return shards_[i]->store->Flush(); });
    BOS_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

void BosServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      // Transient accept failure: keep serving until Stop closes us.
      continue;
    }
    Socket sock = std::move(accepted).value();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (live_connections_ >= options_.max_connections) {
        BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.overload", 1);
        continue;  // sock closes on scope exit: connection refused
      }
      ++live_connections_;
      total_connections_.fetch_add(1);
      connections_.emplace_back(
          [this, s = std::move(sock)]() mutable { ServeConnection(std::move(s)); });
    }
  }
}

void BosServer::ServeConnection(Socket sock) {
  uint64_t conn_id;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_id = next_conn_id_++;
    live_sockets_[conn_id] = &sock;
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.net.connections.accepted", 1);

  FrameBuffer frames;
  Bytes chunk;
  bool open = true;
  while (open && !stopping_.load()) {
    chunk.clear();
    if (!sock.RecvSome(64 * 1024, &chunk).ok() || chunk.empty()) break;
    BOS_TELEMETRY_COUNTER_ADD("bos.net.bytes.rx", chunk.size());
    frames.Append(chunk);

    for (;;) {
      OwnedFrame frame;
      const Status st = frames.Next(&frame);
      if (st.IsOutOfRange()) break;  // need more bytes
      Bytes response;
      if (!st.ok()) {
        // Unframeable stream: best-effort error, then close — there is
        // no reliable way to find the next frame boundary.
        BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.corrupt", 1);
        AppendErrorFrame(st, &response);
        (void)sock.SendAll(response);
        open = false;
        break;
      }
      BOS_TELEMETRY_COUNTER_ADD("bos.net.frames.rx", 1);
      const bool keep = HandleFrame(frame, &response);
      if (!response.empty()) {
        BOS_TELEMETRY_COUNTER_ADD("bos.net.frames.tx", 1);
        BOS_TELEMETRY_COUNTER_ADD("bos.net.bytes.tx", response.size());
        if (!sock.SendAll(response).ok()) open = false;
      }
      if (!keep) open = false;
      if (!open) break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_sockets_.erase(conn_id);
    --live_connections_;
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.net.connections.closed", 1);
}

bool BosServer::HandleFrame(const OwnedFrame& frame, Bytes* response) {
  Status st;
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kAppend:
      st = HandleAppend(frame.payload, response);
      break;
    case FrameType::kFlush:
      st = HandleFlush(response);
      break;
    case FrameType::kQueryRange:
      st = HandleQueryRange(frame.payload, response);
      break;
    case FrameType::kQuerySelected:
      st = HandleQuerySelected(frame.payload, response);
      break;
    case FrameType::kStats:
      st = HandleStats(response);
      break;
    case FrameType::kListSeries:
      st = HandleListSeries(response);
      break;
    default:
      BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.unknown_type", 1);
      st = Status::InvalidArgument("unknown frame type " +
                                   std::to_string(frame.type));
  }
  if (!st.ok()) {
    if (st.IsResourceExhausted()) {
      BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.backpressure", 1);
    }
    response->clear();
    AppendErrorFrame(st, response);
  }
  // A frame that framed correctly never kills the connection, even when
  // its payload was garbage — the stream is still in sync.
  return true;
}

Status BosServer::HandleAppend(BytesView payload, Bytes* response) {
  auto parsed = ParseAppendRequest(payload);
  if (!parsed.ok()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.parse", 1);
    return parsed.status();
  }
  AppendRequest req = std::move(parsed).value();
  const uint64_t n = req.points.size();
  BOS_RETURN_NOT_OK(EnqueueAppend(std::move(req)));
  Bytes body;
  bitpack::PutVarint(&body, n);
  EncodeFrame(static_cast<uint8_t>(FrameType::kAppendOk), body, response);
  return Status::OK();
}

Status BosServer::EnqueueAppend(AppendRequest req) {
  const size_t shard_index = ShardFor(req.series);
  Shard& shard = *shards_[shard_index];
  const size_t n = req.points.size();
  std::future<Status> done;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.q_mu);
    if (shard.queued_points + n > options_.max_pending_points) {
      return Status::ResourceExhausted(
          "shard " + std::to_string(shard_index) + " append queue full (" +
          std::to_string(shard.queued_points) + " points pending, cap " +
          std::to_string(options_.max_pending_points) + "); retry later");
    }
    shard.pending.emplace_back();
    shard.pending.back().req = std::move(req);
    done = shard.pending.back().done.get_future();
    shard.queued_points += n;
    if (!shard.drain_scheduled) {
      shard.drain_scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    shard.strand->Post([this, shard_index] { DrainShard(shard_index); });
  }
  // Block this connection thread (never a pool worker) until the group
  // commit that covers this batch has fsynced.
  return done.get();
}

void BosServer::DrainShard(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::deque<PendingAppend> batch;
  {
    std::lock_guard<std::mutex> lock(shard.q_mu);
    batch.swap(shard.pending);
    if (batch.empty()) {
      shard.drain_scheduled = false;
      return;
    }
  }

  // Apply every parked batch, then pay for ONE fsync covering them all.
  size_t applied_points = 0;
  std::vector<Status> results;
  results.reserve(batch.size());
  for (auto& p : batch) {
    Status st = shard.store->WriteBatch(p.req.series, p.req.points);
    if (st.ok()) applied_points += p.req.points.size();
    results.push_back(std::move(st));
  }
  const Status sync = shard.store->SyncWal();
  BOS_TELEMETRY_COUNTER_ADD("bos.net.group_commit.drains", 1);
  BOS_TELEMETRY_COUNTER_ADD("bos.net.group_commit.batches", batch.size());
  BOS_TELEMETRY_COUNTER_ADD("bos.net.group_commit.points", applied_points);

  size_t drained_points = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    drained_points += batch[i].req.points.size();
    batch[i].done.set_value(results[i].ok() ? sync : std::move(results[i]));
  }

  bool more;
  {
    std::lock_guard<std::mutex> lock(shard.q_mu);
    shard.queued_points -= drained_points;
    more = !shard.pending.empty();
    if (!more) shard.drain_scheduled = false;
  }
  // More arrived while we were applying: stay scheduled, but go through
  // the strand again so queries posted in between get their turn.
  if (more) {
    shard.strand->Post([this, shard_index] { DrainShard(shard_index); });
  }
}

Status BosServer::RunOnShard(size_t shard_index, std::function<Status()> fn) {
  std::promise<Status> done;
  std::future<Status> fut = done.get_future();
  shards_[shard_index]->strand->Post(
      [fn = std::move(fn), &done] { done.set_value(fn()); });
  return fut.get();
}

Status BosServer::HandleQueryRange(BytesView payload, Bytes* response) {
  auto parsed = ParseQueryRangeRequest(payload);
  if (!parsed.ok()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.parse", 1);
    return parsed.status();
  }
  const QueryRangeRequest req = std::move(parsed).value();
  std::vector<codecs::DataPoint> points;
  BOS_RETURN_NOT_OK(RunOnShard(ShardFor(req.series), [&] {
    return shards_[ShardFor(req.series)]->store->Query(req.series, req.t_min,
                                                       req.t_max, &points);
  }));
  if (req.has_value_filter) {
    std::erase_if(points, [&](const codecs::DataPoint& p) {
      return p.value < req.v_min || p.value > req.v_max;
    });
  }
  Bytes body;
  EncodePoints(points, &body);
  EncodeFrame(static_cast<uint8_t>(FrameType::kPoints), body, response);
  return Status::OK();
}

Status BosServer::HandleQuerySelected(BytesView payload, Bytes* response) {
  auto parsed = ParseQuerySelectedRequest(payload);
  if (!parsed.ok()) {
    BOS_TELEMETRY_COUNTER_ADD("bos.net.rejected.parse", 1);
    return parsed.status();
  }
  const QuerySelectedRequest req = std::move(parsed).value();
  std::vector<codecs::DataPoint> points;
  BOS_RETURN_NOT_OK(RunOnShard(ShardFor(req.series), [&] {
    return shards_[ShardFor(req.series)]->store->QuerySelected(
        req.series, req.selection, &points);
  }));
  Bytes body;
  EncodePoints(points, &body);
  EncodeFrame(static_cast<uint8_t>(FrameType::kPoints), body, response);
  return Status::OK();
}

Status BosServer::HandleFlush(Bytes* response) {
  BOS_RETURN_NOT_OK(FlushAll());
  EncodeFrame(static_cast<uint8_t>(FrameType::kFlushOk), {}, response);
  return Status::OK();
}

Status BosServer::HandleListSeries(Bytes* response) {
  // Fan out: every shard lists under its own strand; results merge here.
  std::set<std::string> merged;
  std::mutex merged_mu;
  for (size_t i = 0; i < shards_.size(); ++i) {
    BOS_RETURN_NOT_OK(RunOnShard(i, [&, i] {
      std::vector<std::string> names = shards_[i]->store->ListSeries();
      std::lock_guard<std::mutex> lock(merged_mu);
      merged.insert(names.begin(), names.end());
      return Status::OK();
    }));
  }
  const std::vector<std::string> names(merged.begin(), merged.end());
  Bytes body;
  EncodeSeriesList(names, &body);
  EncodeFrame(static_cast<uint8_t>(FrameType::kSeriesList), body, response);
  return Status::OK();
}

std::string BosServer::StatsJsonLocked() {
  // Store getters are externally synchronized, so each shard's numbers
  // are read under that shard's own strand.
  struct ShardStats {
    size_t memtable_points = 0;
    size_t num_files = 0;
    size_t pending_points = 0;
  };
  std::vector<ShardStats> stats(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    (void)RunOnShard(i, [&, i] {
      stats[i].memtable_points = shard.store->memtable_points();
      stats[i].num_files = shard.store->num_files();
      return Status::OK();
    });
    std::lock_guard<std::mutex> lock(shard.q_mu);
    stats[i].pending_points = shard.queued_points;
  }

  std::string out;
  out += "{\"schema_version\":";
  out += std::to_string(telemetry::kSchemaVersion);
  out += ",\"server\":{\"shards\":" + std::to_string(shards_.size());
  out += ",\"threads\":" + std::to_string(pool_->num_threads());
  out += ",\"connections_total\":" + std::to_string(total_connections_.load());
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    out += ",\"connections_live\":" + std::to_string(live_connections_);
  }
  out += ",\"dir\":";
  AppendJsonString(options_.dir, &out);
  out += "},\"shards\":[";
  for (size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"memtable_points\":" + std::to_string(stats[i].memtable_points);
    out += ",\"num_files\":" + std::to_string(stats[i].num_files);
    out += ",\"pending_points\":" + std::to_string(stats[i].pending_points);
    out += "}";
  }
  out += "],\"telemetry\":";
  out += telemetry::Registry::Global().SnapshotJson();
  out += "}";
  return out;
}

Status BosServer::HandleStats(Bytes* response) {
  const std::string json = StatsJsonLocked();
  Bytes body(json.begin(), json.end());
  EncodeFrame(static_cast<uint8_t>(FrameType::kStatsJson), body, response);
  return Status::OK();
}

}  // namespace bos::net
