#ifndef BOS_NET_SOCKET_H_
#define BOS_NET_SOCKET_H_

/// \file
/// Minimal RAII TCP sockets for bosd and its client library
/// (DESIGN.md §14). Loopback/IPv4 only — this is a service scaffold for
/// benchmarking the store over a wire, not a production listener.
///
/// POSIX-only, like the mmap path in storage/page_source.cc: on other
/// platforms every operation returns NotImplemented and the tools print
/// a clear error instead of failing to build.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::net {

/// One connected TCP stream. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to `host:port` (host must be an IPv4 literal, e.g.
  /// "127.0.0.1"). Sets TCP_NODELAY — frames are small and latency
  /// matters more than packet count.
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data`, looping over short writes. Uses MSG_NOSIGNAL
  /// so a peer reset surfaces as a Status, not SIGPIPE.
  Status SendAll(BytesView data);

  /// Reads at most `cap` bytes into `*out` (appended). Zero appended
  /// bytes with OK status means orderly EOF.
  Status RecvSome(size_t cap, Bytes* out);

  /// Half-closes the write side (signals EOF to the peer's reader).
  void ShutdownWrite();

  /// Shuts down both directions without closing the fd: a thread blocked
  /// in RecvSome on this socket wakes up with EOF. How the server nudges
  /// its connection threads at shutdown.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on loopback `port`; port 0 picks an ephemeral
  /// port, readable afterwards from port().
  Status Listen(uint16_t port);

  /// Blocks until a connection arrives. Close() from another thread
  /// wakes the accept with a non-OK status, which is how the server
  /// shuts its accept loop down.
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool listening() const { return fd_ >= 0; }

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace bos::net

#endif  // BOS_NET_SOCKET_H_
