#ifndef BOS_STORAGE_WAL_H_
#define BOS_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "codecs/timeseries.h"
#include "util/status.h"

namespace bos::storage {

/// \brief Append-only write-ahead log for TsStore's memtable.
///
/// Record layout: u32 crc32(payload) | varint payload_len | payload,
/// where payload = string series | svarint timestamp | svarint value.
/// Replay stops cleanly at the first torn or corrupt record (the normal
/// state after a crash mid-append), so everything durably appended before
/// the crash is recovered.
class WalWriter {
 public:
  explicit WalWriter(std::string path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the log for appending (creating it if absent).
  Status Open();

  /// Appends one record and flushes it to the OS.
  Status Append(const std::string& series, const codecs::DataPoint& point);

  /// Forces everything appended so far onto stable storage (fsync).
  /// `Append` only flushes to the OS page cache, which survives a process
  /// crash but not a power failure; callers that need power-fail
  /// durability call this — TsStore does every
  /// `StoreOptions::wal_sync_every_n` appends. Counted in telemetry as
  /// `bos.storage.wal.syncs`.
  Status Sync();

  /// Truncates the log to empty — called after the memtable was safely
  /// flushed into an immutable file.
  Status Reset();

  /// Closes the file (idempotent).
  void Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// \brief Replays a WAL, invoking `sink` for every intact record in
/// order. A missing file is an empty log. Returns the number of records
/// replayed. Torn/corrupt tails are ignored, not errors.
Result<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(const std::string& series,
                             const codecs::DataPoint& point)>& sink);

}  // namespace bos::storage

#endif  // BOS_STORAGE_WAL_H_
