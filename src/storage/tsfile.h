#ifndef BOS_STORAGE_TSFILE_H_
#define BOS_STORAGE_TSFILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codecs/series_codec.h"
#include "codecs/timeseries.h"
#include "select/selection.h"
#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::storage {

class PageCache;

/// \brief TsFile-lite: a columnar time-series file format standing in for
/// Apache TsFile in the Figure-11 storage/query experiment.
///
/// Layout:
///   "BOS1" magic |
///   pages (per series, in order): varint count | varint payload size |
///     payload (one SeriesCodec stream) | crc32 of the payload |
///   footer: varint series count, per series { name, codec spec,
///     page directory (offset, size, count, first index, time range,
///     value stats, varint flags [+ svarint interval when flags bit 0]) } |
///   fixed64 footer offset | "BOS1" magic
///
/// Pages are independently decodable, so range queries touch only the
/// pages that overlap the requested index window.
///
/// Flags bit 0 marks a *fixed-interval* page: the page's timestamps are
/// the pure arithmetic sequence `min_time + k * interval`, so the time
/// column is not stored at all — the payload is the value-codec stream
/// alone, and readers synthesize timestamps from (min_time, interval,
/// count). The writer detects this per page automatically (the bseries
/// layout for regular sampling). All other flag bits are reserved and
/// rejected at Open.
struct PageInfo {
  uint64_t offset = 0;       ///< file offset of the page payload header
  uint64_t size = 0;         ///< bytes including header and CRC
  uint64_t count = 0;        ///< values in the page
  uint64_t first_index = 0;  ///< series index of the first value
  int64_t min_time = 0;      ///< smallest timestamp (timed series only)
  int64_t max_time = 0;      ///< largest timestamp (timed series only)
  // Value statistics for aggregate pushdown (valid when count > 0):
  int64_t min_value = 0;
  int64_t max_value = 0;
  int64_t sum_value = 0;  ///< wrapping sum of the page's values
  /// Timestamps are exactly `min_time + k * interval` for k in
  /// [0, count); the payload holds only the value stream.
  bool fixed_interval = false;
  int64_t interval = 0;  ///< > 0 when fixed_interval
};

struct SeriesInfo {
  std::string name;
  std::string codec_spec;  ///< "TS2DIFF+BOS-B", or "time|value" when timed
  bool timed = false;      ///< true for (timestamp, value) series
  uint64_t num_values = 0;
  std::vector<PageInfo> pages;
};

/// \brief One compressed page, produced off the writer by
/// `EncodeSeriesPages` / `EncodeTimeSeriesPages`. Holds everything
/// `TsFileWriter` needs to emit the page without re-reading the values:
/// the codec payload plus the statistics that go into the footer.
struct EncodedPage {
  Bytes payload;
  uint64_t count = 0;
  uint64_t first_index = 0;
  int64_t min_time = 0;
  int64_t max_time = 0;
  int64_t min_value = 0;
  int64_t max_value = 0;
  int64_t sum_value = 0;  ///< wrapping sum of the page's values
  /// See PageInfo: payload is the value stream only, timestamps are
  /// synthesized from (min_time, interval).
  bool fixed_interval = false;
  int64_t interval = 0;
};

/// \brief A fully compressed series, ready for `TsFileWriter::AppendEncoded`.
struct EncodedSeries {
  std::string name;
  std::string codec_spec;
  bool timed = false;
  uint64_t num_values = 0;
  std::vector<EncodedPage> pages;
};

/// Compresses a plain series into pages exactly as
/// `TsFileWriter::AppendSeries` would, without touching any file. Pure
/// and state-free, so independent series can be encoded concurrently
/// (TsStore's flush fans out over this) — appending the results in the
/// same order yields a byte-identical file.
Result<EncodedSeries> EncodeSeriesPages(const std::string& name,
                                        std::string_view spec,
                                        std::span<const int64_t> values,
                                        size_t page_size);

/// Timed-series counterpart of `EncodeSeriesPages` (the
/// `AppendTimeSeries` encoding). `points` must be sorted by timestamp.
Result<EncodedSeries> EncodeTimeSeriesPages(
    const std::string& name, std::string_view spec,
    std::span<const codecs::DataPoint> points, size_t page_size);

/// \brief Single-pass writer. Series are appended one at a time, then
/// `Finish()` writes the footer. The writer owns the output file.
///
/// The writer itself is single-threaded (the file is sequential), but
/// the CPU-heavy page encoding can be done concurrently via
/// `EncodeSeriesPages` / `EncodeTimeSeriesPages` and handed over with
/// `AppendEncoded`.
class TsFileWriter {
 public:
  /// `page_size` = values per page.
  explicit TsFileWriter(std::string path,
                        size_t page_size = codecs::kDefaultBlockSize);
  ~TsFileWriter();

  TsFileWriter(const TsFileWriter&) = delete;
  TsFileWriter& operator=(const TsFileWriter&) = delete;

  /// Creates/truncates the file and writes the magic.
  Status Open();

  /// Compresses and appends one series with the codec named by `spec`
  /// (any "TRANSFORM+OPERATOR" accepted by codecs::MakeSeriesCodec).
  Status AppendSeries(const std::string& name, std::string_view spec,
                      std::span<const int64_t> values);

  /// Compresses and appends one timestamped series with a two-column
  /// "time_spec|value_spec" codec. `points` must be sorted by timestamp;
  /// the page index records per-page time ranges for pruned time-range
  /// queries.
  Status AppendTimeSeries(const std::string& name, std::string_view spec,
                          std::span<const codecs::DataPoint> points);

  /// Appends a series pre-compressed by `EncodeSeriesPages` /
  /// `EncodeTimeSeriesPages`. Page bytes are written verbatim, so a file
  /// built this way is byte-identical to one built with the Append*
  /// methods in the same order.
  Status AppendEncoded(EncodedSeries&& series);

  /// Writes footer and closes. The file is invalid until Finish succeeds.
  Status Finish();

 private:
  Status CheckAppendable(const std::string& name) const;
  Status WritePage(const EncodedPage& page, SeriesInfo* info);

  std::string path_;
  size_t page_size_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Statistics a scan reports, separating IO from decode time —
/// the two bars of Figure 11b.
struct ScanStats {
  uint64_t bytes_read = 0;
  uint64_t pages_read = 0;
  uint64_t values_scanned = 0;
  double io_seconds = 0;
  double decode_seconds = 0;
};

/// \brief Aggregates computed by AggregateQuery.
///
/// When `count == 0` there is no value to take a min or max of, so the
/// bounds are the identity elements of min/max: `min = INT64_MAX`,
/// `max = INT64_MIN`, `sum = 0`. Callers must check `count` before
/// trusting the bounds. Every aggregate path (pushdown, scan, store)
/// returns this same sentinel, so the paths can be diffed directly.
struct AggregateResult {
  uint64_t count = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t sum = 0;  ///< wrapping sum
};

/// How TsFileReader::Open reads pages.
struct ReaderOptions {
  /// Map the file and decode straight from the mapping (zero-copy)
  /// instead of pread+copy. Silently falls back to pread when mmap is
  /// unavailable.
  bool use_mmap = false;
  /// Shared cache of CRC-verified page payloads; nullptr disables
  /// caching. The cache must outlive the reader (the reader drops its
  /// entries on destruction). Cached bytes are always owned copies, so
  /// pins stay valid even after the reader (and any mapping) is gone.
  PageCache* cache = nullptr;
};

/// \brief Reader with page-level pruning.
///
/// Thread safety: after `Open()` succeeds the footer is immutable, and
/// the `Read*` / `Aggregate*` methods may be called concurrently from
/// any number of threads — page reads are positional (pread / pointer
/// math into an mmap), so no lock is taken anywhere on the read path.
/// (TsStore's parallel query/compact paths rely on this.) Concurrent
/// calls must not share one `ScanStats` object — pass per-thread stats
/// or nullptr.
class TsFileReader {
 public:
  TsFileReader();
  ~TsFileReader();

  TsFileReader(const TsFileReader&) = delete;
  TsFileReader& operator=(const TsFileReader&) = delete;

  /// Opens the file and parses the footer (validating both magics).
  Status Open(const std::string& path);
  /// Open with an explicit page source / cache configuration.
  Status Open(const std::string& path, const ReaderOptions& options);

  const std::vector<SeriesInfo>& series() const;
  Result<const SeriesInfo*> FindSeries(const std::string& name) const;

  /// Reads a full series. `stats` (optional) accumulates IO/decode time.
  Status ReadSeries(const std::string& name, std::vector<int64_t>* out,
                    ScanStats* stats = nullptr);

  /// Reads values with series index in [first, last]; prunes pages that
  /// do not overlap.
  Status ReadRange(const std::string& name, uint64_t first, uint64_t last,
                   std::vector<int64_t>* out, ScanStats* stats = nullptr);

  /// Aggregate (count / min / max / sum) over one series, answered from
  /// the footer's per-page statistics without reading any page —
  /// `stats->pages_read` stays 0.
  Result<AggregateResult> AggregateQuery(const std::string& name,
                                         ScanStats* stats = nullptr);

  /// The same aggregate computed by scanning and decoding every page;
  /// used to validate the pushdown path and to measure its benefit.
  Result<AggregateResult> AggregateQueryScan(const std::string& name,
                                             ScanStats* stats = nullptr);

  /// Reads the values (and their series indexes) with value in
  /// [v_min, v_max], pruning pages whose min/max statistics cannot
  /// overlap — a predicate pushdown over the footer statistics. Inside
  /// surviving pages the predicate is pushed into the codec
  /// (SeriesCodec::DecompressFilter), so block zone maps prune at block
  /// granularity too; `stats->values_scanned` counts only the values
  /// actually decoded. An empty predicate (`v_min > v_max`) is rejected
  /// as InvalidArgument rather than silently scanning pages.
  Status ReadValueRange(const std::string& name, int64_t v_min, int64_t v_max,
                        std::vector<std::pair<uint64_t, int64_t>>* out,
                        ScanStats* stats = nullptr);

  /// Aggregate over only the values in [v_min, v_max]. Pages entirely
  /// inside the predicate are answered from the footer statistics
  /// without IO; disjoint pages are pruned; only straddling pages are
  /// read and filtered. Rejects `v_min > v_max` as InvalidArgument.
  Result<AggregateResult> AggregateValueRange(const std::string& name,
                                              int64_t v_min, int64_t v_max,
                                              ScanStats* stats = nullptr);

  /// Reads exactly the series positions in `sel` (ascending, in series
  /// index space), appending the values in position order. Pages with
  /// no selected position are never read; within a page the selection
  /// is pushed into the codec (SeriesCodec::DecompressSelected), so a
  /// sparse selection decodes far fewer values than a full scan. A
  /// position at or past the series length is InvalidArgument.
  Status ReadSelected(const std::string& name,
                      const select::SelectionVector& sel,
                      std::vector<int64_t>* out, ScanStats* stats = nullptr);

  /// ReadSelected for timed series: returns the (timestamp, value)
  /// points at the selected positions.
  Status ReadSelectedPoints(const std::string& name,
                            const select::SelectionVector& sel,
                            std::vector<codecs::DataPoint>* out,
                            ScanStats* stats = nullptr);

  /// Reads a full timestamped series.
  Status ReadTimeSeries(const std::string& name,
                        std::vector<codecs::DataPoint>* out,
                        ScanStats* stats = nullptr);

  /// Reads points with timestamp in [t_min, t_max] from a timed series,
  /// pruning pages whose time range does not overlap.
  Status ReadTimeRange(const std::string& name, int64_t t_min, int64_t t_max,
                       std::vector<codecs::DataPoint>* out,
                       ScanStats* stats = nullptr);

  /// Total size of the open file in bytes.
  uint64_t file_size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bos::storage

#endif  // BOS_STORAGE_TSFILE_H_
