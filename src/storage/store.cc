#include "storage/store.h"

#if defined(__unix__) || defined(__APPLE__)
#define BOS_STORAGE_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <filesystem>
#include <set>

#include "codecs/advisor.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/macros.h"

namespace bos::storage {
namespace {

namespace fs = std::filesystem;

constexpr const char* kFileSuffix = ".tsfile";

bool TimeLess(const codecs::DataPoint& a, const codecs::DataPoint& b) {
  return a.timestamp < b.timestamp;
}

// Takes an exclusive flock on `<dir>/LOCK`, returning the held fd, or a
// contextual Status when another TsStore (any process, or this one) holds
// it. flock locks attach to the open file description, so a second open
// of the same path conflicts even within one process — exactly the "two
// bosd instances on one shard directory" corruption this prevents. On
// platforms without flock the guard is a no-op (-1).
Result<int> AcquireDirLock(const std::string& dir) {
#if defined(BOS_STORAGE_HAVE_FLOCK)
  const std::string path = (fs::path(dir) / "LOCK").string();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("cannot create lock file " + path);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store directory locked by another process: " +
                           dir + " (is another bosd/TsStore using it?)");
  }
  return fd;
#else
  (void)dir;
  return -1;
#endif
}

}  // namespace

TsStore::TsStore(StoreOptions options) : options_(std::move(options)) {}

TsStore::~TsStore() {
#if defined(BOS_STORAGE_HAVE_FLOCK)
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
#endif
}

Result<std::unique_ptr<TsStore>> TsStore::Open(const StoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("store directory must be set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return Status::IoError("cannot create " + options.dir);

  auto store = std::unique_ptr<TsStore>(new TsStore(options));
  BOS_ASSIGN_OR_RETURN(store->lock_fd_, AcquireDirLock(options.dir));
  if (options.cache_mb > 0) {
    store->cache_ = std::make_unique<PageCache>(options.cache_mb << 20);
  }

  if (options.enable_wal) {
    const std::string wal_path = (fs::path(options.dir) / "wal").string();
    // Recover any points that never made it into an immutable file.
    BOS_ASSIGN_OR_RETURN(
        const uint64_t replayed,
        ReplayWal(wal_path, [&store](const std::string& series,
                                     const codecs::DataPoint& point) {
          store->memtable_[series].push_back(point);
          ++store->memtable_size_;
        }));
    (void)replayed;
    store->wal_ = std::make_unique<WalWriter>(wal_path);
    BOS_RETURN_NOT_OK(store->wal_->Open());
  }

  // Adopt existing files, oldest (lowest sequence) first.
  std::vector<std::string> found;
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    if (entry.path().extension() == kFileSuffix) {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  for (const std::string& path : found) {
    // Validate eagerly so a corrupt store fails at open, not at query;
    // the opened reader goes straight into the shared reader cache.
    BOS_RETURN_NOT_OK(store->ReaderFor(path).status());
    store->files_.push_back(path);
  }
  store->next_file_seq_ = found.size();
  return store;
}

exec::ThreadPool& TsStore::Pool() {
  if (options_.threads == 0) return exec::ThreadPool::Default();
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(options_.threads);
  }
  return *owned_pool_;
}

Status TsStore::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  wal_unsynced_appends_ = 0;
  return wal_->Sync();
}

Status TsStore::MaybeSyncWal(size_t appended) {
  if (wal_ == nullptr || options_.wal_sync_every_n == 0) return Status::OK();
  wal_unsynced_appends_ += appended;
  if (wal_unsynced_appends_ < options_.wal_sync_every_n) return Status::OK();
  wal_unsynced_appends_ = 0;
  return wal_->Sync();
}

Result<TsFileReader*> TsStore::ReaderFor(const std::string& path) const {
  auto it = readers_.find(path);
  if (it == readers_.end()) {
    auto reader = std::make_unique<TsFileReader>();
    BOS_RETURN_NOT_OK(reader->Open(
        path, ReaderOptions{.use_mmap = options_.use_mmap,
                            .cache = cache_.get()}));
    it = readers_.emplace(path, std::move(reader)).first;
  }
  return it->second.get();
}

std::string TsStore::NextFileName() {
  char name[32];
  std::snprintf(name, sizeof(name), "%08llu%s",
                static_cast<unsigned long long>(next_file_seq_++), kFileSuffix);
  return (fs::path(options_.dir) / name).string();
}

Status TsStore::Write(const std::string& series, codecs::DataPoint point) {
  if (wal_ != nullptr) {
    BOS_RETURN_NOT_OK(wal_->Append(series, point));
    BOS_RETURN_NOT_OK(MaybeSyncWal(1));
  }
  memtable_[series].push_back(point);
  ++memtable_size_;
  if (memtable_size_ >= options_.memtable_points) return Flush();
  return Status::OK();
}

Status TsStore::WriteBatch(const std::string& series,
                           std::span<const codecs::DataPoint> points) {
  if (wal_ != nullptr) {
    for (const codecs::DataPoint& p : points) {
      BOS_RETURN_NOT_OK(wal_->Append(series, p));
    }
    BOS_RETURN_NOT_OK(MaybeSyncWal(points.size()));
  }
  auto& buffer = memtable_[series];
  buffer.insert(buffer.end(), points.begin(), points.end());
  memtable_size_ += points.size();
  if (memtable_size_ >= options_.memtable_points) return Flush();
  return Status::OK();
}

std::string TsStore::SpecFor(const std::string& series) const {
  const auto it = advised_specs_.find(series);
  return it != advised_specs_.end() ? it->second : options_.spec;
}

Status TsStore::Flush() {
  if (memtable_size_ == 0) return Status::OK();
  BOS_TELEMETRY_SPAN("bos.storage.flush.span_ns");
  BOS_TRACE_SPAN("bos.storage.flush");
  BOS_TRACE_ANNOTATE("points", static_cast<int64_t>(memtable_size_));

  // Phase 1 (parallel): sort, advise, and compress every series into
  // memory. Each job owns its slot, the memtable and advised_specs_ are
  // only read, and page bytes do not depend on scheduling — so the file
  // written below is byte-identical to a serial flush.
  struct FlushJob {
    const std::string* name = nullptr;
    std::vector<codecs::DataPoint>* points = nullptr;
    std::string advised;  // empty = no new advice for this series
    EncodedSeries encoded;
  };
  std::vector<FlushJob> jobs;
  jobs.reserve(memtable_.size());
  for (auto& [series, points] : memtable_) {
    jobs.push_back({&series, &points, {}, {}});
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.flush.series", jobs.size());
  BOS_RETURN_NOT_OK(Pool().ParallelFor(
      jobs.size(), 1, [&](size_t begin, size_t end) -> Status {
        for (size_t j = begin; j < end; ++j) {
          FlushJob& job = jobs[j];
          BOS_TRACE_SPAN("bos.storage.flush.series");
          BOS_TRACE_ANNOTATE("series", *job.name);
          BOS_TRACE_ANNOTATE("points",
                             static_cast<int64_t>(job.points->size()));
          std::stable_sort(job.points->begin(), job.points->end(), TimeLess);
          std::string spec = SpecFor(*job.name);
          if (options_.auto_advise &&
              advised_specs_.find(*job.name) == advised_specs_.end()) {
            std::vector<int64_t> values(job.points->size());
            for (size_t i = 0; i < values.size(); ++i) {
              values[i] = (*job.points)[i].value;
            }
            auto rec = codecs::AdviseCodec(values);
            if (rec.ok()) {
              const size_t bar = options_.spec.find('|');
              const std::string time_half =
                  bar == std::string::npos ? "TS2DIFF+BOS-B"
                                           : options_.spec.substr(0, bar);
              job.advised = time_half + "|" + rec->spec;
              spec = job.advised;
            }
          }
          BOS_ASSIGN_OR_RETURN(
              job.encoded, EncodeTimeSeriesPages(*job.name, spec, *job.points,
                                                 options_.page_size));
        }
        return Status::OK();
      }));

  // Phase 2 (serial): commit advice and write the file in memtable
  // (map, i.e. name) order.
  const std::string path = NextFileName();
  TsFileWriter writer(path, options_.page_size);
  BOS_RETURN_NOT_OK(writer.Open());
  for (FlushJob& job : jobs) {
    if (!job.advised.empty()) advised_specs_[*job.name] = job.advised;
    BOS_RETURN_NOT_OK(writer.AppendEncoded(std::move(job.encoded)));
  }
  BOS_RETURN_NOT_OK(writer.Finish());
  files_.push_back(path);
  memtable_.clear();
  memtable_size_ = 0;
  // The flushed points are durable in the file; the log restarts empty.
  if (wal_ != nullptr) BOS_RETURN_NOT_OK(wal_->Reset());
  return Status::OK();
}

Status TsStore::Query(const std::string& series, int64_t t_min, int64_t t_max,
                      std::vector<codecs::DataPoint>* out) {
  BOS_TRACE_SPAN("bos.storage.query");
  BOS_TRACE_ANNOTATE("series", series);
  // Readers are opened serially (the cache map mutates), then every
  // file's pages are read and decoded in parallel into per-file slots —
  // concatenating the slots in file order keeps the merge input, and so
  // the result, identical to the serial scan.
  std::vector<TsFileReader*> readers;
  readers.reserve(files_.size());
  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    readers.push_back(reader);
  }
  std::vector<std::vector<codecs::DataPoint>> parts(readers.size());
  BOS_RETURN_NOT_OK(Pool().ParallelFor(
      readers.size(), 1, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          if (!readers[i]->FindSeries(series).ok()) continue;  // not here
          BOS_TRACE_SPAN("bos.storage.query.file");
          BOS_TRACE_ANNOTATE("file", static_cast<int64_t>(i));
          BOS_RETURN_NOT_OK(
              readers[i]->ReadTimeRange(series, t_min, t_max, &parts[i]));
          BOS_TRACE_ANNOTATE("points", static_cast<int64_t>(parts[i].size()));
        }
        return Status::OK();
      }));

  std::vector<codecs::DataPoint> merged;
  for (const auto& part : parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  const auto it = memtable_.find(series);
  if (it != memtable_.end()) {
    for (const codecs::DataPoint& p : it->second) {
      if (p.timestamp >= t_min && p.timestamp <= t_max) merged.push_back(p);
    }
  }
  // Files are time-sorted individually but may interleave; a stable sort
  // keeps older files (and the memtable last) in write order on ties.
  std::stable_sort(merged.begin(), merged.end(), TimeLess);
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status TsStore::QuerySelected(const std::string& series,
                              const select::SelectionVector& sel,
                              std::vector<codecs::DataPoint>* out) {
  BOS_TRACE_SPAN("bos.storage.query_selected");
  BOS_TRACE_ANNOTATE("series", series);
  uint64_t base = 0;     // store-order position of the next source's start
  uint64_t covered = 0;  // selected positions that fell inside some source
  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    const auto found = reader->FindSeries(series);
    if (!found.ok()) continue;  // not in this file
    const uint64_t n = (*found)->num_values;
    // Rebase the store-order window onto this file's series index space.
    select::SelectionVector local;
    sel.ForEachRunInRange(base, base + n, [&](uint64_t start, uint64_t len) {
      local.AddRange(start - base, start - base + len);
    });
    if (!local.empty()) {
      covered += local.cardinality();
      BOS_RETURN_NOT_OK(reader->ReadSelectedPoints(series, local, out));
    }
    base += n;
  }
  const auto it = memtable_.find(series);
  if (it != memtable_.end()) {
    const std::vector<codecs::DataPoint>& tail = it->second;
    sel.ForEachRunInRange(base, base + tail.size(),
                          [&](uint64_t start, uint64_t len) {
                            for (uint64_t i = 0; i < len; ++i) {
                              out->push_back(
                                  tail[static_cast<size_t>(start - base + i)]);
                            }
                            covered += len;
                          });
  }
  if (covered != sel.cardinality()) {
    return Status::InvalidArgument("selection position past end of series: " +
                                   series);
  }
  return Status::OK();
}

Result<AggregateResult> TsStore::Aggregate(const std::string& series) {
  // The defaults are the documented count==0 sentinel (min=INT64_MAX,
  // max=INT64_MIN, sum=0) — the identity elements, so folding needs no
  // first-part special case and an empty series returns the same result
  // as TsFileReader's aggregate paths.
  AggregateResult agg;
  auto fold = [&](const AggregateResult& part) {
    if (part.count == 0) return;
    agg.count += part.count;
    agg.min = std::min(agg.min, part.min);
    agg.max = std::max(agg.max, part.max);
    agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                   static_cast<uint64_t>(part.sum));
  };

  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    if (!reader->FindSeries(series).ok()) continue;
    BOS_ASSIGN_OR_RETURN(const AggregateResult part,
                         reader->AggregateQuery(series));
    fold(part);
  }
  const auto it = memtable_.find(series);
  if (it != memtable_.end() && !it->second.empty()) {
    AggregateResult part;
    part.count = it->second.size();
    for (const codecs::DataPoint& p : it->second) {
      part.min = std::min(part.min, p.value);
      part.max = std::max(part.max, p.value);
      part.sum = static_cast<int64_t>(static_cast<uint64_t>(part.sum) +
                                      static_cast<uint64_t>(p.value));
    }
    fold(part);
  }
  return agg;
}

Status TsStore::Compact() {
  BOS_RETURN_NOT_OK(Flush());
  if (files_.size() <= 1) return Status::OK();
  BOS_TELEMETRY_SPAN("bos.storage.compact.span_ns");
  BOS_TRACE_SPAN("bos.storage.compact");
  BOS_TRACE_ANNOTATE("files", static_cast<int64_t>(files_.size()));

  // Collect every series across all files (and warm the reader cache so
  // the parallel phase below never mutates it).
  std::set<std::string> names_set;
  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    for (const SeriesInfo& s : reader->series()) names_set.insert(s.name);
  }
  const std::vector<std::string> names(names_set.begin(), names_set.end());

  // Parallel: merge and recompress each series into memory. The inner
  // Query also fans out per file — the pool's ParallelFor nests safely.
  // The memtable is empty after the Flush above, so Query only touches
  // the immutable files.
  std::vector<EncodedSeries> rebuilt(names.size());
  BOS_RETURN_NOT_OK(Pool().ParallelFor(
      names.size(), 1, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          std::vector<codecs::DataPoint> all;
          BOS_RETURN_NOT_OK(Query(names[i], INT64_MIN, INT64_MAX, &all));
          BOS_ASSIGN_OR_RETURN(
              rebuilt[i], EncodeTimeSeriesPages(names[i], options_.spec, all,
                                                options_.page_size));
        }
        return Status::OK();
      }));

  // Serial: write the merged file in name order, then swap it in.
  const std::string path = NextFileName();
  TsFileWriter writer(path, options_.page_size);
  BOS_RETURN_NOT_OK(writer.Open());
  for (EncodedSeries& series : rebuilt) {
    BOS_RETURN_NOT_OK(writer.AppendEncoded(std::move(series)));
  }
  BOS_RETURN_NOT_OK(writer.Finish());

  std::error_code ec;
  for (const std::string& old : files_) {
    readers_.erase(old);
    fs::remove(old, ec);
  }
  files_.assign(1, path);
  return Status::OK();
}

std::vector<std::string> TsStore::ListSeries() const {
  std::set<std::string> names;
  for (const auto& [series, points] : memtable_) names.insert(series);
  for (const std::string& path : files_) {
    const auto reader = ReaderFor(path);
    if (!reader.ok()) continue;  // validated at open; tolerate races
    for (const SeriesInfo& s : (*reader)->series()) names.insert(s.name);
  }
  return {names.begin(), names.end()};
}

size_t TsStore::memtable_points() const { return memtable_size_; }
size_t TsStore::num_files() const { return files_.size(); }

}  // namespace bos::storage
