#include "storage/store.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "codecs/advisor.h"
#include "util/macros.h"

namespace bos::storage {
namespace {

namespace fs = std::filesystem;

constexpr const char* kFileSuffix = ".tsfile";

bool TimeLess(const codecs::DataPoint& a, const codecs::DataPoint& b) {
  return a.timestamp < b.timestamp;
}

}  // namespace

TsStore::TsStore(StoreOptions options) : options_(std::move(options)) {}

TsStore::~TsStore() = default;

Result<std::unique_ptr<TsStore>> TsStore::Open(const StoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("store directory must be set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return Status::IoError("cannot create " + options.dir);

  auto store = std::unique_ptr<TsStore>(new TsStore(options));

  if (options.enable_wal) {
    const std::string wal_path = (fs::path(options.dir) / "wal").string();
    // Recover any points that never made it into an immutable file.
    BOS_ASSIGN_OR_RETURN(
        const uint64_t replayed,
        ReplayWal(wal_path, [&store](const std::string& series,
                                     const codecs::DataPoint& point) {
          store->memtable_[series].push_back(point);
          ++store->memtable_size_;
        }));
    (void)replayed;
    store->wal_ = std::make_unique<WalWriter>(wal_path);
    BOS_RETURN_NOT_OK(store->wal_->Open());
  }

  // Adopt existing files, oldest (lowest sequence) first.
  std::vector<std::string> found;
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    if (entry.path().extension() == kFileSuffix) {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  for (const std::string& path : found) {
    // Validate eagerly so a corrupt store fails at open, not at query.
    TsFileReader reader;
    BOS_RETURN_NOT_OK(reader.Open(path));
    store->files_.push_back(path);
  }
  store->next_file_seq_ = found.size();
  return store;
}

Result<TsFileReader*> TsStore::ReaderFor(const std::string& path) {
  auto it = readers_.find(path);
  if (it == readers_.end()) {
    auto reader = std::make_unique<TsFileReader>();
    BOS_RETURN_NOT_OK(reader->Open(path));
    it = readers_.emplace(path, std::move(reader)).first;
  }
  return it->second.get();
}

std::string TsStore::NextFileName() {
  char name[32];
  std::snprintf(name, sizeof(name), "%08llu%s",
                static_cast<unsigned long long>(next_file_seq_++), kFileSuffix);
  return (fs::path(options_.dir) / name).string();
}

Status TsStore::Write(const std::string& series, codecs::DataPoint point) {
  if (wal_ != nullptr) BOS_RETURN_NOT_OK(wal_->Append(series, point));
  memtable_[series].push_back(point);
  ++memtable_size_;
  if (memtable_size_ >= options_.memtable_points) return Flush();
  return Status::OK();
}

Status TsStore::WriteBatch(const std::string& series,
                           std::span<const codecs::DataPoint> points) {
  if (wal_ != nullptr) {
    for (const codecs::DataPoint& p : points) {
      BOS_RETURN_NOT_OK(wal_->Append(series, p));
    }
  }
  auto& buffer = memtable_[series];
  buffer.insert(buffer.end(), points.begin(), points.end());
  memtable_size_ += points.size();
  if (memtable_size_ >= options_.memtable_points) return Flush();
  return Status::OK();
}

std::string TsStore::SpecFor(const std::string& series) const {
  const auto it = advised_specs_.find(series);
  return it != advised_specs_.end() ? it->second : options_.spec;
}

Status TsStore::Flush() {
  if (memtable_size_ == 0) return Status::OK();
  const std::string path = NextFileName();
  TsFileWriter writer(path, options_.page_size);
  BOS_RETURN_NOT_OK(writer.Open());
  for (auto& [series, points] : memtable_) {
    std::stable_sort(points.begin(), points.end(), TimeLess);
    if (options_.auto_advise && advised_specs_.find(series) == advised_specs_.end()) {
      std::vector<int64_t> values(points.size());
      for (size_t i = 0; i < points.size(); ++i) values[i] = points[i].value;
      auto rec = codecs::AdviseCodec(values);
      if (rec.ok()) {
        const size_t bar = options_.spec.find('|');
        const std::string time_half =
            bar == std::string::npos ? "TS2DIFF+BOS-B"
                                     : options_.spec.substr(0, bar);
        advised_specs_[series] = time_half + "|" + rec->spec;
      }
    }
    BOS_RETURN_NOT_OK(writer.AppendTimeSeries(series, SpecFor(series), points));
  }
  BOS_RETURN_NOT_OK(writer.Finish());
  files_.push_back(path);
  memtable_.clear();
  memtable_size_ = 0;
  // The flushed points are durable in the file; the log restarts empty.
  if (wal_ != nullptr) BOS_RETURN_NOT_OK(wal_->Reset());
  return Status::OK();
}

Status TsStore::Query(const std::string& series, int64_t t_min, int64_t t_max,
                      std::vector<codecs::DataPoint>* out) {
  std::vector<codecs::DataPoint> merged;
  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    if (!reader->FindSeries(series).ok()) continue;  // not in this file
    BOS_RETURN_NOT_OK(reader->ReadTimeRange(series, t_min, t_max, &merged));
  }
  const auto it = memtable_.find(series);
  if (it != memtable_.end()) {
    for (const codecs::DataPoint& p : it->second) {
      if (p.timestamp >= t_min && p.timestamp <= t_max) merged.push_back(p);
    }
  }
  // Files are time-sorted individually but may interleave; a stable sort
  // keeps older files (and the memtable last) in write order on ties.
  std::stable_sort(merged.begin(), merged.end(), TimeLess);
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Result<AggregateResult> TsStore::Aggregate(const std::string& series) {
  AggregateResult agg;
  bool first = true;
  auto fold = [&](const AggregateResult& part) {
    if (part.count == 0) return;
    agg.count += part.count;
    if (first) {
      agg.min = part.min;
      agg.max = part.max;
      first = false;
    } else {
      agg.min = std::min(agg.min, part.min);
      agg.max = std::max(agg.max, part.max);
    }
    agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                   static_cast<uint64_t>(part.sum));
  };

  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    if (!reader->FindSeries(series).ok()) continue;
    BOS_ASSIGN_OR_RETURN(const AggregateResult part,
                         reader->AggregateQuery(series));
    fold(part);
  }
  const auto it = memtable_.find(series);
  if (it != memtable_.end() && !it->second.empty()) {
    AggregateResult part;
    part.count = it->second.size();
    part.min = part.max = it->second.front().value;
    for (const codecs::DataPoint& p : it->second) {
      part.min = std::min(part.min, p.value);
      part.max = std::max(part.max, p.value);
      part.sum = static_cast<int64_t>(static_cast<uint64_t>(part.sum) +
                                      static_cast<uint64_t>(p.value));
    }
    fold(part);
  }
  return agg;
}

Status TsStore::Compact() {
  BOS_RETURN_NOT_OK(Flush());
  if (files_.size() <= 1) return Status::OK();

  // Collect every series across all files, fully merged.
  std::set<std::string> names;
  for (const std::string& path : files_) {
    BOS_ASSIGN_OR_RETURN(TsFileReader* reader, ReaderFor(path));
    for (const SeriesInfo& s : reader->series()) names.insert(s.name);
  }

  const std::string path = NextFileName();
  TsFileWriter writer(path, options_.page_size);
  BOS_RETURN_NOT_OK(writer.Open());
  for (const std::string& name : names) {
    std::vector<codecs::DataPoint> all;
    BOS_RETURN_NOT_OK(Query(name, INT64_MIN, INT64_MAX, &all));
    BOS_RETURN_NOT_OK(writer.AppendTimeSeries(name, options_.spec, all));
  }
  BOS_RETURN_NOT_OK(writer.Finish());

  std::error_code ec;
  for (const std::string& old : files_) {
    readers_.erase(old);
    fs::remove(old, ec);
  }
  files_.assign(1, path);
  return Status::OK();
}

std::vector<std::string> TsStore::ListSeries() const {
  std::set<std::string> names;
  for (const auto& [series, points] : memtable_) names.insert(series);
  for (const std::string& path : files_) {
    TsFileReader reader;
    if (!reader.Open(path).ok()) continue;  // const method: no cache access
    for (const SeriesInfo& s : reader.series()) names.insert(s.name);
  }
  return {names.begin(), names.end()};
}

size_t TsStore::memtable_points() const { return memtable_size_; }
size_t TsStore::num_files() const { return files_.size(); }

}  // namespace bos::storage
