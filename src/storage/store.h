#ifndef BOS_STORAGE_STORE_H_
#define BOS_STORAGE_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codecs/timeseries.h"
#include "exec/thread_pool.h"
#include "select/selection.h"
#include "storage/page_cache.h"
#include "storage/tsfile.h"
#include "storage/wal.h"
#include "util/result.h"

namespace bos::storage {

/// Options for TsStore.
struct StoreOptions {
  std::string dir;  ///< directory holding the flushed TsFile-lite files

  /// Points buffered across all series before an automatic flush.
  size_t memtable_points = 65536;

  /// Codec spec ("time_spec|value_spec") for flushed series.
  std::string spec = "TS2DIFF+BOS-B|TS2DIFF+BOS-B";

  /// Values per page inside flushed files.
  size_t page_size = codecs::kDefaultBlockSize;

  /// Write-ahead logging: memtable writes are appended to `<dir>/wal`
  /// and replayed on Open, so un-flushed points survive a crash.
  bool enable_wal = true;

  /// When true, the first flush of each series runs the encoding advisor
  /// on its values and pins the recommended value codec for that series
  /// (timestamps keep the spec's time half).
  bool auto_advise = false;

  /// Workers for the internal flush/compact/query fan-out. 0 shares the
  /// process-wide `exec::ThreadPool::Default()`; any other value gives
  /// this store a private pool of that many threads.
  size_t threads = 0;

  /// fsync the WAL after every N appends (0 = never fsync explicitly;
  /// appends still flush to the OS page cache, so they survive a process
  /// crash but not a power failure). Syncs are counted in telemetry as
  /// `bos.storage.wal.syncs`.
  size_t wal_sync_every_n = 0;

  /// Byte budget (in MiB) of the store's block cache, shared by every
  /// file reader: CRC-verified page payloads are kept so repeated
  /// queries skip both the read and the re-verification. 0 disables the
  /// cache entirely.
  size_t cache_mb = 64;

  /// Open file readers over mmap (zero-copy page views) instead of
  /// positional pread. Falls back to pread where mmap is unavailable.
  bool use_mmap = false;
};

/// \brief A miniature IoTDB-style time-series store: an in-memory
/// memtable absorbs writes (out-of-order allowed), flushes sort each
/// series by time and persist one immutable TsFile-lite file per flush,
/// and queries merge the memtable with every on-disk file. `Compact()`
/// folds all files into one.
///
/// This is the write/read path BOS sits on in its Apache IoTDB
/// deployment (paper §VII), at laptop scale.
///
/// Threading model: the public API is externally synchronized — callers
/// serialize access, as before — but the heavy operations fan out
/// internally on an `exec::ThreadPool` (see `StoreOptions::threads`):
/// `Flush()` compresses series concurrently, `Query()` decodes files
/// concurrently, and `Compact()` rebuilds series concurrently. The
/// fan-out is deterministic: flushed files and query results are
/// byte-identical to the serial versions regardless of thread count.
class TsStore {
 public:
  /// Opens (or creates) a store in `options.dir`, adopting any TsFile-lite
  /// files already present from previous runs.
  static Result<std::unique_ptr<TsStore>> Open(const StoreOptions& options);

  ~TsStore();
  TsStore(const TsStore&) = delete;
  TsStore& operator=(const TsStore&) = delete;

  /// Buffers one point; flushes automatically past the memtable limit.
  Status Write(const std::string& series, codecs::DataPoint point);

  /// Buffers many points.
  Status WriteBatch(const std::string& series,
                    std::span<const codecs::DataPoint> points);

  /// Persists the memtable as a new immutable file (no-op when empty).
  Status Flush();

  /// Forces every WAL append so far onto stable storage (fsync), or OK
  /// when the WAL is disabled. This is the group-commit hook: a caller
  /// batching many writers' appends applies their WriteBatch calls with
  /// `wal_sync_every_n == 0` and then pays for one fsync here, instead
  /// of one per writer (DESIGN.md section 14).
  Status SyncWal();

  /// Points of `series` with timestamp in [t_min, t_max], merged across
  /// the memtable and all files, sorted by timestamp.
  Status Query(const std::string& series, int64_t t_min, int64_t t_max,
               std::vector<codecs::DataPoint>* out);

  /// Point lookup: the points of `series` at the positions in `sel`,
  /// where position indexes the series' points in store order — on-disk
  /// files oldest first (each file in its stored time order), then the
  /// memtable tail in insertion order. The selective decode path
  /// (`TsFileReader::ReadSelectedPoints`) skips pages and blocks with
  /// no selected position. A position at or past the series' total
  /// point count is InvalidArgument.
  Status QuerySelected(const std::string& series,
                       const select::SelectionVector& sel,
                       std::vector<codecs::DataPoint>* out);

  /// count/min/max/sum over the series' *values*: pushdown over on-disk
  /// page statistics plus a scan of the memtable tail.
  Result<AggregateResult> Aggregate(const std::string& series);

  /// Merges every on-disk file into a single new file. The memtable is
  /// flushed first.
  Status Compact();

  /// All series names across memtable and files, sorted.
  std::vector<std::string> ListSeries() const;

  /// The store's block cache (for stats), or nullptr when disabled.
  const PageCache* page_cache() const { return cache_.get(); }

  /// The codec spec a series flushes with ("time|value"); reflects the
  /// advisor's pick once auto_advise has seen the series.
  std::string SpecFor(const std::string& series) const;

  size_t memtable_points() const;
  size_t num_files() const;

 private:
  explicit TsStore(StoreOptions options);

  std::string NextFileName();

  /// The pool the internal fan-out runs on (shared default or private,
  /// per StoreOptions::threads; the private pool is created lazily).
  exec::ThreadPool& Pool();

  /// Applies the wal_sync_every_n policy after `appended` new records.
  Status MaybeSyncWal(size_t appended);

  /// Cached reader for an immutable file (files never change once
  /// written, so readers stay valid until the file is removed). Const —
  /// the reader map is a cache, not observable state — so const paths
  /// like ListSeries share readers instead of opening throwaway ones.
  Result<TsFileReader*> ReaderFor(const std::string& path) const;

  StoreOptions options_;
  /// flock'd `<dir>/LOCK` file descriptor (POSIX; -1 where unsupported
  /// or before Open finishes). Held exclusively for the store's lifetime
  /// so two processes — or two TsStore instances in one process — cannot
  /// open the same directory and interleave WAL appends.
  int lock_fd_ = -1;
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  size_t wal_unsynced_appends_ = 0;
  std::unique_ptr<WalWriter> wal_;
  // Declared before readers_: readers drop their cache entries on
  // destruction, so the cache must be destroyed after them.
  std::unique_ptr<PageCache> cache_;
  mutable std::map<std::string, std::unique_ptr<TsFileReader>> readers_;
  std::map<std::string, std::vector<codecs::DataPoint>> memtable_;
  size_t memtable_size_ = 0;
  std::vector<std::string> files_;  // oldest first
  std::map<std::string, std::string> advised_specs_;
  uint64_t next_file_seq_ = 0;
};

}  // namespace bos::storage

#endif  // BOS_STORAGE_STORE_H_
