#include "storage/wal.h"

#include <cstdio>
#include <filesystem>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bitpack/varint.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/buffer.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::storage {

WalWriter::WalWriter(std::string path) : path_(std::move(path)) {}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return Status::IoError("cannot open WAL " + path_);
  return Status::OK();
}

Status WalWriter::Append(const std::string& series,
                         const codecs::DataPoint& point) {
  if (file_ == nullptr) return Status::InvalidArgument("WAL not open");
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.wal.appends", 1);
  BOS_TELEMETRY_SPAN("bos.storage.wal.append_ns");
  Bytes payload;
  bitpack::PutVarint(&payload, series.size());
  payload.insert(payload.end(), series.begin(), series.end());
  bitpack::PutSignedVarint(&payload, point.timestamp);
  bitpack::PutSignedVarint(&payload, point.value);

  Bytes record;
  PutFixed<uint32_t>(&record, Crc32(payload.data(), payload.size()));
  bitpack::PutVarint(&record, payload.size());
  record.insert(record.end(), payload.begin(), payload.end());
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IoError("WAL append failed");
  }
  {
    BOS_TELEMETRY_SPAN("bos.storage.wal.flush_ns");
    if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("WAL not open");
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.wal.syncs", 1);
  BOS_TELEMETRY_SPAN("bos.storage.wal.sync_ns");
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
#if defined(_WIN32)
  // No fsync on the MSVC runtime; the fflush above is the best available.
#else
  if (fsync(fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed " + path_);
  }
#endif
  return Status::OK();
}

Status WalWriter::Reset() {
  Close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  return Open();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(const std::string& series,
                             const codecs::DataPoint& point)>& sink) {
  BOS_TELEMETRY_SPAN("bos.storage.wal.replay_ns");
  BOS_TRACE_SPAN("bos.storage.wal.replay");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return uint64_t{0};  // no log, nothing to replay
  // ftell returns -1 on unseekable streams (pipes, some special files);
  // casting that straight to size_t would request a ~2^64-byte buffer.
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot determine WAL size " + path);
  }
  Bytes data(static_cast<size_t>(size));
  const bool read_ok = std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!read_ok) return Status::IoError("cannot read WAL " + path);

  uint64_t replayed = 0;
  size_t offset = 0;
  while (offset < data.size()) {
    // Any parse failure from here on is a torn tail: stop silently.
    uint32_t crc;
    if (!GetFixed<uint32_t>(data, offset, &crc)) break;
    size_t pos = offset + 4;
    uint64_t payload_len;
    if (!bitpack::GetVarint(data, &pos, &payload_len).ok()) break;
    // Overflow-safe: a corrupt 2^64-ish payload_len must not wrap past the
    // buffer end and send Crc32 out of bounds.
    if (!SliceFits(data.size(), pos, payload_len)) break;
    if (Crc32(data.data() + pos, payload_len) != crc) break;

    const size_t payload_end = pos + payload_len;
    uint64_t name_len;
    if (!bitpack::GetVarint(data, &pos, &name_len).ok() ||
        !SliceFits(payload_end, pos, name_len)) {
      break;
    }
    const std::string series(reinterpret_cast<const char*>(data.data() + pos),
                             name_len);
    pos += name_len;
    codecs::DataPoint point;
    if (!bitpack::GetSignedVarint(data, &pos, &point.timestamp).ok() ||
        !bitpack::GetSignedVarint(data, &pos, &point.value).ok() ||
        pos != payload_end) {
      break;
    }
    sink(series, point);
    ++replayed;
    offset = payload_end;
  }
  if (offset < data.size()) {
    // The tail failed CRC or framing: expected after a crash, but worth
    // watching in production — a rising rate means real corruption.
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.wal.torn_tail", 1);
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.wal.records_replayed", replayed);
  BOS_TRACE_ANNOTATE("records", static_cast<int64_t>(replayed));
  return replayed;
}

}  // namespace bos::storage
