#include "storage/tsfile_inspect.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "bitpack/varint.h"
#include "storage/page_source.h"
#include "telemetry/telemetry.h"
#include "util/buffer.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::storage {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Mirrors Impl::FetchPagePayload in tsfile.cc: header, tiling, and CRC.
Status PagePayload(BytesView file, const PageInfo& page, BytesView* payload) {
  if (!SliceFits(file.size(), page.offset, page.size)) {
    return Status::Corruption("page outside file");
  }
  const BytesView raw = file.subspan(page.offset, page.size);
  size_t pos = 0;
  uint64_t count, payload_size;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(raw, &pos, &count));
  BOS_RETURN_NOT_OK(bitpack::GetVarint(raw, &pos, &payload_size));
  if (!SliceFits(raw.size(), pos, payload_size) ||
      pos + payload_size + 4 != raw.size() || count != page.count) {
    return Status::Corruption("page header mismatch");
  }
  uint32_t crc = 0;
  GetFixed<uint32_t>(raw, pos + payload_size, &crc);
  if (crc != Crc32(raw.data() + pos, payload_size)) {
    return Status::Corruption("page CRC mismatch");
  }
  *payload = raw.subspan(pos, payload_size);
  return Status::OK();
}

Status InspectPage(BytesView file, const SeriesInfo& series,
                   const PageInfo& page, TsPageReport* report) {
  report->info = page;
  BytesView payload;
  BOS_RETURN_NOT_OK(PagePayload(file, page, &payload));
  if (!series.timed) {
    BOS_ASSIGN_OR_RETURN(report->value_stream, codecs::InspectSeriesStream(
                                                   series.codec_spec, payload));
    if (report->value_stream.values != page.count) {
      return Status::Corruption("page value count mismatch");
    }
    return Status::OK();
  }
  const size_t bar = series.codec_spec.find('|');
  if (bar == std::string::npos) {
    return Status::Corruption("timed series without a two-column spec");
  }
  const std::string time_spec = series.codec_spec.substr(0, bar);
  const std::string value_spec = series.codec_spec.substr(bar + 1);
  if (page.fixed_interval) {
    // Fixed-interval page: no time column at all, the payload is the
    // bare value stream.
    BOS_ASSIGN_OR_RETURN(report->value_stream,
                         codecs::InspectSeriesStream(value_spec, payload));
    if (report->value_stream.values != page.count) {
      return Status::Corruption("fixed page: value count mismatch");
    }
    return Status::OK();
  }
  // Timed page: "time_spec|value_spec" codec over
  // varint time_len | time stream | value stream.
  size_t offset = 0;
  uint64_t time_len;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(payload, &offset, &time_len));
  if (!SliceFits(payload.size(), offset, time_len)) {
    return Status::Corruption("timed page: time column truncated");
  }
  BOS_ASSIGN_OR_RETURN(
      report->time_stream,
      codecs::InspectSeriesStream(time_spec, payload.subspan(offset, time_len)));
  report->time_stream_bytes = time_len;
  BOS_ASSIGN_OR_RETURN(
      report->value_stream,
      codecs::InspectSeriesStream(value_spec, payload.subspan(offset + time_len)));
  if (report->time_stream.values != page.count ||
      report->value_stream.values != page.count) {
    return Status::Corruption("timed page: point count mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<TsFileReport> InspectTsFile(const std::string& path) {
  TsFileReport report;
  report.path = path;
  // The reader validates both magics and the footer CRC.
  TsFileReader reader;
  BOS_RETURN_NOT_OK(reader.Open(path));
  report.file_bytes = reader.file_size();
  // One whole-file view, zero-copy when the platform can mmap.
  BOS_ASSIGN_OR_RETURN(
      const std::unique_ptr<PageSource> source,
      MakePageSource(path, PageSourceOptions{.use_mmap = true}));
  Bytes scratch;
  BytesView file;
  BOS_RETURN_NOT_OK(source->ReadAt(0, source->file_size(), &scratch, &file));
  for (const SeriesInfo& s : reader.series()) {
    TsSeriesReport series_report;
    series_report.name = s.name;
    series_report.codec_spec = s.codec_spec;
    series_report.timed = s.timed;
    series_report.num_values = s.num_values;
    for (const PageInfo& page : s.pages) {
      TsPageReport page_report;
      BOS_RETURN_NOT_OK(InspectPage(file, s, page, &page_report));
      series_report.pages.push_back(std::move(page_report));
    }
    report.series.push_back(std::move(series_report));
  }
  return report;
}

std::string RenderTsFileText(const TsFileReport& report) {
  std::string out;
  Appendf(&out, "%s: %" PRIu64 " bytes, %zu series\n", report.path.c_str(),
          report.file_bytes, report.series.size());
  for (const TsSeriesReport& s : report.series) {
    Appendf(&out, "  %s [%s] %s: %" PRIu64 " values, %zu pages\n",
            s.name.c_str(), s.codec_spec.c_str(), s.timed ? "timed" : "plain",
            s.num_values, s.pages.size());
    for (size_t p = 0; p < s.pages.size(); ++p) {
      const TsPageReport& page = s.pages[p];
      Appendf(&out, "    page %zu @%" PRIu64 ": %" PRIu64 " bytes, %" PRIu64
              " values",
              p, page.info.offset, page.info.size, page.info.count);
      if (page.info.fixed_interval) {
        Appendf(&out, ", fixed interval %" PRId64, page.info.interval);
      }
      out.push_back('\n');
      if (s.timed && !page.info.fixed_interval) {
        AppendStreamText(page.time_stream, "      [time]  ", &out);
        AppendStreamText(page.value_stream, "      [value] ", &out);
      } else {
        AppendStreamText(page.value_stream, "      ", &out);
      }
    }
  }
  return out;
}

std::string RenderTsFileJson(const TsFileReport& report) {
  std::string out;
  Appendf(&out, "{\"schema_version\":%d,\"format\":\"BOS1\",\"path\":",
          telemetry::kSchemaVersion);
  AppendJsonString(&out, report.path);
  Appendf(&out, ",\"file_bytes\":%" PRIu64 ",\"series\":[", report.file_bytes);
  for (size_t i = 0; i < report.series.size(); ++i) {
    const TsSeriesReport& s = report.series[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonString(&out, s.name);
    out.append(",\"spec\":");
    AppendJsonString(&out, s.codec_spec);
    Appendf(&out, ",\"timed\":%s,\"values\":%" PRIu64 ",\"pages\":[",
            s.timed ? "true" : "false", s.num_values);
    for (size_t p = 0; p < s.pages.size(); ++p) {
      const TsPageReport& page = s.pages[p];
      if (p > 0) out.push_back(',');
      Appendf(&out,
              "{\"offset\":%" PRIu64 ",\"bytes\":%" PRIu64
              ",\"values\":%" PRIu64 ",\"fixed_interval\":%s",
              page.info.offset, page.info.size, page.info.count,
              page.info.fixed_interval ? "true" : "false");
      if (page.info.fixed_interval) {
        Appendf(&out, ",\"interval\":%" PRId64, page.info.interval);
      }
      if (s.timed && !page.info.fixed_interval) {
        out.append(",\"time_stream\":");
        AppendStreamJson(page.time_stream, &out);
      }
      out.append(",\"value_stream\":");
      AppendStreamJson(page.value_stream, &out);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

}  // namespace bos::storage
