#include "storage/page_source.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define BOS_STORAGE_HAVE_POSIX_IO 1
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#include <mutex>
#endif

#include "telemetry/telemetry.h"
#include "util/safe_math.h"

namespace bos::storage {
namespace {

#if defined(BOS_STORAGE_HAVE_POSIX_IO)

/// Positional pread on a plain fd. No mutex: pread carries its own
/// offset, so concurrent page reads on one descriptor never serialize.
class FilePageSource final : public PageSource {
 public:
  FilePageSource(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~FilePageSource() override { ::close(fd_); }

  Status ReadAt(uint64_t offset, uint64_t size, Bytes* scratch,
                BytesView* out) const override {
    if (!SliceFits(size_, offset, size)) {
      return Status::IoError("read past end of file");
    }
    scratch->resize(static_cast<size_t>(size));
    uint64_t done = 0;
    while (done < size) {
      const ssize_t got =
          ::pread(fd_, scratch->data() + done, static_cast<size_t>(size - done),
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread failed");
      }
      if (got == 0) return Status::IoError("short read");
      done += static_cast<uint64_t>(got);
    }
    *out = BytesView(*scratch);
    return Status::OK();
  }

  uint64_t file_size() const override { return size_; }
  bool zero_copy() const override { return false; }

 private:
  int fd_;
  uint64_t size_;
};

/// Read-only mapping of the whole file; ReadAt is pointer math, the
/// decoders run directly over the page cache's copy of the bytes.
class MmapPageSource final : public PageSource {
 public:
  MmapPageSource(const uint8_t* map, uint64_t size) : map_(map), size_(size) {}
  ~MmapPageSource() override {
    ::munmap(const_cast<uint8_t*>(map_), static_cast<size_t>(size_));
  }

  Status ReadAt(uint64_t offset, uint64_t size, Bytes* scratch,
                BytesView* out) const override {
    (void)scratch;
    if (!SliceFits(size_, offset, size)) {
      return Status::IoError("read past end of file");
    }
    *out = BytesView(map_ + offset, static_cast<size_t>(size));
    return Status::OK();
  }

  uint64_t file_size() const override { return size_; }
  bool zero_copy() const override { return true; }

 private:
  const uint8_t* map_;
  uint64_t size_;
};

#else  // stdio fallback: seek+read under a mutex, as before PageSource.

class StdioPageSource final : public PageSource {
 public:
  StdioPageSource(std::FILE* file, uint64_t size) : file_(file), size_(size) {}
  ~StdioPageSource() override { std::fclose(file_); }

  Status ReadAt(uint64_t offset, uint64_t size, Bytes* scratch,
                BytesView* out) const override {
    if (!SliceFits(size_, offset, size)) {
      return Status::IoError("read past end of file");
    }
    scratch->resize(static_cast<size_t>(size));
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("seek failed");
    }
    if (std::fread(scratch->data(), 1, scratch->size(), file_) !=
        scratch->size()) {
      return Status::IoError("short read");
    }
    *out = BytesView(*scratch);
    return Status::OK();
  }

  uint64_t file_size() const override { return size_; }
  bool zero_copy() const override { return false; }

 private:
  mutable std::mutex mu_;
  std::FILE* file_;
  uint64_t size_;
};

#endif

}  // namespace

Result<std::unique_ptr<PageSource>> MakePageSource(
    const std::string& path, const PageSourceOptions& options) {
#if defined(BOS_STORAGE_HAVE_POSIX_IO)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (options.use_mmap && size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);  // the mapping keeps the file alive
      BOS_TELEMETRY_COUNTER_ADD("bos.storage.source.open_mmap", 1);
      std::unique_ptr<PageSource> source = std::make_unique<MmapPageSource>(
          static_cast<const uint8_t*>(map), size);
      return source;
    }
    // mmap can fail where open succeeded (e.g. no address space); the
    // pread source answers the same reads, just with a copy.
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.source.open_pread", 1);
  std::unique_ptr<PageSource> source =
      std::make_unique<FilePageSource>(fd, size);
  return source;
#else
  (void)options;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed");
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot determine size of " + path);
  }
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.source.open_stdio", 1);
  std::unique_ptr<PageSource> source =
      std::make_unique<StdioPageSource>(file, static_cast<uint64_t>(size));
  return source;
#endif
}

}  // namespace bos::storage
