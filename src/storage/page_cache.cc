#include "storage/page_cache.h"

#include <bit>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "telemetry/telemetry.h"

namespace bos::storage {
namespace {

// 64-bit mix of the key pair; the high bits pick the shard and the full
// hash feeds the shard's table, so both distributions stay independent
// of page-offset alignment patterns.
uint64_t Mix(uint64_t file_id, uint64_t offset) {
  uint64_t h = file_id * 0x9e3779b97f4a7c15ULL;
  h ^= offset + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

struct PageCache::Shard {
  struct Key {
    uint64_t file_id = 0;
    uint64_t offset = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(Mix(k.file_id, k.offset));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const Bytes> payload;
    size_t charge = 0;
  };

  std::mutex mu;
  std::list<Entry> lru;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  size_t bytes = 0;
};

PageCache::PageCache(size_t capacity_bytes, size_t shards)
    : capacity_(capacity_bytes) {
  const size_t n = std::bit_ceil(shards == 0 ? size_t{1} : shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_ / n;
}

PageCache::~PageCache() = default;

uint64_t PageCache::NewFileId() {
  return next_file_id_.fetch_add(1, std::memory_order_relaxed);
}

PageCache::Shard& PageCache::ShardFor(uint64_t file_id, uint64_t offset) {
  // The table hash uses the low bits; take the shard index from the top.
  const uint64_t h = Mix(file_id, offset);
  return *shards_[static_cast<size_t>(h >> 32) & (shards_.size() - 1)];
}

std::shared_ptr<const Bytes> PageCache::Lookup(uint64_t file_id,
                                               uint64_t offset) {
  Shard& shard = ShardFor(file_id, offset);
  const Shard::Key key{file_id, offset};
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.cache.misses", 1);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.cache.hits", 1);
  return it->second->payload;
}

void PageCache::Insert(uint64_t file_id, uint64_t offset,
                       std::shared_ptr<const Bytes> payload) {
  if (payload == nullptr) return;
  const size_t charge = payload->size();
  if (charge > shard_capacity_) return;  // would evict a whole shard
  Shard& shard = ShardFor(file_id, offset);
  const Shard::Key key{file_id, offset};
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Files are immutable and ids unique, so the bytes are already
      // here; just refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Shard::Entry{key, std::move(payload), charge});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += charge;
    bytes_.fetch_add(charge, std::memory_order_relaxed);
    while (shard.bytes > shard_capacity_) {
      const Shard::Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      bytes_.fetch_sub(victim.charge, std::memory_order_relaxed);
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.cache.evictions",
                              static_cast<int64_t>(evicted));
  }
  BOS_TELEMETRY_GAUGE_SET("bos.storage.cache.bytes",
                          static_cast<int64_t>(bytes_used()));
}

void PageCache::ForgetFile(uint64_t file_id) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_id == file_id) {
        shard.bytes -= it->charge;
        bytes_.fetch_sub(it->charge, std::memory_order_relaxed);
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
  BOS_TELEMETRY_GAUGE_SET("bos.storage.cache.bytes",
                          static_cast<int64_t>(bytes_used()));
}

PageCache::Stats PageCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    stats.entries += shard_ptr->map.size();
  }
  return stats;
}

}  // namespace bos::storage
