#ifndef BOS_STORAGE_PAGE_SOURCE_H_
#define BOS_STORAGE_PAGE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/buffer.h"
#include "util/result.h"
#include "util/status.h"

namespace bos::storage {

/// How MakePageSource opens the file.
struct PageSourceOptions {
  /// Map the whole file read-only and hand out views straight into the
  /// mapping (zero-copy) instead of pread+copy. Falls back to the file
  /// source when mmap is unavailable or fails.
  bool use_mmap = false;
};

/// \brief Random-access byte source behind TsFileReader and the
/// inspector — the seam that separates "where page bytes come from"
/// (pread, mmap, someday a remote blob) from the format logic above it.
///
/// Contract (LevelDB RandomAccessFile style): `ReadAt` either fills
/// `*scratch` and points `*out` at it, or points `*out` at memory the
/// source owns (`zero_copy()` sources). Either way `*out` stays valid
/// until the next ReadAt that reuses the same scratch, or until the
/// source is destroyed — whichever comes first.
///
/// Thread safety: ReadAt is positional and lock-free on POSIX (pread /
/// pointer math into the mapping), so any number of threads may read
/// concurrently as long as each brings its own scratch buffer.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Reads exactly [offset, offset+size); short files are IoError.
  virtual Status ReadAt(uint64_t offset, uint64_t size, Bytes* scratch,
                        BytesView* out) const = 0;

  /// Total size of the file in bytes.
  virtual uint64_t file_size() const = 0;

  /// True when ReadAt returns views into source-owned memory (the view
  /// then does not depend on scratch, but still dies with the source).
  virtual bool zero_copy() const = 0;
};

/// Opens `path` per `options`: an mmap source when requested (and
/// possible), otherwise positional pread with no shared-handle mutex
/// (portable stdio fallback on platforms without pread).
Result<std::unique_ptr<PageSource>> MakePageSource(
    const std::string& path, const PageSourceOptions& options = {});

}  // namespace bos::storage

#endif  // BOS_STORAGE_PAGE_SOURCE_H_
