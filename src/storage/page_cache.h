#ifndef BOS_STORAGE_PAGE_CACHE_H_
#define BOS_STORAGE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/buffer.h"

namespace bos::storage {

/// \brief Sharded LRU cache of validated page payloads, keyed by
/// (file_id, page_offset).
///
/// Entries hold the codec payload *after* its CRC has been verified, so
/// a hit skips both the disk read and the re-verification — the two
/// costs repeated queries would otherwise pay per page, per query.
/// Payloads are handed out as `shared_ptr` pins: eviction under a
/// concurrent reader only drops the cache's reference, never the bytes
/// the reader is still decoding.
///
/// Identity is never the file path: paths can be reused (compaction
/// removes files and the sequence counter restarts on reopen), so every
/// `TsFileReader::Open` draws a fresh id from `NewFileId()` and calls
/// `ForgetFile` when it closes.
///
/// Thread safety: fully thread-safe. The key space is sharded by hash
/// across independently locked LRU lists, so concurrent readers on
/// different pages rarely contend on the same mutex. The byte budget is
/// split evenly across shards and enforced per shard at insert time.
///
/// Telemetry: `bos.storage.cache.{hits,misses,evictions}` counters and a
/// `bos.storage.cache.bytes` gauge; the same numbers are exposed
/// programmatically through `GetStats` for tests and `boscli`.
class PageCache {
 public:
  /// `capacity_bytes` bounds the cached payload bytes; `shards` is
  /// rounded up to a power of two.
  explicit PageCache(size_t capacity_bytes, size_t shards = 16);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// A process-unique id for one opened file.
  uint64_t NewFileId();

  /// The payload cached under (file_id, offset), or nullptr. A hit
  /// refreshes the entry's LRU recency.
  std::shared_ptr<const Bytes> Lookup(uint64_t file_id, uint64_t offset);

  /// Caches `payload` (which the caller has already CRC-verified),
  /// evicting least-recently-used entries past the shard budget. An
  /// entry larger than one shard's whole budget is not cached at all.
  void Insert(uint64_t file_id, uint64_t offset,
              std::shared_ptr<const Bytes> payload);

  /// Drops every entry of `file_id` (called when a reader closes or a
  /// compaction removes the file).
  void ForgetFile(uint64_t file_id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;    ///< cached payload bytes right now
    uint64_t entries = 0;  ///< cached pages right now
  };
  Stats GetStats() const;

  size_t capacity_bytes() const { return capacity_; }
  uint64_t bytes_used() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;

  Shard& ShardFor(uint64_t file_id, uint64_t offset);

  size_t capacity_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_file_id_{1};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace bos::storage

#endif  // BOS_STORAGE_PAGE_CACHE_H_
