#ifndef BOS_STORAGE_TSFILE_INSPECT_H_
#define BOS_STORAGE_TSFILE_INSPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codecs/inspect.h"
#include "storage/tsfile.h"
#include "util/result.h"

namespace bos::storage {

/// \brief EXPLAIN-style walk of a TsFile-lite container: footer, page
/// directory, and — via codecs::InspectSeriesStream — the per-block
/// Figure-7 breakdown of every page payload, all without materializing a
/// single decoded value. Page CRCs are verified (that reads the page
/// bytes, not the values).

struct TsPageReport {
  PageInfo info;  ///< the footer's directory entry
  /// Timed pages split into a time column and a value column; plain
  /// pages use only `value_stream`.
  codecs::StreamReport value_stream;
  codecs::StreamReport time_stream;
  uint64_t time_stream_bytes = 0;  ///< 0 for plain pages
};

struct TsSeriesReport {
  std::string name;
  std::string codec_spec;
  bool timed = false;
  uint64_t num_values = 0;
  std::vector<TsPageReport> pages;
};

struct TsFileReport {
  std::string path;
  uint64_t file_bytes = 0;
  std::vector<TsSeriesReport> series;
};

/// Opens `path`, parses the footer through TsFileReader, then walks
/// every page payload block by block.
Result<TsFileReport> InspectTsFile(const std::string& path);

std::string RenderTsFileText(const TsFileReport& report);
std::string RenderTsFileJson(const TsFileReport& report);

}  // namespace bos::storage

#endif  // BOS_STORAGE_TSFILE_INSPECT_H_
