#include "storage/tsfile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bitpack/varint.h"
#include "codecs/registry.h"
#include "storage/page_cache.h"
#include "storage/page_source.h"
#include "telemetry/telemetry.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/safe_math.h"

namespace bos::storage {
namespace {

constexpr char kMagic[4] = {'B', 'O', 'S', '1'};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void PutString(Bytes* out, const std::string& s) {
  bitpack::PutVarint(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

Status GetString(BytesView data, size_t* offset, std::string* s) {
  uint64_t len;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(data, offset, &len));
  if (!SliceFits(data.size(), *offset, len)) {
    return Status::Corruption("string truncated");
  }
  s->assign(reinterpret_cast<const char*>(data.data() + *offset), len);
  *offset += len;
  return Status::OK();
}

// Footer page-flag bits. Unknown bits are rejected at Open so a future
// format revision cannot be silently misread.
constexpr uint64_t kPageFlagFixedInterval = 1;

// The value half of a "time_spec|value_spec" pair. Only called with
// specs MakeTimeSeriesCodec accepted, so the bar is present.
std::string_view ValueSpecOf(std::string_view spec) {
  return spec.substr(spec.find('|') + 1);
}

// Detects a pure arithmetic timestamp sequence: every delta equal,
// positive, and the total span representable in int64 (so reader-side
// index arithmetic cannot overflow). Wrap-free by working in uint64.
bool DetectFixedInterval(std::span<const codecs::DataPoint> points,
                         int64_t* interval) {
  if (points.size() < 2) return false;
  const uint64_t d0 = static_cast<uint64_t>(points[1].timestamp) -
                      static_cast<uint64_t>(points[0].timestamp);
  if (d0 == 0 || d0 > static_cast<uint64_t>(INT64_MAX)) return false;
  for (size_t i = 2; i < points.size(); ++i) {
    const uint64_t d = static_cast<uint64_t>(points[i].timestamp) -
                       static_cast<uint64_t>(points[i - 1].timestamp);
    if (d != d0) return false;
  }
  const uint64_t span = static_cast<uint64_t>(points.back().timestamp) -
                        static_cast<uint64_t>(points.front().timestamp);
  if (span > static_cast<uint64_t>(INT64_MAX)) return false;
  *interval = static_cast<int64_t>(d0);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct TsFileWriter::Impl {
  std::FILE* file = nullptr;
  uint64_t offset = 0;
  std::vector<SeriesInfo> series;
  bool finished = false;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  Status Write(const void* data, size_t size) {
    if (std::fwrite(data, 1, size, file) != size) {
      return Status::IoError("short write");
    }
    offset += size;
    return Status::OK();
  }
};

TsFileWriter::TsFileWriter(std::string path, size_t page_size)
    : path_(std::move(path)), page_size_(page_size),
      impl_(std::make_unique<Impl>()) {}

TsFileWriter::~TsFileWriter() = default;

Status TsFileWriter::Open() {
  impl_->file = std::fopen(path_.c_str(), "wb");
  if (impl_->file == nullptr) {
    return Status::IoError("cannot create " + path_);
  }
  return impl_->Write(kMagic, sizeof(kMagic));
}

Status TsFileWriter::CheckAppendable(const std::string& name) const {
  if (impl_->file == nullptr || impl_->finished) {
    return Status::InvalidArgument("writer not open");
  }
  for (const SeriesInfo& s : impl_->series) {
    if (s.name == name) {
      return Status::InvalidArgument("duplicate series: " + name);
    }
  }
  return Status::OK();
}

namespace {

// Value statistics of one page, for aggregate pushdown.
void FillValueStats(std::span<const int64_t> values, EncodedPage* page) {
  if (values.empty()) return;
  page->min_value = page->max_value = values[0];
  uint64_t sum = 0;
  for (int64_t v : values) {
    page->min_value = std::min(page->min_value, v);
    page->max_value = std::max(page->max_value, v);
    sum += static_cast<uint64_t>(v);
  }
  page->sum_value = static_cast<int64_t>(sum);
}

}  // namespace

// Codec block size for a page: the page is the unit of IO and CRC, the
// block is the unit of (selective) decode. A page larger than the codec
// default simply holds several blocks, so widening pages for IO
// efficiency never widens the minimum decode. Pages at or below the
// default keep their historical single-block encoding byte for byte.
static size_t PageBlockSize(size_t page_size) {
  return std::min(page_size, codecs::kDefaultBlockSize);
}

Result<EncodedSeries> EncodeSeriesPages(const std::string& name,
                                        std::string_view spec,
                                        std::span<const int64_t> values,
                                        size_t page_size) {
  BOS_ASSIGN_OR_RETURN(auto codec,
                       codecs::MakeSeriesCodec(spec, PageBlockSize(page_size)));

  EncodedSeries series;
  series.name = name;
  series.codec_spec = std::string(spec);
  series.num_values = values.size();

  for (size_t start = 0; start == 0 || start < values.size();
       start += page_size) {
    const size_t len = std::min(page_size, values.size() - start);
    const auto page_values = values.subspan(start, len);
    EncodedPage page;
    BOS_RETURN_NOT_OK(codec->Compress(page_values, &page.payload));
    page.count = len;
    page.first_index = start;
    FillValueStats(page_values, &page);
    series.pages.push_back(std::move(page));
    if (values.empty()) break;  // single empty page
  }
  return series;
}

Result<EncodedSeries> EncodeTimeSeriesPages(
    const std::string& name, std::string_view spec,
    std::span<const codecs::DataPoint> points, size_t page_size) {
  BOS_ASSIGN_OR_RETURN(
      auto codec,
      codecs::MakeTimeSeriesCodec(spec, PageBlockSize(page_size)));
  // The value codec alone, for fixed-interval pages that store no time
  // column. Same spec half, same block size, so a fixed page's value
  // stream is byte-identical to the value half of an explicit page.
  BOS_ASSIGN_OR_RETURN(
      auto value_codec,
      codecs::MakeSeriesCodec(ValueSpecOf(spec), PageBlockSize(page_size)));
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].timestamp < points[i - 1].timestamp) {
      return Status::InvalidArgument("time series must be sorted by time");
    }
  }

  EncodedSeries series;
  series.name = name;
  series.codec_spec = std::string(spec);
  series.timed = true;
  series.num_values = points.size();

  std::vector<int64_t> page_values;
  for (size_t start = 0; start == 0 || start < points.size();
       start += page_size) {
    const size_t len = std::min(page_size, points.size() - start);
    const auto page_points = points.subspan(start, len);
    EncodedPage page;
    page.count = len;
    page.first_index = start;
    page.min_time = len > 0 ? points[start].timestamp : 0;
    page.max_time = len > 0 ? points[start + len - 1].timestamp : 0;
    page_values.resize(len);
    for (size_t i = 0; i < len; ++i) page_values[i] = points[start + i].value;
    if (DetectFixedInterval(page_points, &page.interval)) {
      // Regular sampling: drop the time column entirely; the footer's
      // (min_time, interval, count) triple regenerates it.
      page.fixed_interval = true;
      BOS_RETURN_NOT_OK(value_codec->Compress(page_values, &page.payload));
      BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.fixed_interval", 1);
    } else {
      BOS_RETURN_NOT_OK(codec->Compress(page_points, &page.payload));
    }
    FillValueStats(page_values, &page);
    series.pages.push_back(std::move(page));
    if (points.empty()) break;  // single empty page
  }
  return series;
}

Status TsFileWriter::WritePage(const EncodedPage& encoded, SeriesInfo* info) {
  Bytes page;
  bitpack::PutVarint(&page, encoded.count);
  bitpack::PutVarint(&page, encoded.payload.size());
  page.insert(page.end(), encoded.payload.begin(), encoded.payload.end());
  PutFixed<uint32_t>(&page,
                     Crc32(encoded.payload.data(), encoded.payload.size()));

  PageInfo pi;
  pi.offset = impl_->offset;
  pi.size = page.size();
  pi.count = encoded.count;
  pi.first_index = encoded.first_index;
  pi.min_time = encoded.min_time;
  pi.max_time = encoded.max_time;
  pi.min_value = encoded.min_value;
  pi.max_value = encoded.max_value;
  pi.sum_value = encoded.sum_value;
  pi.fixed_interval = encoded.fixed_interval;
  pi.interval = encoded.interval;
  info->pages.push_back(pi);
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.writes", 1);
  BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.write_bytes", page.size());
  return impl_->Write(page.data(), page.size());
}

Status TsFileWriter::AppendEncoded(EncodedSeries&& series) {
  BOS_RETURN_NOT_OK(CheckAppendable(series.name));
  SeriesInfo info;
  info.name = series.name;
  info.codec_spec = series.codec_spec;
  info.timed = series.timed;
  info.num_values = series.num_values;
  for (const EncodedPage& page : series.pages) {
    BOS_RETURN_NOT_OK(WritePage(page, &info));
  }
  impl_->series.push_back(std::move(info));
  return Status::OK();
}

Status TsFileWriter::AppendSeries(const std::string& name,
                                  std::string_view spec,
                                  std::span<const int64_t> values) {
  BOS_RETURN_NOT_OK(CheckAppendable(name));
  BOS_ASSIGN_OR_RETURN(auto series,
                       EncodeSeriesPages(name, spec, values, page_size_));
  return AppendEncoded(std::move(series));
}

Status TsFileWriter::AppendTimeSeries(
    const std::string& name, std::string_view spec,
    std::span<const codecs::DataPoint> points) {
  BOS_RETURN_NOT_OK(CheckAppendable(name));
  BOS_ASSIGN_OR_RETURN(auto series,
                       EncodeTimeSeriesPages(name, spec, points, page_size_));
  return AppendEncoded(std::move(series));
}

Status TsFileWriter::Finish() {
  if (impl_->file == nullptr || impl_->finished) {
    return Status::InvalidArgument("writer not open");
  }
  const uint64_t footer_offset = impl_->offset;
  Bytes footer;
  bitpack::PutVarint(&footer, impl_->series.size());
  for (const SeriesInfo& s : impl_->series) {
    PutString(&footer, s.name);
    PutString(&footer, s.codec_spec);
    footer.push_back(s.timed ? 1 : 0);
    bitpack::PutVarint(&footer, s.num_values);
    bitpack::PutVarint(&footer, s.pages.size());
    for (const PageInfo& p : s.pages) {
      bitpack::PutVarint(&footer, p.offset);
      bitpack::PutVarint(&footer, p.size);
      bitpack::PutVarint(&footer, p.count);
      bitpack::PutVarint(&footer, p.first_index);
      bitpack::PutSignedVarint(&footer, p.min_time);
      bitpack::PutSignedVarint(&footer, p.max_time);
      bitpack::PutSignedVarint(&footer, p.min_value);
      bitpack::PutSignedVarint(&footer, p.max_value);
      bitpack::PutSignedVarint(&footer, p.sum_value);
      bitpack::PutVarint(&footer,
                         p.fixed_interval ? kPageFlagFixedInterval : 0);
      if (p.fixed_interval) bitpack::PutSignedVarint(&footer, p.interval);
    }
  }
  PutFixed<uint32_t>(&footer, Crc32(footer.data(), footer.size()));
  BOS_RETURN_NOT_OK(impl_->Write(footer.data(), footer.size()));
  Bytes tail;
  PutFixed<uint64_t>(&tail, footer_offset);
  tail.insert(tail.end(), kMagic, kMagic + sizeof(kMagic));
  BOS_RETURN_NOT_OK(impl_->Write(tail.data(), tail.size()));
  if (std::fclose(impl_->file) != 0) {
    impl_->file = nullptr;
    return Status::IoError("close failed");
  }
  impl_->file = nullptr;
  impl_->finished = true;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

namespace {

// The decoders a timed series needs: the two-column pair codec for
// explicit pages, the value codec alone for fixed-interval pages.
struct TimedCodecs {
  std::shared_ptr<const codecs::TimeSeriesCodec> pair;
  std::shared_ptr<const codecs::SeriesCodec> value;
};

// Pages are always encoded with a block size of
// min(page_size, kDefaultBlockSize) — see PageBlockSize — so the
// default-block decoder handles every page: large pages are a sequence
// of default-size blocks, small pages a single short final block.
Result<TimedCodecs> MakeTimedCodecs(const std::string& spec) {
  TimedCodecs tc;
  BOS_ASSIGN_OR_RETURN(tc.pair, codecs::MakeTimeSeriesCodec(spec));
  BOS_ASSIGN_OR_RETURN(tc.value, codecs::MakeSeriesCodec(ValueSpecOf(spec)));
  return tc;
}

}  // namespace

struct TsFileReader::Impl {
  std::unique_ptr<PageSource> source;
  uint64_t file_size = 0;
  std::vector<SeriesInfo> series;
  PageCache* cache = nullptr;
  uint64_t cache_file_id = 0;

  // Decoders built once at Open: codec construction parses the spec and
  // allocates the whole operator chain, far too costly to repeat on
  // every query call. A bad spec is kept as a Status and surfaces on
  // first use of that series, exactly as the old per-call construction
  // did. Immutable after Open, so the read path stays lock-free.
  struct SeriesDecoders {
    Status status = Status::OK();
    std::shared_ptr<const codecs::SeriesCodec> value;  ///< untimed series
    TimedCodecs timed;                                 ///< timed series
    /// Pages are non-overlapping and ascending in time (what the writer
    /// always produces for a sorted series), so time-range queries may
    /// binary-search the page directory. Checked at Open — a hostile
    /// footer that interleaves page time ranges just falls back to the
    /// linear scan.
    bool time_ordered = false;
  };
  std::vector<SeriesDecoders> decoders;  ///< parallel to `series`

  ~Impl() {
    if (cache != nullptr) cache->ForgetFile(cache_file_id);
  }

  Result<const codecs::SeriesCodec*> ValueCodecFor(
      const SeriesInfo* info) const {
    const SeriesDecoders& d = decoders[static_cast<size_t>(
        info - series.data())];
    BOS_RETURN_NOT_OK(d.status);
    return d.value.get();
  }

  Result<const TimedCodecs*> TimedCodecsFor(const SeriesInfo* info) const {
    const SeriesDecoders& d = decoders[static_cast<size_t>(
        info - series.data())];
    BOS_RETURN_NOT_OK(d.status);
    return &d.timed;
  }

  bool TimeOrdered(const SeriesInfo* info) const {
    return decoders[static_cast<size_t>(info - series.data())].time_ordered;
  }

  // Per-call read state, owned by each Read*/Aggregate* call (never
  // shared between threads): `scratch` is reused across page fetches,
  // `pinned` keeps a cache payload alive while it is being decoded —
  // eviction can only drop the cache's own reference.
  struct PageBuffer {
    Bytes scratch;
    std::shared_ptr<const Bytes> pinned;
  };

  const SeriesInfo* Find(const std::string& name) const {
    for (const SeriesInfo& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  // Produces one page's validated codec payload in `*payload`. A cache
  // hit pins the stored bytes and touches neither the file nor the CRC
  // (verified once, at fill); a miss reads through `source`, validates,
  // and (with a cache) inserts an owned copy. The view stays valid
  // until the next fetch through the same `buf`.
  Status FetchPagePayload(const SeriesInfo& info, const PageInfo& page,
                          PageBuffer* buf, BytesView* payload,
                          ScanStats* stats) {
    if (cache != nullptr) {
      if (auto hit = cache->Lookup(cache_file_id, page.offset)) {
        *payload = BytesView(*hit);
        buf->pinned = std::move(hit);
        return Status::OK();
      }
    }
    const auto io_start = std::chrono::steady_clock::now();
    BytesView raw;
    BOS_RETURN_NOT_OK(source->ReadAt(page.offset, page.size, &buf->scratch,
                                     &raw));
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.reads", 1);
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.read_bytes", page.size);
    if (stats != nullptr) {
      stats->io_seconds += SecondsSince(io_start);
      stats->bytes_read += page.size;
      ++stats->pages_read;
    }

    size_t pos = 0;
    uint64_t count, payload_size;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(raw, &pos, &count));
    BOS_RETURN_NOT_OK(bitpack::GetVarint(raw, &pos, &payload_size));
    // SliceFits first: a near-2^64 payload_size would wrap `pos +
    // payload_size + 4` back into range and pass the equality check.
    if (!SliceFits(raw.size(), pos, payload_size) ||
        pos + payload_size + 4 != raw.size() || count != page.count) {
      BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.header_mismatches", 1);
      return Status::Corruption("page header mismatch");
    }
    uint32_t crc = 0;
    GetFixed<uint32_t>(raw, pos + payload_size, &crc);
    if (crc != Crc32(raw.data() + pos, payload_size)) {
      BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.crc_failures", 1);
      return Status::Corruption("page CRC mismatch in series " + info.name);
    }
    *payload = raw.subspan(pos, payload_size);
    if (cache != nullptr) {
      // Cache an owned copy, never a view into the mmap: a pin handed
      // out later must survive this reader (and its mapping) closing.
      std::shared_ptr<const Bytes> owned = std::make_shared<Bytes>(
          payload->begin(), payload->end());
      *payload = BytesView(*owned);
      cache->Insert(cache_file_id, page.offset, owned);
      buf->pinned = std::move(owned);
    }
    return Status::OK();
  }

  // Fetches and decodes one plain (untimed) page, appending to `out`.
  Status ReadPage(const SeriesInfo& info, const PageInfo& page,
                  const codecs::SeriesCodec& codec, PageBuffer* buf,
                  std::vector<int64_t>* out, ScanStats* stats) {
    BytesView payload;
    BOS_RETURN_NOT_OK(FetchPagePayload(info, page, buf, &payload, stats));
    const auto decode_start = std::chrono::steady_clock::now();
    const size_t before = out->size();
    BOS_RETURN_NOT_OK(codec.Decompress(payload, out));
    if (out->size() - before != page.count) {
      return Status::Corruption("page value count mismatch");
    }
    if (stats != nullptr) {
      stats->decode_seconds += SecondsSince(decode_start);
      stats->values_scanned += page.count;
    }
    return Status::OK();
  }

  // Fetches one page and filters it to values in [v_min, v_max],
  // decoding only what the codec's block zone maps cannot prune.
  // `values_scanned` counts decoded values, not page.count.
  Status ReadPageFiltered(const SeriesInfo& info, const PageInfo& page,
                          const codecs::SeriesCodec& codec, int64_t v_min,
                          int64_t v_max, PageBuffer* buf,
                          std::vector<std::pair<uint64_t, int64_t>>* out,
                          ScanStats* stats) {
    BytesView payload;
    BOS_RETURN_NOT_OK(FetchPagePayload(info, page, buf, &payload, stats));
    const auto decode_start = std::chrono::steady_clock::now();
    uint64_t decoded = 0;
    BOS_RETURN_NOT_OK(codec.DecompressFilter(payload, v_min, v_max,
                                             page.first_index, out, &decoded));
    if (stats != nullptr) {
      stats->decode_seconds += SecondsSince(decode_start);
      stats->values_scanned += decoded;
    }
    return Status::OK();
  }

  // Fetches one page and decodes only the positions in `window` (a view
  // of the query's selection based at the page's first index).
  Status ReadPageSelected(const SeriesInfo& info, const PageInfo& page,
                          const codecs::SeriesCodec& codec,
                          const select::SelectionView& window, PageBuffer* buf,
                          std::vector<int64_t>* out, ScanStats* stats) {
    BytesView payload;
    BOS_RETURN_NOT_OK(FetchPagePayload(info, page, buf, &payload, stats));
    const auto decode_start = std::chrono::steady_clock::now();
    const size_t before = out->size();
    BOS_RETURN_NOT_OK(codec.DecompressSelected(payload, window, out));
    if (out->size() - before != window.count()) {
      return Status::Corruption("page selected count mismatch");
    }
    if (stats != nullptr) {
      stats->decode_seconds += SecondsSince(decode_start);
      stats->values_scanned += window.count();
    }
    return Status::OK();
  }

  // ReadPageSelected for a timed page. Fixed-interval pages decode only
  // the value column and synthesize the selected timestamps.
  Status ReadTimedPageSelected(const SeriesInfo& info, const PageInfo& page,
                               const TimedCodecs& tc,
                               const select::SelectionView& window,
                               PageBuffer* buf,
                               std::vector<codecs::DataPoint>* out,
                               ScanStats* stats) {
    BytesView payload;
    BOS_RETURN_NOT_OK(FetchPagePayload(info, page, buf, &payload, stats));
    const auto decode_start = std::chrono::steady_clock::now();
    const size_t before = out->size();
    if (page.fixed_interval) {
      std::vector<int64_t> values;
      BOS_RETURN_NOT_OK(tc.value->DecompressSelected(payload, window, &values));
      if (values.size() != window.count()) {
        return Status::Corruption("page selected count mismatch");
      }
      out->reserve(out->size() + values.size());
      size_t i = 0;
      window.ForEach([&](uint64_t rel) {
        // Open validated (count-1)*interval against INT64_MAX, so this
        // never overflows for rel < count.
        out->push_back({page.min_time + static_cast<int64_t>(rel) *
                                            page.interval,
                        values[i++]});
      });
    } else {
      BOS_RETURN_NOT_OK(tc.pair->DecompressSelected(payload, window, out));
      if (out->size() - before != window.count()) {
        return Status::Corruption("page selected count mismatch");
      }
    }
    if (stats != nullptr) {
      stats->decode_seconds += SecondsSince(decode_start);
      stats->values_scanned += window.count();
    }
    return Status::OK();
  }

  // Fetches and decodes one timed page, appending to `out`. A
  // fixed-interval page costs one value-column decode and zero time
  // decode — its timestamps are pure arithmetic.
  Status ReadTimedPage(const SeriesInfo& info, const PageInfo& page,
                       const TimedCodecs& tc, PageBuffer* buf,
                       std::vector<codecs::DataPoint>* out, ScanStats* stats) {
    BytesView payload;
    BOS_RETURN_NOT_OK(FetchPagePayload(info, page, buf, &payload, stats));
    const auto decode_start = std::chrono::steady_clock::now();
    const size_t before = out->size();
    if (page.fixed_interval) {
      std::vector<int64_t> values;
      BOS_RETURN_NOT_OK(tc.value->Decompress(payload, &values));
      if (values.size() != page.count) {
        return Status::Corruption("page point count mismatch");
      }
      out->reserve(out->size() + values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        out->push_back({page.min_time + static_cast<int64_t>(i) * page.interval,
                        values[i]});
      }
    } else {
      BOS_RETURN_NOT_OK(tc.pair->Decompress(payload, out));
      if (out->size() - before != page.count) {
        return Status::Corruption("page point count mismatch");
      }
    }
    if (stats != nullptr) {
      stats->decode_seconds += SecondsSince(decode_start);
      stats->values_scanned += page.count;
    }
    return Status::OK();
  }
};

TsFileReader::TsFileReader() : impl_(std::make_unique<Impl>()) {}
TsFileReader::~TsFileReader() = default;

Status TsFileReader::Open(const std::string& path) {
  return Open(path, ReaderOptions{});
}

Status TsFileReader::Open(const std::string& path,
                          const ReaderOptions& options) {
  BOS_ASSIGN_OR_RETURN(
      impl_->source,
      MakePageSource(path, PageSourceOptions{.use_mmap = options.use_mmap}));
  impl_->file_size = impl_->source->file_size();
  if (options.cache != nullptr) {
    impl_->cache = options.cache;
    impl_->cache_file_id = options.cache->NewFileId();
  }
  if (impl_->file_size < sizeof(kMagic) * 2 + 8 + 4) {
    return Status::Corruption("file too small");
  }

  // One scratch serves all three reads; each view is checked before the
  // next read invalidates it.
  Impl::PageBuffer buf;
  BytesView head;
  BOS_RETURN_NOT_OK(
      impl_->source->ReadAt(0, sizeof(kMagic), &buf.scratch, &head));
  if (std::memcmp(head.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad magic");
  }
  BytesView tail;
  BOS_RETURN_NOT_OK(
      impl_->source->ReadAt(impl_->file_size - 12, 12, &buf.scratch, &tail));
  if (std::memcmp(tail.data() + 8, kMagic, 4) != 0) {
    return Status::Corruption("bad magic");
  }
  uint64_t footer_offset = 0;
  GetFixed<uint64_t>(tail, 0, &footer_offset);
  if (footer_offset >= impl_->file_size - 12 || footer_offset < 4) {
    return Status::Corruption("bad footer offset");
  }

  BytesView footer;
  BOS_RETURN_NOT_OK(impl_->source->ReadAt(
      footer_offset, impl_->file_size - 12 - footer_offset, &buf.scratch,
      &footer));
  if (footer.size() < 4) return Status::Corruption("footer too small");
  uint32_t crc = 0;
  GetFixed<uint32_t>(footer, footer.size() - 4, &crc);
  if (crc != Crc32(footer.data(), footer.size() - 4)) {
    BOS_TELEMETRY_COUNTER_ADD("bos.storage.footer.crc_failures", 1);
    return Status::Corruption("footer CRC mismatch");
  }

  size_t pos = 0;
  uint64_t num_series;
  BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &num_series));
  if (num_series > 1'000'000) return Status::Corruption("series count");
  impl_->series.clear();
  for (uint64_t i = 0; i < num_series; ++i) {
    SeriesInfo info;
    BOS_RETURN_NOT_OK(GetString(footer, &pos, &info.name));
    BOS_RETURN_NOT_OK(GetString(footer, &pos, &info.codec_spec));
    if (pos >= footer.size()) return Status::Corruption("footer truncated");
    info.timed = footer[pos++] != 0;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &info.num_values));
    uint64_t num_pages;
    BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &num_pages));
    if (num_pages > impl_->file_size) return Status::Corruption("page count");
    for (uint64_t p = 0; p < num_pages; ++p) {
      PageInfo page;
      BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &page.offset));
      BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &page.size));
      BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &page.count));
      BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &page.first_index));
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(footer, &pos, &page.min_time));
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(footer, &pos, &page.max_time));
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(footer, &pos, &page.min_value));
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(footer, &pos, &page.max_value));
      BOS_RETURN_NOT_OK(bitpack::GetSignedVarint(footer, &pos, &page.sum_value));
      uint64_t flags = 0;
      BOS_RETURN_NOT_OK(bitpack::GetVarint(footer, &pos, &flags));
      if ((flags & ~kPageFlagFixedInterval) != 0) {
        return Status::Corruption("unknown page flags");
      }
      if ((flags & kPageFlagFixedInterval) != 0) {
        page.fixed_interval = true;
        BOS_RETURN_NOT_OK(
            bitpack::GetSignedVarint(footer, &pos, &page.interval));
        // The read path synthesizes timestamps as min_time + k*interval
        // for k < count with plain int64 arithmetic, so every quantity
        // in that expression is pinned down here, on untrusted input:
        // positive interval, total span within int64, and a max_time
        // that actually equals the arithmetic endpoint.
        uint64_t span = 0;
        int64_t last = 0;
        if (!info.timed || page.count < 2 || page.interval <= 0 ||
            !CheckedMul(page.count - 1, static_cast<uint64_t>(page.interval),
                        &span) ||
            span > static_cast<uint64_t>(INT64_MAX) ||
            __builtin_add_overflow(page.min_time, static_cast<int64_t>(span),
                                   &last) ||
            last != page.max_time) {
          BOS_TELEMETRY_COUNTER_ADD("bos.storage.page.header_mismatches", 1);
          return Status::Corruption("bad fixed-interval page");
        }
      }
      if (!SliceFits(footer_offset, page.offset, page.size)) {
        return Status::Corruption("page out of bounds");
      }
      info.pages.push_back(page);
    }
    impl_->series.push_back(std::move(info));
  }
  impl_->decoders.clear();
  for (const SeriesInfo& s : impl_->series) {
    Impl::SeriesDecoders d;
    if (s.timed) {
      auto tc = MakeTimedCodecs(s.codec_spec);
      if (tc.ok()) {
        d.timed = std::move(*tc);
      } else {
        d.status = tc.status();
      }
      d.time_ordered = true;
      for (size_t i = 0; i < s.pages.size() && d.time_ordered; ++i) {
        const PageInfo& p = s.pages[i];
        if (p.count == 0 || p.min_time > p.max_time ||
            (i > 0 && p.min_time < s.pages[i - 1].max_time)) {
          d.time_ordered = false;
        }
      }
    } else {
      auto codec = codecs::MakeSeriesCodec(s.codec_spec);
      if (codec.ok()) {
        d.value = std::move(*codec);
      } else {
        d.status = codec.status();
      }
    }
    impl_->decoders.push_back(std::move(d));
  }
  return Status::OK();
}

const std::vector<SeriesInfo>& TsFileReader::series() const {
  return impl_->series;
}

Result<const SeriesInfo*> TsFileReader::FindSeries(
    const std::string& name) const {
  const SeriesInfo* info = impl_->Find(name);
  if (info == nullptr) return Status::InvalidArgument("no series: " + name);
  return info;
}

uint64_t TsFileReader::file_size() const { return impl_->file_size; }

Status TsFileReader::ReadSeries(const std::string& name,
                                std::vector<int64_t>* out, ScanStats* stats) {
  return ReadRange(name, 0, UINT64_MAX, out, stats);
}

Status TsFileReader::ReadRange(const std::string& name, uint64_t first,
                               uint64_t last, std::vector<int64_t>* out,
                               ScanStats* stats) {
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (info->timed) {
    return Status::InvalidArgument("series is timed; use ReadTimeSeries: " +
                                   name);
  }
  BOS_ASSIGN_OR_RETURN(const codecs::SeriesCodec* codec,
                       impl_->ValueCodecFor(info));
  Impl::PageBuffer buf;
  std::vector<int64_t> page_values;
  for (const PageInfo& page : info->pages) {
    const uint64_t page_last = page.first_index + page.count;
    if (page.count == 0 || page_last <= first || page.first_index > last) {
      continue;  // pruned
    }
    page_values.clear();
    BOS_RETURN_NOT_OK(
        impl_->ReadPage(*info, page, *codec, &buf, &page_values, stats));
    const uint64_t lo = std::max(first, page.first_index) - page.first_index;
    const uint64_t hi =
        std::min<uint64_t>(last - page.first_index, page.count - 1);
    for (uint64_t i = lo; i <= hi; ++i) out->push_back(page_values[i]);
  }
  return Status::OK();
}

Status TsFileReader::ReadValueRange(
    const std::string& name, int64_t v_min, int64_t v_max,
    std::vector<std::pair<uint64_t, int64_t>>* out, ScanStats* stats) {
  if (v_min > v_max) {
    return Status::InvalidArgument("empty value predicate: v_min > v_max");
  }
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (info->timed) {
    return Status::InvalidArgument("series is timed; use ReadTimeRange: " +
                                   name);
  }
  BOS_ASSIGN_OR_RETURN(const codecs::SeriesCodec* codec,
                       impl_->ValueCodecFor(info));
  Impl::PageBuffer buf;
  for (const PageInfo& page : info->pages) {
    if (page.count == 0 || page.max_value < v_min || page.min_value > v_max) {
      continue;  // pruned by value statistics
    }
    BOS_RETURN_NOT_OK(impl_->ReadPageFiltered(*info, page, *codec, v_min,
                                              v_max, &buf, out, stats));
  }
  return Status::OK();
}

Result<AggregateResult> TsFileReader::AggregateValueRange(
    const std::string& name, int64_t v_min, int64_t v_max, ScanStats* stats) {
  if (v_min > v_max) {
    return Status::InvalidArgument("empty value predicate: v_min > v_max");
  }
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (info->timed) {
    return Status::InvalidArgument("series is timed: " + name);
  }
  BOS_ASSIGN_OR_RETURN(const codecs::SeriesCodec* codec,
                       impl_->ValueCodecFor(info));
  AggregateResult agg;
  Impl::PageBuffer buf;
  std::vector<std::pair<uint64_t, int64_t>> matches;
  for (const PageInfo& page : info->pages) {
    if (page.count == 0 || page.max_value < v_min || page.min_value > v_max) {
      continue;  // pruned by value statistics
    }
    if (v_min <= page.min_value && page.max_value <= v_max) {
      // Every value in the page matches: answer from the footer
      // statistics without reading the page.
      agg.count += page.count;
      agg.min = std::min(agg.min, page.min_value);
      agg.max = std::max(agg.max, page.max_value);
      agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                     static_cast<uint64_t>(page.sum_value));
      continue;
    }
    matches.clear();
    BOS_RETURN_NOT_OK(impl_->ReadPageFiltered(*info, page, *codec, v_min,
                                              v_max, &buf, &matches, stats));
    for (const auto& [index, v] : matches) {
      (void)index;
      ++agg.count;
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
      agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                     static_cast<uint64_t>(v));
    }
  }
  return agg;
}

Status TsFileReader::ReadSelected(const std::string& name,
                                  const select::SelectionVector& sel,
                                  std::vector<int64_t>* out, ScanStats* stats) {
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (info->timed) {
    return Status::InvalidArgument("series is timed; use ReadSelectedPoints: " +
                                   name);
  }
  BOS_ASSIGN_OR_RETURN(const codecs::SeriesCodec* codec,
                       impl_->ValueCodecFor(info));
  Impl::PageBuffer buf;
  uint64_t covered = 0;  // selected positions that fell inside some page
  for (const PageInfo& page : info->pages) {
    if (page.count == 0) continue;
    const select::SelectionView window(sel, page.first_index, page.count);
    if (window.count() == 0) {
      BOS_TELEMETRY_COUNTER_ADD("bos.select.pages_skipped", 1);
      continue;  // no selected position in this page: no IO at all
    }
    covered += window.count();
    BOS_RETURN_NOT_OK(impl_->ReadPageSelected(*info, page, *codec, window,
                                              &buf, out, stats));
  }
  if (covered != sel.cardinality()) {
    return Status::InvalidArgument("selection position past end of series: " +
                                   name);
  }
  return Status::OK();
}

Status TsFileReader::ReadSelectedPoints(const std::string& name,
                                        const select::SelectionVector& sel,
                                        std::vector<codecs::DataPoint>* out,
                                        ScanStats* stats) {
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (!info->timed) {
    return Status::InvalidArgument("series is not timed: " + name);
  }
  BOS_ASSIGN_OR_RETURN(const TimedCodecs* tc, impl_->TimedCodecsFor(info));
  Impl::PageBuffer buf;
  uint64_t covered = 0;
  for (const PageInfo& page : info->pages) {
    if (page.count == 0) continue;
    const select::SelectionView window(sel, page.first_index, page.count);
    if (window.count() == 0) {
      BOS_TELEMETRY_COUNTER_ADD("bos.select.pages_skipped", 1);
      continue;
    }
    covered += window.count();
    BOS_RETURN_NOT_OK(impl_->ReadTimedPageSelected(*info, page, *tc, window,
                                                   &buf, out, stats));
  }
  if (covered != sel.cardinality()) {
    return Status::InvalidArgument("selection position past end of series: " +
                                   name);
  }
  return Status::OK();
}

Status TsFileReader::ReadTimeSeries(const std::string& name,
                                    std::vector<codecs::DataPoint>* out,
                                    ScanStats* stats) {
  return ReadTimeRange(name, INT64_MIN, INT64_MAX, out, stats);
}

Status TsFileReader::ReadTimeRange(const std::string& name, int64_t t_min,
                                   int64_t t_max,
                                   std::vector<codecs::DataPoint>* out,
                                   ScanStats* stats) {
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  if (!info->timed) {
    return Status::InvalidArgument("series is not timed: " + name);
  }
  BOS_ASSIGN_OR_RETURN(const TimedCodecs* tc, impl_->TimedCodecsFor(info));
  Impl::PageBuffer buf;
  std::vector<codecs::DataPoint> page_points;
  // Writer-produced timed pages are ascending and non-overlapping in
  // time (checked once at Open), so the first candidate is a binary
  // search away and the walk stops at the first page past the window.
  // Narrow queries touch O(log pages) directory entries instead of all
  // of them; an out-of-order (hostile) footer falls back to the full
  // linear scan below.
  const bool ordered = impl_->TimeOrdered(info);
  const std::vector<PageInfo>& pages = info->pages;
  auto it = pages.begin();
  if (ordered) {
    it = std::lower_bound(
        pages.begin(), pages.end(), t_min,
        [](const PageInfo& p, int64_t t) { return p.max_time < t; });
  }
  for (; it != pages.end(); ++it) {
    const PageInfo& page = *it;
    if (ordered && page.min_time > t_max) break;  // rest is later still
    if (page.count == 0 || page.max_time < t_min || page.min_time > t_max) {
      continue;  // pruned by the page time index
    }
    if (page.fixed_interval) {
      // O(1) window addressing: the k-th timestamp is min_time +
      // k*interval, so the first/last in-range indexes are one division
      // each. 128-bit intermediates because t_min - min_time can span
      // nearly the whole int64 range.
      const __int128 start = page.min_time;
      const __int128 iv = page.interval;
      __int128 lo = 0;
      if (t_min > page.min_time) {
        lo = (static_cast<__int128>(t_min) - start + iv - 1) / iv;
      }
      __int128 hi = static_cast<__int128>(page.count) - 1;
      if (t_max < page.max_time) {
        hi = (static_cast<__int128>(t_max) - start) / iv;
      }
      if (lo > hi) continue;  // window falls between two samples
      if (lo == 0 && hi == static_cast<__int128>(page.count) - 1) {
        BOS_RETURN_NOT_OK(
            impl_->ReadTimedPage(*info, page, *tc, &buf, out, stats));
      } else {
        select::SelectionVector rows;
        rows.AddRange(static_cast<uint64_t>(lo),
                      static_cast<uint64_t>(hi) + 1);
        const select::SelectionView window(rows, 0, page.count);
        BOS_RETURN_NOT_OK(impl_->ReadTimedPageSelected(*info, page, *tc, window,
                                                       &buf, out, stats));
      }
      continue;
    }
    page_points.clear();
    BOS_RETURN_NOT_OK(
        impl_->ReadTimedPage(*info, page, *tc, &buf, &page_points, stats));
    for (const codecs::DataPoint& p : page_points) {
      if (p.timestamp >= t_min && p.timestamp <= t_max) out->push_back(p);
    }
  }
  return Status::OK();
}

Result<AggregateResult> TsFileReader::AggregateQuery(const std::string& name,
                                                     ScanStats* stats) {
  BOS_ASSIGN_OR_RETURN(const SeriesInfo* info, FindSeries(name));
  // Pushdown: combine the footer's per-page statistics. No page IO.
  (void)stats;  // nothing is read, so the stats stay zero by design
  // A series with no values keeps the documented count==0 sentinel
  // (min=INT64_MAX, max=INT64_MIN, sum=0) from AggregateResult's
  // defaults, matching AggregateQueryScan exactly.
  AggregateResult agg;
  for (const PageInfo& page : info->pages) {
    if (page.count == 0) continue;
    agg.count += page.count;
    agg.min = std::min(agg.min, page.min_value);
    agg.max = std::max(agg.max, page.max_value);
    agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                   static_cast<uint64_t>(page.sum_value));
  }
  return agg;
}

Result<AggregateResult> TsFileReader::AggregateQueryScan(
    const std::string& name, ScanStats* stats) {
  std::vector<int64_t> values;
  BOS_RETURN_NOT_OK(ReadSeries(name, &values, stats));
  // Empty series keep the count==0 sentinel from the defaults, so the
  // scan and pushdown paths agree field-for-field.
  AggregateResult agg;
  agg.count = values.size();
  for (int64_t v : values) {
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
    agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                   static_cast<uint64_t>(v));
  }
  return agg;
}

}  // namespace bos::storage
