#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/page_cache.h"
#include "storage/tsfile.h"
#include "util/buffer.h"
#include "util/random.h"

namespace bos::storage {
namespace {

using codecs::DataPoint;

std::shared_ptr<const Bytes> Payload(size_t size, uint8_t fill) {
  return std::make_shared<Bytes>(size, fill);
}

TEST(PageCacheTest, InsertThenLookup) {
  PageCache cache(1 << 20);
  const uint64_t file = cache.NewFileId();
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
  cache.Insert(file, 0, Payload(100, 0xaa));
  const auto hit = cache.Lookup(file, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ((*hit)[0], 0xaa);
  // Same offset in a different file is a different entry.
  EXPECT_EQ(cache.Lookup(cache.NewFileId(), 0), nullptr);

  const PageCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
}

TEST(PageCacheTest, NewFileIdsAreUnique) {
  PageCache cache(1 << 20);
  const uint64_t a = cache.NewFileId();
  const uint64_t b = cache.NewFileId();
  const uint64_t c = cache.NewFileId();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(PageCacheTest, DuplicateInsertKeepsOneEntry) {
  PageCache cache(1 << 20);
  const uint64_t file = cache.NewFileId();
  cache.Insert(file, 64, Payload(50, 1));
  cache.Insert(file, 64, Payload(50, 2));  // same key: recency refresh only
  const PageCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 50u);
  // The first payload wins; files are immutable so the bytes are equal
  // in real use anyway.
  EXPECT_EQ((*cache.Lookup(file, 64))[0], 1);
}

TEST(PageCacheTest, EvictionKeepsBytesUnderBudget) {
  PageCache cache(/*capacity_bytes=*/4096, /*shards=*/1);
  const uint64_t file = cache.NewFileId();
  for (uint64_t i = 0; i < 100; ++i) {
    cache.Insert(file, i * 128, Payload(100, static_cast<uint8_t>(i)));
    EXPECT_LE(cache.bytes_used(), 4096u);
  }
  const PageCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_EQ(stats.bytes, stats.entries * 100u);
  // The most recent insert is never the eviction victim.
  EXPECT_NE(cache.Lookup(file, 99 * 128), nullptr);
}

TEST(PageCacheTest, LruEvictsLeastRecentlyUsed) {
  // One shard, room for exactly three 100-byte entries.
  PageCache cache(/*capacity_bytes=*/300, /*shards=*/1);
  const uint64_t file = cache.NewFileId();
  cache.Insert(file, 0, Payload(100, 'a'));
  cache.Insert(file, 1, Payload(100, 'b'));
  cache.Insert(file, 2, Payload(100, 'c'));
  ASSERT_NE(cache.Lookup(file, 0), nullptr);  // refresh 'a'
  cache.Insert(file, 3, Payload(100, 'd'));   // evicts 'b', the LRU entry
  EXPECT_EQ(cache.Lookup(file, 1), nullptr);
  EXPECT_NE(cache.Lookup(file, 0), nullptr);
  EXPECT_NE(cache.Lookup(file, 2), nullptr);
  EXPECT_NE(cache.Lookup(file, 3), nullptr);
}

TEST(PageCacheTest, OversizedEntryIsNotCached) {
  PageCache cache(/*capacity_bytes=*/1024, /*shards=*/1);
  const uint64_t file = cache.NewFileId();
  cache.Insert(file, 0, Payload(2000, 0));  // larger than the whole budget
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(PageCacheTest, ForgetFileDropsOnlyThatFile) {
  PageCache cache(1 << 20);
  const uint64_t f1 = cache.NewFileId();
  const uint64_t f2 = cache.NewFileId();
  for (uint64_t i = 0; i < 20; ++i) {
    cache.Insert(f1, i * 64, Payload(10, 1));
    cache.Insert(f2, i * 64, Payload(10, 2));
  }
  cache.ForgetFile(f1);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(cache.Lookup(f1, i * 64), nullptr);
    EXPECT_NE(cache.Lookup(f2, i * 64), nullptr);
  }
  EXPECT_EQ(cache.bytes_used(), 200u);
}

TEST(PageCacheTest, PinSurvivesEviction) {
  PageCache cache(/*capacity_bytes=*/100, /*shards=*/1);
  const uint64_t file = cache.NewFileId();
  cache.Insert(file, 0, Payload(80, 0x5a));
  const auto pin = cache.Lookup(file, 0);
  ASSERT_NE(pin, nullptr);
  cache.Insert(file, 1, Payload(80, 0xa5));  // evicts offset 0
  EXPECT_EQ(cache.Lookup(file, 0), nullptr);
  // The pinned bytes are still alive and unchanged.
  EXPECT_EQ(pin->size(), 80u);
  EXPECT_EQ((*pin)[79], 0x5a);
}

// ---------------------------------------------------------------------
// Reader integration: the cache sits under TsFileReader page fetches.
// ---------------------------------------------------------------------

class CachedReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bos_page_cache_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Jittered timestamps, so pages take the explicit two-column layout
  // (regular timestamps would collapse to fixed-interval pages with no
  // time stream — covered by fixed_interval_test).
  static std::vector<DataPoint> JitteredPoints(uint64_t seed, size_t n) {
    Rng rng(seed);
    std::vector<DataPoint> points(n);
    int64_t t = 0;
    for (auto& p : points) {
      t += 1 + static_cast<int64_t>(rng.Uniform(5));
      p = {t, rng.UniformInt(-10000, 10000)};
    }
    return points;
  }

  // Writes one timed series across several pages and returns its points.
  std::vector<DataPoint> WriteFile(const std::string& path, size_t n = 6000) {
    const auto points = JitteredPoints(7, n);
    TsFileWriter writer(path, /*page_size=*/512);
    EXPECT_TRUE(writer.Open().ok());
    EXPECT_TRUE(
        writer.AppendTimeSeries("s", "TS2DIFF+BOS-B|TS2DIFF+BOS-B", points)
            .ok());
    EXPECT_TRUE(writer.Finish().ok());
    return points;
  }

  std::filesystem::path dir_;
};

TEST_F(CachedReaderTest, WarmQueryDoesNoIoAndNoCrc) {
  const std::string path = Path("warm.bos");
  const auto points = WriteFile(path);

  PageCache cache(1 << 20);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path, ReaderOptions{.cache = &cache}).ok());

  ScanStats cold;
  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadTimeSeries("s", &got, &cold).ok());
  EXPECT_EQ(got, points);
  EXPECT_GT(cold.pages_read, 1u);
  EXPECT_GT(cold.bytes_read, 0u);

  // Every page is now cached: the second scan performs no reads at all,
  // which also proves the CRC is verified only once (verification
  // happens on the fill path, and the fill path was never taken).
  ScanStats warm;
  got.clear();
  ASSERT_TRUE(reader.ReadTimeSeries("s", &got, &warm).ok());
  EXPECT_EQ(got, points);
  EXPECT_EQ(warm.pages_read, 0u);
  EXPECT_EQ(warm.bytes_read, 0u);
  EXPECT_EQ(warm.io_seconds, 0.0);

  const PageCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, cold.pages_read);
  EXPECT_EQ(stats.misses, cold.pages_read);
}

TEST_F(CachedReaderTest, ReaderCloseDropsItsEntries) {
  const std::string path = Path("drop.bos");
  WriteFile(path, 2000);
  PageCache cache(1 << 20);
  {
    TsFileReader reader;
    ASSERT_TRUE(reader.Open(path, ReaderOptions{.cache = &cache}).ok());
    std::vector<DataPoint> got;
    ASSERT_TRUE(reader.ReadTimeSeries("s", &got).ok());
    EXPECT_GT(cache.GetStats().entries, 0u);
  }
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST_F(CachedReaderTest, IdenticalResultsAcrossAllReadConfigurations) {
  const std::string path = Path("configs.bos");
  const auto points = WriteFile(path);
  const int64_t t_mid_lo = points[points.size() / 3].timestamp;
  const int64_t t_mid_hi = points[2 * points.size() / 3].timestamp;

  PageCache big_cache(1 << 20);
  // A tiny budget forces constant eviction (and most payloads past the
  // per-shard limit are simply not cached) — results must not change.
  PageCache tiny_cache(1024);
  struct Config {
    const char* name;
    ReaderOptions options;
  };
  const Config configs[] = {
      {"plain", {}},
      {"cache", {.cache = &big_cache}},
      {"tiny-cache", {.cache = &tiny_cache}},
      {"mmap", {.use_mmap = true}},
      {"mmap+cache", {.use_mmap = true, .cache = &big_cache}},
  };

  std::vector<DataPoint> base_all, base_range;
  for (const Config& config : configs) {
    SCOPED_TRACE(config.name);
    TsFileReader reader;
    ASSERT_TRUE(reader.Open(path, config.options).ok());
    std::vector<DataPoint> all, range;
    ASSERT_TRUE(reader.ReadTimeSeries("s", &all).ok());
    // Two passes over the range so the second hits whatever got cached.
    ASSERT_TRUE(reader.ReadTimeRange("s", t_mid_lo, t_mid_hi, &range).ok());
    std::vector<DataPoint> range2;
    ASSERT_TRUE(reader.ReadTimeRange("s", t_mid_lo, t_mid_hi, &range2).ok());
    EXPECT_EQ(range, range2);
    EXPECT_EQ(all, points);
    if (base_all.empty()) {
      base_all = all;
      base_range = range;
    } else {
      EXPECT_EQ(all, base_all);
      EXPECT_EQ(range, base_range);
    }
  }
}

TEST_F(CachedReaderTest, ConcurrentReadersShareOneCache) {
  const std::string path_a = Path("shared_a.bos");
  const std::string path_b = Path("shared_b.bos");
  const auto points = WriteFile(path_a, 4000);
  WriteFile(path_b, 1500);

  // Small enough that insert/evict churn is constant across threads.
  PageCache cache(/*capacity_bytes=*/8192, /*shards=*/2);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path_a, ReaderOptions{.cache = &cache}).ok());

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  // Not vector<bool>: its packed bits would make per-thread writes race.
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool all_good = true;
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          std::vector<DataPoint> got;
          all_good &= reader.ReadTimeSeries("s", &got).ok();
          all_good &= got == points;
        } else {
          const size_t lo = (i * 97 + t * 13) % points.size();
          const size_t hi = std::min(lo + 500, points.size() - 1);
          std::vector<DataPoint> got;
          all_good &=
              reader.ReadTimeRange("s", points[lo].timestamp, points[hi].timestamp, &got)
                  .ok();
          all_good &= !got.empty() && got.front().timestamp >= points[lo].timestamp &&
                      got.back().timestamp <= points[hi].timestamp;
          // Open/close a second reader against the same cache, so
          // NewFileId and ForgetFile race with the main scans.
          TsFileReader other;
          all_good &=
              other.Open(path_b, ReaderOptions{.cache = &cache}).ok();
          std::vector<DataPoint> other_got;
          all_good &= other.ReadTimeSeries("s", &other_got).ok();
        }
      }
      ok[t] = all_good ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t;
  }
  EXPECT_LE(cache.bytes_used(), cache.capacity_bytes());
}

}  // namespace
}  // namespace bos::storage
