// Regression matrix for the decode-hardening pass: each test crafts the
// exact adversarial byte pattern that used to slip past a bounds check —
// wrapping `offset + len` sums, overlong varints, unseekable WAL files,
// reuse of a finished stream encoder — and pins the rejecting Status.
// The complementary random/bit-flip coverage lives in
// fuzz_robustness_test.cc and the fuzz/ targets.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bitpack/varint.h"
#include "codecs/registry.h"
#include "codecs/streaming.h"
#include "storage/tsfile.h"
#include "storage/wal.h"
#include "telemetry/telemetry.h"
#include "util/crc32.h"
#include "util/safe_math.h"

namespace bos {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("bos_hardening_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

// ---------------------------------------------------------------------
// SliceFits / CheckedAdd: the primitives everything else leans on.
// ---------------------------------------------------------------------

TEST(SafeMathTest, SliceFitsRejectsWrappingSum) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(SliceFits(100, 40, 60));
  EXPECT_FALSE(SliceFits(100, 40, 61));
  EXPECT_FALSE(SliceFits(100, 101, 0));
  // offset + len wraps to a small number; the naive `off + len > size`
  // guard accepted exactly this shape.
  EXPECT_FALSE(SliceFits(100, 8, kMax - 4));
  EXPECT_FALSE(SliceFits(kMax, 2, kMax - 1));
  EXPECT_TRUE(SliceFits(kMax, 0, kMax));
}

TEST(SafeMathTest, CheckedAddReportsOverflow) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t sum = 0;
  EXPECT_TRUE(CheckedAdd(kMax - 1, 1, &sum));
  EXPECT_EQ(sum, kMax);
  EXPECT_FALSE(CheckedAdd(kMax, 1, &sum));
  EXPECT_FALSE(CheckedAdd(5, kMax - 3, &sum));
}

// ---------------------------------------------------------------------
// Varint: overlong and truncated encodings.
// ---------------------------------------------------------------------

TEST(VarintHardeningTest, TenByteMaxValueDecodes) {
  Bytes buf;
  bitpack::PutVarint(&buf, std::numeric_limits<uint64_t>::max());
  ASSERT_EQ(buf.size(), 10u);
  size_t offset = 0;
  uint64_t v = 0;
  ASSERT_TRUE(bitpack::GetVarint(buf, &offset, &v).ok());
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(offset, buf.size());
}

TEST(VarintHardeningTest, OverflowingTenthByteRejected) {
  // Nine full groups put the 10th byte at shift 63, where only the low
  // bit fits: 0x02 there would silently truncate to a wrong value.
  Bytes buf(9, 0xFF);
  buf.push_back(0x02);
  size_t offset = 0;
  uint64_t v = 0;
  const Status st = bitpack::GetVarint(buf, &offset, &v);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(offset, 0u);  // a failed read must not advance the cursor
}

TEST(VarintHardeningTest, ElevenByteEncodingRejected) {
  Bytes buf(10, 0x80);
  buf.push_back(0x01);
  size_t offset = 0;
  uint64_t v = 0;
  EXPECT_TRUE(bitpack::GetVarint(buf, &offset, &v).IsCorruption());
}

TEST(VarintHardeningTest, AllContinuationBytesRejected) {
  const Bytes buf(16, 0x80);  // never terminates
  size_t offset = 0;
  uint64_t v = 0;
  EXPECT_TRUE(bitpack::GetVarint(buf, &offset, &v).IsCorruption());
}

// ---------------------------------------------------------------------
// Chunked stream frames: a 2^64-ish frame length must not wrap past the
// buffer end (streaming.cc used `offset + frame_len > size`).
// ---------------------------------------------------------------------

TEST(StreamingHardeningTest, WrappingFrameLengthRejected) {
  auto codec = *codecs::MakeSeriesCodec("TS2DIFF+BOS-B", 64);
  Bytes stream;
  bitpack::PutVarint(&stream, std::numeric_limits<uint64_t>::max() - 7);
  stream.insert(stream.end(), 16, 0xAB);  // a little real data to wrap past
  codecs::SeriesStreamDecoder decoder(codec, stream);
  std::vector<int64_t> out;
  const Status st = decoder.ReadAll(&out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_TRUE(out.empty());
}

TEST(StreamingHardeningTest, FrameLengthPastEndRejected) {
  auto codec = *codecs::MakeSeriesCodec("TS2DIFF+BOS-B", 64);
  Bytes stream;
  bitpack::PutVarint(&stream, 1000);  // frame claims more than exists
  stream.insert(stream.end(), 8, 0x00);
  codecs::SeriesStreamDecoder decoder(codec, stream);
  std::vector<int64_t> out;
  EXPECT_TRUE(decoder.ReadAll(&out).IsCorruption());
}

TEST(StreamingHardeningTest, AppendAfterFinishIsLatchedError) {
  auto codec = *codecs::MakeSeriesCodec("TS2DIFF+BOS-B", 64);
  codecs::SeriesStreamEncoder encoder(codec, 4);
  encoder.AppendSpan(std::vector<int64_t>{1, 2, 3, 4, 5});
  ASSERT_TRUE(encoder.Finish().ok());
  const size_t finished_size = encoder.sink()->size();

  // The reuse bug: appends after Finish used to land frames after the
  // end-of-stream marker, silently truncating the stream on decode.
  encoder.Append(99);
  EXPECT_EQ(encoder.sink()->size(), finished_size);  // sink untouched
  EXPECT_TRUE(encoder.Finish().IsInvalidArgument());

  // Reset starts a clean stream.
  encoder.Reset();
  EXPECT_FALSE(encoder.finished());
  encoder.AppendSpan(std::vector<int64_t>{7, 8, 9});
  ASSERT_TRUE(encoder.Finish().ok());
  codecs::SeriesStreamDecoder decoder(codec, *encoder.sink());
  std::vector<int64_t> out;
  ASSERT_TRUE(decoder.ReadAll(&out).ok());
  EXPECT_EQ(out, (std::vector<int64_t>{7, 8, 9}));
}

TEST(StreamingHardeningTest, FinishTwiceRejected) {
  auto codec = *codecs::MakeSeriesCodec("TS2DIFF+BOS-B", 64);
  codecs::SeriesStreamEncoder encoder(codec, 4);
  encoder.Append(1);
  ASSERT_TRUE(encoder.Finish().ok());
  EXPECT_TRUE(encoder.Finish().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// RLE: a near-2^64 run length used to wrap the running total back under
// the block length and reach the replication loop.
// ---------------------------------------------------------------------

TEST(RleHardeningTest, WrappingRunLengthRejected) {
  auto codec = *codecs::MakeSeriesCodec("RLE+BP", 64);
  Bytes stream;
  bitpack::PutVarint(&stream, 8);  // n = 8 values in one block
  bitpack::PutVarint(&stream, 2);  // two runs
  bitpack::PutVarint(&stream, 5);  // total = 5
  // total would wrap to 1 (<= 8) and request a ~2^64-value insert.
  bitpack::PutVarint(&stream, std::numeric_limits<uint64_t>::max() - 3);
  std::vector<int64_t> out;
  const Status st = codec->Decompress(stream, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------
// WAL replay: wrapping lengths inside records, and unseekable files.
// ---------------------------------------------------------------------

TEST(WalHardeningTest, HugePayloadLengthStopsReplay) {
  const std::string path = TempPath("wal_payload");
  Bytes log;
  PutFixed<uint32_t>(&log, 0xDEADBEEF);  // any CRC; the length guard is first
  bitpack::PutVarint(&log, std::numeric_limits<uint64_t>::max() - 2);
  log.insert(log.end(), 32, 0x55);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(log.data()),
            static_cast<std::streamsize>(log.size()));
  }
  uint64_t seen = 0;
  auto replayed = storage::ReplayWal(
      path, [&seen](const std::string&, const codecs::DataPoint&) { ++seen; });
  ASSERT_TRUE(replayed.ok());  // torn tail is not an error
  EXPECT_EQ(*replayed, 0u);
  EXPECT_EQ(seen, 0u);
  fs::remove(path);
}

TEST(WalHardeningTest, HugeNameLengthStopsReplay) {
  // The payload passes CRC, so replay reaches the name-length guard:
  // payload_end + name_len must not wrap.
  const std::string path = TempPath("wal_name");
  Bytes payload;
  bitpack::PutVarint(&payload, std::numeric_limits<uint64_t>::max() - 9);
  Bytes log;
  PutFixed<uint32_t>(&log, Crc32(payload.data(), payload.size()));
  bitpack::PutVarint(&log, payload.size());
  log.insert(log.end(), payload.begin(), payload.end());
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(log.data()),
            static_cast<std::streamsize>(log.size()));
  }
  uint64_t seen = 0;
  auto replayed = storage::ReplayWal(
      path, [&seen](const std::string&, const codecs::DataPoint&) { ++seen; });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 0u);
  EXPECT_EQ(seen, 0u);
  fs::remove(path);
}

TEST(WalHardeningTest, UnseekableFileIsIoErrorNotGiantAlloc) {
  // ftell on a FIFO returns -1; casting that to size_t used to request a
  // ~2^64-byte buffer. Open the FIFO O_RDWR first so replay's fopen does
  // not block waiting for a writer.
  const std::string path = TempPath("wal_fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << "mkfifo failed";
  const int fd = ::open(path.c_str(), O_RDWR | O_NONBLOCK);
  ASSERT_GE(fd, 0);
  auto replayed = storage::ReplayWal(
      path, [](const std::string&, const codecs::DataPoint&) {});
  EXPECT_FALSE(replayed.ok());
  EXPECT_TRUE(replayed.status().IsIoError()) << replayed.status().ToString();
  ::close(fd);
  fs::remove(path);
}

TEST(WalHardeningTest, IntactPrefixSurvivesCorruptTail) {
  const std::string path = TempPath("wal_prefix");
  {
    storage::WalWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append("series", {i, i * 10}).ok());
    }
  }
  // Append a torn record: valid-looking header, missing payload bytes.
  {
    Bytes tail;
    PutFixed<uint32_t>(&tail, 0x12345678);
    bitpack::PutVarint(&tail, 50);
    tail.insert(tail.end(), 3, 0x00);  // 3 of the claimed 50 bytes
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write(reinterpret_cast<const char*>(tail.data()),
            static_cast<std::streamsize>(tail.size()));
  }
  uint64_t seen = 0;
  auto replayed = storage::ReplayWal(
      path, [&seen](const std::string&, const codecs::DataPoint&) { ++seen; });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 5u);
  EXPECT_EQ(seen, 5u);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// TsFile: truncation and in-place corruption must fail cleanly.
// ---------------------------------------------------------------------

Bytes WriteSampleTsFile(const std::string& path) {
  storage::TsFileWriter writer(path, 64);
  EXPECT_TRUE(writer.Open().ok());
  std::vector<int64_t> values(200);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * 3 % 97);
  }
  EXPECT_TRUE(writer.AppendSeries("a", "TS2DIFF+BOS-B", values).ok());
  EXPECT_TRUE(writer.Finish().ok());
  std::ifstream f(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(f)),
               std::istreambuf_iterator<char>());
}

TEST(TsFileHardeningTest, TruncationsNeverCrash) {
  const std::string path = TempPath("tsfile_trunc");
  const Bytes full = WriteSampleTsFile(path);
  ASSERT_GT(full.size(), 16u);
  // Every truncation point: either Open fails, or the file opens and
  // reads fail/succeed — any clean Status is fine, crashes are not.
  for (size_t keep = 0; keep < full.size(); keep += 7) {
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(full.data()),
              static_cast<std::streamsize>(keep));
    }
    storage::TsFileReader reader;
    const Status st = reader.Open(path);
    if (st.ok()) {
      std::vector<int64_t> out;
      (void)reader.ReadSeries("a", &out);
    }
  }
  fs::remove(path);
}

TEST(TsFileHardeningTest, PageCorruptionIsDetected) {
  const std::string path = TempPath("tsfile_flip");
  Bytes full = WriteSampleTsFile(path);
  ASSERT_GT(full.size(), 40u);
  full[full.size() / 3] ^= 0x40;  // flip one bit inside the page region
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(full.data()),
            static_cast<std::streamsize>(full.size()));
  }
  storage::TsFileReader reader;
  const Status open_st = reader.Open(path);
  if (open_st.ok()) {
    std::vector<int64_t> out;
    const Status read_st = reader.ReadSeries("a", &out);
    EXPECT_FALSE(read_st.ok()) << "page CRC/header check missed a flip";
  }
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Telemetry: corrupt input is counted at the rejection funnels.
// ---------------------------------------------------------------------

TEST(RejectionTelemetryTest, CodecAndPforFunnelsCount) {
  if (!telemetry::CompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  auto& registry = telemetry::Registry::Global();
  auto& codec_rejects =
      registry.GetCounter("bos.codecs.decode.corrupt_rejected");
  auto& pfor_rejects = registry.GetCounter("bos.pfor.decode.corrupt_rejected");
  const uint64_t codec_before = codec_rejects.value();
  const uint64_t pfor_before = pfor_rejects.value();

  Bytes bad;
  bitpack::PutVarint(&bad, std::numeric_limits<uint64_t>::max() - 1);
  auto codec = *codecs::MakeSeriesCodec("RLE+BP", 64);
  std::vector<int64_t> out;
  EXPECT_TRUE(codec->Decompress(bad, &out).IsCorruption());
  EXPECT_GT(codec_rejects.value(), codec_before);

  auto op = *codecs::MakeOperator("FASTPFOR");
  size_t offset = 0;
  out.clear();
  EXPECT_FALSE(op->Decode(bad, &offset, &out).ok());
  EXPECT_GT(pfor_rejects.value(), pfor_before);
}

}  // namespace
}  // namespace bos
