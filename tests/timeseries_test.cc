#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "codecs/timeseries.h"
#include "data/dataset.h"
#include "storage/tsfile.h"
#include "util/random.h"

namespace bos::codecs {
namespace {

std::vector<DataPoint> MakePoints(uint64_t seed, size_t n) {
  const auto times = data::GenerateTimestamps(n, 1700000000000, 1000, seed);
  const auto values =
      data::GenerateInteger(*data::FindDataset("MT"), n, seed);
  std::vector<DataPoint> points(n);
  for (size_t i = 0; i < n; ++i) points[i] = {times[i], values[i]};
  return points;
}

TEST(TimestampGeneratorTest, SortedWithJitterAndGaps) {
  const auto times = data::GenerateTimestamps(50000);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
  // Gaps exist: some deltas far above the nominal interval.
  int64_t max_delta = 0;
  for (size_t i = 1; i < times.size(); ++i) {
    max_delta = std::max(max_delta, times[i] - times[i - 1]);
  }
  EXPECT_GT(max_delta, 5000);
}

TEST(TimeSeriesCodecTest, SpecParsing) {
  EXPECT_TRUE(MakeTimeSeriesCodec("TS2DIFF+BOS-B|RLE+BP").ok());
  EXPECT_TRUE(MakeTimeSeriesCodec("TS2DIFF+BOS-B").status().IsInvalidArgument());
  EXPECT_TRUE(MakeTimeSeriesCodec("NOPE+X|RLE+BP").status().IsInvalidArgument());
  auto codec = MakeTimeSeriesCodec("TS2DIFF+BOS-B|SPRINTZ+BOS-M");
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->name(), "TS2DIFF+BOS-B|SPRINTZ+BOS-M");
}

TEST(TimeSeriesCodecTest, RoundTrip) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1024}, size_t{5000}}) {
    const auto points = MakePoints(n, n);
    auto codec = MakeTimeSeriesCodec("TS2DIFF+BOS-B|TS2DIFF+BOS-B");
    ASSERT_TRUE(codec.ok());
    Bytes out;
    ASSERT_TRUE((*codec)->Compress(points, &out).ok());
    std::vector<DataPoint> back;
    ASSERT_TRUE((*codec)->Decompress(out, &back).ok());
    EXPECT_EQ(back, points) << n;
  }
}

TEST(TimeSeriesCodecTest, NearRegularTimestampsCompressHard) {
  // Timestamp deltas are ~1000 +- 50 with rare gap outliers: BOS territory.
  const auto points = MakePoints(7, 20000);
  auto codec = MakeTimeSeriesCodec("TS2DIFF+BOS-B|TS2DIFF+BOS-B");
  ASSERT_TRUE(codec.ok());
  Bytes out;
  ASSERT_TRUE((*codec)->Compress(points, &out).ok());
  // 16 bytes/point raw; expect well below 4.
  EXPECT_LT(out.size(), points.size() * 4);
}

TEST(TimeSeriesCodecTest, TruncationRejected) {
  const auto points = MakePoints(8, 2000);
  auto codec = MakeTimeSeriesCodec("TS2DIFF+BP|TS2DIFF+BP");
  ASSERT_TRUE(codec.ok());
  Bytes out;
  ASSERT_TRUE((*codec)->Compress(points, &out).ok());
  Bytes prefix(out.begin(), out.begin() + out.size() / 3);
  std::vector<DataPoint> back;
  const Status st = (*codec)->Decompress(prefix, &back);
  EXPECT_FALSE(st.ok() && back.size() == points.size());
}

class TimedTsFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bos_timed_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& n) { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

TEST_F(TimedTsFileTest, WriteReadTimedSeries) {
  const auto points = MakePoints(9, 10240);
  const std::string path = Path("timed.bos");
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer
                    .AppendTimeSeries("sensor.temp",
                                      "TS2DIFF+BOS-B|TS2DIFF+BOS-B", points)
                    .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_EQ(reader.series().size(), 1u);
  EXPECT_TRUE(reader.series()[0].timed);

  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadTimeSeries("sensor.temp", &got).ok());
  EXPECT_EQ(got, points);
}

TEST_F(TimedTsFileTest, TimeRangeQueryPrunesPages) {
  const auto points = MakePoints(10, 10240);  // 10 pages
  const std::string path = Path("range.bos");
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer
                    .AppendTimeSeries("s", "TS2DIFF+BOS-B|TS2DIFF+BOS-B",
                                      points)
                    .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());

  // Window covering roughly one page in the middle.
  const int64_t t0 = points[3000].timestamp;
  const int64_t t1 = points[3500].timestamp;
  storage::ScanStats stats;
  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadTimeRange("s", t0, t1, &got, &stats).ok());
  ASSERT_EQ(got.size(), 501u);
  EXPECT_EQ(got.front(), points[3000]);
  EXPECT_EQ(got.back(), points[3500]);
  EXPECT_LE(stats.pages_read, 2u);

  // Window before all data returns nothing and reads nothing.
  stats = {};
  got.clear();
  ASSERT_TRUE(reader.ReadTimeRange("s", 0, 100, &got, &stats).ok());
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.pages_read, 0u);
}

TEST_F(TimedTsFileTest, MixedTimedAndPlainSeries) {
  const auto points = MakePoints(11, 3000);
  const auto plain = data::GenerateInteger(*data::FindDataset("CS"), 3000);
  const std::string path = Path("mixed.bos");
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(
        writer.AppendTimeSeries("timed", "TS2DIFF+BOS-B|RLE+BOS-B", points)
            .ok());
    ASSERT_TRUE(writer.AppendSeries("plain", "TS2DIFF+BOS-B", plain).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());

  std::vector<DataPoint> got_points;
  ASSERT_TRUE(reader.ReadTimeSeries("timed", &got_points).ok());
  EXPECT_EQ(got_points, points);
  std::vector<int64_t> got_plain;
  ASSERT_TRUE(reader.ReadSeries("plain", &got_plain).ok());
  EXPECT_EQ(got_plain, plain);

  // Type confusion is rejected cleanly.
  got_plain.clear();
  EXPECT_TRUE(reader.ReadSeries("timed", &got_plain).IsInvalidArgument());
  got_points.clear();
  EXPECT_TRUE(reader.ReadTimeSeries("plain", &got_points).IsInvalidArgument());
}

TEST_F(TimedTsFileTest, UnsortedTimestampsRejected) {
  std::vector<DataPoint> points{{100, 1}, {50, 2}};
  storage::TsFileWriter writer(Path("unsorted.bos"));
  ASSERT_TRUE(writer.Open().ok());
  EXPECT_TRUE(writer.AppendTimeSeries("s", "TS2DIFF+BP|TS2DIFF+BP", points)
                  .IsInvalidArgument());
}

TEST_F(TimedTsFileTest, EmptyTimedSeries) {
  const std::string path = Path("empty.bos");
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.AppendTimeSeries("s", "TS2DIFF+BP|TS2DIFF+BP", {}).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadTimeSeries("s", &got).ok());
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace bos::codecs
