// The histogram/narrow-range search front-end and the original
// sort+cursor front-end must be indistinguishable: identical Separation
// results (boundaries, partitions, modeled cost) and byte-identical
// encoder output on every strategy, across adversarial distributions
// and the synthetic dataset suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/bos_codec.h"
#include "core/separation.h"
#include "data/dataset.h"
#include "util/random.h"

namespace bos::core {
namespace {

// Toggles the front-end around each call so a failure in one test can't
// leak the sort path into the rest of the suite.
class SearchEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetHistogramSearchEnabled(true); }
};

void ExpectSame(const Separation& sort_r, const Separation& hist_r,
                const char* context) {
  ASSERT_EQ(sort_r.separated, hist_r.separated) << context;
  ASSERT_EQ(sort_r.cost_bits, hist_r.cost_bits) << context;
  if (!sort_r.separated) return;  // other fields are meaningless
  ASSERT_EQ(sort_r.has_lower, hist_r.has_lower) << context;
  ASSERT_EQ(sort_r.has_upper, hist_r.has_upper) << context;
  if (sort_r.has_lower) {
    ASSERT_EQ(sort_r.xl, hist_r.xl) << context;
  }
  if (sort_r.has_upper) {
    ASSERT_EQ(sort_r.xu, hist_r.xu) << context;
  }
  ASSERT_EQ(sort_r.partition.nl, hist_r.partition.nl) << context;
  ASSERT_EQ(sort_r.partition.nu, hist_r.partition.nu) << context;
  ASSERT_EQ(sort_r.partition.min_xc, hist_r.partition.min_xc) << context;
  ASSERT_EQ(sort_r.partition.max_xc, hist_r.partition.max_xc) << context;
}

void CheckBothFrontEnds(std::span<const int64_t> values,
                        const char* context) {
  for (const auto strategy :
       {SeparationStrategy::kValue, SeparationStrategy::kBitWidth,
        SeparationStrategy::kMedian}) {
    SetHistogramSearchEnabled(false);
    const Separation sort_r = Separate(strategy, values);
    SetHistogramSearchEnabled(true);
    const Separation hist_r = Separate(strategy, values);
    ExpectSame(sort_r, hist_r, context);

    BosOperator op(strategy);
    Bytes sort_bytes, hist_bytes;
    SetHistogramSearchEnabled(false);
    ASSERT_TRUE(op.Encode(values, &sort_bytes).ok()) << context;
    SetHistogramSearchEnabled(true);
    ASSERT_TRUE(op.Encode(values, &hist_bytes).ok()) << context;
    ASSERT_EQ(sort_bytes, hist_bytes)
        << context << " strategy=" << SeparationStrategyName(strategy);
  }
}

// One generator per adversarial shape: dense narrow ranges that stay in
// the counting window, ranges straddling its cap, constant blocks,
// negatives, 60-bit spreads, bimodal spikes, and head-heavy outliers.
std::vector<int64_t> MakeValues(int kind, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (int i = 0; i < n; ++i) {
    switch (kind) {
      case 0: v[i] = rng.UniformInt(0, 100); break;
      case 1:
        v[i] = rng.UniformInt(0, 10000);
        if (rng.UniformInt(0, 50) == 0) v[i] += 1 << 14;
        break;
      case 2: v[i] = 42; break;
      case 3:
        v[i] = rng.UniformInt(-5, 5) +
               (rng.UniformInt(0, 20) == 0 ? -40000 : 0);
        break;
      case 4: v[i] = static_cast<int64_t>(rng.UniformInt(0, 1 << 30)) << 30; break;
      case 5: v[i] = i % 2 == 0 ? 0 : 65536; break;  // exactly at the cap
      case 6: v[i] = rng.UniformInt(0, 3); break;
      default:
        v[i] = i < n / 100 + 1 ? 1000000 + rng.UniformInt(0, 100)
                               : rng.UniformInt(0, 500);
        break;
    }
  }
  return v;
}

TEST_F(SearchEquivalenceTest, AdversarialDistributions) {
  for (int kind = 0; kind < 8; ++kind) {
    for (int n : {1, 2, 3, 7, 31, 64, 200, 1024, 4096}) {
      for (uint64_t seed = 0; seed < 3; ++seed) {
        const auto values =
            MakeValues(kind, n, kind * 1000 + n * 7 + seed);
        const std::string context =
            "kind=" + std::to_string(kind) + " n=" + std::to_string(n) +
            " seed=" + std::to_string(seed);
        CheckBothFrontEnds(values, context.c_str());
      }
    }
  }
}

TEST_F(SearchEquivalenceTest, SyntheticDatasetBlocks) {
  for (const auto& info : data::AllDatasets()) {
    const auto values = data::GenerateInteger(info, 16384, /*seed=*/11);
    for (size_t start = 0; start < values.size(); start += 1024) {
      const auto block = std::span(values).subspan(
          start, std::min<size_t>(1024, values.size() - start));
      CheckBothFrontEnds(block, info.abbr.c_str());
    }
  }
}

}  // namespace
}  // namespace bos::core
