#include <gtest/gtest.h>

#include <vector>

#include "codecs/registry.h"
#include "codecs/streaming.h"
#include "util/random.h"

namespace bos::codecs {
namespace {

std::shared_ptr<const SeriesCodec> Codec(const std::string& spec) {
  auto r = MakeSeriesCodec(spec);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::vector<int64_t> Values(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<int64_t> x(n);
  int64_t cur = 0;
  for (auto& v : x) {
    cur += static_cast<int64_t>(rng.Normal(0, 10));
    v = cur;
    if (rng.Bernoulli(0.02)) v += rng.UniformInt(-100000, 100000);
  }
  return x;
}

TEST(StreamingTest, RoundTripOneByOne) {
  const auto x = Values(1, 5000);
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BOS-B"));
  for (int64_t v : x) encoder.Append(v);
  ASSERT_TRUE(encoder.Finish().ok());

  SeriesStreamDecoder decoder(Codec("TS2DIFF+BOS-B"), *encoder.sink());
  std::vector<int64_t> got;
  ASSERT_TRUE(decoder.ReadAll(&got).ok());
  EXPECT_EQ(got, x);
}

TEST(StreamingTest, RoundTripSpans) {
  const auto x = Values(2, 4096);
  SeriesStreamEncoder encoder(Codec("RLE+BOS-M"), 256);
  encoder.AppendSpan(std::span<const int64_t>(x).subspan(0, 1000));
  encoder.AppendSpan(std::span<const int64_t>(x).subspan(1000));
  ASSERT_TRUE(encoder.Finish().ok());

  SeriesStreamDecoder decoder(Codec("RLE+BOS-M"), *encoder.sink());
  std::vector<int64_t> got;
  ASSERT_TRUE(decoder.ReadAll(&got).ok());
  EXPECT_EQ(got, x);
}

TEST(StreamingTest, EmptyStream) {
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BP"));
  ASSERT_TRUE(encoder.Finish().ok());
  SeriesStreamDecoder decoder(Codec("TS2DIFF+BP"), *encoder.sink());
  std::vector<int64_t> got;
  ASSERT_TRUE(decoder.ReadAll(&got).ok());
  EXPECT_TRUE(got.empty());
}

TEST(StreamingTest, PartialTailBlock) {
  const auto x = Values(3, 1000);  // not a multiple of the block size
  SeriesStreamEncoder encoder(Codec("SPRINTZ+FASTPFOR"), 300);
  for (int64_t v : x) encoder.Append(v);
  ASSERT_TRUE(encoder.Finish().ok());
  SeriesStreamDecoder decoder(Codec("SPRINTZ+FASTPFOR"), *encoder.sink());
  std::vector<int64_t> got;
  ASSERT_TRUE(decoder.ReadAll(&got).ok());
  EXPECT_EQ(got, x);
}

TEST(StreamingTest, BlockByBlockPull) {
  const auto x = Values(4, 2500);
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BOS-B"), 1000);
  for (int64_t v : x) encoder.Append(v);
  ASSERT_TRUE(encoder.Finish().ok());

  SeriesStreamDecoder decoder(Codec("TS2DIFF+BOS-B"), *encoder.sink());
  std::vector<int64_t> got;
  bool done = false;
  int blocks = 0;
  while (!done) {
    ASSERT_TRUE(decoder.NextBlock(&got, &done).ok());
    if (!done) ++blocks;
  }
  EXPECT_EQ(blocks, 3);  // 1000 + 1000 + 500
  EXPECT_EQ(got, x);
}

TEST(StreamingTest, MemoryStaysBoundedByBlock) {
  // The pending buffer never exceeds one block even for long streams.
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BOS-M"), 128);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    encoder.Append(rng.UniformInt(-100, 100));
  }
  ASSERT_TRUE(encoder.Finish().ok());
  SeriesStreamDecoder decoder(Codec("TS2DIFF+BOS-M"), *encoder.sink());
  std::vector<int64_t> got;
  ASSERT_TRUE(decoder.ReadAll(&got).ok());
  EXPECT_EQ(got.size(), 100000u);
}

TEST(StreamingTest, TruncatedStreamFails) {
  const auto x = Values(6, 3000);
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BP"));
  for (int64_t v : x) encoder.Append(v);
  ASSERT_TRUE(encoder.Finish().ok());
  const Bytes& full = *encoder.sink();
  for (size_t cut : {full.size() - 1, full.size() / 2, size_t{0}}) {
    Bytes prefix(full.begin(), full.begin() + cut);
    SeriesStreamDecoder decoder(Codec("TS2DIFF+BP"), prefix);
    std::vector<int64_t> got;
    const Status st = decoder.ReadAll(&got);
    EXPECT_FALSE(st.ok() && got.size() == x.size());
  }
}

TEST(StreamingTest, ReuseRequiresReset) {
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BP"), 64);
  encoder.Append(1);
  ASSERT_TRUE(encoder.Finish().ok());
  EXPECT_TRUE(encoder.finished());
  const Bytes first_stream = *encoder.sink();

  // Append after Finish would land frames after the end-of-stream marker
  // of the same buffer: the value is dropped and the error surfaces at
  // the next Finish. The sink keeps the completed first stream intact.
  encoder.Append(2);
  EXPECT_TRUE(encoder.Finish().IsInvalidArgument());
  EXPECT_EQ(*encoder.sink(), first_stream);

  // Reset starts a fresh stream in an empty sink.
  encoder.Reset();
  EXPECT_EQ(encoder.values_appended(), 0u);
  encoder.Append(2);
  ASSERT_TRUE(encoder.Finish().ok());

  std::vector<int64_t> got;
  SeriesStreamDecoder first(Codec("TS2DIFF+BP"), first_stream);
  ASSERT_TRUE(first.ReadAll(&got).ok());
  EXPECT_EQ(got, (std::vector<int64_t>{1}));
  got.clear();
  SeriesStreamDecoder second(Codec("TS2DIFF+BP"), *encoder.sink());
  ASSERT_TRUE(second.ReadAll(&got).ok());
  EXPECT_EQ(got, (std::vector<int64_t>{2}));
}

TEST(StreamingTest, FinishTwiceRejected) {
  SeriesStreamEncoder encoder(Codec("TS2DIFF+BP"), 64);
  encoder.Append(7);
  ASSERT_TRUE(encoder.Finish().ok());
  EXPECT_TRUE(encoder.Finish().IsInvalidArgument());
}

}  // namespace
}  // namespace bos::codecs
