// Golden-byte tests: pin the on-disk formats documented in docs/FORMAT.md.
// If any of these fail, the change broke compatibility with existing
// encoded data and needs a format version bump, not a test update.

#include <gtest/gtest.h>

#include <vector>

#include "core/bos_codec.h"
#include "core/multi_part.h"

namespace bos::core {
namespace {

TEST(FormatGoldenTest, PlainBlock) {
  // Values {3, 5, 4}: min 3, width 2, payload bits 00 10 01 -> 0x24.
  BitPackingOperator bp;
  Bytes out;
  ASSERT_TRUE(bp.Encode(std::vector<int64_t>{3, 5, 4}, &out).ok());
  EXPECT_EQ(out, (Bytes{
                     0x00,        // mode: plain
                     0x03,        // n = 3
                     0x06,        // zigzag(3) = 6
                     0x02,        // width 2
                     0b00'10'01'00  // deltas 0,2,1 MSB-first, padded
                 }));
}

TEST(FormatGoldenTest, PlainEmptyBlock) {
  BitPackingOperator bp;
  Bytes out;
  ASSERT_TRUE(bp.Encode({}, &out).ok());
  EXPECT_EQ(out, (Bytes{0x00, 0x00}));
}

TEST(FormatGoldenTest, SeparatedBlockIntroExample) {
  // The Section-I series (3,2,4,5,3,2,0,8): nl = nu = 1, xmin = 0,
  // minXc = 2, minXu = 8, alpha = 1, beta = 2, gamma = 1.
  BosOperator bos(SeparationStrategy::kBitWidth);
  Bytes out;
  ASSERT_TRUE(bos.Encode(std::vector<int64_t>{3, 2, 4, 5, 3, 2, 0, 8}, &out).ok());
  const Bytes expected{
      0x01,  // mode: separated (bitmap)
      0x08,  // n = 8
      0x01,  // nl = 1
      0x01,  // nu = 1
      0x00,  // zigzag(xmin = 0)
      0x04,  // zigzag(minXc = 2)
      0x10,  // zigzag(minXu = 8)
      0x01,  // alpha
      0x02,  // beta
      0x01,  // gamma
      // bitmap: 0 0 0 0 0 0 10 11 -> 00000010 11......
      // then values: center deltas (1,0,2,3,1,0) at 2 bits, lower delta 0
      // at 1 bit, upper delta 0 at 1 bit, in original order:
      // 01 00 10 11 01 00, 0, 0
      0b00000010, 0b11'01'00'10, 0b11'01'00'0'0 /* l=0, u=0, pad */,
  };
  EXPECT_EQ(out, expected);
}

TEST(FormatGoldenTest, SeparatedCostEqualsPayload) {
  // 24 modeled bits -> 3 payload bytes after the 10-byte header.
  BosOperator bos(SeparationStrategy::kValue);
  Bytes out;
  ASSERT_TRUE(bos.Encode(std::vector<int64_t>{3, 2, 4, 5, 3, 2, 0, 8}, &out).ok());
  EXPECT_EQ(out.size(), 10u + 3u);
}

TEST(FormatGoldenTest, MultiPartSingleClass) {
  MultiPartOperator op(3);
  Bytes out;
  ASSERT_TRUE(op.Encode(std::vector<int64_t>{1, 2, 3, 2}, &out).ok());
  // Uniform data: one untagged class, base 1, width 2.
  EXPECT_EQ(out, (Bytes{
                     0x03,        // k = 3
                     0x04,        // n = 4
                     0x01,        // m = 1 class
                     0x00,        // short_class = 0
                     0x04,        // count = 4
                     0x02,        // zigzag(base = 1)
                     0x02,        // width = 2
                     0b00'01'10'01  // deltas 0,1,2,1
                 }));
}

TEST(FormatGoldenTest, DecodersAcceptGoldenBytes) {
  // The inverse direction: fixed byte strings decode to the fixed values.
  const Bytes plain{0x00, 0x03, 0x06, 0x02, 0b00'10'01'00};
  BitPackingOperator bp;
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(bp.Decode(plain, &offset, &got).ok());
  EXPECT_EQ(got, (std::vector<int64_t>{3, 5, 4}));
}

}  // namespace
}  // namespace bos::core
