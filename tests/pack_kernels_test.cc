// Exhaustive coverage of the pack-side block kernels
// (bitpack/unpack_kernels.h) against the scalar reference: every width
// 0..64, block-boundary and non-multiple-of-32 counts, destination
// slack variants with overrun sentinels, the fused rebase-and-pack
// entry point, and the vectorized delta / delta-zigzag transforms
// against direct transcriptions.

#include "bitpack/unpack_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "bitpack/zigzag.h"
#include "util/bits.h"
#include "util/random.h"

namespace bos::bitpack {
namespace {

uint64_t WidthMask(int width) {
  return width == 64 ? ~0ULL : (width == 0 ? 0 : ((1ULL << width) - 1));
}

// The adversarial value patterns of unpack_kernels_test, plus values
// with garbage above the width: the kernels must mask, not trust.
std::vector<std::vector<uint64_t>> Patterns(int width, size_t n,
                                            uint64_t seed) {
  const uint64_t mask = WidthMask(width);
  std::vector<std::vector<uint64_t>> patterns;
  patterns.emplace_back(n, mask);  // all ones
  patterns.emplace_back(n, 0);     // all zeros
  std::vector<uint64_t> alternating(n), dirty(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    alternating[i] = i % 2 == 0 ? mask : 0;
    // Full-width random: bits above `width` are junk the pack side
    // must drop, exactly as PackScalar does.
    dirty[i] = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30)) << 34 |
               static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));
  }
  patterns.push_back(std::move(alternating));
  patterns.push_back(std::move(dirty));
  return patterns;
}

const size_t kCounts[] = {0, 1, 5, 31, 32, 33, 63, 64, 100, 1000, 1024};

TEST(PackKernels, MatchesScalarEveryWidthCountAndSlack) {
  for (int width = 0; width <= 64; ++width) {
    for (size_t n : kCounts) {
      const size_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
      for (const auto& values : Patterns(width, n, 0x9ACC + width)) {
        std::vector<uint8_t> expect(bytes);
        PackScalar(values.data(), n, width, expect.data());
        // The wide kernels may clobber slack bytes inside dst_len with
        // zeros, but must never touch a byte at dst_len or beyond.
        for (size_t slack : {size_t{0}, size_t{3}, size_t{8}}) {
          std::vector<uint8_t> got(bytes + slack + 8, 0x55);
          PackBlocks(values.data(), n, width, got.data(), bytes + slack);
          if (bytes > 0) {
            ASSERT_EQ(std::memcmp(expect.data(), got.data(), bytes), 0)
                << "width=" << width << " n=" << n << " slack=" << slack;
          }
          for (size_t i = bytes + slack; i < got.size(); ++i) {
            ASSERT_EQ(got[i], 0x55)
                << "overrun at +" << i - bytes - slack << " width=" << width
                << " n=" << n << " slack=" << slack;
          }
        }
      }
    }
  }
}

TEST(PackKernels, SubBaseMatchesRebasedScalar) {
  for (int width = 0; width <= 64; ++width) {
    for (size_t n : kCounts) {
      const size_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
      const auto values = Patterns(width, n, 0xBA5E + width).back();
      std::vector<int64_t> signed_values(n);
      for (size_t i = 0; i < n; ++i) {
        signed_values[i] = static_cast<int64_t>(values[i]);
      }
      for (uint64_t base : {uint64_t{0}, uint64_t{1}, uint64_t{0x123456789},
                            static_cast<uint64_t>(-5)}) {
        // Reference: rebase with wrapping subtraction, then pack.
        std::vector<uint64_t> rebased(n);
        for (size_t i = 0; i < n; ++i) rebased[i] = values[i] - base;
        std::vector<uint8_t> expect(bytes);
        PackScalar(rebased.data(), n, width, expect.data());
        std::vector<uint8_t> got(bytes + 16, 0x55);
        PackBlocksSubBase(signed_values.data(), n, width, base, got.data(),
                          bytes + 8);
        if (bytes > 0) {
          ASSERT_EQ(std::memcmp(expect.data(), got.data(), bytes), 0)
              << "width=" << width << " n=" << n << " base=" << base;
        }
        for (size_t i = bytes + 8; i < got.size(); ++i) {
          ASSERT_EQ(got[i], 0x55) << "overrun width=" << width << " n=" << n;
        }
      }
    }
  }
}

TEST(PackKernels, PackedSubBaseRoundTripsThroughAddBase) {
  for (int width : {1, 7, 8, 9, 13, 16, 24, 40, 64}) {
    const size_t n = 1000;
    Rng rng(0x707 + width);
    std::vector<int64_t> values(n);
    const int64_t base = -123456;
    for (auto& v : values) {
      v = base + static_cast<int64_t>(rng.Next() & WidthMask(width));
    }
    const size_t bytes = BitsToBytes(static_cast<uint64_t>(width) * n);
    std::vector<uint8_t> packed(bytes + 8);
    PackBlocksSubBase(values.data(), n, width, static_cast<uint64_t>(base),
                      packed.data(), packed.size());
    std::vector<int64_t> back(n);
    UnpackBlocksAddBase(packed.data(), packed.size(), width, n,
                        static_cast<uint64_t>(base), back.data());
    ASSERT_EQ(back, values) << "width=" << width;
  }
}

TEST(PackKernels, DeltaEncodeMatchesDirectTranscription) {
  Rng rng(0xDE17A);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{100}, size_t{1023}}) {
    std::vector<int64_t> in(n);
    for (auto& v : in) {
      v = static_cast<int64_t>(static_cast<uint64_t>(rng.Next()));
    }
    const int64_t prev = -987654321;
    std::vector<int64_t> got(n, ~0);
    DeltaEncode(in.data(), n, prev, got.data());
    for (size_t i = 0; i < n; ++i) {
      const int64_t d = static_cast<int64_t>(
          static_cast<uint64_t>(in[i]) -
          static_cast<uint64_t>(i == 0 ? prev : in[i - 1]));
      ASSERT_EQ(got[i], d) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PackKernels, DeltaZigZagEncodeMatchesDirectTranscription) {
  Rng rng(0x2122A6);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{100}, size_t{1023}}) {
    std::vector<int64_t> in(n);
    for (auto& v : in) {
      v = static_cast<int64_t>(static_cast<uint64_t>(rng.Next()));
    }
    const int64_t prev = 42;
    std::vector<int64_t> got(n, ~0);
    DeltaZigZagEncode(in.data(), n, prev, got.data());
    for (size_t i = 0; i < n; ++i) {
      const int64_t d = static_cast<int64_t>(
          static_cast<uint64_t>(in[i]) -
          static_cast<uint64_t>(i == 0 ? prev : in[i - 1]));
      ASSERT_EQ(got[i], static_cast<int64_t>(ZigZagEncode(d)))
          << "n=" << n << " i=" << i;
    }
  }
}

// INT64_MIN deltas and the extremes must survive the vector lanes: the
// transforms are defined on wrapping two's-complement arithmetic.
TEST(PackKernels, DeltaTransformsHandleExtremes) {
  const std::vector<int64_t> in = {INT64_MAX, INT64_MIN, -1, 0,
                                   INT64_MIN, INT64_MAX, 1,  -2};
  std::vector<int64_t> delta(in.size()), zz(in.size());
  DeltaEncode(in.data(), in.size(), 0, delta.data());
  DeltaZigZagEncode(in.data(), in.size(), 0, zz.data());
  int64_t prev = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    const int64_t d = static_cast<int64_t>(static_cast<uint64_t>(in[i]) -
                                           static_cast<uint64_t>(prev));
    EXPECT_EQ(delta[i], d) << i;
    EXPECT_EQ(zz[i], static_cast<int64_t>(ZigZagEncode(d))) << i;
    prev = in[i];
  }
}

}  // namespace
}  // namespace bos::bitpack
