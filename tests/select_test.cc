#include "select/selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "util/random.h"

namespace bos::select {
namespace {

std::vector<uint64_t> Sorted(std::set<uint64_t> s) {
  return {s.begin(), s.end()};
}

TEST(SelectionVectorTest, EmptyVector) {
  SelectionVector sel;
  EXPECT_TRUE(sel.empty());
  EXPECT_EQ(sel.cardinality(), 0u);
  EXPECT_FALSE(sel.Contains(0));
  EXPECT_EQ(sel.Rank(12345), 0u);
  uint64_t pos;
  EXPECT_FALSE(sel.Select(0, &pos));
  EXPECT_TRUE(sel.ToVector().empty());
}

TEST(SelectionVectorTest, AddAndContains) {
  SelectionVector sel;
  sel.Add(5);
  sel.Add(0);
  sel.Add(5);  // idempotent
  sel.Add(1'000'000);
  EXPECT_EQ(sel.cardinality(), 3u);
  EXPECT_TRUE(sel.Contains(0));
  EXPECT_TRUE(sel.Contains(5));
  EXPECT_TRUE(sel.Contains(1'000'000));
  EXPECT_FALSE(sel.Contains(4));
  EXPECT_FALSE(sel.Contains(999'999));
  EXPECT_EQ(sel.ToVector(), (std::vector<uint64_t>{0, 5, 1'000'000}));
}

TEST(SelectionVectorTest, AddRangeSpansChunks) {
  SelectionVector sel;
  // Crosses the 65536 chunk boundary.
  sel.AddRange(65530, 65550);
  EXPECT_EQ(sel.cardinality(), 20u);
  for (uint64_t p = 65530; p < 65550; ++p) EXPECT_TRUE(sel.Contains(p));
  EXPECT_FALSE(sel.Contains(65529));
  EXPECT_FALSE(sel.Contains(65550));
  // Empty and single-element ranges.
  sel.AddRange(10, 10);
  EXPECT_EQ(sel.cardinality(), 20u);
  sel.AddRange(10, 11);
  EXPECT_EQ(sel.cardinality(), 21u);
}

TEST(SelectionVectorTest, RankSelectInverse) {
  SelectionVector sel;
  const std::vector<uint64_t> positions{0, 1, 7, 100, 65535, 65536, 200000};
  for (uint64_t p : positions) sel.Add(p);
  for (size_t k = 0; k < positions.size(); ++k) {
    uint64_t pos;
    ASSERT_TRUE(sel.Select(k, &pos));
    EXPECT_EQ(pos, positions[k]);
    EXPECT_EQ(sel.Rank(pos), k);          // strictly-below semantics
    EXPECT_EQ(sel.Rank(pos + 1), k + 1);  // position itself counted
  }
  uint64_t pos;
  EXPECT_FALSE(sel.Select(positions.size(), &pos));
}

TEST(SelectionVectorTest, ArrayToBitmapConversion) {
  SelectionVector sel;
  // Push one chunk past the array->bitmap threshold with odd positions
  // (not coalescible into runs).
  for (uint64_t p = 1; p < 2 * SelectionVector::kArrayToBitmapThreshold + 3;
       p += 2) {
    sel.Add(p);
  }
  const uint64_t n = sel.cardinality();
  EXPECT_GT(n, SelectionVector::kArrayToBitmapThreshold);
  EXPECT_TRUE(sel.Contains(1));
  EXPECT_FALSE(sel.Contains(2));
  EXPECT_EQ(sel.Rank(101), 50u);
  // The representation change must not change the set.
  const auto before = sel.ToVector();
  sel.RunOptimize();
  EXPECT_EQ(sel.ToVector(), before);
}

TEST(SelectionVectorTest, RunOptimizePreservesSet) {
  SelectionVector sel;
  sel.AddRange(0, 5000);
  sel.AddRange(70000, 70100);
  sel.Add(200000);
  const auto before = sel.ToVector();
  sel.RunOptimize();
  EXPECT_EQ(sel.ToVector(), before);
  EXPECT_EQ(sel.Rank(70050), 5050u);
  // Point-insert after run conversion still works.
  sel.Add(70200);
  EXPECT_TRUE(sel.Contains(70200));
  EXPECT_EQ(sel.cardinality(), before.size() + 1);
}

TEST(SelectionVectorTest, IntersectWith) {
  SelectionVector a;
  a.AddRange(0, 100);
  a.Add(65536 + 5);
  SelectionVector b;
  b.AddRange(50, 150);
  b.Add(65536 + 5);
  b.Add(1'000'000);
  a.IntersectWith(b);
  std::vector<uint64_t> want;
  for (uint64_t p = 50; p < 100; ++p) want.push_back(p);
  want.push_back(65536 + 5);
  EXPECT_EQ(a.ToVector(), want);
}

TEST(SelectionVectorTest, IntersectWithEmpty) {
  SelectionVector a;
  a.AddRange(0, 10);
  SelectionVector none;
  a.IntersectWith(none);
  EXPECT_TRUE(a.empty());
}

TEST(SelectionVectorTest, ForEachRunCoalescesAcrossChunks) {
  SelectionVector sel;
  // One run spanning the chunk boundary must be reported as one run.
  sel.AddRange(65530, 65542);
  std::vector<std::pair<uint64_t, uint64_t>> runs;
  sel.ForEachRun([&](uint64_t start, uint64_t len) {
    runs.emplace_back(start, len);
  });
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (std::pair<uint64_t, uint64_t>{65530, 12}));
}

TEST(SelectionVectorTest, SerializeRoundTripAllContainerTypes) {
  SelectionVector sel;
  sel.Add(3);                   // sparse chunk -> array
  sel.AddRange(65536, 72000);   // dense chunk -> bitmap after AddRange
  sel.AddRange(200000, 200500); // another chunk
  sel.RunOptimize();            // converts what run form shrinks
  Bytes bytes;
  sel.Serialize(&bytes);
  auto back = SelectionVector::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->SetEquals(sel));
  EXPECT_EQ(back->ToVector(), sel.ToVector());
}

TEST(SelectionVectorTest, SetEqualsIgnoresRepresentation) {
  SelectionVector runs;
  runs.AddRange(0, 300);
  runs.RunOptimize();
  SelectionVector array;
  for (uint64_t p = 0; p < 300; ++p) array.Add(p);
  EXPECT_TRUE(runs.SetEquals(array));
  array.Add(300);
  EXPECT_FALSE(runs.SetEquals(array));
}

TEST(SelectionVectorTest, DeserializeRejectsHostileInput) {
  SelectionVector sel;
  sel.AddRange(0, 100);
  sel.Add(70000);
  Bytes good;
  sel.Serialize(&good);
  // Truncations at every length must fail cleanly, never crash.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = SelectionVector::Deserialize(BytesView(good).subspan(0, len));
    EXPECT_FALSE(r.ok()) << "truncated to " << len;
  }
  // Trailing garbage is rejected too.
  Bytes extra = good;
  extra.push_back(0);
  EXPECT_FALSE(SelectionVector::Deserialize(extra).ok());
}

TEST(SelectionVectorTest, RandomizedAgainstStdSet) {
  Rng rng(42);
  SelectionVector sel;
  std::set<uint64_t> model;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.3)) {
      const uint64_t start = rng.Uniform(1 << 20);
      const uint64_t len = rng.Uniform(200);
      sel.AddRange(start, start + len);
      for (uint64_t p = start; p < start + len; ++p) model.insert(p);
    } else {
      const uint64_t p = rng.Uniform(1 << 20);
      sel.Add(p);
      model.insert(p);
    }
  }
  ASSERT_EQ(sel.cardinality(), model.size());
  EXPECT_EQ(sel.ToVector(), Sorted(model));
  // Spot-check rank/select/contains against the model.
  const std::vector<uint64_t> sorted = Sorted(model);
  for (int i = 0; i < 500; ++i) {
    const uint64_t p = rng.Uniform(1 << 20);
    EXPECT_EQ(sel.Contains(p), model.count(p) > 0) << p;
    const uint64_t rank = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), p) - sorted.begin());
    EXPECT_EQ(sel.Rank(p), rank) << p;
  }
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = rng.Uniform(sorted.size());
    uint64_t pos;
    ASSERT_TRUE(sel.Select(k, &pos));
    EXPECT_EQ(pos, sorted[k]);
  }
  // Serialize -> deserialize -> same set, also after RunOptimize.
  sel.RunOptimize();
  EXPECT_EQ(sel.ToVector(), Sorted(model));
  Bytes bytes;
  sel.Serialize(&bytes);
  auto back = SelectionVector::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->SetEquals(sel));
}

TEST(SelectionViewTest, WindowBasics) {
  SelectionVector sel;
  sel.Add(3);
  sel.Add(10);
  sel.Add(11);
  sel.Add(25);
  const SelectionView view(sel, 10, 10);  // absolute [10, 20)
  EXPECT_EQ(view.base(), 10u);
  EXPECT_EQ(view.size(), 10u);
  EXPECT_EQ(view.count(), 2u);
  EXPECT_EQ(view.ToVector(), (std::vector<uint64_t>{0, 1}));  // relative
}

TEST(SelectionViewTest, EmptyAndDefaultViews) {
  const SelectionView none;
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.count(), 0u);
  none.ForEach([](uint64_t) { FAIL() << "empty view must not visit"; });

  SelectionVector sel;
  sel.Add(100);
  const SelectionView miss(sel, 0, 50);
  EXPECT_TRUE(miss.empty());
}

TEST(SelectionViewTest, SubViewRebases) {
  SelectionVector sel;
  sel.AddRange(0, 100);
  const SelectionView page(sel, 20, 60);   // absolute [20, 80)
  const SelectionView block = page.SubView(10, 20);  // absolute [30, 50)
  EXPECT_EQ(block.count(), 20u);
  std::vector<std::pair<uint64_t, uint64_t>> runs;
  block.ForEachRun([&](uint64_t start, uint64_t len) {
    runs.emplace_back(start, len);
  });
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (std::pair<uint64_t, uint64_t>{0, 20}));
  // Sub-windows past the parent are empty, and lengths clamp.
  EXPECT_TRUE(page.SubView(60, 5).empty());
  EXPECT_EQ(page.SubView(50, 100).size(), 10u);
}

TEST(SelectionViewTest, CountMatchesRankDifference) {
  Rng rng(7);
  SelectionVector sel;
  for (int i = 0; i < 1000; ++i) sel.Add(rng.Uniform(10000));
  for (uint64_t base = 0; base < 10000; base += 512) {
    const SelectionView view(sel, base, 512);
    EXPECT_EQ(view.count(), sel.Rank(base + 512) - sel.Rank(base));
    uint64_t visited = 0;
    view.ForEach([&](uint64_t rel) {
      EXPECT_LT(rel, 512u);
      EXPECT_TRUE(sel.Contains(base + rel));
      ++visited;
    });
    EXPECT_EQ(visited, view.count());
  }
}

}  // namespace
}  // namespace bos::select
