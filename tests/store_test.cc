#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "select/selection.h"
#include "storage/store.h"
#include "util/random.h"

namespace bos::storage {
namespace {

using codecs::DataPoint;

class TsStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bos_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions Options(size_t memtable = 1 << 20) {
    StoreOptions options;
    options.dir = dir_;
    options.memtable_points = memtable;
    return options;
  }

  static std::vector<DataPoint> Points(uint64_t seed, size_t n,
                                       int64_t t_start = 0) {
    Rng rng(seed);
    std::vector<DataPoint> points(n);
    int64_t t = t_start;
    for (auto& p : points) {
      t += 1 + rng.Uniform(10);
      p = {t, rng.UniformInt(-1000, 1000)};
    }
    return points;
  }

  std::string dir_;
};

TEST_F(TsStoreTest, RejectsEmptyDir) {
  StoreOptions options;
  EXPECT_TRUE(TsStore::Open(options).status().IsInvalidArgument());
}

TEST_F(TsStoreTest, WriteQueryWithoutFlushHitsMemtable) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  const auto points = Points(1, 100);
  ASSERT_TRUE((*store)->WriteBatch("s", points).ok());
  EXPECT_EQ((*store)->num_files(), 0u);
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);
}

TEST_F(TsStoreTest, AutomaticFlushAtThreshold) {
  auto store = TsStore::Open(Options(/*memtable=*/500));
  ASSERT_TRUE(store.ok());
  const auto points = Points(2, 1200);
  for (const auto& p : points) ASSERT_TRUE((*store)->Write("s", p).ok());
  EXPECT_GE((*store)->num_files(), 2u);
  EXPECT_LT((*store)->memtable_points(), 500u);
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);
}

TEST_F(TsStoreTest, OutOfOrderWritesAreSortedAtRead) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Write("s", {30, 3}).ok());
  ASSERT_TRUE((*store)->Write("s", {10, 1}).ok());
  ASSERT_TRUE((*store)->Write("s", {20, 2}).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (DataPoint{10, 1}));
  EXPECT_EQ(got[1], (DataPoint{20, 2}));
  EXPECT_EQ(got[2], (DataPoint{30, 3}));
}

TEST_F(TsStoreTest, QueryMergesFilesAndMemtable) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  const auto first = Points(3, 300, 0);
  const auto second = Points(4, 300, 100000);
  ASSERT_TRUE((*store)->WriteBatch("s", first).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->WriteBatch("s", second).ok());  // stays in memtable

  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  ASSERT_EQ(got.size(), 600u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].timestamp, got[i].timestamp);
  }
}

TEST_F(TsStoreTest, TimeWindowQuery) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  std::vector<DataPoint> points;
  for (int64_t t = 0; t < 1000; ++t) points.push_back({t, t * 2});
  ASSERT_TRUE((*store)->WriteBatch("s", points).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", 100, 199, &got).ok());
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got.front().timestamp, 100);
  EXPECT_EQ(got.back().timestamp, 199);
}

TEST_F(TsStoreTest, MultipleSeries) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WriteBatch("a", Points(5, 50)).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->WriteBatch("b", Points(6, 50)).ok());
  const auto names = (*store)->ListSeries();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("b", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got.size(), 50u);
  got.clear();
  ASSERT_TRUE((*store)->Query("missing", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST_F(TsStoreTest, AggregateAcrossFilesAndMemtable) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  std::vector<DataPoint> all;
  for (int part = 0; part < 3; ++part) {
    const auto points = Points(10 + part, 400, part * 100000);
    all.insert(all.end(), points.begin(), points.end());
    ASSERT_TRUE((*store)->WriteBatch("s", points).ok());
    if (part < 2) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
  }
  auto agg = (*store)->Aggregate("s");
  ASSERT_TRUE(agg.ok());
  int64_t min = all[0].value, max = all[0].value, sum = 0;
  for (const auto& p : all) {
    min = std::min(min, p.value);
    max = std::max(max, p.value);
    sum += p.value;
  }
  EXPECT_EQ(agg->count, all.size());
  EXPECT_EQ(agg->min, min);
  EXPECT_EQ(agg->max, max);
  EXPECT_EQ(agg->sum, sum);
}

TEST_F(TsStoreTest, ReopenAdoptsExistingFiles) {
  const auto points = Points(20, 500);
  {
    auto store = TsStore::Open(Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch("s", points).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = TsStore::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_files(), 1u);
  std::vector<DataPoint> got;
  ASSERT_TRUE((*reopened)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);
  // New flushes do not collide with adopted file names.
  ASSERT_TRUE((*reopened)->WriteBatch("s", Points(21, 10, 1 << 20)).ok());
  ASSERT_TRUE((*reopened)->Flush().ok());
  EXPECT_EQ((*reopened)->num_files(), 2u);
}

TEST_F(TsStoreTest, CompactMergesToOneFile) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  std::vector<DataPoint> all;
  for (int part = 0; part < 4; ++part) {
    const auto points = Points(30 + part, 250, part * 50000);
    all.insert(all.end(), points.begin(), points.end());
    ASSERT_TRUE((*store)->WriteBatch("s", points).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  EXPECT_EQ((*store)->num_files(), 4u);
  ASSERT_TRUE((*store)->Compact().ok());
  EXPECT_EQ((*store)->num_files(), 1u);

  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, all);  // parts were time-disjoint and ordered
  // Old files really are gone from disk.
  size_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    on_disk += entry.path().extension() == ".tsfile";
  }
  EXPECT_EQ(on_disk, 1u);
}

TEST_F(TsStoreTest, AutoAdvisePinsPerSeriesCodec) {
  StoreOptions options = Options();
  options.auto_advise = true;
  auto store = TsStore::Open(options);
  ASSERT_TRUE(store.ok());

  // Series "runs" is pure runs (RLE territory); "walk" is a smooth walk.
  std::vector<DataPoint> runs, walk;
  Rng rng(50);
  int64_t cur = 100000;
  for (int64_t t = 0; t < 20000; ++t) {
    runs.push_back({t, (t / 700) % 5});
    cur += rng.UniformInt(-2, 2);
    walk.push_back({t, cur});
  }
  ASSERT_TRUE((*store)->WriteBatch("runs", runs).ok());
  ASSERT_TRUE((*store)->WriteBatch("walk", walk).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  // The advisor picked codecs, and they differ by data shape.
  const std::string runs_spec = (*store)->SpecFor("runs");
  const std::string walk_spec = (*store)->SpecFor("walk");
  EXPECT_NE(runs_spec, options.spec);
  EXPECT_TRUE(runs_spec.find("RLE+") != std::string::npos) << runs_spec;
  EXPECT_TRUE(walk_spec.find("RLE+") == std::string::npos) << walk_spec;

  // Data still round-trips under the advised codecs.
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("runs", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, runs);
  got.clear();
  ASSERT_TRUE((*store)->Query("walk", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, walk);

  // The pick is pinned: later flushes reuse it.
  ASSERT_TRUE((*store)->Write("runs", {30000, 1}).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->SpecFor("runs"), runs_spec);
}

TEST_F(TsStoreTest, CorruptAdoptedFileFailsOpen) {
  {
    auto store = TsStore::Open(Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch("s", Points(40, 100)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Truncate the flushed file (skip the WAL).
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".tsfile") continue;
    std::filesystem::resize_file(entry.path(),
                                 std::filesystem::file_size(entry.path()) - 4);
  }
  EXPECT_FALSE(TsStore::Open(Options()).ok());
}

TEST_F(TsStoreTest, QuerySelectedSpansFilesAndMemtable) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  // Two flushed files plus a memtable tail; positions are store-order:
  // oldest file first, memtable last.
  std::vector<DataPoint> all;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const auto batch =
        Points(seed, 500, all.empty() ? 0 : all.back().timestamp);
    ASSERT_TRUE((*store)->WriteBatch("s", batch).ok());
    if (seed < 3) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ((*store)->num_files(), 2u);

  select::SelectionVector sel;
  sel.Add(0);               // first point of the oldest file
  sel.AddRange(498, 503);   // straddles the file 0 / file 1 boundary
  sel.Add(999);             // last point of file 1
  sel.AddRange(1000, 1002); // start of the memtable tail
  sel.Add(1499);            // last memtable point
  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->QuerySelected("s", sel, &got).ok());
  std::vector<DataPoint> want;
  sel.ForEach([&](uint64_t pos) { want.push_back(all[pos]); });
  EXPECT_EQ(got, want);

  // A position past the store's total count is rejected.
  sel.Add(1500);
  got.clear();
  const Status st = (*store)->QuerySelected("s", sel, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());

  // Empty selections and unknown series yield empty results.
  select::SelectionVector none;
  got.clear();
  ASSERT_TRUE((*store)->QuerySelected("s", none, &got).ok());
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE((*store)->QuerySelected("missing", none, &got).ok());
}

TEST_F(TsStoreTest, AggregateEmptySeriesSentinel) {
  auto store = TsStore::Open(Options());
  ASSERT_TRUE(store.ok());
  // Unknown series aggregates to the count==0 sentinel, matching the
  // file-level AggregateQuery convention.
  auto agg = (*store)->Aggregate("missing");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 0u);
  EXPECT_EQ(agg->min, INT64_MAX);
  EXPECT_EQ(agg->max, INT64_MIN);
  EXPECT_EQ(agg->sum, 0);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(TsStoreTest, DirLockRejectsSecondOpenWhileFirstIsLive) {
  auto first = TsStore::Open(Options());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->Write("s", {1, 2}).ok());

  // flock is per open file description, so a second Open in the same
  // process conflicts exactly like one from another process would.
  auto second = TsStore::Open(Options());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIoError()) << second.status().ToString();
  EXPECT_NE(second.status().ToString().find("locked"), std::string::npos)
      << "lock error should say the dir is locked: "
      << second.status().ToString();

  // The failed Open must not have disturbed the live store.
  std::vector<DataPoint> got;
  ASSERT_TRUE((*first)->Query("s", 0, 10, &got).ok());
  EXPECT_EQ(got.size(), 1u);
}

TEST_F(TsStoreTest, DirLockReleasedOnClose) {
  {
    auto store = TsStore::Open(Options());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Write("s", {1, 2}).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }  // destructor closes the lock fd
  auto reopened = TsStore::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<DataPoint> got;
  ASSERT_TRUE((*reopened)->Query("s", 0, 10, &got).ok());
  EXPECT_EQ(got.size(), 1u);
}
#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace bos::storage
