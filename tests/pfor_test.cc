#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/bos_codec.h"
#include "pfor/pfor.h"
#include "util/random.h"

namespace bos::pfor {
namespace {

std::vector<std::unique_ptr<core::PackingOperator>> PforFamily() {
  std::vector<std::unique_ptr<core::PackingOperator>> ops;
  ops.push_back(std::make_unique<PforOperator>());
  ops.push_back(std::make_unique<NewPforOperator>());
  ops.push_back(std::make_unique<OptPforOperator>());
  ops.push_back(std::make_unique<FastPforOperator>());
  return ops;
}

void ExpectRoundTrip(const core::PackingOperator& op,
                     const std::vector<int64_t>& x) {
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok()) << op.name();
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok()) << op.name();
  EXPECT_EQ(got, x) << op.name();
  EXPECT_EQ(offset, out.size()) << op.name();
}

TEST(PforFamilyTest, EmptyBlock) {
  for (const auto& op : PforFamily()) ExpectRoundTrip(*op, {});
}

TEST(PforFamilyTest, SingleValue) {
  for (const auto& op : PforFamily()) {
    ExpectRoundTrip(*op, {7});
    ExpectRoundTrip(*op, {-7});
    ExpectRoundTrip(*op, {INT64_MIN});
    ExpectRoundTrip(*op, {INT64_MAX});
  }
}

TEST(PforFamilyTest, ConstantChunk) {
  std::vector<int64_t> x(300, 123456);
  for (const auto& op : PforFamily()) ExpectRoundTrip(*op, x);
}

TEST(PforFamilyTest, ExactChunkBoundaries) {
  Rng rng(1);
  for (int n : {127, 128, 129, 255, 256, 257}) {
    std::vector<int64_t> x(n);
    for (auto& v : x) v = rng.UniformInt(-1000, 1000);
    for (const auto& op : PforFamily()) ExpectRoundTrip(*op, x);
  }
}

TEST(PforFamilyTest, AllValuesAreOutliersForLowWidth) {
  // Bimodal: half tiny, half huge — stresses exception paths.
  std::vector<int64_t> x;
  for (int i = 0; i < 256; ++i) {
    x.push_back(i % 2 == 0 ? i % 8 : 1000000000LL + i);
  }
  for (const auto& op : PforFamily()) ExpectRoundTrip(*op, x);
}

TEST(PforFamilyTest, Int64ExtremesRoundTrip) {
  std::vector<int64_t> x(200, 0);
  x[13] = INT64_MIN;
  x[77] = INT64_MAX;
  for (const auto& op : PforFamily()) ExpectRoundTrip(*op, x);
}

TEST(PforTest, CompulsoryExceptionsLongGap) {
  // Two outliers separated by a long run of small values: with small b the
  // linked list cannot span the gap, forcing compulsory exceptions.
  std::vector<int64_t> x(512, 1);
  x[0] = 1 << 20;
  x[511] = 1 << 20;
  PforOperator op;
  ExpectRoundTrip(op, x);
}

TEST(PforFamilyTest, OutlierDataBeatsPlainBitPacking) {
  Rng rng(9);
  std::vector<int64_t> x(1024);
  for (auto& v : x) {
    v = static_cast<int64_t>(rng.Normal(0, 10));
    if (rng.Bernoulli(0.02)) v += 1000000;
  }
  core::BitPackingOperator bp;
  Bytes bp_out;
  ASSERT_TRUE(bp.Encode(x, &bp_out).ok());
  for (const auto& op : PforFamily()) {
    Bytes out;
    ASSERT_TRUE(op->Encode(x, &out).ok());
    EXPECT_LT(out.size(), bp_out.size()) << op->name();
  }
}

TEST(PforFamilyTest, OptPforNeverLargerThanNewPfor) {
  Rng rng(10);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<int64_t> x(512);
    for (auto& v : x) {
      v = static_cast<int64_t>(rng.Normal(500, 100));
      if (rng.Bernoulli(0.07)) v *= 1000;
    }
    NewPforOperator newp;
    OptPforOperator optp;
    Bytes new_out, opt_out;
    ASSERT_TRUE(newp.Encode(x, &new_out).ok());
    ASSERT_TRUE(optp.Encode(x, &opt_out).ok());
    EXPECT_LE(opt_out.size(), new_out.size());
  }
}

TEST(PforFamilyTest, DecodeRejectsTruncation) {
  Rng rng(11);
  std::vector<int64_t> x(300);
  for (auto& v : x) {
    v = rng.UniformInt(0, 100);
    if (rng.Bernoulli(0.05)) v += 1 << 25;
  }
  for (const auto& op : PforFamily()) {
    Bytes out;
    ASSERT_TRUE(op->Encode(x, &out).ok());
    for (size_t cut : {out.size() - 1, out.size() / 2, size_t{1}}) {
      Bytes prefix(out.begin(), out.begin() + cut);
      size_t offset = 0;
      std::vector<int64_t> got;
      const Status st = op->Decode(prefix, &offset, &got);
      EXPECT_FALSE(st.ok() && got.size() == x.size()) << op->name();
    }
  }
}

TEST(PforFamilyTest, ConcatenatedBlocks) {
  Rng rng(12);
  for (const auto& op : PforFamily()) {
    Bytes out;
    std::vector<std::vector<int64_t>> blocks;
    for (int b = 0; b < 5; ++b) {
      std::vector<int64_t> x(64 + 64 * b);
      for (auto& v : x) v = rng.UniformInt(-10000, 10000);
      ASSERT_TRUE(op->Encode(x, &out).ok());
      blocks.push_back(std::move(x));
    }
    size_t offset = 0;
    for (const auto& expected : blocks) {
      std::vector<int64_t> got;
      ASSERT_TRUE(op->Decode(out, &offset, &got).ok()) << op->name();
      EXPECT_EQ(got, expected) << op->name();
    }
    EXPECT_EQ(offset, out.size()) << op->name();
  }
}

struct SweepCase {
  std::string name;
  uint64_t seed;
  int n;
  double outlier_p;
  int64_t scale;
};

class PforSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PforSweepTest, RoundTrip) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> x(c.n);
  for (auto& v : x) {
    v = static_cast<int64_t>(rng.Normal(0, 30));
    if (rng.Bernoulli(c.outlier_p)) v += rng.UniformInt(-c.scale, c.scale);
  }
  for (const auto& op : PforFamily()) ExpectRoundTrip(*op, x);
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  int id = 0;
  for (int n : {1, 64, 128, 1000}) {
    for (double p : {0.0, 0.1, 0.5}) {
      for (int64_t scale : {int64_t{1000}, int64_t{1} << 40}) {
        std::string name = "n";
        name += std::to_string(n);
        name += "_p";
        name += std::to_string(static_cast<int>(p * 10));
        name += scale > 100000 ? "_sbig" : "_ssmall";
        cases.push_back({name, 7000 + static_cast<uint64_t>(id++), n, p, scale});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, PforSweepTest,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace bos::pfor
