// Differential test: telemetry must only observe. Encoding with the
// runtime switch on and off has to produce byte-identical streams, and
// decoding those streams identical values — for the raw BOS-M operator
// and for a full TS2DIFF+BOS-M series codec. The same holds for trace
// recording: a span-instrumented encode under StartTracing must emit the
// same bytes as one with tracing off.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "codecs/registry.h"
#include "core/bos_codec.h"
#include "exec/parallel_codec.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/random.h"

namespace bos {
namespace {

// An outlier-bearing workload: dense center plus sparse large outliers,
// the regime where BOS-M exercises every encode mode and width decision.
std::vector<int64_t> OutlierSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = static_cast<int64_t>(rng.Normal(0, 100));
    if (rng.Bernoulli(0.03)) v += rng.UniformInt(-1000000, 1000000);
  }
  return values;
}

class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : saved_(telemetry::Enabled()) {
    telemetry::SetEnabled(on);
  }
  ~ScopedEnabled() { telemetry::SetEnabled(saved_); }

 private:
  bool saved_;
};

TEST(TelemetryDiffTest, BosMOperatorStreamIsIdenticalOnAndOff) {
  const std::vector<int64_t> values = OutlierSeries(1 << 14, 0xD1FF);
  core::BosOperator bos_m(core::SeparationStrategy::kMedian);
  constexpr size_t kBlock = 1024;

  auto encode_all = [&](bool telemetry_on) {
    ScopedEnabled toggle(telemetry_on);
    Bytes encoded;
    for (size_t start = 0; start < values.size(); start += kBlock) {
      const size_t len = std::min(kBlock, values.size() - start);
      EXPECT_TRUE(
          bos_m.Encode(std::span(values).subspan(start, len), &encoded).ok());
    }
    return encoded;
  };

  const Bytes with_telemetry = encode_all(true);
  const Bytes without_telemetry = encode_all(false);
  ASSERT_EQ(with_telemetry, without_telemetry);

  auto decode_all = [&](bool telemetry_on) {
    ScopedEnabled toggle(telemetry_on);
    std::vector<int64_t> decoded;
    size_t offset = 0;
    while (offset < with_telemetry.size()) {
      EXPECT_TRUE(bos_m.Decode(with_telemetry, &offset, &decoded).ok());
    }
    return decoded;
  };

  const std::vector<int64_t> decoded_on = decode_all(true);
  const std::vector<int64_t> decoded_off = decode_all(false);
  EXPECT_EQ(decoded_on, values);
  EXPECT_EQ(decoded_off, values);
}

TEST(TelemetryDiffTest, SeriesCodecStreamIsIdenticalOnAndOff) {
  const std::vector<int64_t> values = OutlierSeries(1 << 13, 0xC0DEC);
  auto codec = codecs::MakeSeriesCodec("TS2DIFF+BOS-M");
  ASSERT_TRUE(codec.ok());

  auto compress = [&](bool telemetry_on) {
    ScopedEnabled toggle(telemetry_on);
    Bytes out;
    EXPECT_TRUE((*codec)->Compress(values, &out).ok());
    return out;
  };

  const Bytes on_stream = compress(true);
  const Bytes off_stream = compress(false);
  ASSERT_EQ(on_stream, off_stream);

  ScopedEnabled toggle(true);
  std::vector<int64_t> back;
  ASSERT_TRUE((*codec)->Decompress(on_stream, &back).ok());
  EXPECT_EQ(back, values);
}

TEST(TelemetryDiffTest, TraceRecordingNeverChangesEncodedBytes) {
  const std::vector<int64_t> values = OutlierSeries(1 << 13, 0x7ACE);
  auto codec = codecs::MakeSeriesCodec("TS2DIFF+BOS-M");
  ASSERT_TRUE(codec.ok());

  // Through the traced pool path as well as the plain serial codec, so
  // the span instrumentation in thread_pool/parallel_codec is on the
  // measured path.
  auto compress = [&](bool tracing) {
    if (tracing) {
      EXPECT_TRUE(telemetry::trace::StartTracing());
    }
    Bytes serial, chunked;
    EXPECT_TRUE((*codec)->Compress(values, &serial).ok());
    EXPECT_TRUE(exec::ParallelEncodeSeries(**codec, values, &chunked).ok());
    if (tracing) {
      telemetry::trace::StopTracing();
      EXPECT_GT(telemetry::trace::EventCount(), 0u)
          << "tracing was on, spans must have been recorded";
    }
    serial.insert(serial.end(), chunked.begin(), chunked.end());
    return serial;
  };

  const Bytes traced = compress(true);
  const Bytes untraced = compress(false);
  EXPECT_EQ(traced, untraced);
}

}  // namespace
}  // namespace bos
