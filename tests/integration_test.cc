// End-to-end flows across subsystems: dataset -> codecs -> storage ->
// queries, and dataset -> streaming -> byte codecs. These mirror how a
// downstream system (an IoTDB-like database) would actually compose the
// library.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "codecs/registry.h"
#include "codecs/streaming.h"
#include "codecs/timeseries.h"
#include "data/dataset.h"
#include "floatcodec/registry.h"
#include "general/lz4lite.h"
#include "general/lzma_lite.h"
#include "storage/tsfile.h"

namespace bos {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bos_integration_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& n) { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, EveryDatasetThroughEveryTransformWithBosB) {
  // The full Figure-10a "BOS-B column" at reduced size, verified lossless.
  for (const auto& info : data::AllDatasets()) {
    const auto values = data::GenerateInteger(info, 6000);
    for (const auto& t : codecs::TransformNames()) {
      auto codec = codecs::MakeSeriesCodec(t + "+BOS-B");
      ASSERT_TRUE(codec.ok());
      Bytes out;
      ASSERT_TRUE((*codec)->Compress(values, &out).ok()) << info.abbr;
      std::vector<int64_t> back;
      ASSERT_TRUE((*codec)->Decompress(out, &back).ok()) << info.abbr;
      EXPECT_EQ(back, values) << info.abbr << " " << t;
    }
  }
}

TEST_F(IntegrationTest, FloatDatasetsThroughFloatCodecs) {
  for (const auto& info : data::AllDatasets()) {
    if (info.kind != data::ValueKind::kFloat) continue;
    const auto values = data::GenerateFloat(info, 4000);
    for (const auto& name : floatcodec::FloatCodecNames()) {
      auto codec = floatcodec::MakeFloatCodec(name, info.precision);
      ASSERT_TRUE(codec.ok());
      Bytes out;
      ASSERT_TRUE((*codec)->Compress(values, &out).ok()) << name;
      std::vector<double> back;
      ASSERT_TRUE((*codec)->Decompress(out, &back).ok()) << name;
      ASSERT_EQ(back.size(), values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        ASSERT_EQ(back[i], values[i]) << name << " " << info.abbr;
      }
    }
  }
}

TEST_F(IntegrationTest, FullDatabaseRoundTrip) {
  // Write a file holding every dataset as its own series, each with the
  // codec a tuned deployment would pick; read everything back.
  const std::string path = Path("warehouse.tsfile");
  std::vector<std::vector<int64_t>> originals;
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    for (const auto& info : data::AllDatasets()) {
      auto values = data::GenerateInteger(info, 5000);
      const char* spec = info.abbr == "CS" ? "RLE+BOS-B" : "TS2DIFF+BOS-B";
      ASSERT_TRUE(writer.AppendSeries(info.abbr, spec, values).ok());
      originals.push_back(std::move(values));
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_EQ(reader.series().size(), data::AllDatasets().size());
  for (size_t i = 0; i < data::AllDatasets().size(); ++i) {
    std::vector<int64_t> got;
    ASSERT_TRUE(reader.ReadSeries(data::AllDatasets()[i].abbr, &got).ok());
    EXPECT_EQ(got, originals[i]);
  }
  // The compressed file is much smaller than raw.
  const uint64_t raw = 12 * 5000 * 8;
  EXPECT_LT(reader.file_size(), raw / 2);
}

TEST_F(IntegrationTest, StreamingIntoTsFilePages) {
  // Stream-encode, ship frames, decode on arrival, land in a TsFile, and
  // answer a range query — the full ingestion path.
  const auto info = data::FindDataset("MT");
  const auto values = data::GenerateInteger(*info, 12000);
  auto codec = codecs::MakeSeriesCodec("TS2DIFF+BOS-B");
  ASSERT_TRUE(codec.ok());

  codecs::SeriesStreamEncoder encoder(*codec, 512);
  encoder.AppendSpan(values);
  ASSERT_TRUE(encoder.Finish().ok());

  codecs::SeriesStreamDecoder decoder(*codec, *encoder.sink());
  std::vector<int64_t> landed;
  ASSERT_TRUE(decoder.ReadAll(&landed).ok());
  ASSERT_EQ(landed, values);

  const std::string path = Path("ingested.tsfile");
  {
    storage::TsFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.AppendSeries("mt", "TS2DIFF+BOS-B", landed).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<int64_t> window;
  ASSERT_TRUE(reader.ReadRange("mt", 100, 199, &window).ok());
  ASSERT_EQ(window.size(), 100u);
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i], values[100 + i]);
  }
}

TEST_F(IntegrationTest, BosPlusByteCodecComposition) {
  // The Figure-13 composition: BOS output re-compressed with LZ4 / LZMA
  // round-trips through both stages.
  const auto values = data::GenerateInteger(*data::FindDataset("TC"), 8000);
  auto codec = codecs::MakeSeriesCodec("TS2DIFF+BOS-B");
  ASSERT_TRUE(codec.ok());
  Bytes bos_stream;
  ASSERT_TRUE((*codec)->Compress(values, &bos_stream).ok());

  const general::Lz4LiteCodec lz4;
  const general::LzmaLiteCodec lzma;
  for (const general::ByteCodec* byte_codec :
       {static_cast<const general::ByteCodec*>(&lz4),
        static_cast<const general::ByteCodec*>(&lzma)}) {
    Bytes doubled;
    ASSERT_TRUE(byte_codec->Compress(bos_stream, &doubled).ok());
    Bytes restored_stream;
    ASSERT_TRUE(byte_codec->Decompress(doubled, &restored_stream).ok());
    ASSERT_EQ(restored_stream, bos_stream) << byte_codec->name();
    std::vector<int64_t> back;
    ASSERT_TRUE((*codec)->Decompress(restored_stream, &back).ok());
    EXPECT_EQ(back, values) << byte_codec->name();
  }
}

TEST_F(IntegrationTest, TimedPipelineEndToEnd) {
  const auto times = data::GenerateTimestamps(8000);
  const auto raw_values = data::GenerateInteger(*data::FindDataset("TF"), 8000);
  std::vector<codecs::DataPoint> points(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    points[i] = {times[i], raw_values[i]};
  }
  const std::string path = Path("timed.tsfile");
  {
    storage::TsFileWriter writer(path, 512);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(
        writer.AppendTimeSeries("fuel", "TS2DIFF+BOS-B|TS2DIFF+BOS-B", points)
            .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  storage::TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  storage::ScanStats stats;
  std::vector<codecs::DataPoint> window;
  const int64_t t0 = points[4000].timestamp;
  const int64_t t1 = points[4200].timestamp;
  ASSERT_TRUE(reader.ReadTimeRange("fuel", t0, t1, &window, &stats).ok());
  ASSERT_EQ(window.size(), 201u);
  EXPECT_EQ(window.front(), points[4000]);
  EXPECT_EQ(window.back(), points[4200]);
  // 8000 points in 512-point pages = 16 pages; the window spans ~1.
  EXPECT_LE(stats.pages_read, 2u);
}

}  // namespace
}  // namespace bos
