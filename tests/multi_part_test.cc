#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/bos_codec.h"
#include "core/multi_part.h"
#include "core/separation.h"
#include "util/bits.h"
#include "util/random.h"

namespace bos::core {
namespace {

std::vector<int64_t> OutlierBlock(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<int64_t> x(n);
  for (auto& v : x) {
    v = static_cast<int64_t>(rng.Normal(0, 15));
    if (rng.Bernoulli(0.05)) v += rng.UniformInt(100000, 300000);
    if (rng.Bernoulli(0.05)) v -= rng.UniformInt(100000, 300000);
  }
  return x;
}

TEST(MultiPartPlanTest, SinglePartIsPlainWidth) {
  std::vector<int64_t> x{0, 5, 9, 14};
  const MultiPartPlan plan = PlanMultiPart(x, 1);
  ASSERT_EQ(plan.classes.size(), 1u);
  EXPECT_EQ(plan.classes[0].width, 4);  // range 14 -> 4 bits
  EXPECT_EQ(plan.cost_bits, 16u);
}

TEST(MultiPartPlanTest, CostNeverIncreasesWithK) {
  const auto x = OutlierBlock(1, 512);
  uint64_t prev = PlanMultiPart(x, 1).cost_bits;
  for (int k = 2; k <= 7; ++k) {
    const uint64_t cost = PlanMultiPart(x, k).cost_bits;
    EXPECT_LE(cost, prev) << "k=" << k;
    prev = cost;
  }
}

TEST(MultiPartPlanTest, ThreePartsTrackBosCost) {
  // k=3 with the DP tag model should be close to the BOS-B optimum (both
  // charge 1 bit for the center class and 2 for each outlier class).
  for (uint64_t seed : {7u, 8u, 9u, 10u}) {
    const auto x = OutlierBlock(seed, 256);
    const uint64_t bos = SeparateBitWidth(x).cost_bits;
    const uint64_t mp3 = PlanMultiPart(x, 3).cost_bits;
    EXPECT_LE(mp3, bos) << "DP may also choose k<3 or a better split";
  }
}

TEST(MultiPartPlanTest, ClassesPartitionTheValueDomain) {
  const auto x = OutlierBlock(11, 300);
  const MultiPartPlan plan = PlanMultiPart(x, 5);
  uint64_t total = 0;
  for (size_t i = 0; i < plan.classes.size(); ++i) {
    total += plan.classes[i].count;
    EXPECT_LE(plan.classes[i].base, plan.classes[i].top);
    if (i > 0) {
      EXPECT_LT(plan.classes[i - 1].top, plan.classes[i].base);
    }
  }
  EXPECT_EQ(total, x.size());
  EXPECT_LT(plan.short_class, static_cast<int>(plan.classes.size()));
}

TEST(MultiPartPlanTest, ShortTagGoesToHeavyClassWhenFree) {
  // 90 small values, 10 huge: the populous class should carry the 1-bit tag.
  std::vector<int64_t> x;
  for (int i = 0; i < 90; ++i) x.push_back(i % 4);
  for (int i = 0; i < 10; ++i) x.push_back(1000000 + i);
  const MultiPartPlan plan = PlanMultiPart(x, 2);
  ASSERT_EQ(plan.classes.size(), 2u);
  EXPECT_EQ(plan.short_class, 0);
  EXPECT_EQ(plan.classes[0].count, 90u);
}

TEST(MultiPartPlanTest, NoTaggedSplitOnUniformData) {
  std::vector<int64_t> x;
  for (int i = 0; i < 256; ++i) x.push_back(i % 16);
  const MultiPartPlan plan = PlanMultiPart(x, 3);
  // Splitting uniform data can only add tag bits; expect one class.
  EXPECT_EQ(plan.classes.size(), 1u);
}

// Brute-force reference: enumerate every contiguous partition of the
// sorted unique values into exactly m classes (m = 1..k), every choice of
// short-tag class, and price it the way the encoder does.
uint64_t BruteForceCost(const std::vector<int64_t>& values, int k) {
  std::vector<int64_t> uniq(values);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const int u = static_cast<int>(uniq.size());
  const uint64_t n = values.size();

  auto count_in = [&](int64_t lo, int64_t hi) {
    uint64_t c = 0;
    for (int64_t v : values) c += (v >= lo && v <= hi);
    return c;
  };
  auto width = [&](int64_t lo, int64_t hi) {
    const int w = BitWidth(UnsignedRange(lo, hi));
    return w == 0 ? 1 : w;
  };

  // m = 1: untagged plain layout, no clamp.
  uint64_t best =
      n * static_cast<uint64_t>(BitWidth(UnsignedRange(uniq.front(), uniq.back())));

  const int kk = std::min(k, u);
  // Boundaries: choose m-1 cut positions among u-1 gaps (u small).
  for (int m = 2; m <= kk; ++m) {
    const int extra = m <= 2 ? 0 : BitWidth(static_cast<uint64_t>(m - 2));
    std::vector<int> cuts(m - 1);
    // Enumerate combinations via simple odometer.
    std::function<void(int, int)> rec = [&](int idx, int start) {
      if (idx == m - 1) {
        // Build segments.
        std::vector<std::pair<int, int>> segs;
        int prev = 0;
        for (int c : cuts) {
          segs.push_back({prev, c});
          prev = c;
        }
        segs.push_back({prev, u});
        for (int short_idx = 0; short_idx < m; ++short_idx) {
          uint64_t cost = 0;
          for (int s = 0; s < m; ++s) {
            const auto [lo, hi] = segs[s];
            const uint64_t cnt = count_in(uniq[lo], uniq[hi - 1]);
            const int tag = s == short_idx ? 1 : 1 + extra;
            cost += cnt * (width(uniq[lo], uniq[hi - 1]) + tag);
          }
          best = std::min(best, cost);
        }
        return;
      }
      for (int c = start; c < u; ++c) {
        cuts[idx] = c;
        rec(idx + 1, c + 1);
      }
    };
    rec(0, 1);
  }
  return best;
}

TEST(MultiPartPlanTest, MatchesBruteForceOnSmallAlphabets) {
  Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    const int u = 2 + static_cast<int>(rng.Uniform(6));  // 2..7 unique values
    std::vector<int64_t> alphabet(u);
    for (auto& v : alphabet) v = rng.UniformInt(-100000, 100000);
    std::vector<int64_t> x(40);
    for (auto& v : x) v = alphabet[rng.Uniform(u)];
    for (int k : {1, 2, 3, 4}) {
      EXPECT_EQ(PlanMultiPart(x, k).cost_bits, BruteForceCost(x, k))
          << "trial " << trial << " k=" << k;
    }
  }
}

class MultiPartRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiPartRoundTripTest, RoundTripsAcrossK) {
  const int k = GetParam();
  MultiPartOperator op(k);
  for (uint64_t seed : {21u, 22u}) {
    for (int n : {1, 2, 50, 400}) {
      const auto x = OutlierBlock(seed, n);
      Bytes out;
      ASSERT_TRUE(op.Encode(x, &out).ok());
      size_t offset = 0;
      std::vector<int64_t> got;
      ASSERT_TRUE(op.Decode(out, &offset, &got).ok());
      EXPECT_EQ(got, x) << "k=" << k << " n=" << n;
      EXPECT_EQ(offset, out.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, MultiPartRoundTripTest,
                         ::testing::Range(1, 8));

TEST(MultiPartOperatorTest, EmptyBlock) {
  MultiPartOperator op(3);
  Bytes out;
  ASSERT_TRUE(op.Encode({}, &out).ok());
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST(MultiPartOperatorTest, ConstantBlock) {
  MultiPartOperator op(4);
  std::vector<int64_t> x(100, 9);
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok());
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok());
  EXPECT_EQ(got, x);
}

TEST(MultiPartOperatorTest, ExtremesRoundTrip) {
  MultiPartOperator op(5);
  std::vector<int64_t> x{INT64_MIN, INT64_MAX, 0, 0, 0, 1, -1, 2, -2, 3};
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok());
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok());
  EXPECT_EQ(got, x);
}

TEST(MultiPartOperatorTest, DecodeRejectsTruncation) {
  MultiPartOperator op(3);
  const auto x = OutlierBlock(33, 200);
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok());
  for (size_t cut : {out.size() - 1, out.size() / 2, size_t{2}}) {
    Bytes prefix(out.begin(), out.begin() + cut);
    size_t offset = 0;
    std::vector<int64_t> got;
    const Status st = op.Decode(prefix, &offset, &got);
    EXPECT_FALSE(st.ok() && got.size() == x.size());
  }
}

TEST(MultiPartOperatorTest, EncodedSizeShrinksThenPlateaus) {
  // The Figure 14 shape: 1 -> 3 parts improves clearly; 3 -> 7 marginal.
  const auto x = OutlierBlock(44, 1024);
  std::vector<size_t> sizes;
  for (int k = 1; k <= 7; ++k) {
    MultiPartOperator op(k);
    Bytes out;
    ASSERT_TRUE(op.Encode(x, &out).ok());
    sizes.push_back(out.size());
  }
  EXPECT_LT(sizes[2], sizes[0]);  // 3 parts clearly beat 1
  for (int k = 3; k < 7; ++k) EXPECT_LE(sizes[k], sizes[k - 1] + 8);
}

}  // namespace
}  // namespace bos::core
