#include <gtest/gtest.h>

#include <vector>

#include "core/bos_codec.h"
#include "util/random.h"

namespace bos::core {
namespace {

std::vector<int64_t> Block(uint64_t seed, int n, double outlier_p) {
  Rng rng(seed);
  std::vector<int64_t> x(n);
  for (auto& v : x) {
    v = static_cast<int64_t>(rng.Normal(0, 30));
    if (rng.Bernoulli(outlier_p)) {
      v += rng.Bernoulli(0.5) ? rng.UniformInt(100000, 900000)
                              : -rng.UniformInt(100000, 900000);
    }
  }
  return x;
}

void ExpectRoundTrip(const PackingOperator& op, const std::vector<int64_t>& x) {
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok()) << op.name();
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok()) << op.name();
  EXPECT_EQ(got, x) << op.name();
  EXPECT_EQ(offset, out.size()) << op.name();
}

TEST(PositionEncodingTest, ListOperatorRoundTrips) {
  BosListOperator op;
  ExpectRoundTrip(op, {});
  ExpectRoundTrip(op, {5});
  ExpectRoundTrip(op, {3, 2, 4, 5, 3, 2, 0, 8});
  ExpectRoundTrip(op, std::vector<int64_t>(500, 9));
  for (double p : {0.001, 0.02, 0.3}) {
    ExpectRoundTrip(op, Block(10, 1024, p));
  }
}

TEST(PositionEncodingTest, AdaptiveOperatorRoundTrips) {
  BosAdaptiveOperator op;
  ExpectRoundTrip(op, {});
  ExpectRoundTrip(op, {INT64_MIN, 0, INT64_MAX});
  for (double p : {0.001, 0.02, 0.3}) {
    ExpectRoundTrip(op, Block(11, 1024, p));
  }
}

TEST(PositionEncodingTest, BitmapDecoderRejectsListBlocks) {
  // A plain BOS-V/B stream never contains mode-2 blocks, but the shared
  // decoder accepts all modes: cross-decoding must work.
  BosListOperator list_op;
  BosOperator bitmap_op(SeparationStrategy::kBitWidth);
  const auto x = Block(12, 512, 0.05);
  Bytes out;
  ASSERT_TRUE(list_op.Encode(x, &out).ok());
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(bitmap_op.Decode(out, &offset, &got).ok());
  EXPECT_EQ(got, x);
}

TEST(PositionEncodingTest, ListWinsWhenOutliersAreVeryRare) {
  // With ~0.1% outliers, a gap list (few varints) beats the 1-bit-per-
  // value bitmap; with ~20% outliers the bitmap wins — §II-C's point.
  BosListOperator list_op;
  BosOperator bitmap_op(SeparationStrategy::kBitWidth);

  const auto rare = Block(13, 4096, 0.001);
  Bytes list_rare, bitmap_rare;
  ASSERT_TRUE(list_op.Encode(rare, &list_rare).ok());
  ASSERT_TRUE(bitmap_op.Encode(rare, &bitmap_rare).ok());
  EXPECT_LT(list_rare.size(), bitmap_rare.size());

  const auto dense = Block(14, 4096, 0.2);
  Bytes list_dense, bitmap_dense;
  ASSERT_TRUE(list_op.Encode(dense, &list_dense).ok());
  ASSERT_TRUE(bitmap_op.Encode(dense, &bitmap_dense).ok());
  EXPECT_LT(bitmap_dense.size(), list_dense.size());
}

TEST(PositionEncodingTest, AdaptiveIsNeverWorseThanEither) {
  BosListOperator list_op;
  BosOperator bitmap_op(SeparationStrategy::kBitWidth);
  BosAdaptiveOperator adaptive_op;
  for (double p : {0.0, 0.001, 0.01, 0.05, 0.2, 0.4}) {
    const auto x = Block(20 + static_cast<uint64_t>(p * 1000), 2048, p);
    Bytes list_out, bitmap_out, adaptive_out;
    ASSERT_TRUE(list_op.Encode(x, &list_out).ok());
    ASSERT_TRUE(bitmap_op.Encode(x, &bitmap_out).ok());
    ASSERT_TRUE(adaptive_op.Encode(x, &adaptive_out).ok());
    EXPECT_LE(adaptive_out.size(), list_out.size()) << "p=" << p;
    EXPECT_LE(adaptive_out.size(), bitmap_out.size()) << "p=" << p;
  }
}

TEST(PositionEncodingTest, ListDecoderRejectsDuplicatePositions) {
  // Handcraft a mode-2 block with a duplicated position: n=4, nl=2,
  // positions {0, gap 0 -> 1}, then corrupt the second gap to point back.
  BosListOperator op;
  std::vector<int64_t> x{0, 0, 50, 51};  // two lower outliers
  x[0] = -100000;
  x[1] = -100000;
  Bytes out;
  ASSERT_TRUE(op.Encode(x, &out).ok());
  // Block decodes cleanly before mutation.
  size_t offset = 0;
  std::vector<int64_t> got;
  ASSERT_TRUE(op.Decode(out, &offset, &got).ok());
  // Truncations fail cleanly.
  for (size_t cut = 1; cut < out.size(); ++cut) {
    Bytes prefix(out.begin(), out.begin() + cut);
    offset = 0;
    got.clear();
    const Status st = op.Decode(prefix, &offset, &got);
    EXPECT_FALSE(st.ok() && got == x);
  }
}

}  // namespace
}  // namespace bos::core
