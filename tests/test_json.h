#ifndef BOS_TESTS_TEST_JSON_H_
#define BOS_TESTS_TEST_JSON_H_

// Minimal JSON reader for tests: just enough to schema-check the JSON
// the library emits (telemetry snapshots, trace exports, inspect
// reports). Shared by telemetry_test, trace_test, and inspect_test.

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bos::testjson {

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool flag = false;
  double number = 0;
  std::string str;
  std::vector<Json> items;                            // kArray
  std::vector<std::pair<std::string, Json>> members;  // kObject

  const Json* Find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(Json* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        c = text_[pos_++];
        if (c == 'u') {
          if (pos_ + 4 > text_.size()) return false;
          pos_ += 4;  // escaped control char; value irrelevant to the schema
          c = '?';
        }
      }
      out->push_back(c);
    }
    return Consume('"');
  }

  bool ParseValue(Json* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = Json::Type::kObject;
      SkipWs();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        SkipWs();
        if (!ParseString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        Json value;
        if (!ParseValue(&value)) return false;
        out->members.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (Consume('}')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = Json::Type::kArray;
      SkipWs();
      if (Consume(']')) return true;
      for (;;) {
        Json value;
        if (!ParseValue(&value)) return false;
        out->items.push_back(std::move(value));
        SkipWs();
        if (Consume(']')) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == '"') {
      out->type = Json::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.substr(pos_, 4) == "true") {
      out->type = Json::Type::kBool;
      out->flag = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->type = Json::Type::kBool;
      out->flag = false;
      pos_ += 5;
      return true;
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = Json::Type::kNumber;
    out->number = std::strtod(
        std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace bos::testjson

#endif  // BOS_TESTS_TEST_JSON_H_
