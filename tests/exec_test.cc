#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/strand.h"
#include "exec/thread_pool.h"
#include "util/status.h"

namespace bos::exec {
namespace {

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool drains the queues before joining.
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DefaultPoolIsASingleton) {
  ThreadPool* a = &ThreadPool::Default();
  ThreadPool* b = &ThreadPool::Default();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Chunks are disjoint, so plain ints are race-free; any double visit
  // or gap shows up as a value != 1.
  std::vector<int> hits(10'000, 0);
  Status st = pool.ParallelFor(hits.size(), 64, [&](size_t b, size_t e) {
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, 64u);
    for (size_t i = b; i < e; ++i) ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRangeAndZeroGrain) {
  ThreadPool pool(2);
  int calls = 0;
  Status st = pool.ParallelFor(0, 16, [&](size_t, size_t) {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 0);

  // grain == 0 is clamped to 1: every chunk is a single index.
  std::vector<int> hits(37, 0);
  st = pool.ParallelFor(hits.size(), 0, [&](size_t b, size_t e) {
    EXPECT_EQ(e, b + 1);
    ++hits[b];
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 37);
}

TEST(ThreadPoolTest, ParallelForSingleChunkRunsInline) {
  ThreadPool pool(4);
  std::thread::id body_thread;
  Status st = pool.ParallelFor(8, 100, [&](size_t b, size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 8u);
    body_thread = std::this_thread::get_id();
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  Status st = pool.ParallelFor(8, 1, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      std::atomic<int64_t> inner{0};
      // The inner call runs on a pool worker; cooperative claiming means
      // it completes even if every other worker is busy with the outer
      // loop.
      Status inner_st = pool.ParallelFor(100, 7, [&](size_t b, size_t e) {
        int64_t s = 0;
        for (size_t i = b; i < e; ++i) s += static_cast<int64_t>(i);
        inner.fetch_add(s, std::memory_order_relaxed);
        return Status::OK();
      });
      if (!inner_st.ok()) return inner_st;
      total.fetch_add(inner.load(), std::memory_order_relaxed);
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(total.load(), 8 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, FirstErrorWinsAndRemainingChunksAreSkipped) {
  ThreadPool pool(4);
  std::atomic<int> bodies_run{0};
  Status st = pool.ParallelFor(1000, 1, [&](size_t b, size_t) {
    bodies_run.fetch_add(1, std::memory_order_relaxed);
    if (b == 3) return Status::Corruption("injected failure");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.ToString().find("injected failure") != std::string::npos, true)
      << st.ToString();
  // Once the error landed, later chunks are claimed but their bodies are
  // not run; with 1000 single-index chunks some must have been skipped.
  EXPECT_LT(bodies_run.load(), 1000);
}

TEST(ThreadPoolTest, ErrorInOneParallelForDoesNotPoisonTheNext) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(
      64, 1, [](size_t, size_t) { return Status::InvalidArgument("boom"); });
  ASSERT_FALSE(st.ok());
  std::atomic<int> ok_chunks{0};
  st = pool.ParallelFor(64, 1, [&](size_t, size_t) {
    ok_chunks.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ok_chunks.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentExternalParallelForCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<int64_t> sum{0};
      statuses[c] = pool.ParallelFor(10'000, 128, [&](size_t b, size_t e) {
        int64_t s = 0;
        for (size_t i = b; i < e; ++i) s += static_cast<int64_t>(i);
        sum.fetch_add(s, std::memory_order_relaxed);
        return Status::OK();
      });
      sums[c] = sum.load();
    });
  }
  for (auto& t : callers) t.join();
  const int64_t want = 9999LL * 10'000 / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    EXPECT_EQ(sums[c], want);
  }
}

TEST(ThreadPoolTest, SiblingsStealFromABlockedWorkersDeque) {
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  constexpr int kChildren = 64;

  std::atomic<bool> parent_finished{false};
  pool.Submit([&] {
    // Submit from inside a worker: children land on *this* worker's own
    // deque. The worker then blocks until all children ran — so the only
    // way they can run is a sibling stealing them from the deque's back.
    for (int i = 0; i < kChildren; ++i) {
      pool.Submit([&] {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kChildren; });
    parent_finished.store(true);
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kChildren; });
  }
  // done == kChildren while the parent still held its thread the whole
  // time: every child was stolen.
  EXPECT_GE(pool.steal_count(), 1u);
  while (!parent_finished.load()) std::this_thread::yield();
}

TEST(ThreadPoolTest, StressManySmallParallelFors) {
  ThreadPool pool(7);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    Status st = pool.ParallelFor(round % 23 + 1, 2, [&](size_t b, size_t e) {
      n.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(n.load(), round % 23 + 1);
  }
}

TEST(ThreadPoolTest, RepeatedConstructDestruct) {
  for (int i = 0; i < 20; ++i) {
    std::atomic<int> ran{0};
    ThreadPool pool(i % 4 + 1);
    for (int j = 0; j < 50; ++j) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    Status st =
        pool.ParallelFor(10, 1, [](size_t, size_t) { return Status::OK(); });
    ASSERT_TRUE(st.ok());
    // Destructor must drain the 50 submits without crashing or hanging.
  }
}

TEST(StrandTest, RunsTasksInFifoOrder) {
  ThreadPool pool(4);
  Strand strand(&pool);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    strand.Post([&order, i] { order.push_back(i); });
  }
  strand.Wait();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(StrandTest, NeverRunsTasksConcurrently) {
  ThreadPool pool(8);
  Strand strand(&pool);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  // Posted from many threads at once: ordering across posters is
  // unspecified, mutual exclusion is not.
  std::vector<std::thread> posters;
  for (int p = 0; p < 4; ++p) {
    posters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        strand.Post([&] {
          if (inside.fetch_add(1) != 0) overlapped.store(true);
          inside.fetch_sub(1);
        });
      }
    });
  }
  for (auto& t : posters) t.join();
  strand.Wait();
  EXPECT_FALSE(overlapped.load());
}

TEST(StrandTest, PostFromInsideATaskRunsAfterIt) {
  ThreadPool pool(2);
  Strand strand(&pool);
  std::vector<int> order;
  strand.Post([&] {
    order.push_back(1);
    strand.Post([&order] { order.push_back(3); });
    order.push_back(2);
  });
  strand.Wait();
  // Wait() covers tasks posted before the call; the nested task was
  // posted by a task that had itself been posted before, and the strand
  // is FIFO — but Wait's contract alone doesn't cover it, so wait again.
  strand.Wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(StrandTest, QuantumRequeueDoesNotStarvePoolWork) {
  // One strand with far more than kQuantum tasks must not monopolize the
  // pool: plain Submits interleave and everything completes.
  ThreadPool pool(2);
  Strand strand(&pool);
  std::atomic<int> strand_ran{0};
  std::atomic<int> pool_ran{0};
  for (int i = 0; i < 500; ++i) {
    strand.Post([&] { strand_ran.fetch_add(1, std::memory_order_relaxed); });
    pool.Submit([&] { pool_ran.fetch_add(1, std::memory_order_relaxed); });
  }
  strand.Wait();
  EXPECT_EQ(strand_ran.load(), 500);
  const Status barrier =
      pool.ParallelFor(1, 1, [](size_t, size_t) { return Status::OK(); });
  ASSERT_TRUE(barrier.ok());
  EXPECT_EQ(pool_ran.load(), 500);
}

TEST(StrandTest, DestructorDrainsPendingTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    Strand strand(&pool);
    for (int i = 0; i < 100; ++i) {
      strand.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~Strand blocks until the queue is empty.
  EXPECT_EQ(ran.load(), 100);
}

TEST(StrandTest, ManyStrandsShareOnePool) {
  ThreadPool pool(4);
  constexpr int kStrands = 8;
  constexpr int kTasks = 200;
  std::vector<std::unique_ptr<Strand>> strands;
  std::vector<std::vector<int>> orders(kStrands);
  for (int i = 0; i < kStrands; ++i) {
    strands.push_back(std::make_unique<Strand>(&pool));
  }
  for (int t = 0; t < kTasks; ++t) {
    for (int i = 0; i < kStrands; ++i) {
      auto* order = &orders[static_cast<size_t>(i)];
      strands[static_cast<size_t>(i)]->Post([order, t] {
        order->push_back(t);
      });
    }
  }
  for (auto& strand : strands) strand->Wait();
  for (const auto& order : orders) {
    ASSERT_EQ(order.size(), static_cast<size_t>(kTasks));
    for (int t = 0; t < kTasks; ++t) {
      EXPECT_EQ(order[static_cast<size_t>(t)], t);
    }
  }
}

}  // namespace
}  // namespace bos::exec
