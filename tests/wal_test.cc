#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "storage/store.h"
#include "storage/wal.h"
#include "telemetry/telemetry.h"
#include "util/random.h"

namespace bos::storage {
namespace {

using codecs::DataPoint;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bos_wal_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& n) {
    return (std::filesystem::path(dir_) / n).string();
  }
  std::string dir_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  const std::string path = Path("wal");
  {
    WalWriter wal(path);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append("a", {1, 10}).ok());
    ASSERT_TRUE(wal.Append("b", {2, -20}).ok());
    ASSERT_TRUE(wal.Append("a", {3, 30}).ok());
  }
  std::vector<std::pair<std::string, DataPoint>> got;
  auto replayed = ReplayWal(path, [&](const std::string& s, const DataPoint& p) {
    got.emplace_back(s, p);
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, "a");
  EXPECT_EQ(got[0].second, (DataPoint{1, 10}));
  EXPECT_EQ(got[1].first, "b");
  EXPECT_EQ(got[1].second, (DataPoint{2, -20}));
  EXPECT_EQ(got[2].second, (DataPoint{3, 30}));
}

TEST_F(WalTest, MissingLogIsEmpty) {
  auto replayed = ReplayWal(Path("absent"), [](const auto&, const auto&) {});
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 0u);
}

TEST_F(WalTest, ResetTruncates) {
  const std::string path = Path("wal");
  WalWriter wal(path);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("a", {1, 1}).ok());
  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append("a", {2, 2}).ok());
  wal.Close();
  uint64_t count = 0;
  int64_t last_t = 0;
  ASSERT_TRUE(ReplayWal(path, [&](const auto&, const DataPoint& p) {
                ++count;
                last_t = p.timestamp;
              }).ok());
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(last_t, 2);
}

TEST_F(WalTest, TornTailIsIgnored) {
  const std::string path = Path("wal");
  {
    WalWriter wal(path);
    ASSERT_TRUE(wal.Open().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.Append("s", {i, i * 2}).ok());
    }
  }
  // Chop bytes off the end: a crash mid-append.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  uint64_t count = 0;
  ASSERT_TRUE(
      ReplayWal(path, [&](const auto&, const auto&) { ++count; }).ok());
  EXPECT_EQ(count, 9u);  // last record torn, rest intact
}

TEST_F(WalTest, CorruptMiddleStopsReplay) {
  const std::string path = Path("wal");
  {
    WalWriter wal(path);
    ASSERT_TRUE(wal.Open().ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(wal.Append("s", {i, i}).ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  uint64_t count = 0;
  ASSERT_TRUE(
      ReplayWal(path, [&](const auto&, const auto&) { ++count; }).ok());
  EXPECT_LT(count, 5u);  // replay stops at the corrupt record
}

TEST_F(WalTest, StoreRecoversUnflushedWrites) {
  // Simulate a crash: write without flushing, drop the store object, and
  // reopen — the WAL rebuilds the memtable.
  StoreOptions options;
  options.dir = dir_;
  Rng rng(7);
  std::vector<DataPoint> points;
  {
    auto store = TsStore::Open(options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 500; ++i) {
      const DataPoint p{i, rng.UniformInt(-100, 100)};
      points.push_back(p);
      ASSERT_TRUE((*store)->Write("s", p).ok());
    }
    // No Flush(): destructor abandons the memtable, as a crash would.
  }
  auto reopened = TsStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->memtable_points(), 500u);
  std::vector<DataPoint> got;
  ASSERT_TRUE((*reopened)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);
}

TEST_F(WalTest, RecoveryAfterFlushOnlyReplaysNewWrites) {
  StoreOptions options;
  options.dir = dir_;
  {
    auto store = TsStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Write("s", {1, 11}).ok());
    ASSERT_TRUE((*store)->Flush().ok());          // resets the log
    ASSERT_TRUE((*store)->Write("s", {2, 22}).ok());  // only this is in WAL
  }
  auto reopened = TsStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->memtable_points(), 1u);
  std::vector<DataPoint> got;
  ASSERT_TRUE((*reopened)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  ASSERT_EQ(got.size(), 2u);  // one from the file + one recovered
  EXPECT_EQ(got[0], (DataPoint{1, 11}));
  EXPECT_EQ(got[1], (DataPoint{2, 22}));
}

TEST_F(WalTest, SyncFlushesToStableStorage) {
  const std::string path = Path("wal");
  WalWriter wal(path);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("a", {1, 10}).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Append("a", {2, 20}).ok());
  ASSERT_TRUE(wal.Sync().ok());  // repeatable
  wal.Close();

  std::map<std::string, std::vector<DataPoint>> got;
  auto n = ReplayWal(path, [&](const std::string& s, const DataPoint& p) {
    got[s].push_back(p);
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  ASSERT_EQ(got["a"].size(), 2u);
}

TEST_F(WalTest, StoreSyncEveryNPolicyCountsSyncs) {
  StoreOptions options;
  options.dir = dir_;
  options.wal_sync_every_n = 4;

  uint64_t before = 0;
  telemetry::Counter* syncs = nullptr;
  if (telemetry::CompiledIn()) {
    syncs = &telemetry::Registry::Global().GetCounter("bos.storage.wal.syncs");
    before = syncs->value();
  }

  auto store = TsStore::Open(options);
  ASSERT_TRUE(store.ok());
  // 10 appends at every_n = 4 -> sync after the 4th and 8th.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*store)->Write("s", {i, i * 10}).ok());
  }
  if (syncs != nullptr) {
    EXPECT_EQ(syncs->value(), before + 2);
  }

  // A batch write crossing the threshold syncs too.
  std::vector<DataPoint> batch;
  for (int i = 10; i < 20; ++i) batch.push_back({i, i});
  ASSERT_TRUE((*store)->WriteBatch("s", batch).ok());
  if (syncs != nullptr) {
    EXPECT_GT(syncs->value(), before + 2);
  }

  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("s", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got.size(), 20u);
}

TEST_F(WalTest, DisabledWalSkipsRecovery) {
  StoreOptions options;
  options.dir = dir_;
  options.enable_wal = false;
  {
    auto store = TsStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Write("s", {1, 1}).ok());
  }
  auto reopened = TsStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->memtable_points(), 0u);  // lost, by configuration
}

}  // namespace
}  // namespace bos::storage
