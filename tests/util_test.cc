#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/bits.h"
#include "util/buffer.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace bos {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad page");
  EXPECT_EQ(s.ToString(), "Corruption: bad page");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::InvalidArgument("x");
  Status t = s;
  EXPECT_TRUE(t.IsInvalidArgument());
  EXPECT_EQ(t.message(), "x");
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotImplemented("").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("").IsIoError());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_EQ(Status::Unknown("").code(), StatusCode::kUnknown);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::IoError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  BOS_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

TEST(BitsTest, BitWidthMatchesPaperExamples) {
  // "The bit-width of 8 is 4 after removing leading zero" (Section I).
  EXPECT_EQ(BitWidth(8), 4);
  EXPECT_EQ(BitWidth(7), 3);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(~0ULL), 64);
}

TEST(BitsTest, BitWidthIsCeilLog2Plus1) {
  for (int w = 1; w <= 63; ++w) {
    const uint64_t v = 1ULL << w;
    EXPECT_EQ(BitWidth(v - 1), w);
    EXPECT_EQ(BitWidth(v), w + 1);
  }
}

TEST(BitsTest, RangeBitWidthClampsDegenerateRange) {
  EXPECT_EQ(RangeBitWidth(0), 1);  // Definition 5 edge case
  EXPECT_EQ(RangeBitWidth(1), 1);
  EXPECT_EQ(RangeBitWidth(2), 2);
}

TEST(BitsTest, UnsignedRangeHandlesFullInt64Span) {
  EXPECT_EQ(UnsignedRange(INT64_MIN, INT64_MAX), ~0ULL);
  EXPECT_EQ(UnsignedRange(-1, 1), 2ULL);
  EXPECT_EQ(UnsignedRange(5, 5), 0ULL);
}

TEST(BitsTest, BitsToBytesRoundsUp) {
  EXPECT_EQ(BitsToBytes(0), 0u);
  EXPECT_EQ(BitsToBytes(1), 1u);
  EXPECT_EQ(BitsToBytes(8), 1u);
  EXPECT_EQ(BitsToBytes(9), 2u);
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") is the classic check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xcbf43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* s = "hello, bit-packing world";
  const size_t n = std::strlen(s);
  const uint32_t whole = Crc32(s, n);
  const uint32_t part = Crc32(s + 7, n - 7, Crc32(s, 7));
  EXPECT_EQ(part, whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(128, 0xa5);
  const uint32_t before = Crc32(data.data(), data.size());
  data[64] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialIsPositiveWithRoughMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(0.5);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, LaplaceIsSymmetricHeavyTailed) {
  Rng rng(17);
  double sum = 0;
  int extreme = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Laplace();
    sum += v;
    if (std::abs(v) > 4.0) ++extreme;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_GT(extreme, 0);  // heavier tail than a clipped distribution
}

TEST(BufferTest, PutGetFixedRoundTrip) {
  Bytes out;
  PutFixed<uint32_t>(&out, 0xdeadbeefU);
  PutFixed<uint64_t>(&out, 0x0123456789abcdefULL);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(GetFixed<uint32_t>(out, 0, &a));
  ASSERT_TRUE(GetFixed<uint64_t>(out, 4, &b));
  EXPECT_EQ(a, 0xdeadbeefU);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_FALSE(GetFixed<uint64_t>(out, 8, &b));  // short read
}

}  // namespace
}  // namespace bos
