#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "select/selection.h"
#include "storage/store.h"
#include "storage/tsfile.h"
#include "util/random.h"

namespace bos::storage {
namespace {

using codecs::DataPoint;

constexpr const char* kSpec = "TS2DIFF+BOS-B|TS2DIFF+BOS-B";

class FixedIntervalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bos_fixed_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<DataPoint> RegularPoints(size_t n, int64_t start,
                                              int64_t interval,
                                              uint64_t seed = 11) {
    Rng rng(seed);
    std::vector<DataPoint> points(n);
    for (size_t i = 0; i < n; ++i) {
      points[i] = {start + static_cast<int64_t>(i) * interval,
                   rng.UniformInt(-5000, 5000)};
    }
    return points;
  }

  static std::vector<DataPoint> BruteForceRange(
      const std::vector<DataPoint>& points, int64_t t_min, int64_t t_max) {
    std::vector<DataPoint> out;
    for (const DataPoint& p : points) {
      if (p.timestamp >= t_min && p.timestamp <= t_max) out.push_back(p);
    }
    return out;
  }

  // Writes `points` as one timed series and returns the opened reader's
  // page directory for "s".
  std::vector<PageInfo> WriteAndDescribe(const std::string& path,
                                         const std::vector<DataPoint>& points,
                                         size_t page_size = 1024) {
    TsFileWriter writer(path, page_size);
    EXPECT_TRUE(writer.Open().ok());
    EXPECT_TRUE(writer.AppendTimeSeries("s", kSpec, points).ok());
    EXPECT_TRUE(writer.Finish().ok());
    TsFileReader reader;
    EXPECT_TRUE(reader.Open(path).ok());
    auto info = reader.FindSeries("s");
    EXPECT_TRUE(info.ok());
    return (*info)->pages;
  }

  std::filesystem::path dir_;
};

// ------------------------- detection ---------------------------------

TEST_F(FixedIntervalTest, RegularTimestampsProduceFixedPages) {
  const auto points = RegularPoints(3000, /*start=*/-500, /*interval=*/7);
  const auto pages = WriteAndDescribe(Path("regular.bos"), points);
  ASSERT_GT(pages.size(), 1u);
  for (const PageInfo& page : pages) {
    EXPECT_TRUE(page.fixed_interval);
    EXPECT_EQ(page.interval, 7);
  }
}

TEST_F(FixedIntervalTest, JitteredTimestampsStayExplicit) {
  Rng rng(3);
  std::vector<DataPoint> points(3000);
  int64_t t = 0;
  for (auto& p : points) {
    t += 1 + static_cast<int64_t>(rng.Uniform(3));
    p = {t, rng.UniformInt(-100, 100)};
  }
  const auto pages = WriteAndDescribe(Path("jitter.bos"), points);
  for (const PageInfo& page : pages) {
    EXPECT_FALSE(page.fixed_interval);
  }
}

TEST_F(FixedIntervalTest, DuplicateTimestampsStayExplicit) {
  // All-equal timestamps give delta 0, which is not a valid interval.
  std::vector<DataPoint> points(100, DataPoint{42, 1});
  const auto pages = WriteAndDescribe(Path("dup.bos"), points);
  for (const PageInfo& page : pages) {
    EXPECT_FALSE(page.fixed_interval);
  }
}

TEST_F(FixedIntervalTest, SinglePointPageStaysExplicit) {
  // One point has no delta to generalize from.
  const std::vector<DataPoint> points{{123, 456}};
  const auto pages = WriteAndDescribe(Path("one.bos"), points);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_FALSE(pages[0].fixed_interval);
}

TEST_F(FixedIntervalTest, IntervalPastInt64MaxStaysExplicit) {
  // min -> 0 is a step of 2^63, too wide to represent as an interval.
  const std::vector<DataPoint> points{
      {std::numeric_limits<int64_t>::min(), 1}, {0, 2}};
  const auto pages = WriteAndDescribe(Path("wide.bos"), points);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_FALSE(pages[0].fixed_interval);
}

TEST_F(FixedIntervalTest, TwoPointPageIsDetected) {
  const std::vector<DataPoint> points{{10, 1}, {20, 2}};
  const auto pages = WriteAndDescribe(Path("two.bos"), points);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_TRUE(pages[0].fixed_interval);
  EXPECT_EQ(pages[0].interval, 10);
}

TEST_F(FixedIntervalTest, MixedPagesWithinOneSeries) {
  // First page regular, second page jittered (page_size 64).
  std::vector<DataPoint> points;
  for (int64_t i = 0; i < 64; ++i) points.push_back({i * 10, i});
  int64_t t = 64 * 10;
  Rng rng(5);
  for (int64_t i = 0; i < 64; ++i) {
    t += 1 + static_cast<int64_t>(rng.Uniform(4));
    points.push_back({t, i});
  }
  const std::string path = Path("mixed.bos");
  const auto pages = WriteAndDescribe(path, points, /*page_size=*/64);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_TRUE(pages[0].fixed_interval);
  EXPECT_FALSE(pages[1].fixed_interval);

  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadTimeSeries("s", &got).ok());
  EXPECT_EQ(got, points);
  got.clear();
  // A window straddling the fixed/explicit page boundary.
  ASSERT_TRUE(reader.ReadTimeRange("s", 300, 700, &got).ok());
  EXPECT_EQ(got, BruteForceRange(points, 300, 700));
}

// ------------------------- reads -------------------------------------

TEST_F(FixedIntervalTest, FullScanRoundTrips) {
  const auto points = RegularPoints(5000, /*start=*/1000, /*interval=*/25);
  const std::string path = Path("scan.bos");
  WriteAndDescribe(path, points);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<DataPoint> got;
  ScanStats stats;
  ASSERT_TRUE(reader.ReadTimeSeries("s", &got, &stats).ok());
  EXPECT_EQ(got, points);
  EXPECT_EQ(stats.values_scanned, points.size());
}

TEST_F(FixedIntervalTest, TimeRangeMatchesBruteForce) {
  const auto points = RegularPoints(4096, /*start=*/0, /*interval=*/10);
  const std::string path = Path("range.bos");
  WriteAndDescribe(path, points);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());

  const int64_t last = points.back().timestamp;
  const std::pair<int64_t, int64_t> windows[] = {
      {0, last},             // everything
      {-100, -1},            // entirely before
      {last + 1, last + 9},  // entirely after
      {3, 7},                // between two samples: empty
      {10235, 10239},        // between two samples, mid-series
      {0, 0},                // exactly the first sample
      {last, last},          // exactly the last sample
      {5, 10},               // half-open-ish: only t=10
      {10, 15},              // only t=10 again (max between samples)
      {95, 20000},           // partial prefix cut
      {10230, 10250},        // two samples mid-series
      {10200, 30000},        // crosses a page boundary (1024*10 = 10240)
      {-50, 12},             // ragged start
  };
  for (const auto& [lo, hi] : windows) {
    SCOPED_TRACE(testing::Message() << "window [" << lo << ", " << hi << "]");
    std::vector<DataPoint> got;
    ASSERT_TRUE(reader.ReadTimeRange("s", lo, hi, &got).ok());
    EXPECT_EQ(got, BruteForceRange(points, lo, hi));
  }
}

TEST_F(FixedIntervalTest, TimeRangeSweepAgainstBruteForce) {
  const auto points = RegularPoints(600, /*start=*/-300, /*interval=*/3);
  const std::string path = Path("sweep.bos");
  WriteAndDescribe(path, points, /*page_size=*/100);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const int64_t a = rng.UniformInt(-400, 1600);
    const int64_t b = rng.UniformInt(-400, 1600);
    const int64_t lo = std::min(a, b);
    const int64_t hi = std::max(a, b);
    std::vector<DataPoint> got;
    ASSERT_TRUE(reader.ReadTimeRange("s", lo, hi, &got).ok());
    EXPECT_EQ(got, BruteForceRange(points, lo, hi))
        << "window [" << lo << ", " << hi << "]";
  }
}

TEST_F(FixedIntervalTest, SelectedPointsMatchPositions) {
  const auto points = RegularPoints(3000, /*start=*/50, /*interval=*/4);
  const std::string path = Path("select.bos");
  WriteAndDescribe(path, points, /*page_size=*/256);
  TsFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());

  select::SelectionVector sel;
  sel.Add(0);
  sel.Add(1);
  sel.Add(255);   // last row of page 0
  sel.Add(256);   // first row of page 1
  sel.AddRange(1000, 1010);
  sel.Add(2999);  // last row
  std::vector<DataPoint> got;
  ASSERT_TRUE(reader.ReadSelectedPoints("s", sel, &got).ok());
  const std::vector<uint64_t> positions =
      select::SelectionView(sel, 0, points.size()).ToVector();
  ASSERT_EQ(got.size(), positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(got[i], points[positions[i]]) << "position " << positions[i];
  }
}

// ------------------------- store integration --------------------------

TEST_F(FixedIntervalTest, StoreFlushCompactAndQuery) {
  StoreOptions options;
  options.dir = Path("store");
  options.memtable_points = 1 << 20;
  auto store = TsStore::Open(options);
  ASSERT_TRUE(store.ok());

  // Regular sampling, written out of order across two flushes.
  const auto points = RegularPoints(4000, /*start=*/0, /*interval=*/5);
  const std::vector<DataPoint> first(points.begin(), points.begin() + 2500);
  const std::vector<DataPoint> second(points.begin() + 2500, points.end());
  ASSERT_TRUE((*store)->WriteBatch("m", first).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->WriteBatch("m", second).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  std::vector<DataPoint> got;
  ASSERT_TRUE((*store)->Query("m", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);
  got.clear();
  ASSERT_TRUE((*store)->Query("m", 1001, 2499, &got).ok());
  EXPECT_EQ(got, BruteForceRange(points, 1001, 2499));

  // Compaction rebuilds one file; regular pages must survive it.
  ASSERT_TRUE((*store)->Compact().ok());
  EXPECT_EQ((*store)->num_files(), 1u);
  got.clear();
  ASSERT_TRUE((*store)->Query("m", INT64_MIN, INT64_MAX, &got).ok());
  EXPECT_EQ(got, points);

  select::SelectionVector sel;
  sel.Add(0);
  sel.AddRange(1024, 1028);
  sel.Add(3999);
  got.clear();
  ASSERT_TRUE((*store)->QuerySelected("m", sel, &got).ok());
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[0], points[0]);
  EXPECT_EQ(got[1], points[1024]);
  EXPECT_EQ(got[5], points[3999]);

  // The compacted file's pages really are the fixed-interval layout.
  size_t fixed_pages = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.dir)) {
    if (entry.path().extension() != ".tsfile") continue;
    TsFileReader reader;
    ASSERT_TRUE(reader.Open(entry.path().string()).ok());
    for (const SeriesInfo& series : reader.series()) {
      for (const PageInfo& page : series.pages) {
        if (page.fixed_interval) {
          EXPECT_EQ(page.interval, 5);
          ++fixed_pages;
        }
      }
    }
  }
  EXPECT_GT(fixed_pages, 0u);
}

TEST_F(FixedIntervalTest, StoreCacheAndMmapAgreeOnFixedPages) {
  const auto points = RegularPoints(3000, /*start=*/100, /*interval=*/2);
  std::vector<DataPoint> base;
  for (const bool mmap : {false, true}) {
    for (const size_t cache_mb : {size_t{0}, size_t{8}}) {
      StoreOptions options;
      options.dir = Path("store_" + std::to_string(mmap) + "_" +
                         std::to_string(cache_mb));
      options.memtable_points = 1 << 20;
      options.use_mmap = mmap;
      options.cache_mb = cache_mb;
      auto store = TsStore::Open(options);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE((*store)->WriteBatch("m", points).ok());
      ASSERT_TRUE((*store)->Flush().ok());
      EXPECT_EQ((*store)->page_cache() != nullptr, cache_mb > 0);

      // Query twice; with a cache the second pass runs from memory.
      for (int pass = 0; pass < 2; ++pass) {
        std::vector<DataPoint> got;
        ASSERT_TRUE((*store)->Query("m", 501, 1501, &got).ok());
        EXPECT_EQ(got, BruteForceRange(points, 501, 1501))
            << "mmap=" << mmap << " cache_mb=" << cache_mb
            << " pass=" << pass;
        if (base.empty()) base = got;
        EXPECT_EQ(got, base);
      }
    }
  }
}

}  // namespace
}  // namespace bos::storage
