// Tests for the telemetry layer: metric registration and identity,
// concurrent updates, histogram bucketing, snapshot determinism and JSON
// schema, spans, and both the runtime and compile-time off switches.

#include "telemetry/telemetry.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_json.h"

namespace bos::telemetry {
namespace {

using testjson::Json;
using testjson::JsonParser;

// Restores the runtime switch on scope exit so tests cannot leak a
// disabled state into each other.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : saved_(Enabled()) { SetEnabled(on); }
  ~ScopedEnabled() { SetEnabled(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------
// Metric objects
// ---------------------------------------------------------------------

TEST(TelemetryTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryTest, GaugeBasics) {
  Gauge g;
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
  g.Add(10);
  EXPECT_EQ(g.value(), 3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(TelemetryTest, HistogramBucketing) {
  Histogram h({10, 20, 40});
  for (uint64_t sample : {0u, 10u, 11u, 20u, 21u, 40u, 41u, 1000u}) {
    h.Record(sample);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 21 + 40 + 41 + 1000);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 2, 2}));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(TelemetryTest, HistogramSanitizesUnsortedBounds) {
  Histogram h({40, 10, 20, 20});
  EXPECT_EQ(h.bounds(), (std::vector<uint64_t>{10, 20, 40}));
  h.Record(15);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{0, 1, 0, 0}));
}

TEST(TelemetryTest, BoundsHelpers) {
  EXPECT_EQ(LinearBounds(0, 8, 2), (std::vector<uint64_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(ExponentialBounds(1, 2, 4), (std::vector<uint64_t>{1, 2, 4, 8}));
  // Saturation: stops before overflowing instead of wrapping.
  const auto big = ExponentialBounds(1ULL << 62, 4, 10);
  EXPECT_LT(big.size(), 10u);
  for (size_t i = 1; i < big.size(); ++i) EXPECT_GT(big[i], big[i - 1]);
  EXPECT_EQ(WidthBounds().front(), 0u);
  EXPECT_EQ(WidthBounds().back(), 64u);
  const auto& lat = LatencyBoundsNs();
  for (size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(TelemetryTest, RegistrationReturnsSameObject) {
  Registry reg;
  Counter& a = reg.GetCounter("test.counter");
  Counter& b = reg.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.GetCounter("test.other"));

  const std::vector<uint64_t> bounds = {1, 2, 3};
  Histogram& h1 = reg.GetHistogram("test.hist", bounds);
  // Re-registration with different bounds returns the first histogram.
  const std::vector<uint64_t> other = {100};
  Histogram& h2 = reg.GetHistogram("test.hist", other);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), bounds);

  // Counter, gauge and histogram namespaces are independent.
  Gauge& g = reg.GetGauge("test.counter");
  g.Set(5);
  EXPECT_EQ(a.value(), 0u);
}

TEST(TelemetryTest, ReferencesStayValidAcrossInserts) {
  Registry reg;
  Counter& first = reg.GetCounter("stable.0");
  first.Add(7);
  for (int i = 1; i < 200; ++i) {
    reg.GetCounter("stable." + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("stable.0").value(), 7u);
  EXPECT_EQ(&reg.GetCounter("stable.0"), &first);
}

TEST(TelemetryTest, ConcurrentUpdatesLoseNothing) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Each thread registers on its own: exercises racy registration.
      Counter& c = reg.GetCounter("concurrent.counter");
      Histogram& h = reg.GetHistogram("concurrent.hist", LinearBounds(0, 8, 1));
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.Add(1);
        h.Record(static_cast<uint64_t>(i % 10));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("concurrent.counter").value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
  Histogram& h = reg.GetHistogram("concurrent.hist", LinearBounds(0, 8, 1));
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(TelemetryTest, ResetAllZeroesButKeepsRegistrations) {
  Registry reg;
  reg.GetCounter("r.c").Add(3);
  reg.GetGauge("r.g").Set(-2);
  reg.GetHistogram("r.h", LinearBounds(0, 4, 1)).Record(2);
  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("r.c").value(), 0u);
  EXPECT_EQ(reg.GetGauge("r.g").value(), 0);
  Histogram& h = reg.GetHistogram("r.h", LinearBounds(0, 4, 1));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bounds().size(), 5u);  // registration survived the reset
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

Registry& PopulatedRegistry(Registry* reg) {
  reg->GetCounter("snap.blocks").Add(12);
  reg->GetCounter("snap.bytes").Add(4096);
  reg->GetGauge("snap.depth").Set(-3);
  Histogram& h = reg->GetHistogram("snap.widths", WidthBounds());
  h.Record(3);
  h.Record(12);
  h.Record(100);  // overflow bucket
  return *reg;
}

TEST(TelemetryTest, SnapshotJsonIsDeterministic) {
  Registry a, b;
  PopulatedRegistry(&a);
  PopulatedRegistry(&b);
  const std::string snap = a.SnapshotJson();
  // Same call twice and an identically populated independent registry
  // both produce byte-identical strings.
  EXPECT_EQ(snap, a.SnapshotJson());
  EXPECT_EQ(snap, b.SnapshotJson());
}

TEST(TelemetryTest, SnapshotJsonMatchesSchema) {
  Registry reg;
  PopulatedRegistry(&reg);
  const std::string snap = reg.SnapshotJson();

  Json root;
  ASSERT_TRUE(JsonParser(snap).Parse(&root)) << snap;
  ASSERT_EQ(root.type, Json::Type::kObject);
  const Json* enabled = root.Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_EQ(enabled->type, Json::Type::kBool);

  const Json* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->type, Json::Type::kObject);
  const Json* blocks = counters->Find("snap.blocks");
  ASSERT_NE(blocks, nullptr);
  EXPECT_EQ(blocks->number, 12);

  const Json* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const Json* depth = gauges->Find("snap.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->number, -3);

  const Json* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* widths = histograms->Find("snap.widths");
  ASSERT_NE(widths, nullptr);
  ASSERT_EQ(widths->type, Json::Type::kObject);
  const Json* count = widths->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3);
  ASSERT_NE(widths->Find("sum"), nullptr);
  EXPECT_EQ(widths->Find("sum")->number, 3 + 12 + 100);
  const Json* buckets = widths->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->type, Json::Type::kArray);
  ASSERT_EQ(buckets->items.size(), WidthBounds().size() + 1);
  double bucket_total = 0;
  for (const Json& bucket : buckets->items) {
    ASSERT_EQ(bucket.type, Json::Type::kObject);
    ASSERT_NE(bucket.Find("le"), nullptr);
    ASSERT_NE(bucket.Find("count"), nullptr);
    bucket_total += bucket.Find("count")->number;
  }
  EXPECT_EQ(bucket_total, 3);
  // The overflow bucket is the string "+Inf", every other `le` a number.
  EXPECT_EQ(buckets->items.back().Find("le")->type, Json::Type::kString);
  EXPECT_EQ(buckets->items.back().Find("le")->str, "+Inf");
  EXPECT_EQ(buckets->items.front().Find("le")->type, Json::Type::kNumber);
}

TEST(TelemetryTest, SnapshotJsonEscapesNames) {
  Registry reg;
  reg.GetCounter("odd.\"name\"\\with\x01stuff").Add(1);
  Json root;
  ASSERT_TRUE(JsonParser(reg.SnapshotJson()).Parse(&root));
}

TEST(TelemetryTest, SnapshotText) {
  Registry reg;
  PopulatedRegistry(&reg);
  const std::string text = reg.SnapshotText();
  if (CompiledIn()) {
    EXPECT_NE(text.find("snap.blocks"), std::string::npos);
    EXPECT_NE(text.find("snap.widths"), std::string::npos);
  } else {
    EXPECT_NE(text.find("compiled out"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

TEST(TelemetryTest, ScopedSpanRecordsOneSample) {
  Histogram h(LatencyBoundsNs());
  {
    ScopedSpan span(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedSpan inert(nullptr);  // must be safe and record nothing
  }
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------
// On/off switches
// ---------------------------------------------------------------------

#if BOS_TELEMETRY_ENABLED

TEST(TelemetryTest, MacrosRecordIntoGlobalRegistry) {
  ScopedEnabled on(true);
  Registry::Global().GetCounter("macro.counter").Reset();
  BOS_TELEMETRY_COUNTER_ADD("macro.counter", 2);
  BOS_TELEMETRY_COUNTER_ADD("macro.counter", 3);
  EXPECT_EQ(Registry::Global().GetCounter("macro.counter").value(), 5u);

  BOS_TELEMETRY_GAUGE_SET("macro.gauge", -9);
  EXPECT_EQ(Registry::Global().GetGauge("macro.gauge").value(), -9);

  Registry::Global().GetHistogram("macro.hist", WidthBounds()).Reset();
  BOS_TELEMETRY_HISTOGRAM_RECORD("macro.hist", WidthBounds(), 12);
  EXPECT_EQ(Registry::Global().GetHistogram("macro.hist", WidthBounds()).count(),
            1u);

  Histogram& span_hist =
      Registry::Global().GetHistogram("macro.span", LatencyBoundsNs());
  span_hist.Reset();
  {
    BOS_TELEMETRY_SPAN("macro.span");
  }
  EXPECT_EQ(span_hist.count(), 1u);
}

TEST(TelemetryTest, RuntimeDisableIsANoop) {
  Registry::Global().GetCounter("toggle.counter").Reset();
  {
    ScopedEnabled off(false);
    BOS_TELEMETRY_COUNTER_ADD("toggle.counter", 1);
    BOS_TELEMETRY_HISTOGRAM_RECORD("toggle.hist.off", WidthBounds(), 1);
    {
      BOS_TELEMETRY_SPAN("toggle.span");
    }
  }
  {
    ScopedEnabled on(true);
    BOS_TELEMETRY_COUNTER_ADD("toggle.counter", 1);
  }
  EXPECT_EQ(Registry::Global().GetCounter("toggle.counter").value(), 1u);
  EXPECT_EQ(Registry::Global()
                .GetHistogram("toggle.span", LatencyBoundsNs())
                .count(),
            0u);
}

#else  // !BOS_TELEMETRY_ENABLED

TEST(TelemetryTest, CompiledOutMacrosAreNoops) {
  EXPECT_FALSE(CompiledIn());
  // The macros must compile to nothing: no registration happens.
  BOS_TELEMETRY_COUNTER_ADD("off.counter", 1);
  BOS_TELEMETRY_GAUGE_SET("off.gauge", 1);
  BOS_TELEMETRY_HISTOGRAM_RECORD("off.hist", WidthBounds(), 1);
  BOS_TELEMETRY_SPAN("off.span");
  BOS_TELEMETRY_ONLY(Registry::Global().GetCounter("off.only").Add(1));
  const std::string snap = Registry::Global().SnapshotJson();
  EXPECT_EQ(snap.find("off.counter"), std::string::npos);
  EXPECT_EQ(snap.find("off.only"), std::string::npos);
  EXPECT_NE(Registry::Global().SnapshotText().find("compiled out"),
            std::string::npos);
}

#endif  // BOS_TELEMETRY_ENABLED

}  // namespace
}  // namespace bos::telemetry
