#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codecs/registry.h"
#include "codecs/rle.h"
#include "codecs/sprintz.h"
#include "codecs/ts2diff.h"
#include "util/random.h"

namespace bos::codecs {
namespace {

std::vector<std::string> AllSpecs() {
  std::vector<std::string> specs;
  for (const auto& t : TransformNames()) {
    for (const auto& o : OperatorNames()) {
      specs.push_back(t + "+" + o);
    }
  }
  return specs;
}

void ExpectRoundTrip(const SeriesCodec& codec, const std::vector<int64_t>& x) {
  Bytes out;
  ASSERT_TRUE(codec.Compress(x, &out).ok()) << codec.name();
  std::vector<int64_t> got;
  ASSERT_TRUE(codec.Decompress(out, &got).ok()) << codec.name();
  EXPECT_EQ(got, x) << codec.name();
}

TEST(RegistryTest, AllSpecsConstruct) {
  for (const auto& spec : AllSpecs()) {
    auto codec = MakeSeriesCodec(spec);
    ASSERT_TRUE(codec.ok()) << spec;
    EXPECT_EQ((*codec)->name(), spec);
  }
}

TEST(RegistryTest, RejectsUnknownNames) {
  EXPECT_TRUE(MakeOperator("NOPE").status().IsInvalidArgument());
  EXPECT_TRUE(MakeSeriesCodec("RLE").status().IsInvalidArgument());
  EXPECT_TRUE(MakeSeriesCodec("NOPE+BP").status().IsInvalidArgument());
  EXPECT_TRUE(MakeSeriesCodec("RLE+NOPE").status().IsInvalidArgument());
}

TEST(DeltaTransformTest, MatchesManualDifferences) {
  std::vector<int64_t> x{10, 12, 11, 11, 20};
  const auto d = DeltaTransform(x);
  EXPECT_EQ(d, (std::vector<int64_t>{10, 2, -1, 0, 9}));
}

TEST(DeltaTransformTest, HandlesWrapAround) {
  std::vector<int64_t> x{INT64_MAX, INT64_MIN};
  const auto d = DeltaTransform(x);
  EXPECT_EQ(d[1], 1);  // wraps modulo 2^64
}

class CodecSpecTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::shared_ptr<const SeriesCodec> Codec(size_t block = kDefaultBlockSize) {
    auto r = MakeSeriesCodec(GetParam(), block);
    EXPECT_TRUE(r.ok());
    return *r;
  }
};

TEST_P(CodecSpecTest, EmptySeries) { ExpectRoundTrip(*Codec(), {}); }

TEST_P(CodecSpecTest, SingleValue) {
  ExpectRoundTrip(*Codec(), {42});
  ExpectRoundTrip(*Codec(), {INT64_MIN});
}

TEST_P(CodecSpecTest, ConstantSeries) {
  ExpectRoundTrip(*Codec(), std::vector<int64_t>(5000, -3));
}

TEST_P(CodecSpecTest, SmoothSeriesWithOutliers) {
  Rng rng(404);
  std::vector<int64_t> x(4096);
  int64_t cur = 1000;
  for (auto& v : x) {
    cur += static_cast<int64_t>(rng.Normal(0, 4));
    v = cur;
    if (rng.Bernoulli(0.01)) v += rng.UniformInt(-100000, 100000);
  }
  ExpectRoundTrip(*Codec(), x);
}

TEST_P(CodecSpecTest, HighRepeatSeries) {
  Rng rng(405);
  std::vector<int64_t> x;
  while (x.size() < 3000) {
    const int64_t v = rng.UniformInt(0, 50);
    const int run = 1 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < run && x.size() < 3000; ++i) x.push_back(v);
  }
  ExpectRoundTrip(*Codec(), x);
}

TEST_P(CodecSpecTest, BlockBoundaryLengths) {
  Rng rng(406);
  for (size_t n : {size_t{1023}, size_t{1024}, size_t{1025}, size_t{2048}}) {
    std::vector<int64_t> x(n);
    for (auto& v : x) v = rng.UniformInt(-5000, 5000);
    ExpectRoundTrip(*Codec(), x);
  }
}

TEST_P(CodecSpecTest, SmallBlockSize) {
  Rng rng(407);
  std::vector<int64_t> x(500);
  for (auto& v : x) v = rng.UniformInt(0, 1000);
  ExpectRoundTrip(*Codec(64), x);
}

TEST_P(CodecSpecTest, ExtremeValues) {
  std::vector<int64_t> x{0,         INT64_MAX, INT64_MIN, 17, -17,
                         INT64_MAX, 0,         INT64_MIN, 1,  -1};
  ExpectRoundTrip(*Codec(), x);
}

TEST_P(CodecSpecTest, DecompressRejectsTrailingGarbage) {
  std::vector<int64_t> x(100, 7);
  Bytes out;
  ASSERT_TRUE(Codec()->Compress(x, &out).ok());
  out.push_back(0xFF);
  std::vector<int64_t> got;
  EXPECT_FALSE(Codec()->Decompress(out, &got).ok());
}

TEST_P(CodecSpecTest, DecompressRejectsTruncation) {
  Rng rng(408);
  std::vector<int64_t> x(512);
  for (auto& v : x) v = rng.UniformInt(-100, 100);
  Bytes out;
  ASSERT_TRUE(Codec()->Compress(x, &out).ok());
  Bytes prefix(out.begin(), out.begin() + out.size() / 2);
  std::vector<int64_t> got;
  const Status st = Codec()->Decompress(prefix, &got);
  EXPECT_FALSE(st.ok() && got.size() == x.size());
}

INSTANTIATE_TEST_SUITE_P(AllCombos, CodecSpecTest,
                         ::testing::ValuesIn(AllSpecs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '+' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CodecCompositionTest, BosBeatsBpInsideEachTransform) {
  // The paper's core claim at codec level: replacing BP with BOS improves
  // the compressed size on outlier-bearing data (Figure 10a).
  Rng rng(500);
  std::vector<int64_t> x(8192);
  int64_t cur = 0;
  for (auto& v : x) {
    cur += static_cast<int64_t>(rng.Normal(0, 6));
    v = cur;
    if (rng.Bernoulli(0.02)) v += rng.UniformInt(-500000, 500000);
  }
  for (const auto& t : TransformNames()) {
    Bytes bp_out, bos_out;
    ASSERT_TRUE((*MakeSeriesCodec(t + "+BP"))->Compress(x, &bp_out).ok());
    ASSERT_TRUE((*MakeSeriesCodec(t + "+BOS-B"))->Compress(x, &bos_out).ok());
    EXPECT_LT(bos_out.size(), bp_out.size()) << t;
  }
}

TEST(CodecCompositionTest, BosVAndBosBSameSizeClass) {
  Rng rng(501);
  std::vector<int64_t> x(4096);
  for (auto& v : x) {
    v = static_cast<int64_t>(rng.Normal(0, 100));
    if (rng.Bernoulli(0.05)) v *= 100;
  }
  Bytes v_out, b_out;
  ASSERT_TRUE((*MakeSeriesCodec("TS2DIFF+BOS-V"))->Compress(x, &v_out).ok());
  ASSERT_TRUE((*MakeSeriesCodec("TS2DIFF+BOS-B"))->Compress(x, &b_out).ok());
  const auto diff =
      static_cast<int64_t>(v_out.size()) - static_cast<int64_t>(b_out.size());
  EXPECT_LE(std::abs(diff), 8 * static_cast<int64_t>(x.size() / 1024 + 1));
}

TEST(CodecCompositionTest, RleWinsOnRepeats) {
  std::vector<int64_t> x;
  for (int r = 0; r < 100; ++r) {
    for (int i = 0; i < 100; ++i) x.push_back(r % 7);
  }
  Bytes rle_out, diff_out;
  ASSERT_TRUE((*MakeSeriesCodec("RLE+BP"))->Compress(x, &rle_out).ok());
  ASSERT_TRUE((*MakeSeriesCodec("TS2DIFF+BP"))->Compress(x, &diff_out).ok());
  EXPECT_LT(rle_out.size(), diff_out.size());
}

TEST(CodecCompositionTest, DeltaCodecsWinOnSmoothSeries) {
  Rng rng(502);
  std::vector<int64_t> x(4000);
  int64_t cur = 1000000;
  for (auto& v : x) {
    cur += rng.UniformInt(-2, 3);
    v = cur;
  }
  Bytes rle_out, diff_out;
  ASSERT_TRUE((*MakeSeriesCodec("RLE+BP"))->Compress(x, &rle_out).ok());
  ASSERT_TRUE((*MakeSeriesCodec("TS2DIFF+BP"))->Compress(x, &diff_out).ok());
  EXPECT_LT(diff_out.size(), rle_out.size());
}

}  // namespace
}  // namespace bos::codecs
